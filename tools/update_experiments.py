#!/usr/bin/env python
"""Regenerate EXPERIMENTS.md from benchmark artefacts.

Run after ``pytest benchmarks/ --benchmark-only -s``:

    python tools/update_experiments.py
"""

from __future__ import annotations

import sys
from pathlib import Path

from repro.reporting import write_report

PREAMBLE = """\
Reproduction record for **HD-PSR** (Wang et al., ICPP 2022). The paper's
testbed was an EC2 `d3en.12xlarge` with 36 SATA disks; this repo runs the
same recovery schedules on a seeded simulation of that chassis (see
DESIGN.md section 2 for the substitution argument). Headline artefacts below
were produced at `HDPSR_BENCH_SCALE=4` (25-50 GiB per failed disk instead
of 100-200 GiB); relative reductions are scale-invariant in this model
because all schemes process the same stripe population.

**Shape agreement summary**

| paper claim | measured here | verdict |
|---|---|---|
| Fig 2: FSR 7 units / ACWT 1.625 vs PSR 5 / 0.375 | exact match (tests/test_motivation_fig2.py) | reproduced exactly |
| Fig 6: naive 15 chunk reads vs cooperative 9 | exact match (tests/test_multi_disk.py) | reproduced exactly |
| Obs 1-3 (Fig 3-4) | ACWT rises with P_a and ROS; TR rises with P_r | reproduced |
| Exp 1: HD-PSR beats FSR, gap widens with k; paper peaks 50.5-71.7% | 26-54% reductions, monotone in k; PA strongest at (6,4), AP strongest active scheme at (14,10) | shape reproduced; magnitudes ~20 pts below paper peaks (the paper's disks show deeper slow-disk skew than our 4x bimodal model) |
| Exp 2: AS ~98% cheaper than AP, both grow with s | AS ~60-90% cheaper at 1/4 scale on median timings (the gap widens with s toward the paper's figure); growth with s and k reproduced | shape reproduced |
| Exp 3: repair time grows with chunk size, HD-PSR keeps winning | reproduced (~36-44% best reduction across 8-256 MiB) | shape reproduced |
| Exp 4: selection time falls with chunk size; AS << AP | reproduced | shape reproduced |
| Exp 5: cooperative repair up to 52.5% faster at 3 failures | ~0% (1 disk) -> ~19% (2) -> ~32% (3), monotone | shape reproduced; magnitude tracks stripe-set overlap, which grows with disk fill |

Beyond the paper, the repo adds measured extensions: durability (MTTDL)
consequences, a real-thread wall-clock rerun of the headline comparison,
an LRC related-work composition study, degraded-read latency under repair,
and a probe-staleness ablation of the active-vs-passive design choice —
all recorded below.
"""


def main() -> int:
    root = Path(__file__).resolve().parent.parent
    results = root / "benchmarks" / "results"
    if not results.exists():
        print("no benchmark artefacts; run pytest benchmarks/ --benchmark-only first",
              file=sys.stderr)
        return 1
    path = write_report(results, root / "EXPERIMENTS.md", preamble=PREAMBLE)
    print(f"wrote {path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
