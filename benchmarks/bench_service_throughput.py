"""SERVICE — aggregate repair throughput of the asyncio repair service.

Repo extension: the paper's repair pipeline recovers one disk at a time.
:class:`~repro.service.service.RepairService` multiplexes stripe repairs
from many concurrent disk failures over per-disk modeled channels, so
jobs whose stripes live on disjoint disks overlap almost perfectly.

This bench fails four disks with pairwise-disjoint stripe sets (rotating
placement, 36 disks, n=9: disks 0/9/18/27) and compares

* **serial**: four independent single-disk repairs, one per fresh
  same-seed server — the executor's one-repair-at-a-time reality; cost is
  the *sum* of the four modeled makespans;
* **service**: one server, all four disks failed, four concurrent
  ``submit_repair`` jobs; cost is the service's modeled makespan.

While the concurrent repairs run, a foreground reader hammers
``read_chunk`` (healthy and lost chunks alike) and reports wall-clock
p50/p99 — the user-visible latency the front door protects. Expected:
near-linear overlap (speedup ≳ 2 is asserted; disjoint channels give
close to 4).

A second test prices the telemetry plane itself: the same episode runs
with everything off (NULL tracer, fresh registry) and with everything on
(recording tracer, event-loop monitor, a mid-flight ``stats`` scrape),
in back-to-back pairs, taking the median of the per-pair **CPU** ratios
— tracing costs cycles, process CPU time is deaf to scheduler noise
that makes sub-second wall clocks lie by ±20% on shared runners, and
pairing cancels machine drift between episodes. Telemetry cost is per
*event* while decode cost is per *byte*, so the ratio is measured at
production chunk size (the episode softens the bench scale divisor)
where it lands around the ~5% we target; the assertion is deliberately
looser because CI machines still vary.
"""

from __future__ import annotations

import asyncio
import time

import pytest

from repro.core import ALGORITHMS
from repro.hdss.server import HDSSConfig, HighDensityStorageServer
from repro.obs import EventLoopMonitor, MetricsRegistry, RecordingTracer
from repro.obs.context import current_registry, use_registry, use_tracer
from repro.obs.quantiles import QuantileSketch
from repro.service import RepairService, ServiceConfig, stats_snapshot
from repro.service.service import DEGRADED_READS
from repro.utils.tables import AsciiTable
from repro.utils.rng import make_rng

from benchutil import emit

NUM_DISKS, N, K = 36, 9, 6
STRIPES = 36
FAILED = (0, 9, 18, 27)
ALGORITHM = "hd-psr-ap"
SEED = 17
FOREGROUND_READS = 64


def make_server(scale: int) -> HighDensityStorageServer:
    config = HDSSConfig(
        num_disks=NUM_DISKS, n=N, k=K,
        chunk_size=max(4096, 262144 // scale),
        memory_chunks=24, spares=6, seed=SEED, placement="rotating",
    )
    server = HighDensityStorageServer(config)
    server.provision_stripes(STRIPES, with_data=True)
    return server


def repair_serial(scale: int) -> dict:
    """Four single-disk repairs on fresh same-seed servers, summed."""
    total = 0.0
    for disk in FAILED:
        server = make_server(scale)
        server.fail_disk(disk)

        async def run() -> float:
            service = RepairService(server, ALGORITHMS[ALGORITHM]())
            result = await service.submit_repair(disk).wait()
            await service.close()
            assert result.certified
            return result.modeled_seconds

        total += asyncio.run(run())
    return {"mode": "serial", "modeled_seconds": total}


def repair_concurrent(scale: int) -> dict:
    """One service, four concurrent repairs, foreground reads in flight."""
    server = make_server(scale)
    stripe_sets = [set(server.layout.stripe_set(d)) for d in FAILED]
    for a in range(len(FAILED)):
        for b in range(a + 1, len(FAILED)):
            assert not stripe_sets[a] & stripe_sets[b], "stripe sets overlap"
    for disk in FAILED:
        server.fail_disk(disk)
    latencies = QuantileSketch((0.5, 0.9, 0.99))

    async def run() -> dict:
        service = RepairService(
            server, ALGORITHMS[ALGORITHM](),
            ServiceConfig(max_concurrent_stripes=4 * len(FAILED)),
        )
        tickets = [service.submit_repair(d) for d in FAILED]
        repairs = asyncio.gather(*(t.wait() for t in tickets))

        async def reader() -> None:
            rng = make_rng(SEED + 1)
            targets = [
                (int(rng.integers(STRIPES)), int(rng.integers(N)))
                for _ in range(FOREGROUND_READS)
            ]
            for stripe, shard in targets:
                started = time.monotonic()
                await service.read_chunk(stripe, shard)
                latencies.observe(time.monotonic() - started)

        _, results = await asyncio.gather(reader(), repairs)
        makespan = service.modeled_now
        await service.close()
        assert all(r.certified for r in results)
        return {
            "mode": "service",
            "modeled_seconds": makespan,
            "jobs": [r.modeled_seconds for r in results],
        }

    row = asyncio.run(run())
    degraded = current_registry().get(DEGRADED_READS)
    row.update({
        "read_p50_ms": latencies.quantile(0.5) * 1e3,
        "read_p99_ms": latencies.quantile(0.99) * 1e3,
        "foreground_reads": latencies.count,
        "degraded_reads": int(degraded.value) if degraded is not None else 0,
    })
    return row


def run_modes(scale: int):
    serial = repair_serial(scale)
    service = repair_concurrent(scale)
    speedup = serial["modeled_seconds"] / service["modeled_seconds"]
    service["speedup"] = speedup
    return [serial, service]


def test_service_concurrent_repair_throughput(benchmark, results_sink, scale):
    rows = benchmark.pedantic(run_modes, args=(scale,), rounds=1, iterations=1)
    serial, service = rows
    table = AsciiTable(
        ["mode", "modeled (s)", "speedup", "fg reads", "p50 (ms)", "p99 (ms)"],
        title=f"Service repair throughput ({len(FAILED)} disks, "
              f"{STRIPES} stripes, {ALGORITHM})",
        float_fmt=".4g",
    )
    table.add_row(["serial", serial["modeled_seconds"], 1.0, "-", "-", "-"])
    table.add_row([
        "service", service["modeled_seconds"], service["speedup"],
        service["foreground_reads"], service["read_p50_ms"],
        service["read_p99_ms"],
    ])
    emit("Service repair throughput", table.render())
    results_sink(
        "service_throughput", rows,
        meta={"disks": list(FAILED), "stripes": STRIPES,
              "algorithm": ALGORITHM, "scale": scale},
    )

    # The whole point of the service: concurrent disjoint repairs overlap.
    assert service["speedup"] >= 2.0
    assert service["foreground_reads"] == FOREGROUND_READS
    assert service["read_p99_ms"] >= service["read_p50_ms"]


# ---------------------------------------------------------------------------
# Telemetry overhead
# ---------------------------------------------------------------------------
def episode_cpu_seconds(scale: int, telemetry: bool) -> "tuple[float, float]":
    """(CPU, wall) seconds of one concurrent-repair episode.

    Runs at production chunk size — ``max(1, scale // 4)`` instead of the
    raw bench divisor — because telemetry cost is fixed per event while
    decode cost grows with the chunk: shrinking chunks inflates the ratio
    into measuring the tracer against a toy workload.
    """
    server = make_server(max(1, scale // 4))
    for disk in FAILED:
        server.fail_disk(disk)

    async def run() -> None:
        service = RepairService(
            server, ALGORITHMS[ALGORITHM](),
            ServiceConfig(max_concurrent_stripes=4 * len(FAILED)),
        )
        monitor = EventLoopMonitor().start() if telemetry else None
        tickets = [service.submit_repair(d) for d in FAILED]
        repairs = asyncio.gather(*(t.wait() for t in tickets))

        async def reader() -> None:
            rng = make_rng(SEED + 2)
            for _ in range(FOREGROUND_READS):
                await service.read_chunk(
                    int(rng.integers(STRIPES)), int(rng.integers(N))
                )

        _, results = await asyncio.gather(reader(), repairs)
        assert all(r.certified for r in results)
        if telemetry:
            stats_snapshot(service, monitor)  # exercise the scrape path
            await monitor.stop()
        await service.close()

    cpu_started = time.process_time()
    wall_started = time.monotonic()
    if telemetry:
        with use_tracer(RecordingTracer()), use_registry(MetricsRegistry()):
            asyncio.run(run())
    else:
        with use_registry(MetricsRegistry()):
            asyncio.run(run())
    return (time.process_time() - cpu_started,
            time.monotonic() - wall_started)


def test_service_telemetry_overhead(results_sink, scale):
    # Paired design: each round runs both modes back-to-back (alternating
    # which goes first — the first episode of a pair runs colder) and the
    # overhead is the median of the per-pair CPU ratios. Adjacent episodes
    # see nearly the same machine state, so pairing cancels the frequency
    # and co-tenant drift that makes pooled comparisons of one mode's
    # median against the other's swing by +-10% either way.
    repeats = 6
    cpus: dict[str, list[float]] = {"telemetry-off": [], "telemetry-on": []}
    walls: dict[str, list[float]] = {"telemetry-off": [], "telemetry-on": []}
    ratios = []
    for i in range(repeats):
        order = (False, True) if i % 2 == 0 else (True, False)
        pair = {}
        for on in order:
            mode = "telemetry-on" if on else "telemetry-off"
            pair[on], wall = episode_cpu_seconds(scale, on)
            cpus[mode].append(pair[on])
            walls[mode].append(wall)
        ratios.append(pair[True] / pair[False])

    def median(vals: "list[float]") -> float:
        return sorted(vals)[len(vals) // 2]

    cpu = {mode: median(vals) for mode, vals in cpus.items()}
    wall = {mode: median(vals) for mode, vals in walls.items()}
    overhead = median(ratios) - 1.0
    rows = [
        {"mode": mode, "cpu_seconds": cpu[mode], "wall_seconds": wall[mode]}
        for mode in ("telemetry-off", "telemetry-on")
    ]
    rows[1]["overhead_ratio"] = overhead
    rows[1]["pair_ratios"] = [r - 1.0 for r in ratios]
    table = AsciiTable(
        ["mode", "median cpu (s)", "median wall (s)", "overhead"],
        title=f"Telemetry overhead (median of {repeats} paired runs, "
              f"{len(FAILED)} disks, {FOREGROUND_READS} fg reads)",
        float_fmt=".4g",
    )
    table.add_row(
        ["telemetry-off", cpu["telemetry-off"], wall["telemetry-off"], "-"]
    )
    table.add_row([
        "telemetry-on", cpu["telemetry-on"], wall["telemetry-on"],
        f"{overhead:+.1%}",
    ])
    emit("Service telemetry overhead", table.render())
    results_sink(
        "service_telemetry_overhead", rows,
        meta={"repeats": repeats, "scale": scale, "target_ratio": 0.05},
    )

    # Expect ~5% CPU; the gate is looser because CI machines vary. A real
    # regression (per-event locking, an always-on export) shows up as 2x,
    # not 1.2x.
    assert overhead < 0.20, f"telemetry costs {overhead:+.1%} cpu"
