"""SERVICE — aggregate repair throughput of the asyncio repair service.

Repo extension: the paper's repair pipeline recovers one disk at a time.
:class:`~repro.service.service.RepairService` multiplexes stripe repairs
from many concurrent disk failures over per-disk modeled channels, so
jobs whose stripes live on disjoint disks overlap almost perfectly.

This bench fails four disks with pairwise-disjoint stripe sets (rotating
placement, 36 disks, n=9: disks 0/9/18/27) and compares

* **serial**: four independent single-disk repairs, one per fresh
  same-seed server — the executor's one-repair-at-a-time reality; cost is
  the *sum* of the four modeled makespans;
* **service**: one server, all four disks failed, four concurrent
  ``submit_repair`` jobs; cost is the service's modeled makespan.

While the concurrent repairs run, a foreground reader hammers
``read_chunk`` (healthy and lost chunks alike) and reports wall-clock
p50/p99 — the user-visible latency the front door protects. Expected:
near-linear overlap (speedup ≳ 2 is asserted; disjoint channels give
close to 4).
"""

from __future__ import annotations

import asyncio
import time

import pytest

from repro.core import ALGORITHMS
from repro.hdss.server import HDSSConfig, HighDensityStorageServer
from repro.obs.context import current_registry
from repro.obs.quantiles import QuantileSketch
from repro.service import RepairService, ServiceConfig
from repro.service.service import DEGRADED_READS
from repro.utils.tables import AsciiTable
from repro.utils.rng import make_rng

from benchutil import emit

NUM_DISKS, N, K = 36, 9, 6
STRIPES = 36
FAILED = (0, 9, 18, 27)
ALGORITHM = "hd-psr-ap"
SEED = 17
FOREGROUND_READS = 64


def make_server(scale: int) -> HighDensityStorageServer:
    config = HDSSConfig(
        num_disks=NUM_DISKS, n=N, k=K,
        chunk_size=max(4096, 262144 // scale),
        memory_chunks=24, spares=6, seed=SEED, placement="rotating",
    )
    server = HighDensityStorageServer(config)
    server.provision_stripes(STRIPES, with_data=True)
    return server


def repair_serial(scale: int) -> dict:
    """Four single-disk repairs on fresh same-seed servers, summed."""
    total = 0.0
    for disk in FAILED:
        server = make_server(scale)
        server.fail_disk(disk)

        async def run() -> float:
            service = RepairService(server, ALGORITHMS[ALGORITHM]())
            result = await service.submit_repair(disk).wait()
            await service.close()
            assert result.certified
            return result.modeled_seconds

        total += asyncio.run(run())
    return {"mode": "serial", "modeled_seconds": total}


def repair_concurrent(scale: int) -> dict:
    """One service, four concurrent repairs, foreground reads in flight."""
    server = make_server(scale)
    stripe_sets = [set(server.layout.stripe_set(d)) for d in FAILED]
    for a in range(len(FAILED)):
        for b in range(a + 1, len(FAILED)):
            assert not stripe_sets[a] & stripe_sets[b], "stripe sets overlap"
    for disk in FAILED:
        server.fail_disk(disk)
    latencies = QuantileSketch((0.5, 0.9, 0.99))

    async def run() -> dict:
        service = RepairService(
            server, ALGORITHMS[ALGORITHM](),
            ServiceConfig(max_concurrent_stripes=4 * len(FAILED)),
        )
        tickets = [service.submit_repair(d) for d in FAILED]
        repairs = asyncio.gather(*(t.wait() for t in tickets))

        async def reader() -> None:
            rng = make_rng(SEED + 1)
            targets = [
                (int(rng.integers(STRIPES)), int(rng.integers(N)))
                for _ in range(FOREGROUND_READS)
            ]
            for stripe, shard in targets:
                started = time.monotonic()
                await service.read_chunk(stripe, shard)
                latencies.observe(time.monotonic() - started)

        _, results = await asyncio.gather(reader(), repairs)
        makespan = service.modeled_now
        await service.close()
        assert all(r.certified for r in results)
        return {
            "mode": "service",
            "modeled_seconds": makespan,
            "jobs": [r.modeled_seconds for r in results],
        }

    row = asyncio.run(run())
    degraded = current_registry().get(DEGRADED_READS)
    row.update({
        "read_p50_ms": latencies.quantile(0.5) * 1e3,
        "read_p99_ms": latencies.quantile(0.99) * 1e3,
        "foreground_reads": latencies.count,
        "degraded_reads": int(degraded.value) if degraded is not None else 0,
    })
    return row


def run_modes(scale: int):
    serial = repair_serial(scale)
    service = repair_concurrent(scale)
    speedup = serial["modeled_seconds"] / service["modeled_seconds"]
    service["speedup"] = speedup
    return [serial, service]


def test_service_concurrent_repair_throughput(benchmark, results_sink, scale):
    rows = benchmark.pedantic(run_modes, args=(scale,), rounds=1, iterations=1)
    serial, service = rows
    table = AsciiTable(
        ["mode", "modeled (s)", "speedup", "fg reads", "p50 (ms)", "p99 (ms)"],
        title=f"Service repair throughput ({len(FAILED)} disks, "
              f"{STRIPES} stripes, {ALGORITHM})",
        float_fmt=".4g",
    )
    table.add_row(["serial", serial["modeled_seconds"], 1.0, "-", "-", "-"])
    table.add_row([
        "service", service["modeled_seconds"], service["speedup"],
        service["foreground_reads"], service["read_p50_ms"],
        service["read_p99_ms"],
    ])
    emit("Service repair throughput", table.render())
    results_sink(
        "service_throughput", rows,
        meta={"disks": list(FAILED), "stripes": STRIPES,
              "algorithm": ALGORITHM, "scale": scale},
    )

    # The whole point of the service: concurrent disjoint repairs overlap.
    assert service["speedup"] >= 2.0
    assert service["foreground_reads"] == FOREGROUND_READS
    assert service["read_p99_ms"] >= service["read_p50_ms"]
