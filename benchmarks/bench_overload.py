"""OVERLOAD — the knee curve: goodput and p99 vs offered load.

Repo extension: the overload plane (PR: deadline-aware admission +
CoDel-style shedding + brownout) exists to change the *shape* of this
chart. One in-process :class:`ServiceDaemon` fronts a store whose reads
cost a fixed 2 ms (so one gate slot = 500 reads/s of real capacity), and
an open-loop constant-rate flood hammers a single hot chunk at a sweep
of offered loads straddling that capacity — once with the controller +
per-request deadlines (treatment) and once with neither (baseline).

What the rows show, and the assertions pin:

* **goodput** climbs with offered load below the knee and saturates at
  the hot disk's capacity above it — for *both* modes. Shedding does not
  buy throughput; the spindle was already the bottleneck.
* **p99** is where the modes diverge past the knee: open-loop overload
  grows an unbounded standing queue, so the uncontrolled tail scales
  with how long the overload lasts, while the controlled daemon sheds
  the excess (``ERR_OVERLOAD`` + expired deadlines) and keeps the tail
  near the deadline budget.

Latency is measured from the *scheduled* arrival (no coordinated
omission) and goodput over the full wall time including queue drain, so
the uncontrolled rows can't hide their backlog.
"""

from __future__ import annotations

import asyncio
import time
from typing import Dict, List

from repro.core import ALGORITHMS
from repro.hdss.server import HDSSConfig, HighDensityStorageServer
from repro.hdss.store import InMemoryChunkStore
from repro.obs.quantiles import QuantileSketch
from repro.service.chaos_overload import SlowStore
from repro.service.netserver import ServiceDaemon
from repro.service.overload import _STATE_LEVEL, OverloadConfig
from repro.service.protocol import ERR_DEADLINE, ERR_OVERLOAD
from repro.service.service import RepairService, ServiceConfig
from repro.utils.tables import AsciiTable
from repro.workloads.arrivals import constant_arrivals

from benchutil import emit

SERVICE_TIME_S = 0.002
GATE_WIDTH = 1
CAPACITY = GATE_WIDTH / SERVICE_TIME_S  # 500 reads/s on the hot disk
DEADLINE_MS = 100.0
EPISODE_SECONDS = 1.2
SEED = 11

#: Offered load as fractions of the hot disk's capacity: two points below
#: the knee, one near it, two past it.
SWEEP = [0.2, 0.5, 0.8, 1.2, 1.8]


def run_episode(offered_frac: float, control: bool) -> Dict[str, object]:
    """One open-loop constant-rate episode against a fresh daemon."""
    rate = offered_frac * CAPACITY

    async def episode() -> Dict[str, object]:
        store = SlowStore(InMemoryChunkStore(), SERVICE_TIME_S)
        server = HighDensityStorageServer(
            HDSSConfig(
                num_disks=12, n=5, k=3, chunk_size=2048, memory_chunks=16,
                spares=3, seed=SEED, placement="rotating",
            ),
            store=store,
        )
        server.provision_stripes(4, with_data=True)
        overload = None
        if control:
            overload = OverloadConfig(
                target_ms=5.0, shed_target_ms=30.0, interval_ms=50.0,
                recovery_intervals=2, repair_pace_ms=10.0,
                queue_cap=48, idle_reset_s=1.0,
            )
        service = RepairService(
            server, ALGORITHMS["hd-psr-ap"](),
            ServiceConfig(
                max_concurrent_stripes=2, per_disk_reads=GATE_WIDTH,
                durable_journal=False, overload=overload,
            ),
        )
        daemon = ServiceDaemon(service)

        schedule = constant_arrivals(rate, EPISODE_SECONDS, seed=SEED)
        latencies = QuantileSketch((0.5, 0.9, 0.99))
        errors: Dict[str, int] = {}
        max_level = 0

        async def fire() -> None:
            msg = {"op": "read", "stripe": 0, "shard": 0}
            if control:
                msg["deadline_ms"] = DEADLINE_MS
            t0 = time.monotonic()
            reply = await daemon.handle_request(msg)
            if reply.get("ok"):
                latencies.observe(time.monotonic() - t0)
            else:
                code = str(reply.get("code", "unknown"))
                errors[code] = errors.get(code, 0) + 1

        started = time.monotonic()
        tasks: List[asyncio.Task] = []
        for offset in schedule.times:
            delay = started + float(offset) - time.monotonic()
            if delay > 0:
                await asyncio.sleep(delay)
            tasks.append(asyncio.create_task(fire()))
            if control and service.overload is not None:
                max_level = max(
                    max_level, _STATE_LEVEL[service.overload.state]
                )
        await asyncio.gather(*tasks)
        elapsed = time.monotonic() - started
        await service.close()

        q = latencies.quantiles() if latencies.count else {}
        return {
            "offered_frac": offered_frac,
            "offered_per_s": round(rate, 1),
            "control": control,
            "offered": schedule.count,
            "completed": latencies.count,
            "sheds": errors.get(ERR_OVERLOAD, 0),
            "deadline_expired": errors.get(ERR_DEADLINE, 0),
            "goodput_per_s": round(latencies.count / elapsed, 1),
            "p50_ms": round(q.get(0.5, 0.0) * 1e3, 1),
            "p99_ms": round(q.get(0.99, 0.0) * 1e3, 1),
            "drain_s": round(elapsed - EPISODE_SECONDS, 3),
            "max_state_level": max_level,
        }

    return asyncio.run(episode())


def test_overload_knee(results_sink):
    rows = []
    for frac in SWEEP:
        for control in (True, False):
            rows.append(run_episode(frac, control))

    table = AsciiTable([
        "offered/cap", "offered/s", "control", "goodput/s",
        "p50 (ms)", "p99 (ms)", "sheds", "ddl-exp", "drain (s)",
    ])
    for r in rows:
        table.add_row([
            r["offered_frac"], r["offered_per_s"],
            "on" if r["control"] else "off", r["goodput_per_s"],
            r["p50_ms"], r["p99_ms"], r["sheds"], r["deadline_expired"],
            r["drain_s"],
        ])
    emit("Overload knee: goodput and p99 vs offered load", table.render())
    results_sink("overload", rows, meta={
        "capacity_per_s": CAPACITY,
        "service_time_s": SERVICE_TIME_S,
        "gate_width": GATE_WIDTH,
        "deadline_ms": DEADLINE_MS,
        "episode_seconds": EPISODE_SECONDS,
        "seed": SEED,
    })

    by = {(r["offered_frac"], r["control"]): r for r in rows}

    for frac, control in by:
        r = by[(frac, control)]
        if frac <= 0.5:
            # Below the knee goodput tracks offered load and nothing sheds.
            assert r["goodput_per_s"] > 0.8 * r["offered_per_s"], r
            assert r["sheds"] == 0 and r["deadline_expired"] == 0, r
        # Nobody beats the spindle: goodput never exceeds capacity by more
        # than measurement slack.
        assert r["goodput_per_s"] < 1.25 * CAPACITY, r

    # Past the knee both modes saturate near capacity...
    for control in (True, False):
        deep = by[(1.8, control)]
        assert deep["goodput_per_s"] > 0.5 * CAPACITY, deep
    # ...but only the controlled daemon bounds the tail: it sheds load,
    # leaves healthy, and keeps p99 within a few deadlines, while the
    # uncontrolled queue's tail scales with the whole episode.
    controlled, uncontrolled = by[(1.8, True)], by[(1.8, False)]
    assert controlled["sheds"] + controlled["deadline_expired"] > 0, controlled
    assert controlled["max_state_level"] >= 1, controlled
    assert controlled["p99_ms"] <= 3 * DEADLINE_MS, controlled
    assert uncontrolled["p99_ms"] > controlled["p99_ms"], (
        controlled, uncontrolled,
    )
    assert uncontrolled["p99_ms"] > 3 * DEADLINE_MS, uncontrolled
