"""LRC — code-level vs schedule-level repair acceleration (related work).

The paper's §6 positions HD-PSR against locally repairable codes: LRC cuts
repair *I/O* by adding local parities (capacity cost), HD-PSR cuts repair
*time* by scheduling the same I/O better (no capacity cost). This bench
shows they are orthogonal and compose:

* RS(9,6) repairs read k = 6 survivors per stripe;
* LRC(6,2,2) local repairs read 3 survivors per stripe at a higher
  storage overhead (10/6 vs 9/6);
* on RS, HD-PSR-AP scheduling beats single-round FSR scheduling by ~40%.

Measured finding: on LRC the two accelerations *overlap* rather than
stack — 3-chunk local repairs already let ``c/3 = 4`` stripes through the
memory concurrently, so FSR-of-local-groups is close to PSR-optimal and
AP's sweep finds nothing further (its best P_a equals the group read
size). HD-PSR's headroom is precisely the gap between stripe width and
memory capacity, which LRC has already closed at the cost of capacity.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import ActivePreliminaryRepair, FullStripeRepair, execute_plan
from repro.ec.lrc import LRCCode
from repro.ec.encoder import RSCode
from repro.utils.tables import AsciiTable
from repro.workloads import disk_heterogeneous_transfer_times

from benchutil import emit

S = 600           # stripes to repair
C = 12            # memory chunks
NUM_DISKS = 36
RUNS = 3


def source_matrix(reads_per_stripe: int, run: int):
    workload, disk_ids = disk_heterogeneous_transfer_times(
        S, reads_per_stripe, NUM_DISKS, ros=0.10, slow_factor=4.0, seed=70 + run
    )
    return workload.L, disk_ids


def run_grid():
    rs = RSCode(9, 6)
    lrc = LRCCode(6, 2, 2)
    codes = [
        ("RS(9,6)", 6, rs.n / rs.k),
        ("LRC(6,2,2) local", lrc.repair_cost([0]), lrc.storage_overhead),
    ]
    rows = []
    for label, reads, overhead in codes:
        sums = {"fsr": 0.0, "hd-psr-ap": 0.0}
        for run in range(RUNS):
            L, disk_ids = source_matrix(reads, run)
            for algo in (FullStripeRepair(), ActivePreliminaryRepair()):
                plan = algo.build_plan(L, C)
                report = execute_plan(plan, L, C, disk_ids=disk_ids)
                sums[algo.name] += report.total_time
        rows.append({
            "code": label,
            "reads_per_stripe": reads,
            "storage_overhead": overhead,
            "fsr_time": sums["fsr"] / RUNS,
            "hdpsr_ap_time": sums["hd-psr-ap"] / RUNS,
            "hdpsr_reduction_pct": (1 - sums["hd-psr-ap"] / sums["fsr"]) * 100,
        })
    return rows


def test_lrc_vs_rs_composition(benchmark, results_sink):
    rows = benchmark.pedantic(run_grid, rounds=1, iterations=1)
    table = AsciiTable(
        ["code", "reads/stripe", "overhead (n/k)", "FSR-sched (s)",
         "HD-PSR-AP (s)", "HD-PSR gain"],
        title=f"LRC vs RS, FSR vs HD-PSR scheduling (s={S}, c={C})",
        float_fmt=".2f",
    )
    for r in rows:
        table.add_row([
            r["code"], r["reads_per_stripe"], r["storage_overhead"],
            r["fsr_time"], r["hdpsr_ap_time"], f"{r['hdpsr_reduction_pct']:.1f}%",
        ])
    emit("Related-work composition: LRC x HD-PSR", table.render())
    results_sink("lrc_comparison", rows)

    rs_row, lrc_row = rows
    # LRC's smaller reads make every schedule faster...
    assert lrc_row["fsr_time"] < rs_row["fsr_time"]
    # ...HD-PSR meaningfully accelerates the wide RS stripes...
    assert rs_row["hdpsr_reduction_pct"] > 15.0
    # ...while on 3-chunk local repairs it can at best match FSR (the
    # memory already fits several local groups at once).
    assert lrc_row["hdpsr_ap_time"] <= lrc_row["fsr_time"] * 1.02
    # and LRC pays in capacity.
    assert lrc_row["storage_overhead"] > rs_row["storage_overhead"]
