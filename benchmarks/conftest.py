"""Shared infrastructure for the paper-reproduction benchmarks.

Every benchmark prints the rows the corresponding paper figure plots and
appends them as JSON under ``benchmarks/results/`` so EXPERIMENTS.md can be
regenerated from artefacts.

Scale control: the paper repairs 100-200 GiB per disk. Set
``HDPSR_BENCH_SCALE=<divisor>`` to shrink every disk size by that factor
for quick runs (default 4; use 1 for full paper scale).
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any, Dict, List

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


def pytest_configure(config):
    RESULTS_DIR.mkdir(exist_ok=True)


@pytest.fixture(scope="session")
def scale() -> int:
    """Disk-size divisor; 1 = paper scale, larger = faster."""
    value = int(os.environ.get("HDPSR_BENCH_SCALE", "4"))
    if value < 1:
        raise ValueError("HDPSR_BENCH_SCALE must be >= 1")
    return value


@pytest.fixture(autouse=True)
def fresh_metrics_registry():
    """Give every benchmark its own metrics registry.

    The repair stack records into the ambient registry; scoping one per
    test keeps each experiment's Prometheus dump to that experiment's
    metrics instead of a process-cumulative blur.
    """
    from repro.obs import MetricsRegistry, use_registry

    with use_registry(MetricsRegistry()) as registry:
        yield registry


@pytest.fixture(scope="session")
def results_sink():
    """Callable: results_sink(experiment_id, rows) -> writes JSON artefact.

    Also drops a ``<id>.prom`` Prometheus dump of the run's metrics next
    to the JSON when any were recorded (see benchutil.write_metrics_dump).
    """
    from benchutil import write_metrics_dump

    def sink(experiment_id: str, rows: List[Dict[str, Any]], meta: Dict[str, Any] = None) -> Path:
        path = RESULTS_DIR / f"{experiment_id}.json"
        payload = {"experiment": experiment_id, "meta": meta or {}, "rows": rows}
        path.write_text(json.dumps(payload, indent=2, default=str))
        write_metrics_dump(experiment_id, RESULTS_DIR)
        return path

    return sink
