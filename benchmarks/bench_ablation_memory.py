"""ABL-MEM — memory-capacity sweep (design-choice ablation).

The paper fixes ``c`` implicitly via the testbed. This ablation sweeps
``c`` from "one FSR stripe" (k) to "plenty" (6k) to show where the
memory-competition effect lives: HD-PSR's edge over FSR should be largest
when memory is scarce relative to the stripe width and shrink as memory
grows (FSR can then run many stripes concurrently too).
"""

from __future__ import annotations

import pytest

from repro.core import ActivePreliminaryRepair, FullStripeRepair, repair_single_disk
from repro.utils.tables import AsciiTable
from repro.utils.units import GiB
from repro.workloads import build_exp_server

from benchutil import emit

N, K = 9, 6
C_MULTIPLES = [1, 2, 3, 4, 6]
RUNS = 3


def run_sweep(scale: int):
    rows = []
    for mult in C_MULTIPLES:
        c = mult * K
        sums = {"fsr": 0.0, "hd-psr-ap": 0.0}
        for run in range(RUNS):
            for factory in (FullStripeRepair, ActivePreliminaryRepair):
                server = build_exp_server(
                    n=N, k=K, disk_size=(100 * GiB) // scale, chunk_size="64MiB",
                    num_disks=36, memory_chunks=c, ros=0.10, slow_factor=4.0,
                    seed=880 + run, placement="random",
                )
                server.fail_disk(0)
                out = repair_single_disk(server, factory(), 0)
                sums[out.algorithm] += out.transfer_time
        rows.append({
            "c": c,
            "c_over_k": mult,
            "fsr": sums["fsr"] / RUNS,
            "hd-psr-ap": sums["hd-psr-ap"] / RUNS,
            "reduction_pct": (1 - sums["hd-psr-ap"] / sums["fsr"]) * 100,
        })
    return rows


def test_ablation_memory_capacity(benchmark, scale, results_sink):
    rows = benchmark.pedantic(run_sweep, args=(scale,), rounds=1, iterations=1)
    table = AsciiTable(
        ["c (chunks)", "c/k", "FSR (s)", "HD-PSR-AP (s)", "reduction"],
        title=f"ABL-MEM: memory sweep, RS({N},{K})",
        float_fmt=".2f",
    )
    for r in rows:
        table.add_row([r["c"], r["c_over_k"], r["fsr"], r["hd-psr-ap"],
                       f"{r['reduction_pct']:.1f}%"])
    emit("Ablation: memory capacity", table.render())
    results_sink("ablation_memory", rows, meta={"scale": scale})

    # both schemes speed up with more memory; AP never loses
    assert rows[0]["fsr"] >= rows[-1]["fsr"]
    for r in rows:
        assert r["hd-psr-ap"] <= r["fsr"] * 1.05
