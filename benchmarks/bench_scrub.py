"""SCRUB — silent-corruption detection latency and foreground politeness.

Repo extension: the online scrub plane (PR: scrubber + bitrot injection +
quarantine-and-read-repair) makes two quantitative promises this chart
pins down:

* **Detection latency tracks the scrub rate.** Corruption seeded beneath
  the checksum layer is invisible until a verify touches it, so the time
  to quarantine is bounded by the cycle time — and the cycle time is set
  by ``interval_ms``, the inter-verify pause. Sweeping the interval shows
  the knob working: an aggressive scrubber finds every rotted chunk in a
  fraction of the time a lazy one needs, and each find ends in a
  byte-identical read-repair either way.

* **Scrub never mugs the foreground.** Every verify takes a *background*
  gate slot, so a diurnal open-loop read workload sees (nearly) the same
  tail latency whether the scrubber is hammering the store at full rate
  or switched off entirely. The p99 comparison on/off is the politeness
  assertion.

Latency is measured from the *scheduled* arrival (no coordinated
omission), and the scrub-on episode must also complete at least one full
verify cycle — politeness that comes from not scrubbing would be cheating.
"""

from __future__ import annotations

import asyncio
import time
from typing import Dict, List

from repro.core import ALGORITHMS
from repro.ec.stripe import ChunkId
from repro.faults import apply_corruption
from repro.faults.spec import FaultEvent
from repro.hdss.server import HDSSConfig, HighDensityStorageServer
from repro.hdss.store import InMemoryChunkStore, ShardedChunkStore
from repro.obs.quantiles import QuantileSketch
from repro.service.chaos_overload import SlowStore
from repro.service.netserver import ServiceDaemon
from repro.service.scrub import ScrubConfig, Scrubber
from repro.service.service import RepairService, ServiceConfig
from repro.utils.tables import AsciiTable
from repro.workloads.arrivals import diurnal_arrivals

from benchutil import emit

SEED = 23
STRIPES = 10
CORRUPTIONS = 4

#: Inter-verify pause sweep: the scrub-rate knob, fast to lazy.
INTERVAL_SWEEP_MS = [0.0, 2.0, 8.0]

SERVICE_TIME_S = 0.002
GATE_WIDTH = 2
READ_RATE = 120.0
EPISODE_SECONDS = 1.2
DIURNAL_PERIOD_S = 0.6


def _make_service(root, store=None) -> RepairService:
    if store is None:
        store = ShardedChunkStore.from_root(
            root / "store", num_shards=2, durable=False
        )
    server = HighDensityStorageServer(
        HDSSConfig(
            num_disks=12, n=5, k=3, chunk_size=1024, memory_chunks=16,
            spares=3, seed=SEED, placement="rotating",
        ),
        store=store,
    )
    server.provision_stripes(STRIPES, with_data=True)
    return RepairService(
        server, ALGORITHMS["hd-psr-ap"](),
        ServiceConfig(
            max_concurrent_stripes=2, per_disk_reads=GATE_WIDTH,
            durable_journal=False,
        ),
    )


def _seed_corruption(service) -> List["tuple[int, ChunkId, bytes]"]:
    """Rot ``CORRUPTIONS`` chunks on distinct disks; returns the victims
    with their pristine payloads."""
    victims = []
    used_disks = set()
    layout = service.server.layout
    for si in range(len(layout)):
        stripe = layout[si]
        for shard in range(stripe.k):
            disk = stripe.disks[shard]
            if disk in used_disks:
                continue
            used_disks.add(disk)
            cid = ChunkId(si, shard)
            pristine = service.server.store.get(disk, cid).tobytes()
            apply_corruption(
                service.server.store,
                FaultEvent(at=0.0, kind="bitrot", disk=disk, stripe=si, shard=shard),
            )
            victims.append((disk, cid, pristine))
            break
        if len(victims) == CORRUPTIONS:
            break
    return victims


def run_detection_episode(tmp_path, interval_ms: float) -> Dict[str, object]:
    """Seed corruption, scrub at one rate, time full detection + repair."""

    async def episode() -> Dict[str, object]:
        service = _make_service(tmp_path / f"det-{interval_ms}")
        victims = _seed_corruption(service)
        scrub = Scrubber(
            service,
            ScrubConfig(interval_ms=interval_ms, cycle_pause_s=0.01,
                        park_poll_s=0.01),
        )
        seeded = time.monotonic()
        scrub.start()
        deadline = seeded + 120.0
        while scrub.corrupt_found < len(victims):
            if time.monotonic() > deadline:
                break
            await asyncio.sleep(0.002)
        detect_all_s = time.monotonic() - seeded
        # let in-flight read-repairs land, then verify byte identity
        while scrub.repaired + scrub.repair_failures < scrub.corrupt_found:
            if time.monotonic() > deadline:
                break
            await asyncio.sleep(0.002)
        await scrub.wait_cycles(1, timeout=60.0)
        await scrub.stop()
        repaired_identical = all(
            service.server.store.get(disk, cid).tobytes() == pristine
            for disk, cid, pristine in victims
        )
        await service.close()
        return {
            "interval_ms": interval_ms,
            "corruptions": len(victims),
            "detected": scrub.corrupt_found,
            "repaired": scrub.repaired,
            "repaired_identical": repaired_identical,
            "detect_all_s": round(detect_all_s, 3),
            "cycle_s": round(scrub.last_cycle_seconds or 0.0, 3),
            "chunks_verified": scrub.chunks_verified,
        }

    return asyncio.run(episode())


def run_foreground_episode(tmp_path, scrub_on: bool) -> Dict[str, object]:
    """Diurnal open-loop reads against the daemon, scrub on vs off."""

    async def episode() -> Dict[str, object]:
        store = ShardedChunkStore(
            [SlowStore(InMemoryChunkStore(), SERVICE_TIME_S) for _ in range(2)]
        )
        service = _make_service(tmp_path / f"fg-{scrub_on}", store=store)
        scrub = None
        if scrub_on:
            scrub = Scrubber(
                service,
                ScrubConfig(interval_ms=0.0, cycle_pause_s=0.01,
                            park_poll_s=0.01),
            )
        daemon = ServiceDaemon(service, scrubber=scrub)
        if scrub is not None:
            scrub.start()

        schedule = diurnal_arrivals(
            READ_RATE, EPISODE_SECONDS, period=DIURNAL_PERIOD_S,
            amplitude=0.6, seed=SEED,
        )
        latencies = QuantileSketch((0.5, 0.9, 0.99))
        errors = 0

        async def fire(ordinal: int) -> None:
            nonlocal errors
            stripe = ordinal % STRIPES
            t0 = time.monotonic()
            reply = await daemon.handle_request(
                {"op": "read", "stripe": stripe, "shard": ordinal % 3}
            )
            if reply.get("ok"):
                latencies.observe(time.monotonic() - t0)
            else:
                errors += 1

        started = time.monotonic()
        tasks: List[asyncio.Task] = []
        for i, offset in enumerate(schedule.times):
            delay = started + float(offset) - time.monotonic()
            if delay > 0:
                await asyncio.sleep(delay)
            tasks.append(asyncio.create_task(fire(i)))
        await asyncio.gather(*tasks)
        cycles = 0
        if scrub is not None:
            # politeness must coexist with progress, not replace it
            await scrub.wait_cycles(1, timeout=60.0)
            cycles = scrub.cycles_completed
            await scrub.stop()
        await service.close()

        q = latencies.quantiles() if latencies.count else {}
        return {
            "scrub": scrub_on,
            "offered": schedule.count,
            "completed": latencies.count,
            "errors": errors,
            "p50_ms": round(q.get(0.5, 0.0) * 1e3, 1),
            "p99_ms": round(q.get(0.99, 0.0) * 1e3, 1),
            "scrub_cycles": cycles,
            "chunks_verified": scrub.chunks_verified if scrub else 0,
        }

    return asyncio.run(episode())


def test_scrub_detection_and_politeness(results_sink, tmp_path):
    detection = [
        run_detection_episode(tmp_path, ms) for ms in INTERVAL_SWEEP_MS
    ]
    foreground = [
        run_foreground_episode(tmp_path, scrub_on) for scrub_on in (False, True)
    ]

    table = AsciiTable([
        "interval (ms)", "corruptions", "detected", "repaired",
        "detect-all (s)", "cycle (s)", "verified",
    ])
    for r in detection:
        table.add_row([
            r["interval_ms"], r["corruptions"], r["detected"], r["repaired"],
            r["detect_all_s"], r["cycle_s"], r["chunks_verified"],
        ])
    emit("Scrub detection latency vs scrub rate", table.render())

    fg_table = AsciiTable([
        "scrub", "offered", "completed", "errors", "p50 (ms)", "p99 (ms)",
        "cycles", "verified",
    ])
    for r in foreground:
        fg_table.add_row([
            "on" if r["scrub"] else "off", r["offered"], r["completed"],
            r["errors"], r["p50_ms"], r["p99_ms"], r["scrub_cycles"],
            r["chunks_verified"],
        ])
    emit("Foreground p99 under diurnal arrivals, scrub on vs off",
         fg_table.render())

    rows = [dict(kind="detection", **r) for r in detection]
    rows += [dict(kind="foreground", **r) for r in foreground]
    results_sink("scrub", rows, meta={
        "stripes": STRIPES,
        "corruptions": CORRUPTIONS,
        "interval_sweep_ms": INTERVAL_SWEEP_MS,
        "service_time_s": SERVICE_TIME_S,
        "gate_width": GATE_WIDTH,
        "read_rate_per_s": READ_RATE,
        "episode_seconds": EPISODE_SECONDS,
        "diurnal_period_s": DIURNAL_PERIOD_S,
        "seed": SEED,
    })

    # Every seeded corruption is detected and repaired byte-identically,
    # at every scrub rate.
    for r in detection:
        assert r["detected"] == r["corruptions"], r
        assert r["repaired"] == r["corruptions"], r
        assert r["repaired_identical"], r
    # The rate knob works: the aggressive scrubber detects everything in
    # less time than the lazy one (endpoints of the sweep).
    assert detection[0]["detect_all_s"] < detection[-1]["detect_all_s"], detection
    assert detection[0]["cycle_s"] < detection[-1]["cycle_s"], detection

    off, on = foreground
    assert off["errors"] == 0 and on["errors"] == 0, foreground
    assert on["scrub_cycles"] >= 1, on  # politeness with progress
    # Background gate slots keep the foreground tail comparable: allow
    # generous slack for CI noise, but an order-of-magnitude regression
    # (scrub hogging spindles) fails.
    assert on["p99_ms"] <= max(5.0 * off["p99_ms"], 60.0), foreground
