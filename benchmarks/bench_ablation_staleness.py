"""ABL-STALE — active probing vs passive timers under probe staleness.

The paper's case for HD-PSR-PA (§4.3): active schemes spend resources
probing *and* act on a snapshot that can go stale. Here disk speeds drift
between probe time and repair time (per-disk log-normal drift + fresh slow
episodes the probe never saw); active schemes plan on the stale matrix and
execute against reality, while PA's in-band timers see reality directly.

Expected: with fresh probes the active schemes lead; as staleness grows
their edge erodes while PA degrades gracefully.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    ActivePreliminaryRepair,
    ActiveSlowerFirstRepair,
    FullStripeRepair,
    PassiveRepair,
    RepairContext,
    execute_plan,
)
from repro.utils.tables import AsciiTable
from repro.workloads import disk_heterogeneous_transfer_times
from repro.workloads.staleness import StalenessModel, drift_transfer_times

from benchutil import emit

S, K, C = 400, 6, 12
NUM_DISKS = 36
RUNS = 3

SCENARIOS = [
    ("fresh", StalenessModel()),
    ("mild drift", StalenessModel(drift_sigma=0.15)),
    ("drift + episodes", StalenessModel(drift_sigma=0.15, episode_prob=0.10)),
    ("heavy churn", StalenessModel(drift_sigma=0.30, episode_prob=0.20, recovery_prob=0.5)),
]


def run_grid():
    rows = []
    for label, model in SCENARIOS:
        sums = {"fsr": 0.0, "hd-psr-ap": 0.0, "hd-psr-as": 0.0, "hd-psr-pa": 0.0}
        for run in range(RUNS):
            workload, disk_ids = disk_heterogeneous_transfer_times(
                S, K, NUM_DISKS, ros=0.10, slow_factor=4.0, seed=100 + run
            )
            L_probed = workload.L
            outcome = drift_transfer_times(L_probed, disk_ids, model, seed=300 + run)
            L_actual = outcome.L_actual
            for algo in (FullStripeRepair(), ActivePreliminaryRepair(),
                         ActiveSlowerFirstRepair(), PassiveRepair()):
                ctx = RepairContext(disk_ids=disk_ids)
                # Active schemes plan on the STALE matrix; FSR needs none;
                # PA's timers run on the actual times (adaptive build).
                L_plan = L_actual if algo.name in ("fsr", "hd-psr-pa") else L_probed
                plan = algo.build_plan(L_plan, C, context=ctx)
                report = execute_plan(plan, L_actual, C, disk_ids=disk_ids)
                sums[algo.name] += report.total_time
        fsr = sums["fsr"] / RUNS
        rows.append({
            "scenario": label,
            "fsr": fsr,
            "hd-psr-ap": sums["hd-psr-ap"] / RUNS,
            "hd-psr-as": sums["hd-psr-as"] / RUNS,
            "hd-psr-pa": sums["hd-psr-pa"] / RUNS,
            "ap_reduction_pct": (1 - sums["hd-psr-ap"] / sums["fsr"]) * 100,
            "as_reduction_pct": (1 - sums["hd-psr-as"] / sums["fsr"]) * 100,
            "pa_reduction_pct": (1 - sums["hd-psr-pa"] / sums["fsr"]) * 100,
        })
    return rows


def test_ablation_probe_staleness(benchmark, results_sink):
    rows = benchmark.pedantic(run_grid, rounds=1, iterations=1)
    table = AsciiTable(
        ["scenario", "FSR", "AP", "AS", "PA", "AP red.", "AS red.", "PA red."],
        title=f"ABL-STALE: probe staleness (s={S}, k={K}, c={C})",
        float_fmt=".1f",
    )
    for r in rows:
        table.add_row([
            r["scenario"], r["fsr"], r["hd-psr-ap"], r["hd-psr-as"], r["hd-psr-pa"],
            f"{r['ap_reduction_pct']:.1f}%", f"{r['as_reduction_pct']:.1f}%",
            f"{r['pa_reduction_pct']:.1f}%",
        ])
    emit("Ablation: probe staleness (the §4.3 motivation)", table.render())
    results_sink("ablation_staleness", rows)

    fresh = rows[0]
    churn = rows[-1]
    # with fresh probes, every scheme beats FSR comfortably
    assert fresh["ap_reduction_pct"] > 10.0
    assert fresh["pa_reduction_pct"] > 10.0
    # PA's advantage holds up under churn at least as well as AP's
    assert churn["pa_reduction_pct"] >= churn["ap_reduction_pct"] - 5.0
