"""FIG4A / FIG4B — the Observation-2/3 curves (paper Figure 4).

Exact paper parameters: s = 100 stripes, k = 12, memory c = 12 chunks,
chunk transfer times ~ N(mean 2, variance 4), ROS in {2, 5, 8, 10}%.

* Figure 4(a): ACWT vs P_a, one series per ROS — ACWT must rise with P_a
  and with ROS.
* Figure 4(b): total repair rounds vs P_r — TR must rise with P_r.
"""

from __future__ import annotations

import pytest

from repro.core.analysis import acwt_curve_vs_pa, rounds_curve_vs_pr
from repro.utils.tables import AsciiTable
from repro.workloads import normal_transfer_times

from benchutil import emit

S, K, C = 100, 12, 12
ROS_GRID = [0.02, 0.05, 0.08, 0.10]
PA_VALUES = [1, 2, 3, 4, 6, 12]


def compute_fig4a():
    curves = {}
    for ros in ROS_GRID:
        L = normal_transfer_times(S, K, mean=2.0, variance=4.0, ros=ros, seed=1).L
        curves[ros] = acwt_curve_vs_pa(L, C, pa_values=PA_VALUES)
    return curves


def test_fig4a_acwt_vs_pa(benchmark, results_sink):
    curves = benchmark.pedantic(compute_fig4a, rounds=1, iterations=1)

    table = AsciiTable(
        ["P_a"] + [f"ROS={ros:.0%}" for ros in ROS_GRID],
        title=f"FIG4A: ACWT vs P_a (s={S}, k={K}, c={C}, N(2,4))",
        float_fmt=".4f",
    )
    rows = []
    for pa in PA_VALUES:
        table.add_row([pa] + [curves[ros][pa] for ros in ROS_GRID])
        rows.append({"pa": pa, **{f"ros_{ros}": curves[ros][pa] for ros in ROS_GRID}})
    emit("Figure 4(a) — Observation 2", table.render())
    results_sink("fig4a", rows, meta={"s": S, "k": K, "c": C})

    # Shape assertions from the paper:
    for ros in ROS_GRID:
        assert curves[ros][1] <= curves[ros][12], "ACWT must rise with P_a"
    assert curves[0.02][12] < curves[0.10][12], "ACWT must rise with ROS"


def test_fig4b_rounds_vs_pr(benchmark, results_sink):
    curve = benchmark.pedantic(
        rounds_curve_vs_pr, args=(K, C), kwargs={"pr_values": [1, 2, 3, 4, 6, 12]},
        rounds=1, iterations=1,
    )
    table = AsciiTable(["P_r", "P_a = ceil(c/P_r)", "TR = ceil(k/P_a)"],
                       title=f"FIG4B: total repair rounds vs P_r (k={K}, c={C})")
    rows = []
    for pr, tr in curve.items():
        pa = -(-C // pr)
        table.add_row([pr, pa, tr])
        rows.append({"pr": pr, "pa": pa, "tr": tr})
    emit("Figure 4(b) — Observation 3", table.render())
    results_sink("fig4b", rows, meta={"k": K, "c": C})

    values = list(curve.values())
    assert values == sorted(values), "TR must be non-decreasing in P_r"
