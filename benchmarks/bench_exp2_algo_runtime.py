"""EXP2 — average algorithm running time vs (n, k) (paper Figure 7(d-f)).

Measures the wall-clock cost of *deriving P_a* for HD-PSR-AP and HD-PSR-AS
across the paper's grid: (n, k) in {(6,4), (9,6), (14,10)}, stripe counts
from failed-disk sizes 100/150/200 GiB at 64 MiB chunks. HD-PSR-PA derives
nothing up front, so its running time is 0 by construction (not measured).

Paper shapes:
* AP and AS differ by orders of magnitude (paper: AS ~98% cheaper);
* both grow with the number of stripes.
"""

from __future__ import annotations

import pytest

from repro.core import ActivePreliminaryRepair, ActiveSlowerFirstRepair
from repro.utils.tables import AsciiTable
from repro.utils.units import GiB, MiB
from repro.workloads import PAPER_CODES, PAPER_DISK_SIZES, normal_transfer_times

from benchutil import emit

RESULTS = {}


def stripe_count(disk_size: int, scale: int) -> int:
    return max(1, (disk_size // scale) // (64 * MiB))


def _mk_inputs(k, s):
    w = normal_transfer_times(s, k, mean=2.0, variance=4.0, ros=0.08, seed=3)
    return w.L


@pytest.mark.parametrize("nk", PAPER_CODES, ids=lambda nk: f"rs{nk[0]}_{nk[1]}")
@pytest.mark.parametrize("disk_size", PAPER_DISK_SIZES, ids=lambda d: f"{d // GiB}gib")
class TestSelectionRuntime:
    def test_ap_select(self, benchmark, nk, disk_size, scale):
        n, k = nk
        s = stripe_count(disk_size, scale)
        L = _mk_inputs(k, s)
        algo = ActivePreliminaryRepair()
        benchmark(algo.select, L, 2 * k)
        RESULTS[("ap", nk, disk_size)] = benchmark.stats.stats.median

    def test_as_select(self, benchmark, nk, disk_size, scale):
        n, k = nk
        s = stripe_count(disk_size, scale)
        L = _mk_inputs(k, s)
        algo = ActiveSlowerFirstRepair()
        threshold = 2.0 * float(L.mean())
        benchmark(algo.select, L, 2 * k, threshold)
        RESULTS[("as", nk, disk_size)] = benchmark.stats.stats.median


def test_exp2_report(benchmark, scale, results_sink):
    """Aggregate the parametrised runs into the Figure 7(d-f) table."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)  # keep under --benchmark-only
    if not RESULTS:
        pytest.skip("selection benchmarks did not run")
    table = AsciiTable(
        ["(n,k)", "disk", "stripes", "AP (ms)", "AS (ms)", "AS saving"],
        title=f"EXP2: P_a-selection running time (scale 1/{scale})",
        float_fmt=".4f",
    )
    rows = []
    for nk in PAPER_CODES:
        for disk_size in PAPER_DISK_SIZES:
            ap = RESULTS.get(("ap", nk, disk_size))
            as_ = RESULTS.get(("as", nk, disk_size))
            if ap is None or as_ is None:
                continue
            s = stripe_count(disk_size, scale)
            saving = (1 - as_ / ap) * 100
            table.add_row(
                [f"({nk[0]},{nk[1]})", f"{disk_size // GiB}GiB/{scale}", s,
                 ap * 1e3, as_ * 1e3, f"{saving:.1f}%"]
            )
            rows.append({
                "n": nk[0], "k": nk[1], "stripes": s,
                "ap_seconds": ap, "as_seconds": as_, "as_saving_pct": saving,
            })
    emit("Figure 7(d-f) — Experiment 2", table.render())
    results_sink("exp2", rows, meta={"scale": scale})

    # Paper shape: AS is dramatically cheaper than AP (the paper reports
    # ~98% at full scale; the gap widens with s, so at reduced scales we
    # only require a clear majority saving on the median timings).
    assert all(r["as_seconds"] < r["ap_seconds"] for r in rows)
    mean_saving = sum(r["as_saving_pct"] for r in rows) / len(rows)
    assert mean_saving > 30.0
