"""EXP4 — algorithm running time vs chunk size (paper Figure 8(b)).

Fixed 200 GiB (scaled) of data to repair; chunk size varies 8..256 MiB, so
the stripe count s varies inversely. Measures P_a-selection wall-clock for
HD-PSR-AP and HD-PSR-AS.

Paper shape: running time *decreases* as chunk size grows (fewer stripes),
and AS stays far below AP at every size.
"""

from __future__ import annotations

import pytest

from repro.core import ActivePreliminaryRepair, ActiveSlowerFirstRepair
from repro.utils.tables import AsciiTable
from repro.utils.units import GiB, MiB
from repro.workloads import normal_transfer_times

from benchutil import emit

CHUNK_SIZES_MIB = [8, 16, 32, 64, 128, 256]
K = 6
DISK_SIZE = 200 * GiB

RESULTS = {}


def stripes_at(chunk_mib: int, scale: int) -> int:
    return max(1, (DISK_SIZE // scale) // (chunk_mib * MiB))


@pytest.mark.parametrize("chunk_mib", CHUNK_SIZES_MIB, ids=lambda c: f"{c}mib")
class TestSelectionRuntimeVsChunk:
    def test_ap_select(self, benchmark, chunk_mib, scale):
        s = stripes_at(chunk_mib, scale)
        L = normal_transfer_times(s, K, ros=0.08, seed=5).L
        benchmark(ActivePreliminaryRepair().select, L, 2 * K)
        RESULTS[("ap", chunk_mib)] = benchmark.stats.stats.median

    def test_as_select(self, benchmark, chunk_mib, scale):
        s = stripes_at(chunk_mib, scale)
        L = normal_transfer_times(s, K, ros=0.08, seed=5).L
        threshold = 2.0 * float(L.mean())
        benchmark(ActiveSlowerFirstRepair().select, L, 2 * K, threshold)
        RESULTS[("as", chunk_mib)] = benchmark.stats.stats.median


def test_exp4_report(benchmark, scale, results_sink):
    """Aggregate the parametrised runs into the Figure 8(b) table."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)  # keep under --benchmark-only
    if not RESULTS:
        pytest.skip("selection benchmarks did not run")
    table = AsciiTable(
        ["chunk", "stripes", "AP (ms)", "AS (ms)"],
        title=f"EXP4: selection running time vs chunk size (k={K}, scale 1/{scale})",
        float_fmt=".4f",
    )
    rows = []
    for chunk_mib in CHUNK_SIZES_MIB:
        ap = RESULTS.get(("ap", chunk_mib))
        as_ = RESULTS.get(("as", chunk_mib))
        if ap is None or as_ is None:
            continue
        s = stripes_at(chunk_mib, scale)
        table.add_row([f"{chunk_mib}MiB", s, ap * 1e3, as_ * 1e3])
        rows.append({"chunk_mib": chunk_mib, "stripes": s,
                     "ap_seconds": ap, "as_seconds": as_})
    emit("Figure 8(b) — Experiment 4", table.render())
    results_sink("exp4", rows, meta={"scale": scale, "k": K})

    # Paper shapes: cost decreases with chunk size; AS cheaper than AP.
    assert rows[0]["ap_seconds"] > rows[-1]["ap_seconds"]
    assert all(r["as_seconds"] < r["ap_seconds"] for r in rows)
