"""ABL-MODEL — fidelity of HD-PSR-AP's analytic transfer-time model.

Algorithm 1 predicts the total transfer time T with the sorted
sliding-window (interval) model. This ablation compares, over a grid of
workloads, three numbers for the P_a that AP selects:

* the analytic prediction (the twice dimensionality reduction);
* exact interval-model execution of the emitted plan (must match the
  prediction to float precision — they are the same model);
* exact slot-model execution, with and without charging accumulator slots
  (the executor realities the model abstracts away).

Small prediction error is what justifies using the cheap model inside
AP's O(k)-candidate sweep.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import ActivePreliminaryRepair, ExecutionOptions, execute_plan
from repro.utils.tables import AsciiTable
from repro.workloads import normal_transfer_times

from benchutil import emit

GRID = [
    # (s, k, c, ros)
    (200, 6, 12, 0.05),
    (200, 6, 12, 0.10),
    (400, 10, 20, 0.05),
    (400, 10, 20, 0.10),
    (100, 12, 12, 0.08),
]


def run_grid():
    rows = []
    for (s, k, c, ros) in GRID:
        L = normal_transfer_times(s, k, ros=ros, slow_factor=4.0, seed=31).L
        algo = ActivePreliminaryRepair()
        plan = algo.build_plan(L, c)
        predicted = plan.metadata["predicted_T"]
        interval = execute_plan(plan, L, c, options=ExecutionOptions(model="interval")).total_time
        slot = execute_plan(plan, L, c, options=ExecutionOptions(model="slot")).total_time
        slot_acc = execute_plan(
            plan, L, c,
            options=ExecutionOptions(model="slot", charge_accumulators=True),
        ).total_time
        rows.append({
            "s": s, "k": k, "c": c, "ros": ros, "pa": plan.pa,
            "predicted": predicted,
            "interval": interval,
            "slot": slot,
            "slot_with_accumulators": slot_acc,
            "slot_error_pct": (slot / predicted - 1) * 100,
            "accumulator_penalty_pct": (slot_acc / slot - 1) * 100,
        })
    return rows


def test_ablation_ap_model_fidelity(benchmark, results_sink):
    rows = benchmark.pedantic(run_grid, rounds=1, iterations=1)
    table = AsciiTable(
        ["s", "k", "c", "ROS", "P_a", "predicted T", "interval T", "slot T",
         "slot+acc T", "slot err", "acc penalty"],
        title="ABL-MODEL: AP analytic model vs exact executors",
        float_fmt=".2f",
    )
    for r in rows:
        table.add_row([
            r["s"], r["k"], r["c"], f"{r['ros']:.0%}", r["pa"],
            r["predicted"], r["interval"], r["slot"], r["slot_with_accumulators"],
            f"{r['slot_error_pct']:+.1f}%", f"{r['accumulator_penalty_pct']:+.1f}%",
        ])
    emit("Ablation: AP model fidelity", table.render())
    results_sink("ablation_ap_model", rows)

    for r in rows:
        # the interval executor IS the analytic model
        assert r["interval"] == pytest.approx(r["predicted"], rel=1e-9)
        # the slot model deviates only modestly
        assert abs(r["slot_error_pct"]) < 15.0
        # charging accumulators can only slow things down
        assert r["slot_with_accumulators"] >= r["slot"] - 1e-9
