"""ABL-SLICE — slice-level pipelining (RP-style) vs chunk-level HD-PSR.

Repair Pipelining (RP, paper §6) streams chunks as sub-slices so buffers
hold slices instead of chunks, effectively dissolving the memory
constraint. Two regimes, both measured with per-disk service contention
(a disk serves one request at a time):

* zero per-slice cost — finer slicing keeps helping until the busiest
  disk's service capacity becomes the floor;
* realistic positioning cost — every slice consumes disk time, so total
  disk work grows with ``v`` and an interior optimum appears; extreme
  slicing loses to moderate slicing.

This quantifies why a single-server design prefers chunk-granular partial
*stripe* rounds (HD-PSR) over distributed-style slice streaming: inside
one chassis the slices all hit the same spindles.
"""

from __future__ import annotations

import pytest

from repro.core import ActivePreliminaryRepair, ExecutionOptions, execute_plan
from repro.core.sliced import simulate_sliced_repair
from repro.utils.tables import AsciiTable
from repro.workloads import disk_heterogeneous_transfer_times

from benchutil import emit

S, K, C = 200, 6, 12
NUM_DISKS = 36
SLICE_FACTORS = [1, 2, 4, 8, 16]
#: Per-slice positioning cost as a fraction of the mean chunk time.
OVERHEADS = [0.0, 0.05, 0.15]


def run_grid():
    workload, disk_ids = disk_heterogeneous_transfer_times(
        S, K, NUM_DISKS, ros=0.10, slow_factor=4.0, seed=17
    )
    L = workload.L
    mean_chunk = float(L.mean())

    ap = ActivePreliminaryRepair()
    plan = ap.build_plan(L, C)
    hdpsr_time = execute_plan(
        plan, L, C, disk_ids=disk_ids,
        options=ExecutionOptions(disk_contention=True),
    ).total_time

    rows = []
    for ovh_frac in OVERHEADS:
        overhead = ovh_frac * mean_chunk
        for v in SLICE_FACTORS:
            rep = simulate_sliced_repair(
                L, c=C, slice_factor=v, pa=plan.pa or 2,
                per_slice_overhead=overhead,
                disk_ids=disk_ids, disk_contention=True,
            )
            rows.append({
                "overhead_frac": ovh_frac,
                "slice_factor": v,
                "total_time": rep.total_time,
                "acwt": rep.acwt,
                "hdpsr_ap_time": hdpsr_time,
            })
    return rows


def test_ablation_slice_factor(benchmark, results_sink):
    rows = benchmark.pedantic(run_grid, rounds=1, iterations=1)
    table = AsciiTable(
        ["per-slice cost", "v", "sliced repair (s)", "ACWT", "chunk-level AP (s)"],
        title=f"ABL-SLICE: slice-factor sweep with disk contention "
              f"(s={S}, k={K}, c={C}, {NUM_DISKS} disks)",
        float_fmt=".2f",
    )
    for r in rows:
        table.add_row([
            f"{r['overhead_frac']:.0%} of chunk", r["slice_factor"],
            r["total_time"], r["acwt"], r["hdpsr_ap_time"],
        ])
    emit("Ablation: slice-level pipelining", table.render())
    results_sink("ablation_slicing", rows)

    by = {(r["overhead_frac"], r["slice_factor"]): r["total_time"] for r in rows}
    # free slicing: no worse with more slices
    assert by[(0.0, 16)] <= by[(0.0, 1)] * 1.02
    # costly slicing: extreme v pays for its requests on the disks
    assert by[(0.15, 16)] > by[(0.15, 2)] * 0.98
    assert by[(0.15, 16)] > by[(0.0, 16)]
