"""ABL-THRESH — slow-classification threshold sensitivity (AS and PA).

Both HD-PSR-AS and HD-PSR-PA hinge on a "this read was slow" threshold the
paper never pins down. This ablation sweeps the threshold ratio (multiple
of the median chunk time) and reports each scheme's repair time: too low
and everything is "slow" (degenerates towards serial PSR), too high and
nothing is (degenerates to FSR). A broad flat basin means the schemes are
robust to the choice.
"""

from __future__ import annotations

import pytest

from repro.core import (
    ActiveSlowerFirstRepair,
    FullStripeRepair,
    PassiveRepair,
    RepairContext,
    repair_single_disk,
)
from repro.utils.tables import AsciiTable
from repro.utils.units import GiB
from repro.workloads import build_exp_server

from benchutil import emit

N, K = 9, 6
RATIOS = [1.2, 1.5, 2.0, 3.0, 5.0]
RUNS = 3


def run_sweep(scale: int):
    rows = []
    fsr_sum = 0.0
    for run in range(RUNS):
        server = build_exp_server(
            n=N, k=K, disk_size=(100 * GiB) // scale, chunk_size="64MiB",
            num_disks=36, memory_chunks=2 * K, ros=0.10, slow_factor=4.0,
            seed=660 + run, placement="random",
        )
        server.fail_disk(0)
        fsr_sum += repair_single_disk(server, FullStripeRepair(), 0).transfer_time
    fsr = fsr_sum / RUNS

    for ratio in RATIOS:
        sums = {"hd-psr-as": 0.0, "hd-psr-pa": 0.0}
        for run in range(RUNS):
            for factory in (ActiveSlowerFirstRepair, PassiveRepair):
                server = build_exp_server(
                    n=N, k=K, disk_size=(100 * GiB) // scale, chunk_size="64MiB",
                    num_disks=36, memory_chunks=2 * K, ros=0.10, slow_factor=4.0,
                    seed=660 + run, placement="random",
                )
                server.fail_disk(0)
                ctx = RepairContext(slow_threshold_ratio=ratio)
                out = repair_single_disk(server, factory(), 0, context=ctx)
                sums[out.algorithm] += out.transfer_time
        rows.append({
            "threshold_ratio": ratio,
            "fsr": fsr,
            "hd-psr-as": sums["hd-psr-as"] / RUNS,
            "hd-psr-pa": sums["hd-psr-pa"] / RUNS,
            "as_reduction_pct": (1 - sums["hd-psr-as"] / RUNS / fsr) * 100,
            "pa_reduction_pct": (1 - sums["hd-psr-pa"] / RUNS / fsr) * 100,
        })
    return rows


def test_ablation_threshold_sensitivity(benchmark, scale, results_sink):
    rows = benchmark.pedantic(run_sweep, args=(scale,), rounds=1, iterations=1)
    table = AsciiTable(
        ["ratio x median", "FSR (s)", "AS (s)", "PA (s)", "AS red.", "PA red."],
        title=f"ABL-THRESH: slow threshold sweep, RS({N},{K}), 4x slow disks",
        float_fmt=".2f",
    )
    for r in rows:
        table.add_row([
            r["threshold_ratio"], r["fsr"], r["hd-psr-as"], r["hd-psr-pa"],
            f"{r['as_reduction_pct']:.1f}%", f"{r['pa_reduction_pct']:.1f}%",
        ])
    emit("Ablation: slow threshold", table.render())
    results_sink("ablation_threshold", rows, meta={"scale": scale})

    # thresholds that separate the 4x slow tier (anything in (1, 4)) work
    workable = [r for r in rows if r["threshold_ratio"] < 4.0]
    assert all(r["as_reduction_pct"] > 5.0 for r in workable)
