"""EXP3 — overall single-disk repair time vs chunk size (paper Figure 8(a)).

Fixed: RS(9, 6), failed disk of 200 GiB (scaled), 36 disks, c = 12.
Varied: chunk size 8, 16, 32, 64, 128, 256 MiB.

Paper shapes:
* repair time grows with chunk size (fewer, longer transfers mean
  coarser scheduling and longer waits per slow chunk);
* HD-PSR keeps its advantage over FSR at every chunk size.
"""

from __future__ import annotations

import pytest

from repro.core import (
    ActivePreliminaryRepair,
    ActiveSlowerFirstRepair,
    FullStripeRepair,
    PassiveRepair,
    repair_single_disk,
)
from repro.utils.tables import AsciiTable
from repro.utils.units import GiB, MiB
from repro.workloads import build_exp_server

from benchutil import emit

CHUNK_SIZES_MIB = [8, 16, 32, 64, 128, 256]
N, K = 9, 6
DISK_SIZE = 200 * GiB
RUNS = 3


def run_sweep(scale: int):
    size = DISK_SIZE // scale
    rows = []
    for chunk_mib in CHUNK_SIZES_MIB:
        chunk = chunk_mib * MiB
        if size % chunk:
            size_adj = (size // chunk) * chunk or chunk
        else:
            size_adj = size
        sums = {}
        for run in range(RUNS):
            for factory in (FullStripeRepair, ActivePreliminaryRepair,
                            ActiveSlowerFirstRepair, PassiveRepair):
                server = build_exp_server(
                    n=N, k=K, disk_size=size_adj, chunk_size=chunk,
                    num_disks=36, memory_chunks=2 * K,
                    ros=0.10, slow_factor=4.0, seed=4200 + run,
                    placement="random",
                )
                server.fail_disk(0)
                out = repair_single_disk(server, factory(), 0)
                sums[out.algorithm] = sums.get(out.algorithm, 0.0) + out.transfer_time
        times = {a: t / RUNS for a, t in sums.items()}
        rows.append({"chunk_mib": chunk_mib, **times})
    return rows


def test_exp3_chunk_size_sweep(benchmark, scale, results_sink):
    rows = benchmark.pedantic(run_sweep, args=(scale,), rounds=1, iterations=1)

    table = AsciiTable(
        ["chunk", "FSR (s)", "AP (s)", "AS (s)", "PA (s)", "best red."],
        title=f"EXP3: repair time vs chunk size — RS({N},{K}), {DISK_SIZE // GiB // scale} GiB disk",
        float_fmt=".2f",
    )
    for r in rows:
        best = min(r["hd-psr-ap"], r["hd-psr-as"], r["hd-psr-pa"])
        table.add_row([
            f"{r['chunk_mib']}MiB", r["fsr"], r["hd-psr-ap"],
            r["hd-psr-as"], r["hd-psr-pa"],
            f"{(1 - best / r['fsr']) * 100:.1f}%",
        ])
    emit("Figure 8(a) — Experiment 3", table.render())
    results_sink("exp3", rows, meta={"scale": scale, "n": N, "k": K})

    # Paper shape: HD-PSR maintains its advantage at every chunk size.
    for r in rows:
        best = min(r["hd-psr-ap"], r["hd-psr-as"], r["hd-psr-pa"])
        assert best <= r["fsr"] * 1.02, r["chunk_mib"]
