"""CLUSTER — time-to-takeover and foreground p99 through a daemon death.

Repo extension: the paper repairs on one storage server; the cluster
plane (PR: multi-daemon repair cluster) runs N daemons over one sharded
store with lease-based shard ownership. This bench runs the deterministic
kill-the-owner chaos scenario (:mod:`repro.service.chaos`) at a few lease
TTLs and prices the two numbers an operator cares about:

* **takeover**: wall seconds from the owner's crash to the survivor
  holding the failed disk's lease and resuming its journal — bounded by
  lease TTL + one heartbeat, which the rows make visible;
* **foreground p99**: wall latency of hedged client reads *through* the
  failover, the "user latency during recovery" number of the service
  plane, which must stay bounded (not TTL-shaped) because hedged reads
  never wait for the dead daemon.

Every run also re-asserts the scenario's correctness invariants
(byte-identical objects, zero duplicate writes, stale owner fenced), so
the artefact rows are all from *passing* chaos episodes.
"""

from __future__ import annotations

import asyncio

from repro.utils.tables import AsciiTable

from benchutil import emit

#: (label, lease_ttl seconds, heartbeat seconds) sweep. The takeover bound
#: is ttl + heartbeat (+ scheduler noise), so the ratio column should sit
#: near — and never far above — 1.
SWEEP = [
    ("tight", 0.3, 0.075),
    ("default", 0.6, 0.15),
    ("lazy", 1.2, 0.3),
]


def run_episode(root, lease_ttl, heartbeat):
    from repro.service.chaos import ChaosConfig, ChaosScenario

    return asyncio.run(ChaosScenario(ChaosConfig(
        root=root, lease_ttl=lease_ttl, heartbeat_interval=heartbeat,
        p99_budget=5.0,
    )).run())


def test_cluster_failover(tmp_path, results_sink):
    rows = []
    for label, ttl, heartbeat in SWEEP:
        report = run_episode(tmp_path / label, ttl, heartbeat)
        assert report["passed"], report["failures"]
        bound = ttl + heartbeat
        rows.append({
            "scenario": label,
            "lease_ttl_s": ttl,
            "heartbeat_s": heartbeat,
            "takeover_s": round(report["takeover_seconds"], 4),
            "takeover_over_bound": round(
                report["takeover_seconds"] / bound, 3
            ),
            "foreground_reads": report["foreground"]["reads"],
            "foreground_errors": report["foreground"]["errors"],
            "foreground_p99_s": round(
                report["foreground_latency"].get("p99", 0.0), 5
            ),
            "resumed_stripes": report["repair_b"]["resumed_stripes"],
            "chunks_rebuilt": report["repair_b"]["chunks_rebuilt"],
            "duplicate_writes": len(report["duplicate_writes"]),
            "byte_identical": report["byte_identical"],
            "stale_owner_fenced": report["stale_owner_fenced"],
        })

    table = AsciiTable([
        "scenario", "ttl (s)", "takeover (s)", "takeover/bound",
        "fg reads", "fg p99 (s)", "resumed", "dup writes",
    ])
    for r in rows:
        table.add_row([
            r["scenario"], r["lease_ttl_s"], r["takeover_s"],
            r["takeover_over_bound"], r["foreground_reads"],
            r["foreground_p99_s"], r["resumed_stripes"],
            r["duplicate_writes"],
        ])
    emit("Cluster failover: takeover latency and foreground p99", table.render())
    results_sink("cluster_failover", rows)

    by = {r["scenario"]: r for r in rows}
    for r in rows:
        assert r["byte_identical"] and r["stale_owner_fenced"]
        assert r["duplicate_writes"] == 0
        assert r["resumed_stripes"] > 0
        # Takeover is detector-bound: it must not take many multiples of
        # the TTL (loose: CI wall clocks under load jitter by hundreds
        # of ms, which dominates the tight end of the sweep).
        assert r["takeover_s"] < 10 * (r["lease_ttl_s"] + r["heartbeat_s"])
    # A tighter detector must not make takeover *slower* by much: the
    # tight sweep point should beat the lazy one.
    assert by["tight"]["takeover_s"] < by["lazy"]["takeover_s"] + 1.0
