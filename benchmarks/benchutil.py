"""Helpers shared by the benchmark modules."""

from __future__ import annotations

from pathlib import Path
from typing import Optional


def emit(title: str, text: str) -> None:
    """Print a benchmark table with a separator (shown with pytest -s)."""
    print(f"\n{'=' * 72}\n{title}\n{'=' * 72}\n{text}")


def write_metrics_dump(experiment_id: str, results_dir: Path) -> Optional[Path]:
    """Dump the ambient metrics registry as ``<id>.prom`` next to the JSON.

    Returns None (and writes nothing) when the run recorded no metrics, so
    artefact directories only carry dumps with content. The dump is the
    Prometheus text format — diffable against another run with
    ``hdpsr trace diff old.prom new.prom``.
    """
    from repro.obs import prometheus_text
    from repro.obs.context import current_registry

    text = prometheus_text(current_registry())
    if not text:
        return None
    path = Path(results_dir) / f"{experiment_id}.prom"
    path.write_text(text)
    return path
