"""Helpers shared by the benchmark modules."""

from __future__ import annotations


def emit(title: str, text: str) -> None:
    """Print a benchmark table with a separator (shown with pytest -s)."""
    print(f"\n{'=' * 72}\n{title}\n{'=' * 72}\n{text}")
