"""ABL-ROS — slow-disk ratio sweep beyond the paper's grid.

The paper evaluates at a fixed (implicit) slow-disk population. This
ablation sweeps ROS from 0% (homogeneous chassis) to 30%: HD-PSR's benefit
must vanish as heterogeneity vanishes (at ROS=0 every scheme just streams)
and grow as slow disks multiply — until so many disks are slow that the
slow tier itself becomes the floor.
"""

from __future__ import annotations

import pytest

from repro.core import (
    ActivePreliminaryRepair,
    FullStripeRepair,
    PassiveRepair,
    repair_single_disk,
)
from repro.utils.tables import AsciiTable
from repro.utils.units import GiB
from repro.workloads import build_exp_server

from benchutil import emit

N, K = 9, 6
ROS_GRID = [0.0, 0.05, 0.10, 0.20, 0.30]
RUNS = 3


def run_sweep(scale: int):
    rows = []
    for ros in ROS_GRID:
        sums = {"fsr": 0.0, "hd-psr-ap": 0.0, "hd-psr-pa": 0.0}
        for run in range(RUNS):
            for factory in (FullStripeRepair, ActivePreliminaryRepair, PassiveRepair):
                server = build_exp_server(
                    n=N, k=K, disk_size=(100 * GiB) // scale, chunk_size="64MiB",
                    num_disks=36, memory_chunks=2 * K, ros=ros, slow_factor=4.0,
                    seed=550 + run, placement="random",
                )
                server.fail_disk(0)
                out = repair_single_disk(server, factory(), 0)
                sums[out.algorithm] += out.transfer_time
        fsr = sums["fsr"] / RUNS
        rows.append({
            "ros": ros,
            "fsr": fsr,
            "hd-psr-ap": sums["hd-psr-ap"] / RUNS,
            "hd-psr-pa": sums["hd-psr-pa"] / RUNS,
            "ap_reduction_pct": (1 - sums["hd-psr-ap"] / sums["fsr"]) * 100,
            "pa_reduction_pct": (1 - sums["hd-psr-pa"] / sums["fsr"]) * 100,
        })
    return rows


def test_ablation_ros_sweep(benchmark, scale, results_sink):
    rows = benchmark.pedantic(run_sweep, args=(scale,), rounds=1, iterations=1)
    table = AsciiTable(
        ["ROS", "FSR (s)", "AP (s)", "PA (s)", "AP red.", "PA red."],
        title=f"ABL-ROS: slow-disk ratio sweep, RS({N},{K})",
        float_fmt=".2f",
    )
    for r in rows:
        table.add_row([f"{r['ros']:.0%}", r["fsr"], r["hd-psr-ap"], r["hd-psr-pa"],
                       f"{r['ap_reduction_pct']:.1f}%", f"{r['pa_reduction_pct']:.1f}%"])
    emit("Ablation: ROS sweep", table.render())
    results_sink("ablation_ros", rows, meta={"scale": scale})

    # homogeneous chassis: nothing to exploit (within jitter noise)
    assert abs(rows[0]["ap_reduction_pct"]) < 8.0
    # heterogeneity creates the opportunity
    assert max(r["ap_reduction_pct"] for r in rows[1:]) > 15.0
