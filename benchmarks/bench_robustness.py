"""ROBUSTNESS — recovery outcomes under injected mid-repair faults.

Repo extension (no paper figure): runs the byte-exact data path through
six scripted fault scenarios — clean hardened baseline, the same repair
checkpointing into a crash-consistent journal (overhead check), a second
disk dying mid-round (re-planning salvages accumulated partial sums), a
hung survivor ridden out via timeout/retry/hedge, an overwhelming
casualty burst that exceeds the n-k tolerance and must degrade to a
structured data-loss report rather than an exception, and a repair
killed by a scripted process crash then resumed from its journal.
"""

from __future__ import annotations

import tempfile
from pathlib import Path

import pytest

from repro.core import FullStripeRepair, recover_disk, recover_disks
from repro.core.executor import ReadPolicy
from repro.faults import FaultEvent, FaultSchedule
from repro.hdss import HDSSConfig, HighDensityStorageServer
from repro.reporting import loss_report_rows
from repro.utils.tables import AsciiTable

from benchutil import emit

CHUNK = 2048
#: Seconds one fault-free chunk read takes on the default 100 MB/s profile.
READ_SECONDS = CHUNK / 100e6


def make_server(seed=7, num_disks=14, stripes=25):
    cfg = HDSSConfig(
        num_disks=num_disks, n=9, k=6, chunk_size=CHUNK,
        memory_chunks=12, spares=5, seed=seed,
    )
    server = HighDensityStorageServer(cfg)
    server.provision_stripes(stripes, with_data=True)
    return server


#: One actual chunk read on the default 180 MB/s profile (for crash timing).
ACTUAL_READ_SECONDS = CHUNK / 180e6


def run_scenarios():
    results = {}

    # clean hardened baseline: a policy without faults must change nothing
    server = make_server()
    server.fail_disk(0)
    results["clean"] = recover_disk(
        server, FullStripeRepair(), 0,
        policy=ReadPolicy(timeout_seconds=1.0),
    )

    # the identical repair checkpointing every round into the journal:
    # the journal-overhead row must match "clean" on every outcome column
    with tempfile.TemporaryDirectory() as tmp:
        server = make_server()
        server.fail_disk(0)
        results["journaled clean"] = recover_disk(
            server, FullStripeRepair(), 0,
            policy=ReadPolicy(timeout_seconds=1.0),
            journal=Path(tmp) / "journal",
        )

    # a scripted SIGKILL mid-repair, then --resume from the journal:
    # finished stripes replay from journaled payloads, zero re-reads
    with tempfile.TemporaryDirectory() as tmp:
        from repro.faults import SimulatedCrash

        crash = FaultSchedule([
            FaultEvent(at=60 * ACTUAL_READ_SECONDS, kind="process_crash"),
        ])
        server = make_server()
        server.fail_disk(0)
        with pytest.raises(SimulatedCrash):
            recover_disk(server, FullStripeRepair(), 0,
                         faults=crash, journal=Path(tmp) / "journal")
        server = make_server()
        server.fail_disk(0)
        results["crash + resume"] = recover_disk(
            server, FullStripeRepair(), 0,
            faults=crash, journal=Path(tmp) / "journal", resume=True,
        )

    # the acceptance scenario: disk 4 dies two reads into a cooperative
    # two-disk repair; partial sums already folded must be salvaged
    server = make_server()
    server.fail_disk(0)
    server.fail_disk(1)
    results["mid-repair casualty"] = recover_disks(
        server, FullStripeRepair(), [0, 1],
        faults=FaultSchedule([
            FaultEvent(at=2 * READ_SECONDS, kind="disk_fail", disk=4),
        ]),
    )

    # a survivor hangs; timeout + backoff + hedging reroute the reads
    server = make_server()
    server.fail_disk(0)
    results["hung survivor"] = recover_disk(
        server, FullStripeRepair(), 0,
        faults=FaultSchedule([
            FaultEvent(at=0.0, kind="hang", disk=2, duration=0.01),
        ]),
        policy=ReadPolicy(timeout_seconds=10 * READ_SECONDS, max_retries=2,
                          backoff_base=1e-4, backoff_cap=1e-3, hedge=True),
    )

    # three more deaths overwhelm the n-k=3 tolerance: graceful loss
    server = make_server()
    server.fail_disk(0)
    server.fail_disk(1)
    results["overwhelming burst"] = recover_disks(
        server, FullStripeRepair(), [0, 1],
        faults=FaultSchedule([
            FaultEvent(at=READ_SECONDS, kind="disk_fail", disk=4),
            FaultEvent(at=2 * READ_SECONDS, kind="disk_fail", disk=5),
            FaultEvent(at=3 * READ_SECONDS, kind="disk_fail", disk=6),
        ]),
    )

    return loss_report_rows(results)


def test_robustness_outcomes(benchmark, results_sink):
    rows = benchmark.pedantic(run_scenarios, rounds=1, iterations=1)
    table = AsciiTable(
        ["scenario", "stripes", "ok", "replanned", "lost", "salvaged",
         "re-read", "exit"],
        title="Robustness: hardened recovery under injected faults",
    )
    for r in rows:
        table.add_row([r["scenario"], r["stripes"], r["recovered"],
                       r["replanned"], r["lost"], r["chunks_salvaged"],
                       r["chunks_reread"], r["exit_code"]])
    emit("Robustness: fault-injection outcomes", table.render())
    results_sink("robustness", rows)

    by = {r["scenario"]: r for r in rows}
    assert by["clean"]["exit_code"] == 0
    assert by["clean"]["certified"]
    # journaling changes durability, not outcomes
    for col in ("stripes", "recovered", "replanned", "lost", "chunks_rebuilt",
                "certified", "exit_code"):
        assert by["journaled clean"][col] == by["clean"][col], col
    resumed = by["crash + resume"]
    assert resumed["certified"] and resumed["exit_code"] == 0
    assert resumed["resumed_stripes"] > 0
    assert resumed["replayed_chunks"] > 0
    # the casualty is absorbed: stripes re-planned, nothing lost, and the
    # salvage genuinely beats repairing those stripes from scratch
    casualty = by["mid-repair casualty"]
    assert casualty["lost"] == 0 and casualty["replanned"] > 0
    assert casualty["chunks_reread"] < 6 * (
        casualty["replans"] + casualty["fresh_restarts"]
    )
    assert by["hung survivor"]["lost"] == 0
    burst = by["overwhelming burst"]
    assert burst["lost"] > 0 and burst["exit_code"] == 3
    # even under data loss the unaffected stripes were rescued
    assert burst["recovered"] + burst["replanned"] > 0
