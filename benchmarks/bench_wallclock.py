"""WALLCLOCK — the headline comparison measured with a real clock.

Repo extension: everything else simulates transfer timelines; this bench
repairs real RS-encoded bytes with real threads against rate-paced disks
(one request at a time per disk, heterogeneous rates) and reports measured
elapsed seconds. It is the closest Python analogue of the paper's Go
prototype on the EC2 testbed, and doubles as validation that the simulated
executors' ranking carries over to an actual parallel data path.
"""

from __future__ import annotations

import pytest

from repro.core import (
    ActivePreliminaryRepair,
    ActiveSlowerFirstRepair,
    FullStripeRepair,
    PassiveRepair,
    RepairContext,
)
from repro.core.scheduler import _disk_id_matrix
from repro.hdss import HDSSConfig, HighDensityStorageServer
from repro.hdss.profiles import UniformProfile
from repro.io import PacedDiskArray, WallClockRepairExecutor
from repro.utils.tables import AsciiTable

from benchutil import emit

ALGOS = [FullStripeRepair, ActivePreliminaryRepair, ActiveSlowerFirstRepair, PassiveRepair]


def build_server():
    cfg = HDSSConfig(
        num_disks=18, n=6, k=4, chunk_size=8 * 1024, memory_chunks=8, spares=2,
        profile=UniformProfile(100e6), placement="random", seed=42,
    )
    server = HighDensityStorageServer(cfg)
    server.provision_stripes(72, with_data=True)
    for d in (1, 2, 5, 7):
        server.degrade_disk(d, 8.0)
    server.fail_disk(0)
    return server


def run_grid():
    server = build_server()
    stripe_indices, survivor_ids, L = server.transfer_time_matrix([0], jittered=False)
    ctx_disks = _disk_id_matrix(server, stripe_indices, survivor_ids)
    rows = []
    baseline = None
    for factory in ALGOS:
        algo = factory()
        ctx = RepairContext(disk_ids=ctx_disks)
        plan = algo.build_plan(L, server.config.memory_chunks, context=ctx)
        paced = PacedDiskArray.from_server(server, time_scale=0.02)
        executor = WallClockRepairExecutor(
            server.code, server.layout, server.store, paced,
            memory_chunks=server.config.memory_chunks,
        )
        stats = executor.repair(plan, stripe_indices, survivor_ids, [0])
        if baseline is None:
            baseline = stats.elapsed_seconds
        rows.append({
            "algorithm": algo.name,
            "wall_seconds": stats.elapsed_seconds,
            "reduction_pct": (1 - stats.elapsed_seconds / baseline) * 100,
            "chunks_read": stats.chunks_read,
            "peak_memory": stats.peak_memory_chunks,
        })
    return rows


def test_wallclock_headline(benchmark, results_sink):
    rows = benchmark.pedantic(run_grid, rounds=1, iterations=1)
    table = AsciiTable(
        ["algorithm", "wall time (s)", "vs FSR", "chunks", "peak mem"],
        title="Wall-clock repair: real threads, paced disks, real bytes",
        float_fmt=".3f",
    )
    for r in rows:
        table.add_row([
            r["algorithm"], r["wall_seconds"],
            "baseline" if r["algorithm"] == "fsr" else f"{-r['reduction_pct']:+.1f}%",
            r["chunks_read"], r["peak_memory"],
        ])
    emit("Wall-clock headline", table.render())
    results_sink("wallclock", rows)

    by = {r["algorithm"]: r for r in rows}
    for name in ("hd-psr-ap", "hd-psr-as"):
        assert by[name]["wall_seconds"] < by["fsr"]["wall_seconds"]
        assert by[name]["peak_memory"] <= 8
