"""FOREGROUND — degraded-read latency while each scheme repairs.

Repo extension: during recovery, clients' degraded reads contend with the
repair for the same c-chunk memory. This bench runs the same Poisson read
stream against each repair scheme's schedule and reports read sojourn
percentiles alongside the repair completion time.

Expected: FSR's k-wide rounds monopolise memory in long bursts, inflating
read tail latency; HD-PSR's smaller rounds leave slots for reads to slip
through, cutting the tail while *also* finishing the repair sooner.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    ActivePreliminaryRepair,
    ActiveSlowerFirstRepair,
    FullStripeRepair,
    PassiveRepair,
    RepairContext,
)
from repro.core.plans import plan_to_jobs
from repro.sim.foreground import foreground_latency, generate_degraded_reads
from repro.sim.transfer import simulate_slot_schedule
from repro.utils.tables import AsciiTable
from repro.workloads import disk_heterogeneous_transfer_times

from benchutil import emit

S, K, C = 300, 6, 12
NUM_DISKS = 36
READ_RATE = 1.0          # degraded reads per second
RUNS = 3


def run_grid():
    rows = []
    for factory in (FullStripeRepair, ActivePreliminaryRepair,
                    ActiveSlowerFirstRepair, PassiveRepair):
        agg = {"repair": 0.0, "p50": 0.0, "p95": 0.0, "p99": 0.0, "mean": 0.0}
        for run in range(RUNS):
            workload, disk_ids = disk_heterogeneous_transfer_times(
                S, K, NUM_DISKS, ros=0.10, slow_factor=4.0, seed=40 + run
            )
            L = workload.L
            algo = factory()
            ctx = RepairContext(disk_ids=disk_ids)
            plan = algo.build_plan(L, C, context=ctx)
            repair_jobs = plan_to_jobs(plan, L, disk_ids=disk_ids)

            # reads arrive throughout a window comfortably covering repair
            horizon = float(L.sum())  # generous upper bound
            fg = generate_degraded_reads(
                READ_RATE, min(horizon, 400.0), k=K,
                chunk_time_mean=float(np.median(L)), chunk_time_std=0.1,
                seed=90 + run,
            )
            report = simulate_slot_schedule(
                repair_jobs + fg, capacity=C, max_concurrent=plan.pr
            )
            repair_finish = max(
                report.job_finish_times[j.job_id] for j in repair_jobs
            )
            lat = foreground_latency(report, fg, algorithm=algo.name)
            agg["repair"] += repair_finish
            agg["p50"] += lat.p50
            agg["p95"] += lat.p95
            agg["p99"] += lat.p99
            agg["mean"] += lat.mean
        rows.append({
            "algorithm": factory().name,
            "repair_time": agg["repair"] / RUNS,
            "read_mean": agg["mean"] / RUNS,
            "read_p50": agg["p50"] / RUNS,
            "read_p95": agg["p95"] / RUNS,
            "read_p99": agg["p99"] / RUNS,
        })
    return rows


def test_foreground_latency_under_repair(benchmark, results_sink):
    rows = benchmark.pedantic(run_grid, rounds=1, iterations=1)
    table = AsciiTable(
        ["scheme", "repair done (s)", "read mean (s)", "p50", "p95", "p99"],
        title=f"Degraded-read latency during repair (s={S}, k={K}, c={C}, "
              f"{READ_RATE}/s reads)",
        float_fmt=".2f",
    )
    for r in rows:
        table.add_row([
            r["algorithm"], r["repair_time"], r["read_mean"],
            r["read_p50"], r["read_p95"], r["read_p99"],
        ])
    emit("Foreground latency under repair", table.render())
    results_sink("foreground_latency", rows)

    by = {r["algorithm"]: r for r in rows}
    # HD-PSR finishes repair sooner AND does not worsen the read tail.
    for name in ("hd-psr-ap", "hd-psr-as", "hd-psr-pa"):
        assert by[name]["repair_time"] <= by["fsr"]["repair_time"] * 1.05, name
        assert by[name]["read_p95"] <= by["fsr"]["read_p95"] * 1.25, name
