"""WIDE — HD-PSR at wide-stripe scales (k up to 128, cf. ECWide [13]).

The paper's complexity analysis (§4.2.1) singles out the wide-stripe
regime: with k = 128, AP's sweep costs ``O(s * k^2 * log k)`` and the
memory pressure of FSR's k-wide rounds is extreme. This bench sweeps the
stripe width at a fixed memory budget (c = 32 chunks, *smaller* than the
widest stripes' k — the regime where c < k forces FSR to serialise and
even P_a must be capped):

* repair-time reductions should *grow* with k (FSR's ACWT explodes);
* AP's selection time should grow superlinearly in k while AS stays flat
  — the practical argument for AS at ECWide scales.

Stripe counts shrink with k (same failed-disk capacity), mirroring how
wide codes are actually deployed.
"""

from __future__ import annotations

import pytest

from repro.core import (
    ActivePreliminaryRepair,
    ActiveSlowerFirstRepair,
    FullStripeRepair,
    execute_plan,
)
from repro.utils.tables import AsciiTable
from repro.utils.timer import time_call
from repro.workloads import disk_heterogeneous_transfer_times

from benchutil import emit

#: (k, stripes) — constant k*s chunk volume, as a fixed-size disk would give.
WIDTHS = [(6, 640), (10, 384), (32, 120), (64, 60), (128, 30)]
NUM_DISKS = 160          # a wide-stripe chassis (k=128 needs >= 128 disks)
C = 32                   # fixed memory budget, << k at the wide end


def run_grid():
    rows = []
    for k, s in WIDTHS:
        w, disk_ids = disk_heterogeneous_transfer_times(
            s, k, NUM_DISKS, ros=0.10, slow_factor=4.0, seed=60 + k
        )
        L = w.L
        c = max(C, k)  # memory must hold at least one FSR stripe

        fsr_plan = FullStripeRepair().build_plan(L, c)
        fsr = execute_plan(fsr_plan, L, c, disk_ids=disk_ids).total_time

        ap = ActivePreliminaryRepair()
        ap_plan, ap_select = time_call(ap.build_plan, L, c)
        ap_time = execute_plan(ap_plan, L, c, disk_ids=disk_ids).total_time

        as_ = ActiveSlowerFirstRepair()
        as_plan, as_select = time_call(as_.build_plan, L, c)
        as_time = execute_plan(as_plan, L, c, disk_ids=disk_ids).total_time

        rows.append({
            "k": k, "stripes": s, "c": c,
            "fsr": fsr, "hd-psr-ap": ap_time, "hd-psr-as": as_time,
            "ap_reduction_pct": (1 - ap_time / fsr) * 100,
            "as_reduction_pct": (1 - as_time / fsr) * 100,
            "ap_select_ms": ap_plan.selection_seconds * 1e3,
            "as_select_ms": as_plan.selection_seconds * 1e3,
            "chosen_pa": ap_plan.pa,
        })
    return rows


def test_wide_stripe_sweep(benchmark, results_sink):
    rows = benchmark.pedantic(run_grid, rounds=1, iterations=1)
    table = AsciiTable(
        ["k", "s", "c", "FSR (s)", "AP (s)", "AS (s)", "AP red.", "AS red.",
         "AP select (ms)", "AS select (ms)", "AP P_a"],
        title=f"Wide stripes: k sweep at ~constant chunk volume ({NUM_DISKS} disks)",
        float_fmt=".2f",
    )
    for r in rows:
        table.add_row([
            r["k"], r["stripes"], r["c"], r["fsr"], r["hd-psr-ap"], r["hd-psr-as"],
            f"{r['ap_reduction_pct']:.1f}%", f"{r['as_reduction_pct']:.1f}%",
            r["ap_select_ms"], r["as_select_ms"], r["chosen_pa"],
        ])
    emit("Extension: wide-stripe regime", table.render())
    results_sink("wide_stripes", rows)

    by_k = {r["k"]: r for r in rows}
    # HD-PSR never loses, and the wide end shows large reductions
    for r in rows:
        assert r["hd-psr-ap"] <= r["fsr"] * 1.02
    assert by_k[128]["ap_reduction_pct"] > by_k[6]["ap_reduction_pct"] - 5.0
    # AS selection stays orders cheaper than AP at the wide end
    assert by_k[128]["as_select_ms"] < by_k[128]["ap_select_ms"]
