"""DURABILITY — what HD-PSR's faster repair buys in data-loss risk.

Repo extension (no paper counterpart, but it quantifies the paper's
motivation): estimate each scheme's single-disk repair time on the same
chassis, then Monte-Carlo the 10-year data-loss probability with that
repair time as the vulnerability window. Faster repair -> shorter window
-> fewer coincident-failure losses.

An aggressive failure model (heavy AFR, Weibull wear-out) is used so the
trials produce measurable loss counts at benchmark-friendly trial counts.
"""

from __future__ import annotations

import pytest

from repro.core import (
    ActivePreliminaryRepair,
    ActiveSlowerFirstRepair,
    FullStripeRepair,
    PassiveRepair,
)
from repro.reliability import WeibullLifetime, estimate_repair_seconds, simulate_durability
from repro.reliability.lifetimes import YEAR_SECONDS
from repro.utils.tables import AsciiTable
from repro.utils.units import GiB
from repro.workloads import build_exp_server

from benchutil import emit

N, K = 9, 6
TRIALS = 400
#: Repair times scale to a full disk; amplify so windows matter at trial scale.
REPAIR_AMPLIFY = 2000.0


def run_grid(scale: int):
    server = build_exp_server(
        n=N, k=K, disk_size=(100 * GiB) // scale, chunk_size="64MiB",
        num_disks=36, memory_chunks=2 * K, ros=0.10, slow_factor=4.0,
        seed=99, placement="random",
    )
    lifetime = WeibullLifetime(scale_seconds=0.9 * YEAR_SECONDS, shape=1.1)
    rows = []
    for algo in (FullStripeRepair(), ActivePreliminaryRepair(),
                 ActiveSlowerFirstRepair(), PassiveRepair()):
        repair = estimate_repair_seconds(server, algo, disk=0)
        window = repair * REPAIR_AMPLIFY
        result = simulate_durability(
            server.layout, num_disks=36, lifetime=lifetime,
            repair_seconds=window, mission_years=10, trials=TRIALS, seed=1234,
        )
        rows.append({
            "algorithm": algo.name,
            "repair_seconds": repair,
            "window_days": window / 86400.0,
            "loss_probability": result.loss_probability,
            "ci95_low": result.ci95[0],
            "ci95_high": result.ci95[1],
            "mttdl_years": result.mttdl_years,
        })
    return rows


def test_durability_vs_repair_speed(benchmark, scale, results_sink):
    rows = benchmark.pedantic(run_grid, args=(scale,), rounds=1, iterations=1)
    table = AsciiTable(
        ["algorithm", "repair (s)", "window (days)", "P(loss, 10y)", "95% CI", "MTTDL (y)"],
        title=f"Durability: RS({N},{K}), 36 disks, Weibull wear-out fleet",
        float_fmt=".3f",
    )
    for r in rows:
        mttdl = "inf" if r["mttdl_years"] == float("inf") else f"{r['mttdl_years']:.1f}"
        table.add_row([
            r["algorithm"], r["repair_seconds"], r["window_days"],
            r["loss_probability"],
            f"[{r['ci95_low']:.3f}, {r['ci95_high']:.3f}]",
            mttdl,
        ])
    emit("Durability consequence of repair speed", table.render())
    results_sink("durability", rows, meta={"scale": scale, "trials": TRIALS,
                                           "amplify": REPAIR_AMPLIFY})

    by_algo = {r["algorithm"]: r for r in rows}
    # HD-PSR's faster repair must not be less durable than FSR's.
    for name in ("hd-psr-ap", "hd-psr-as", "hd-psr-pa"):
        assert by_algo[name]["loss_probability"] <= by_algo["fsr"]["loss_probability"] + 0.02
