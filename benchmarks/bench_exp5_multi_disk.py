"""EXP5 — multi-disk repair, naive vs cooperative (paper Figure 9).

Fixed: RS(14, 10), 200 GiB (scaled) per failed disk, 36 disks.
Varied: number of simultaneously failed disks (1, 2, 3), repair scheme
(HD-PSR-AP / AS / PA), with and without cooperative repair.

Paper shapes:
* cooperative repair never loses; its advantage appears as soon as failed
  disks share stripes (2-3 failures) and grows with the failure count;
* paper peaks: AP -24.2% (2 disks), AS -52.5% (3 disks), PA -30.8% (3).
"""

from __future__ import annotations

import pytest

from repro.core import (
    ActivePreliminaryRepair,
    ActiveSlowerFirstRepair,
    PassiveRepair,
    cooperative_multi_disk_repair,
    naive_multi_disk_repair,
)
from repro.utils.tables import AsciiTable
from repro.utils.units import GiB
from repro.workloads import build_exp_server

from benchutil import emit

N, K = 14, 10
DISK_SIZE = 200 * GiB
RUNS = 3
FACTORIES = {
    "hd-psr-ap": ActivePreliminaryRepair,
    "hd-psr-as": ActiveSlowerFirstRepair,
    "hd-psr-pa": PassiveRepair,
}


def build(seed: int, scale: int, num_failed: int):
    server = build_exp_server(
        n=N, k=K, disk_size=DISK_SIZE // scale, chunk_size="64MiB",
        num_disks=36, memory_chunks=2 * K, ros=0.10, slow_factor=4.0,
        seed=seed, placement="random",
    )
    failed = list(range(num_failed))
    for d in failed:
        server.fail_disk(d)
    return server, failed


def run_grid(scale: int):
    rows = []
    for num_failed in (1, 2, 3):
        for name, factory in FACTORIES.items():
            sums = {"naive": 0.0, "coop": 0.0, "naive_reads": 0, "coop_reads": 0}
            for run in range(RUNS):
                server, failed = build(9100 + run, scale, num_failed)
                naive = naive_multi_disk_repair(server, factory, failed)
                server, failed = build(9100 + run, scale, num_failed)
                coop = cooperative_multi_disk_repair(server, factory, failed)
                sums["naive"] += naive.total_time
                sums["coop"] += coop.total_time
                sums["naive_reads"] += naive.chunks_read
                sums["coop_reads"] += coop.chunks_read
            rows.append({
                "failed_disks": num_failed,
                "algorithm": name,
                "naive_time": sums["naive"] / RUNS,
                "coop_time": sums["coop"] / RUNS,
                "naive_reads": sums["naive_reads"] / RUNS,
                "coop_reads": sums["coop_reads"] / RUNS,
                "time_reduction_pct": (1 - sums["coop"] / sums["naive"]) * 100,
            })
    return rows


def test_exp5_multi_disk(benchmark, scale, results_sink):
    rows = benchmark.pedantic(run_grid, args=(scale,), rounds=1, iterations=1)

    table = AsciiTable(
        ["failed", "algorithm", "naive (s)", "coop (s)", "time red.",
         "naive reads", "coop reads"],
        title=f"EXP5: multi-disk repair — RS({N},{K}), {DISK_SIZE // GiB // scale} GiB/disk",
        float_fmt=".2f",
    )
    for r in rows:
        table.add_row([
            r["failed_disks"], r["algorithm"], r["naive_time"], r["coop_time"],
            f"{r['time_reduction_pct']:.1f}%",
            int(r["naive_reads"]), int(r["coop_reads"]),
        ])
    emit("Figure 9 — Experiment 5", table.render())
    results_sink("exp5", rows, meta={"scale": scale, "n": N, "k": K})

    for r in rows:
        # cooperative never reads more chunks, never materially slower
        assert r["coop_reads"] <= r["naive_reads"] + 1e-9
        assert r["coop_time"] <= r["naive_time"] * 1.05
    # the advantage grows with the number of failed disks
    by_algo = {}
    for r in rows:
        by_algo.setdefault(r["algorithm"], {})[r["failed_disks"]] = r["time_reduction_pct"]
    for algo, red in by_algo.items():
        assert red[3] >= red[1] - 2.0, algo
