"""EXP1 — overall single-disk repair time vs (n, k) (paper Figure 7(a-c)).

Grid: RS codes (6,4) / (9,6) / (14,10) x failed-disk sizes 100/150/200 GiB
(divided by HDPSR_BENCH_SCALE), 64 MiB chunks, 36 disks, 10% slow disks at
4x, memory c = 2k chunks.

Paper shapes to reproduce:
* every HD-PSR scheme repairs faster than FSR;
* FSR's repair time grows faster with k than HD-PSR's, so the relative
  reduction widens as k grows.
"""

from __future__ import annotations

import pytest

from repro.core import (
    ActivePreliminaryRepair,
    ActiveSlowerFirstRepair,
    FullStripeRepair,
    PassiveRepair,
    repair_single_disk,
)
from repro.utils.tables import AsciiTable
from repro.utils.units import GiB, format_bytes
from repro.workloads import PAPER_CODES, PAPER_DISK_SIZES, build_exp_server

from benchutil import emit

ALGOS = [FullStripeRepair, ActivePreliminaryRepair, ActiveSlowerFirstRepair, PassiveRepair]

#: Runs averaged per configuration (the paper averages 5).
RUNS = 5


def run_grid(scale: int, runs: int = RUNS):
    rows = []
    for (n, k) in PAPER_CODES:
        for disk_size in PAPER_DISK_SIZES:
            size = disk_size // scale
            sums = {}
            for run in range(runs):
                for factory in ALGOS:
                    server = build_exp_server(
                        n=n, k=k, disk_size=size, chunk_size="64MiB",
                        num_disks=36, memory_chunks=2 * k,
                        ros=0.10, slow_factor=4.0, seed=7000 + run,
                        placement="random",
                    )
                    server.fail_disk(0)
                    out = repair_single_disk(server, factory(), 0)
                    sums[out.algorithm] = sums.get(out.algorithm, 0.0) + out.transfer_time
            times = {a: t / runs for a, t in sums.items()}
            base = times["fsr"]
            rows.append({
                "n": n, "k": k, "disk_size_gib": size / GiB,
                **times,
                **{f"reduction_{a}": (1 - times[a] / base) * 100
                   for a in times if a != "fsr"},
            })
    return rows


def test_exp1_single_disk_repair_time(benchmark, scale, results_sink):
    rows = benchmark.pedantic(run_grid, args=(scale,), rounds=1, iterations=1)

    table = AsciiTable(
        ["(n,k)", "disk", "FSR (s)", "AP (s)", "AS (s)", "PA (s)",
         "AP red.", "AS red.", "PA red."],
        title=f"EXP1: single-disk repair time (scale 1/{scale})",
        float_fmt=".2f",
    )
    for r in rows:
        table.add_row([
            f"({r['n']},{r['k']})",
            format_bytes(int(r["disk_size_gib"] * GiB), precision=0),
            r["fsr"], r["hd-psr-ap"], r["hd-psr-as"], r["hd-psr-pa"],
            f"{r['reduction_hd-psr-ap']:.1f}%",
            f"{r['reduction_hd-psr-as']:.1f}%",
            f"{r['reduction_hd-psr-pa']:.1f}%",
        ])
    emit("Figure 7(a-c) — Experiment 1", table.render())
    results_sink("exp1", rows, meta={"scale": scale})

    # Paper shape: HD-PSR never slower than FSR (small tolerance for jitter).
    for r in rows:
        for algo in ("hd-psr-ap", "hd-psr-as", "hd-psr-pa"):
            assert r[algo] <= r["fsr"] * 1.05, (r["n"], r["k"], algo)

    # Paper shape: the active schemes' reduction widens with k at 200 GiB.
    big = {r["k"]: r for r in rows if r["disk_size_gib"] == rows[-1]["disk_size_gib"]}
    if len(big) == 3:
        assert big[10]["reduction_hd-psr-ap"] >= big[4]["reduction_hd-psr-ap"] - 10.0
