"""ChunkMemory: capacity enforcement and telemetry."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, MemoryCapacityError, StorageError
from repro.hdss.memory import ChunkMemory


@pytest.fixture
def mem():
    return ChunkMemory(capacity_chunks=4, chunk_size=16)


class TestAdmit:
    def test_zeroed_buffer(self, mem):
        buf = mem.admit("a")
        assert buf.shape == (16,)
        assert np.all(buf == 0)

    def test_data_copied_in(self, mem):
        data = np.arange(16, dtype=np.uint8)
        buf = mem.admit("a", data)
        assert np.array_equal(buf, data)
        data[0] = 99
        assert mem.get("a")[0] == 0

    def test_capacity_enforced(self, mem):
        for i in range(4):
            mem.admit(i)
        with pytest.raises(MemoryCapacityError):
            mem.admit("overflow")

    def test_duplicate_handle_rejected(self, mem):
        mem.admit("a")
        with pytest.raises(StorageError):
            mem.admit("a")

    def test_wrong_size_rejected(self, mem):
        with pytest.raises(StorageError):
            mem.admit("a", np.zeros(15, dtype=np.uint8))


class TestReleaseAndState:
    def test_release_frees_slot(self, mem):
        for i in range(4):
            mem.admit(i)
        mem.release(0)
        mem.admit("new")  # must not raise

    def test_release_unknown_rejected(self, mem):
        with pytest.raises(StorageError):
            mem.release("ghost")

    def test_get_unknown_rejected(self, mem):
        with pytest.raises(StorageError):
            mem.get("ghost")

    def test_occupancy_and_available(self, mem):
        assert mem.occupancy == 0 and mem.available == 4
        mem.admit("a")
        assert mem.occupancy == 1 and mem.available == 3

    def test_holds(self, mem):
        mem.admit("a")
        assert mem.holds("a") and not mem.holds("b")

    def test_release_all(self, mem):
        mem.admit("a")
        mem.admit("b")
        assert mem.release_all() == 2
        assert mem.occupancy == 0

    def test_peak_tracking(self, mem):
        mem.admit("a")
        mem.admit("b")
        mem.release("a")
        mem.admit("c")
        assert mem.peak_occupancy == 2
        assert mem.total_admissions == 3

    def test_capacity_bytes(self, mem):
        assert mem.capacity_bytes == 64

    def test_bad_params(self):
        with pytest.raises(ConfigurationError):
            ChunkMemory(0, 16)
        with pytest.raises(ConfigurationError):
            ChunkMemory(4, 0)

    def test_repr(self, mem):
        assert "ChunkMemory" in repr(mem)
