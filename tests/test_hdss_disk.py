"""Disk model: transfer times, states, probing."""

import pytest

from repro.errors import ConfigurationError, DiskFailedError
from repro.hdss.disk import Disk, DiskState


class TestConstruction:
    def test_defaults(self):
        d = Disk(0, bandwidth=100e6)
        assert d.state is DiskState.HEALTHY
        assert d.current_bandwidth == 100e6

    def test_bad_bandwidth(self):
        with pytest.raises(ConfigurationError):
            Disk(0, bandwidth=0)

    def test_bad_id(self):
        with pytest.raises(ConfigurationError):
            Disk(-1, bandwidth=1.0)

    def test_bad_jitter(self):
        with pytest.raises(ConfigurationError):
            Disk(0, bandwidth=1.0, jitter=1.0)


class TestTransferTime:
    def test_deterministic_without_jitter(self):
        d = Disk(0, bandwidth=100.0)
        assert d.transfer_time(200) == pytest.approx(2.0)

    def test_zero_size(self):
        assert Disk(0, bandwidth=10.0).transfer_time(0) == 0.0

    def test_negative_size_rejected(self):
        with pytest.raises(ConfigurationError):
            Disk(0, bandwidth=10.0).transfer_time(-1)

    def test_jitter_bounded(self):
        d = Disk(0, bandwidth=100.0, jitter=0.1, seed=3)
        base = 200 / 100.0
        for _ in range(100):
            t = d.transfer_time(200)
            assert base * 0.9 <= t <= base * 1.1

    def test_jitter_seeded_reproducible(self):
        a = Disk(0, bandwidth=100.0, jitter=0.1, seed=5)
        b = Disk(0, bandwidth=100.0, jitter=0.1, seed=5)
        assert [a.transfer_time(100) for _ in range(5)] == [
            b.transfer_time(100) for _ in range(5)
        ]

    def test_unjittered_flag(self):
        d = Disk(0, bandwidth=100.0, jitter=0.3, seed=1)
        assert d.transfer_time(100, jittered=False) == pytest.approx(1.0)


class TestStates:
    def test_degrade_slows(self):
        d = Disk(0, bandwidth=100.0)
        d.degrade(4.0)
        assert d.is_slow
        assert d.current_bandwidth == pytest.approx(25.0)
        assert d.transfer_time(100) == pytest.approx(4.0)

    def test_degrade_factor_one_stays_healthy(self):
        d = Disk(0, bandwidth=100.0)
        d.degrade(1.0)
        assert not d.is_slow

    def test_heal(self):
        d = Disk(0, bandwidth=100.0)
        d.degrade(4.0)
        d.heal()
        assert d.state is DiskState.HEALTHY
        assert d.current_bandwidth == 100.0

    def test_fail_blocks_io(self):
        d = Disk(0, bandwidth=100.0)
        d.fail()
        assert d.is_failed
        with pytest.raises(DiskFailedError):
            d.transfer_time(1)
        with pytest.raises(DiskFailedError):
            d.probe()

    def test_degrade_failed_rejected(self):
        d = Disk(0, bandwidth=100.0)
        d.fail()
        with pytest.raises(DiskFailedError):
            d.degrade(2.0)

    @pytest.mark.parametrize("factor", [0.5, 0.0, -2.0])
    def test_degrade_sub_unity_rejected(self, factor):
        d = Disk(0, bandwidth=100.0)
        with pytest.raises(ConfigurationError):
            d.degrade(factor)
        assert d.current_bandwidth == 100.0


class TestProbe:
    def test_probe_near_truth(self):
        d = Disk(0, bandwidth=100e6, seed=0)
        measured = d.probe(1024, noise=0.0)
        assert measured == pytest.approx(100e6)

    def test_probe_noise(self):
        d = Disk(0, bandwidth=100e6, seed=0)
        samples = [d.probe(1024, noise=0.05) for _ in range(50)]
        assert min(samples) != max(samples)
        assert all(abs(s - 100e6) / 100e6 < 0.5 for s in samples)

    def test_probe_counts_traffic(self):
        d = Disk(0, bandwidth=100e6)
        d.probe(2048)
        assert d.bytes_read == 2048
        assert d.read_ops == 1

    def test_probe_sees_degradation(self):
        d = Disk(0, bandwidth=100e6, seed=0)
        d.degrade(4.0)
        assert d.probe(1024, noise=0.0) == pytest.approx(25e6)


class TestTelemetry:
    def test_record_read(self):
        d = Disk(0, bandwidth=1.0)
        d.record_read(100)
        d.record_read(50)
        assert d.bytes_read == 150
        assert d.read_ops == 2

    def test_repr(self):
        assert "Disk" in repr(Disk(3, bandwidth=5e6))
