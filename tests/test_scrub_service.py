"""The online scrub plane: cycles, crash-resumable cursor, overload
pacing, quarantine-and-repair, and the daemon's ``scrub`` verb.

No pytest-asyncio in the toolchain: every test is a sync function driving
its coroutine with ``asyncio.run``.
"""

import asyncio
import time

import numpy as np
import pytest

from repro.core import ALGORITHMS
from repro.ec.stripe import ChunkId
from repro.errors import ConfigurationError
from repro.faults import apply_corruption
from repro.faults.spec import FaultEvent
from repro.hdss.server import HDSSConfig, HighDensityStorageServer
from repro.hdss.store import ShardedChunkStore
from repro.journal.wal import list_segments
from repro.obs import MetricsRegistry, use_registry
from repro.service import (
    RepairService,
    ScrubConfig,
    Scrubber,
    ServiceConfig,
)
from repro.service.client import ServiceClient, ServiceError
from repro.service.netserver import ServiceDaemon
from repro.service.overload import (
    STATE_HEALTHY,
    STATE_SHEDDING,
    OverloadConfig,
)
from repro.service.protocol import ERR_CORRUPT


@pytest.fixture(autouse=True)
def _registry():
    with use_registry(MetricsRegistry()):
        yield


STRIPES = 10


def make_service(tmp_path, **cfg):
    store = ShardedChunkStore.from_root(
        tmp_path / "store", num_shards=2, durable=False
    )
    config = HDSSConfig(
        num_disks=12, n=5, k=3, chunk_size=1024, memory_chunks=16,
        spares=3, seed=11, placement="rotating",
    )
    server = HighDensityStorageServer(config, store=store)
    server.provision_stripes(STRIPES, with_data=True)
    return RepairService(
        server, ALGORITHMS["hd-psr-ap"](), ServiceConfig(**cfg) if cfg else None
    )


def fast_config(**overrides):
    defaults = dict(interval_ms=0.0, cycle_pause_s=0.0, park_poll_s=0.01)
    defaults.update(overrides)
    return ScrubConfig(**defaults)


def corrupt(service, stripe_index, shard_idx, kind="bitrot"):
    """Rot one chunk beneath the checksum layer; returns (disk, pristine)."""
    disk = service.server.layout[stripe_index].disks[shard_idx]
    pristine = service.server.store.get(disk, ChunkId(stripe_index, shard_idx)).copy()
    apply_corruption(
        service.server.store,
        FaultEvent(
            at=0.0, kind=kind, disk=disk, stripe=stripe_index, shard=shard_idx
        ),
    )
    return disk, pristine


def total_chunks(service):
    store = service.server.store
    return sum(
        len(store.chunks_on_disk(d)) for d in range(len(service.server.disks))
    )


# ----------------------------------------------------------------- config
class TestScrubConfig:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ScrubConfig(interval_ms=-1.0)
        with pytest.raises(ConfigurationError):
            ScrubConfig(cycle_pause_s=-0.1)
        with pytest.raises(ConfigurationError):
            ScrubConfig(park_poll_s=0.0)


# ----------------------------------------------------------------- cycles
class TestScrubCycle:
    def test_clean_cycle_verifies_every_chunk(self, tmp_path):
        async def run():
            service = make_service(tmp_path)
            scrub = Scrubber(service, fast_config())
            verified = await scrub.run_cycle()
            assert verified == total_chunks(service)
            assert scrub.cycles_completed == 1
            assert scrub.corrupt_found == 0
            assert scrub.last_cycle_seconds is not None
            status = scrub.status()
            assert status.cycle == 2  # next cycle queued up
            assert status.chunks_verified == verified
            assert status.quarantined == 0
            await service.close()

        asyncio.run(run())

    @pytest.mark.parametrize("kind", ["bitrot", "torn_write", "misdirected_write"])
    def test_detects_and_read_repairs(self, tmp_path, kind):
        async def run():
            service = make_service(tmp_path)
            disk, pristine = corrupt(service, 3, 1, kind=kind)
            cid = ChunkId(3, 1)
            scrub = Scrubber(service, fast_config())
            await scrub.run_cycle()
            assert scrub.corrupt_found == 1
            assert scrub.repaired == 1
            assert scrub.repair_failures == 0
            assert not service.is_quarantined(disk, cid)
            # byte-identical replacement with a fresh, passing sidecar
            assert service.server.store.verify_chunk(disk, cid)
            assert np.array_equal(service.server.store.get(disk, cid), pristine)
            await service.close()

        asyncio.run(run())

    def test_detection_only_mode_keeps_quarantine(self, tmp_path):
        async def run():
            service = make_service(tmp_path)
            disk, _ = corrupt(service, 2, 0)
            cid = ChunkId(2, 0)
            scrub = Scrubber(service, fast_config(auto_repair=False))
            await scrub.run_cycle()
            assert scrub.corrupt_found == 1
            assert scrub.repaired == 0
            assert service.is_quarantined(disk, cid)
            # the next cycle skips the quarantined chunk instead of
            # re-counting it
            await scrub.run_cycle()
            assert scrub.corrupt_found == 1
            await service.close()

        asyncio.run(run())

    def test_failed_disk_is_skipped(self, tmp_path):
        async def run():
            service = make_service(tmp_path)
            full = total_chunks(service)
            on_disk = len(service.server.store.chunks_on_disk(0))
            assert on_disk > 0
            service.server.fail_disk(0)
            scrub = Scrubber(service, fast_config())
            verified = await scrub.run_cycle()
            assert verified == full - on_disk
            await service.close()

        asyncio.run(run())


# ----------------------------------------------------------------- cursor
class TestScrubCursor:
    def test_fresh_journal_starts_at_cycle_one(self, tmp_path):
        service = make_service(tmp_path)
        scrub = Scrubber(
            service,
            fast_config(journal_root=tmp_path / "cursor", durable_journal=False),
        )
        assert scrub.cycle == 1
        assert scrub.resumed_cycles == 0
        assert not scrub._begun

    def test_kill_mid_cycle_resumes_at_first_unfinished_disk(self, tmp_path):
        """The acceptance property: a scrubber killed mid-cycle leaves a
        cursor its successor replays — certified disks are not rescanned."""
        root = tmp_path / "cursor"

        async def run():
            service = make_service(tmp_path)
            full = total_chunks(service)
            a = Scrubber(
                service,
                ScrubConfig(
                    interval_ms=2.0, cycle_pause_s=0.0, park_poll_s=0.01,
                    journal_root=root, durable_journal=False,
                ),
            )
            task = asyncio.get_running_loop().create_task(a.run_cycle())
            deadline = time.monotonic() + 30.0
            while len(a._done_disks) < 3:
                assert time.monotonic() < deadline, "scrub made no progress"
                await asyncio.sleep(0.002)
            # kill: cancel without any graceful cycle-done record
            task.cancel()
            await asyncio.gather(task, return_exceptions=True)
            await a.stop()
            done = set(a._done_disks)
            assert done and len(done) < len(service.server.disks)

            b = Scrubber(
                service,
                fast_config(journal_root=root, durable_journal=False),
            )
            assert b.cycle == 1
            assert b._begun
            assert b._done_disks == done
            assert b.resumed_cycles == 1
            store = service.server.store
            skipped = sum(len(store.chunks_on_disk(d)) for d in done)
            verified = await b.run_cycle()
            assert verified == full - skipped
            await b.stop()

            # the finished cycle is closed: the next incarnation starts
            # cycle 2 fresh
            c = Scrubber(
                service,
                fast_config(journal_root=root, durable_journal=False),
            )
            assert c.cycle == 2
            assert c.resumed_cycles == 0
            assert not c._begun
            await c.stop()
            await service.close()

        asyncio.run(run())

    def test_journal_pruned_to_newest_segment(self, tmp_path):
        root = tmp_path / "cursor"

        async def run():
            service = make_service(tmp_path)
            scrub = Scrubber(
                service, fast_config(journal_root=root, durable_journal=False)
            )
            for _ in range(3):
                await scrub.run_cycle()
            await scrub.stop()
            assert len(list_segments(root)) <= 1
            await service.close()

        asyncio.run(run())


# ----------------------------------------------------------------- pacing
class TestScrubPacing:
    def test_parks_while_shedding_and_resumes_after_recovery(self, tmp_path):
        async def run():
            service = make_service(
                tmp_path,
                overload=OverloadConfig(
                    target_ms=5.0, shed_target_ms=30.0, interval_ms=20.0,
                    recovery_intervals=1, idle_reset_s=0.3,
                ),
            )
            ctrl = service.overload
            ctrl.observe_wait(0, 0.2)
            await asyncio.sleep(0.03)
            ctrl.observe_wait(0, 0.2)  # rollover: min 200 ms >> shed target
            assert ctrl.state == STATE_SHEDDING

            scrub = Scrubber(
                service, fast_config(interval_ms=1.0, cycle_pause_s=0.01)
            )
            scrub.start()
            deadline = time.monotonic() + 10.0
            while not scrub.parked and time.monotonic() < deadline:
                ctrl.observe_wait(0, 0.2)
                await asyncio.sleep(0.01)
            assert scrub.parked
            before = scrub.chunks_verified
            for _ in range(10):  # held in shedding: zero verifies
                ctrl.observe_wait(0, 0.2)
                await asyncio.sleep(0.01)
            assert scrub.chunks_verified == before

            # stop feeding waits: idle expiry recovers the controller and
            # the parked scrubber completes a full cycle
            assert await scrub.wait_cycles(1, timeout=30.0)
            assert ctrl.state == STATE_HEALTHY
            assert not scrub.parked
            await scrub.stop()
            await service.close()

        asyncio.run(run())


# ------------------------------------------------------------ daemon verb
class TestScrubVerb:
    def test_scrub_op_reports_cursor_and_counts(self, tmp_path):
        async def run():
            service = make_service(tmp_path)
            corrupt(service, 1, 2)
            scrub = Scrubber(service, fast_config(cycle_pause_s=0.05))
            daemon = ServiceDaemon(service, scrubber=scrub)
            port = await daemon.start()
            task = asyncio.create_task(daemon.serve_until_stopped())
            client = await ServiceClient.connect("127.0.0.1", port)
            try:
                assert await scrub.wait_cycles(1, timeout=30.0)
                reply = await client.scrub()
                assert reply["enabled"] is True
                assert reply["cycles_completed"] >= 1
                assert reply["corrupt_found"] == 1
                assert reply["repaired"] == 1
                stats = await client.call("stats")
                assert stats["scrub"]["chunks_verified"] > 0
                assert stats["corruption"]["found"] >= 1
                assert "swept_tmp_files" in stats["store"]
            finally:
                await client.call("shutdown")
                await client.close()
                await task

        asyncio.run(run())

    def test_scrub_op_without_scrubber(self, tmp_path):
        async def run():
            service = make_service(tmp_path)
            daemon = ServiceDaemon(service)
            port = await daemon.start()
            task = asyncio.create_task(daemon.serve_until_stopped())
            client = await ServiceClient.connect("127.0.0.1", port)
            try:
                reply = await client.scrub()
                assert reply["enabled"] is False
            finally:
                await client.call("shutdown")
                await client.close()
                await task

        asyncio.run(run())

    def test_corrupt_survivor_maps_to_retryable_wire_error(self, tmp_path):
        """A degraded decode that trips over a rotted survivor surfaces
        the v5 ``corrupt_chunk`` taxonomy entry — never silent bytes."""

        async def run():
            service = make_service(tmp_path)
            layout = service.server.layout
            failed_disk = layout[0].disks[0]
            stripe_index = layout.stripe_set(failed_disk)[0]
            stripe = layout[stripe_index]
            target = stripe.shard_on_disk(failed_disk)
            pristine = service.server.store.get(
                failed_disk, ChunkId(stripe_index, target)
            ).copy()
            service.server.fail_disk(failed_disk)
            survivors = [s for s in stripe.surviving_shards([failed_disk])
                         if s != target]
            bad = survivors[0]
            corrupt(service, stripe_index, bad)

            daemon = ServiceDaemon(service)
            port = await daemon.start()
            task = asyncio.create_task(daemon.serve_until_stopped())
            client = await ServiceClient.connect("127.0.0.1", port)
            try:
                with pytest.raises(ServiceError) as err:
                    await client.read_chunk(stripe_index, target)
                assert err.value.code == ERR_CORRUPT
                assert err.value.retryable
                assert err.value.reply["stripe"] == stripe_index
                assert err.value.reply["shard"] == bad
                # the rotted survivor is quarantined; the retry plans
                # around it and serves the true bytes
                data = await client.read_chunk(stripe_index, target)
                assert data == pristine.tobytes()
                assert service.corrupt_found == 1
            finally:
                await client.call("shutdown")
                await client.close()
                await task
            await service.close()

        asyncio.run(run())
