"""RepairPlan / StripePlan invariants and the job adapter."""

import numpy as np
import pytest

from repro.core.plans import RepairPlan, StripePlan, plan_to_jobs
from repro.errors import PlanError


def plan_for(k, rounds_per_stripe, s=2, acc=1):
    plans = [
        StripePlan(stripe_index=i, rounds=[list(r) for r in rounds_per_stripe], accumulator_chunks=acc)
        for i in range(s)
    ]
    return RepairPlan(algorithm="test", stripe_plans=plans, pa=None, pr=None)


class TestStripePlan:
    def test_valid(self):
        StripePlan(0, [[0, 1], [2, 3]]).validate(4)

    def test_missing_column(self):
        with pytest.raises(PlanError):
            StripePlan(0, [[0, 1], [2]]).validate(4)

    def test_duplicate_column(self):
        with pytest.raises(PlanError):
            StripePlan(0, [[0, 1], [1, 2, 3]]).validate(4)

    def test_empty_round(self):
        with pytest.raises(PlanError):
            StripePlan(0, [[0, 1], []]).validate(2)

    def test_negative_acc(self):
        with pytest.raises(PlanError):
            StripePlan(0, [[0]], accumulator_chunks=-1).validate(1)

    def test_peak_memory(self):
        sp = StripePlan(0, [[0, 1, 2], [3]], accumulator_chunks=1)
        assert sp.peak_memory_chunks() == 4
        single = StripePlan(0, [[0, 1, 2, 3]], accumulator_chunks=1)
        assert single.peak_memory_chunks() == 4  # acc not counted single-round

    def test_num_rounds(self):
        assert StripePlan(0, [[0], [1], [2]]).num_rounds == 3


class TestRepairPlan:
    def test_validate_ok(self):
        plan_for(4, [[0, 1], [2, 3]]).validate(4)

    def test_duplicate_stripe_rejected(self):
        plans = [StripePlan(0, [[0]]), StripePlan(0, [[0]])]
        plan = RepairPlan(algorithm="t", stripe_plans=plans)
        with pytest.raises(PlanError):
            plan.validate(1)

    def test_empty_plan_rejected(self):
        with pytest.raises(PlanError):
            RepairPlan(algorithm="t", stripe_plans=[]).validate(4)

    def test_totals(self):
        plan = plan_for(4, [[0, 1], [2, 3]], s=3)
        assert plan.num_stripes == 3
        assert plan.total_rounds() == 6
        assert plan.peak_memory_chunks() == 3  # round 2 + acc 1


class TestPlanToJobs:
    def test_durations_from_L(self):
        L = np.array([[1.0, 2.0, 3.0, 4.0], [5.0, 6.0, 7.0, 8.0]])
        plan = plan_for(4, [[0, 1], [2, 3]])
        jobs = plan_to_jobs(plan, L)
        assert jobs[0].rounds[0][0].duration == 1.0
        assert jobs[1].rounds[1][1].duration == 8.0

    def test_keys_from_survivor_ids(self):
        L = np.ones((1, 3))
        plan = RepairPlan("t", [StripePlan(0, [[2, 0, 1]])])
        jobs = plan_to_jobs(plan, L, stripe_indices=[42], survivor_ids=[[5, 7, 8]])
        keys = [c.key for c in jobs[0].rounds[0]]
        assert keys == [(42, 8), (42, 5), (42, 7)]
        assert jobs[0].job_id == 42

    def test_default_keys_are_columns(self):
        L = np.ones((1, 2))
        plan = RepairPlan("t", [StripePlan(0, [[1, 0]])])
        jobs = plan_to_jobs(plan, L)
        assert [c.key for c in jobs[0].rounds[0]] == [(0, 1), (0, 0)]

    def test_accumulators_uncharged_by_default(self):
        L = np.ones((2, 4))
        plans = [
            StripePlan(0, [[0, 1], [2, 3]], accumulator_chunks=1),
            StripePlan(1, [[0, 1, 2, 3]], accumulator_chunks=1),
        ]
        jobs = plan_to_jobs(RepairPlan("t", plans), L)
        assert all(j.accumulator_slots == 0 for j in jobs)

    def test_accumulators_charged_only_multi_round(self):
        L = np.ones((2, 4))
        plans = [
            StripePlan(0, [[0, 1], [2, 3]], accumulator_chunks=1),
            StripePlan(1, [[0, 1, 2, 3]], accumulator_chunks=1),
        ]
        jobs = plan_to_jobs(RepairPlan("t", plans), L, charge_accumulators=True)
        assert jobs[0].accumulator_slots == 1
        assert jobs[1].accumulator_slots == 0

    def test_disk_ids_attached(self):
        L = np.ones((1, 2))
        disks = np.array([[3, 9]])
        plan = RepairPlan("t", [StripePlan(0, [[0, 1]])])
        jobs = plan_to_jobs(plan, L, disk_ids=disks)
        assert [c.disk for c in jobs[0].rounds[0]] == [3, 9]

    def test_row_out_of_range(self):
        plan = RepairPlan("t", [StripePlan(5, [[0]])])
        with pytest.raises(PlanError):
            plan_to_jobs(plan, np.ones((2, 1)))

    def test_invalid_plan_caught(self):
        plan = RepairPlan("t", [StripePlan(0, [[0, 0]])])
        with pytest.raises(PlanError):
            plan_to_jobs(plan, np.ones((1, 2)))

    def test_1d_L_rejected(self):
        plan = RepairPlan("t", [StripePlan(0, [[0]])])
        with pytest.raises(PlanError):
            plan_to_jobs(plan, np.ones(3))


class TestPlanSerialization:
    def _plan(self):
        from repro.core import ActivePreliminaryRepair

        L = np.random.default_rng(0).uniform(1, 4, size=(12, 6))
        return ActivePreliminaryRepair().build_plan(L, c=12), L

    def test_roundtrip_dict(self):
        plan, _ = self._plan()
        clone = RepairPlan.from_dict(plan.to_dict())
        assert clone.algorithm == plan.algorithm
        assert clone.pa == plan.pa and clone.pr == plan.pr
        assert [sp.rounds for sp in clone.stripe_plans] == [
            sp.rounds for sp in plan.stripe_plans
        ]

    def test_roundtrip_file_and_execution_identical(self, tmp_path):
        from repro.core import execute_plan

        plan, L = self._plan()
        path = plan.save(tmp_path / "plan.json")
        loaded = RepairPlan.load(path)
        a = execute_plan(plan, L, c=12)
        b = execute_plan(loaded, L, c=12)
        assert a.total_time == b.total_time
        assert a.acwt == b.acwt

    def test_metadata_numpy_values_serialised(self, tmp_path):
        plan, _ = self._plan()
        # AP metadata holds numpy floats; save must not choke
        path = plan.save(tmp_path / "p.json")
        import json

        payload = json.loads(path.read_text())
        assert "candidate_T" in payload["metadata"]

    def test_load_missing(self, tmp_path):
        with pytest.raises(PlanError):
            RepairPlan.load(tmp_path / "nope.json")

    def test_load_garbage(self, tmp_path):
        p = tmp_path / "bad.json"
        p.write_text("{not json")
        with pytest.raises(PlanError):
            RepairPlan.load(p)

    def test_malformed_dict(self):
        with pytest.raises(PlanError):
            RepairPlan.from_dict({"algorithm": "x"})
