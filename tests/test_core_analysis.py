"""Observation analytics (Figures 3 and 4)."""

import numpy as np
import pytest

from repro.core.analysis import (
    acwt_curve_vs_pa,
    acwt_for_schedule,
    observation1_table,
    rounds_curve_vs_pr,
    total_time_curve_vs_pa,
    uniform_pa_plan,
)
from repro.errors import ConfigurationError
from repro.workloads import normal_transfer_times


@pytest.fixture
def paper_L():
    """The Figure-4 workload: s=100, k=12, N(2, 4), ROS 5%."""
    return normal_transfer_times(100, 12, mean=2.0, variance=4.0, ros=0.05, seed=0).L


class TestUniformPaPlan:
    def test_valid(self, paper_L):
        uniform_pa_plan(paper_L, pa=3, pr=4).validate(12)

    def test_sorted_rows(self, paper_L):
        plan = uniform_pa_plan(paper_L, pa=4, pr=3, sort_rows=True)
        cols = plan.stripe_plans[0].rounds
        flat = [c for r in cols for c in r]
        times = paper_L[0, flat]
        assert np.all(np.diff(times) >= 0)

    def test_bad_pa(self, paper_L):
        with pytest.raises(ConfigurationError):
            uniform_pa_plan(paper_L, pa=13, pr=1)


class TestObservation2:
    def test_acwt_increases_with_pa(self, paper_L):
        """Figure 4(a): ACWT and P_a are positively correlated."""
        curve = acwt_curve_vs_pa(paper_L, c=12, pa_values=[1, 2, 3, 4, 6, 12])
        values = list(curve.values())
        assert values[0] == 0.0  # P_a = 1: nothing ever waits
        # overall trend upward: last >> first, and Spearman-ish monotonicity
        assert values[-1] > values[1]
        assert all(curve[a] <= curve[12] + 1e-9 for a in [1, 2, 3, 4, 6])

    def test_acwt_increases_with_ros(self):
        """Figure 4(a), second finding: more slow chunks -> higher ACWT."""
        acwts = []
        for ros in (0.02, 0.05, 0.08, 0.10):
            L = normal_transfer_times(100, 12, ros=ros, seed=1).L
            acwts.append(acwt_for_schedule(L, pa=12, c=12).acwt)
        assert acwts[0] < acwts[-1]

    def test_pr_or_c_required(self, paper_L):
        with pytest.raises(ConfigurationError):
            acwt_for_schedule(paper_L, pa=3)


class TestObservation3:
    def test_rounds_increase_with_pr(self):
        """Figure 4(b): P_r and TR are positively correlated."""
        curve = rounds_curve_vs_pr(k=12, c=12)
        values = list(curve.values())
        assert values == sorted(values)
        assert curve[1] == 1      # P_r=1 -> P_a=12 -> 1 round (FSR)
        assert curve[12] == 12    # P_r=12 -> P_a=1 -> 12 rounds

    def test_custom_pr_values(self):
        curve = rounds_curve_vs_pr(k=6, c=12, pr_values=[2, 6])
        assert curve == {2: 1, 6: 3}


class TestObservation1:
    def test_table_matches_equation3(self):
        table = observation1_table(c=4)
        assert (4, 1) in table and (2, 2) in table and (1, 4) in table

    def test_product_at_least_c(self):
        for pa, pr in observation1_table(c=12):
            assert pa * pr >= 12  # ceil can overcommit, never undercommit


class TestTradeoff:
    def test_total_time_has_interior_optimum_with_slowers(self):
        """§3.3: neither P_a=k (FSR) nor P_a=1 is optimal with slow chunks."""
        L = normal_transfer_times(200, 12, ros=0.08, slow_factor=6.0, seed=3).L
        curve = total_time_curve_vs_pa(L, c=12, sort_rows=True)
        best_pa = min(curve, key=curve.get)
        assert curve[best_pa] < curve[12]  # beats FSR
