"""GF(2^8) matrix algebra: products, inversion, RS encoding matrices."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import CodingError
from repro.gf import (
    gf_cauchy,
    gf_identity,
    gf_mat_inv,
    gf_mat_mul,
    gf_mat_rank,
    gf_mat_vec,
    gf_mul,
    gf_rs_encoding_matrix,
    gf_vandermonde,
)


def random_matrix(rng, rows, cols):
    return rng.integers(0, 256, size=(rows, cols), dtype=np.uint8)


@pytest.fixture
def rng():
    return np.random.default_rng(3)


class TestMatMul:
    def test_identity_neutral(self, rng):
        m = random_matrix(rng, 5, 5)
        assert np.array_equal(gf_mat_mul(gf_identity(5), m), m)
        assert np.array_equal(gf_mat_mul(m, gf_identity(5)), m)

    def test_associative(self, rng):
        a, b, c = (random_matrix(rng, 4, 4) for _ in range(3))
        assert np.array_equal(gf_mat_mul(gf_mat_mul(a, b), c), gf_mat_mul(a, gf_mat_mul(b, c)))

    def test_shape_mismatch(self, rng):
        with pytest.raises(ValueError):
            gf_mat_mul(random_matrix(rng, 2, 3), random_matrix(rng, 2, 3))

    def test_manual_2x2(self):
        a = np.array([[1, 2], [3, 4]], dtype=np.uint8)
        b = np.array([[5, 6], [7, 0]], dtype=np.uint8)
        out = gf_mat_mul(a, b)
        assert out[0, 0] == int(gf_mul(1, 5)) ^ int(gf_mul(2, 7))
        assert out[1, 1] == int(gf_mul(3, 6)) ^ 0

    def test_mat_vec(self, rng):
        m = random_matrix(rng, 3, 4)
        v = rng.integers(0, 256, size=4, dtype=np.uint8)
        assert np.array_equal(gf_mat_vec(m, v), gf_mat_mul(m, v[:, None])[:, 0])

    def test_mat_vec_rejects_2d(self, rng):
        with pytest.raises(ValueError):
            gf_mat_vec(random_matrix(rng, 3, 3), random_matrix(rng, 3, 1))


class TestInverse:
    def test_inverse_roundtrip(self, rng):
        for _ in range(10):
            size = int(rng.integers(1, 8))
            m = random_matrix(rng, size, size)
            try:
                inv = gf_mat_inv(m)
            except CodingError:
                continue  # singular draw
            assert np.array_equal(gf_mat_mul(m, inv), gf_identity(size))
            assert np.array_equal(gf_mat_mul(inv, m), gf_identity(size))

    def test_identity_inverse(self):
        assert np.array_equal(gf_mat_inv(gf_identity(6)), gf_identity(6))

    def test_singular_raises(self):
        m = np.array([[1, 2], [1, 2]], dtype=np.uint8)
        with pytest.raises(CodingError):
            gf_mat_inv(m)

    def test_zero_matrix_singular(self):
        with pytest.raises(CodingError):
            gf_mat_inv(np.zeros((3, 3), dtype=np.uint8))

    def test_non_square_rejected(self, rng):
        with pytest.raises(ValueError):
            gf_mat_inv(random_matrix(rng, 2, 3))

    def test_input_not_mutated(self, rng):
        m = random_matrix(rng, 4, 4)
        copy = m.copy()
        try:
            gf_mat_inv(m)
        except CodingError:
            pass
        assert np.array_equal(m, copy)


class TestRank:
    def test_identity_full_rank(self):
        assert gf_mat_rank(gf_identity(7)) == 7

    def test_zero_rank(self):
        assert gf_mat_rank(np.zeros((3, 4), dtype=np.uint8)) == 0

    def test_duplicate_rows(self):
        m = np.array([[1, 2, 3], [1, 2, 3], [4, 5, 6]], dtype=np.uint8)
        assert gf_mat_rank(m) == 2

    def test_rank_bounded(self, rng):
        m = random_matrix(rng, 3, 7)
        assert 0 <= gf_mat_rank(m) <= 3


class TestStructuredMatrices:
    def test_vandermonde_values(self):
        v = gf_vandermonde(4, 3)
        assert v[0, 0] == 1  # 0**0 == 1 convention
        assert v[2, 1] == 2
        assert v[3, 2] == int(gf_mul(3, 3))

    def test_vandermonde_too_many_rows(self):
        with pytest.raises(ValueError):
            gf_vandermonde(257, 3)

    def test_cauchy_every_square_submatrix_invertible(self):
        c = gf_cauchy(4, 4)
        # every single entry non-zero
        assert np.all(c != 0)
        # every 2x2 minor invertible
        for r1 in range(4):
            for r2 in range(r1 + 1, 4):
                for c1 in range(4):
                    for c2 in range(c1 + 1, 4):
                        sub = c[np.ix_([r1, r2], [c1, c2])]
                        gf_mat_inv(sub)  # must not raise

    def test_cauchy_range_guard(self):
        with pytest.raises(ValueError):
            gf_cauchy(200, 100)


class TestRSEncodingMatrix:
    @pytest.mark.parametrize("style", ["vandermonde", "cauchy"])
    @pytest.mark.parametrize("n,k", [(6, 4), (9, 6), (14, 10), (5, 3)])
    def test_systematic_top(self, n, k, style):
        m = gf_rs_encoding_matrix(n, k, style=style)
        assert m.shape == (n, k)
        assert np.array_equal(m[:k], gf_identity(k))

    @pytest.mark.parametrize("style", ["vandermonde", "cauchy"])
    def test_mds_every_k_rows_invertible(self, style):
        from itertools import combinations

        n, k = 7, 4
        m = gf_rs_encoding_matrix(n, k, style=style)
        for rows in combinations(range(n), k):
            gf_mat_inv(m[list(rows)])  # must not raise for MDS

    def test_bad_params(self):
        with pytest.raises(ValueError):
            gf_rs_encoding_matrix(4, 4)
        with pytest.raises(ValueError):
            gf_rs_encoding_matrix(3, 0)
        with pytest.raises(ValueError):
            gf_rs_encoding_matrix(6, 4, style="mystery")


class TestInverseHypothesis:
    @given(seed=st.integers(min_value=0, max_value=10_000), size=st.integers(min_value=1, max_value=6))
    @settings(max_examples=60, deadline=None)
    def test_random_invertible_roundtrip(self, seed, size):
        rng = np.random.default_rng(seed)
        m = rng.integers(0, 256, size=(size, size), dtype=np.uint8)
        try:
            inv = gf_mat_inv(m)
        except CodingError:
            return
        assert np.array_equal(gf_mat_mul(inv, m), gf_identity(size))
