"""The one-call recovery workflow."""

import pytest

from repro.core import ActiveSlowerFirstRepair, FullStripeRepair, PassiveRepair
from repro.core.recovery import recover_disk
from repro.errors import StorageError


@pytest.mark.parametrize(
    "algorithm", [FullStripeRepair(), ActiveSlowerFirstRepair(), PassiveRepair()],
    ids=["fsr", "as", "pa"],
)
class TestRecoverDisk:
    def test_certified_recovery(self, small_server, algorithm):
        lost_count = len(small_server.store.chunks_on_disk(0))
        small_server.fail_disk(0)
        result = recover_disk(small_server, algorithm, 0)
        assert result.certified
        assert result.data_path.chunks_rebuilt == lost_count
        assert result.remapped == lost_count
        assert small_server.layout.stripe_set(0) == []

    def test_objects_survive(self, small_server, algorithm):
        originals = {
            idx: small_server.read_object(idx) for idx in range(len(small_server.layout))
        }
        small_server.fail_disk(0)
        recover_disk(small_server, algorithm, 0)
        for idx, data in originals.items():
            assert small_server.read_object(idx) == data


class TestRecoverDiskErrors:
    def test_healthy_disk_rejected(self, small_server):
        with pytest.raises(StorageError):
            recover_disk(small_server, FullStripeRepair(), 0)

    def test_metadata_only_rejected(self, metadata_server):
        metadata_server.fail_disk(0)
        with pytest.raises(StorageError, match="no chunk bytes"):
            recover_disk(metadata_server, FullStripeRepair(), 0)

    def test_summary_keys(self, small_server):
        small_server.fail_disk(1)
        result = recover_disk(small_server, FullStripeRepair(), 1)
        s = result.summary()
        assert s["certified"] is True
        assert s["chunks_rebuilt"] > 0
        assert s["repair_time"] > 0

    def test_second_failure_after_recovery(self, small_server):
        """Recover disk 0, then disk 1 — spares and remaps hold up."""
        small_server.fail_disk(0)
        first = recover_disk(small_server, FullStripeRepair(), 0)
        assert first.certified
        small_server.fail_disk(1)
        second = recover_disk(small_server, ActiveSlowerFirstRepair(), 1)
        assert second.certified
