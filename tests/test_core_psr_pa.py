"""HD-PSR-PA: passive marking, two-round remediation, adaptivity."""

import numpy as np
import pytest

from repro.core.base import RepairContext
from repro.core.psr_pa import PassiveRepair
from repro.errors import ConfigurationError
from repro.hdss.prober import PassiveMonitor


def disk_matrix(s, k, base=0):
    """Each column j lives on disk base+j (uniform layout for tests)."""
    return np.tile(np.arange(base, base + k), (s, 1))


class TestRequirements:
    def test_needs_disk_ids(self):
        with pytest.raises(ConfigurationError):
            PassiveRepair().build_plan(np.ones((2, 4)), c=8)

    def test_disk_ids_shape_checked(self):
        ctx = RepairContext(disk_ids=np.zeros((2, 3)))
        with pytest.raises(ConfigurationError):
            PassiveRepair().build_plan(np.ones((2, 4)), c=8, context=ctx)


class TestStaticMarks:
    def test_no_marks_means_fsr(self):
        L = np.ones((3, 4))
        ctx = RepairContext(disk_ids=disk_matrix(3, 4), monitor=PassiveMonitor(threshold=100.0))
        plan = PassiveRepair(adaptive=False).build_plan(L, c=8, context=ctx)
        for sp in plan.stripe_plans:
            assert sp.num_rounds == 1
            assert sorted(sp.rounds[0]) == [0, 1, 2, 3]

    def test_premarked_disk_two_rounds(self):
        L = np.ones((2, 4))
        mon = PassiveMonitor(threshold=0.5)
        mon.observe(2, 1.0)  # mark disk 2 slow
        ctx = RepairContext(disk_ids=disk_matrix(2, 4), monitor=mon)
        plan = PassiveRepair(adaptive=False).build_plan(L, c=8, context=ctx)
        for sp in plan.stripe_plans:
            assert sp.num_rounds == 2
            assert sp.rounds[0] == [2]          # slow chunks first
            assert sorted(sp.rounds[1]) == [0, 1, 3]
            assert sp.accumulator_chunks == 1

    def test_all_disks_slow_single_round(self):
        L = np.ones((1, 3))
        mon = PassiveMonitor(threshold=0.5)
        for d in range(3):
            mon.observe(d, 1.0)
        ctx = RepairContext(disk_ids=disk_matrix(1, 3), monitor=mon)
        plan = PassiveRepair(adaptive=False).build_plan(L, c=6, context=ctx)
        assert plan.stripe_plans[0].num_rounds == 1


class TestAdaptive:
    def test_learning_from_earlier_stripes(self):
        """Stripe 0 hits the slow disk at FSR cost; later stripes remediate."""
        s, k = 6, 4
        L = np.ones((s, k))
        L[:, 1] = 8.0  # column 1 = disk 1 is slow everywhere
        ctx = RepairContext(disk_ids=disk_matrix(s, k), monitor=PassiveMonitor(threshold=2.0))
        plan = PassiveRepair().build_plan(L, c=8, context=ctx)
        assert plan.stripe_plans[0].num_rounds == 1  # paid full FSR
        for sp in plan.stripe_plans[1:]:
            assert sp.num_rounds == 2
            assert sp.rounds[0] == [1]
        assert plan.metadata["slow_disks"] == [1]
        assert plan.metadata["remediated_stripes"] == s - 1

    def test_derived_threshold_learns(self):
        """With no explicit threshold, the running median finds the slow disk."""
        s, k = 20, 6
        rng = np.random.default_rng(0)
        L = rng.uniform(0.9, 1.1, size=(s, k))
        L[:, 3] = 9.0
        ctx = RepairContext(disk_ids=disk_matrix(s, k))
        plan = PassiveRepair().build_plan(L, c=12, context=ctx)
        assert 3 in plan.metadata["slow_disks"]
        assert plan.metadata["remediated_stripes"] >= s - 2

    def test_no_slow_disks_all_fsr(self):
        L = np.ones((5, 4))
        ctx = RepairContext(disk_ids=disk_matrix(5, 4))
        plan = PassiveRepair().build_plan(L, c=8, context=ctx)
        assert all(sp.num_rounds == 1 for sp in plan.stripe_plans)
        assert plan.metadata["remediated_stripes"] == 0

    def test_zero_selection_time(self):
        L = np.ones((3, 4))
        ctx = RepairContext(disk_ids=disk_matrix(3, 4))
        plan = PassiveRepair().build_plan(L, c=8, context=ctx)
        assert plan.selection_seconds == 0.0

    def test_plan_valid(self):
        rng = np.random.default_rng(1)
        L = rng.uniform(1, 4, size=(15, 6))
        ctx = RepairContext(disk_ids=disk_matrix(15, 6))
        PassiveRepair().build_plan(L, c=12, context=ctx).validate(6)

    def test_pa_pr_undeclared(self):
        L = np.ones((2, 4))
        ctx = RepairContext(disk_ids=disk_matrix(2, 4))
        plan = PassiveRepair().build_plan(L, c=8, context=ctx)
        assert plan.pa is None and plan.pr is None
