"""Enclosure topology and correlated (backplane) failure injection."""

import pytest

from repro.errors import ConfigurationError
from repro.hdss import HDSSConfig, HighDensityStorageServer


@pytest.fixture
def server():
    cfg = HDSSConfig(
        num_disks=12, n=6, k=4, chunk_size=1024, memory_chunks=8, spares=2,
        enclosure_size=4, seed=3,
    )
    srv = HighDensityStorageServer(cfg)
    srv.provision_stripes(20)
    return srv


class TestTopology:
    def test_enclosure_of(self, server):
        assert server.enclosure_of(0) == 0
        assert server.enclosure_of(3) == 0
        assert server.enclosure_of(4) == 1
        assert server.enclosure_of(11) == 2

    def test_enclosure_disks(self, server):
        assert server.enclosure_disks(1) == [4, 5, 6, 7]
        # spares land in the last (partial) enclosure
        assert server.enclosure_disks(3) == [12, 13]

    def test_unknown_enclosure(self, server):
        with pytest.raises(ConfigurationError):
            server.enclosure_disks(9)

    def test_unconfigured_rejected(self, small_server):
        with pytest.raises(ConfigurationError):
            small_server.enclosure_of(0)

    def test_bad_size_config(self):
        with pytest.raises(ConfigurationError):
            HDSSConfig(enclosure_size=0)


class TestFailEnclosure:
    def test_total_loss(self, server):
        failed = server.fail_enclosure(0)
        assert failed == [0, 1, 2, 3]
        assert server.failed_disks() == [0, 1, 2, 3]

    def test_partial_survival_seeded(self, server):
        failed = server.fail_enclosure(1, survival_prob=0.5)
        assert set(failed) <= {4, 5, 6, 7}
        assert server.failed_disks() == failed

    def test_already_failed_skipped(self, server):
        server.fail_disk(0)
        failed = server.fail_enclosure(0)
        assert 0 not in failed
        assert set(failed) == {1, 2, 3}

    def test_cooperative_repair_after_backplane_event(self):
        """A backplane event within the code's tolerance is repairable."""
        from repro.core import FullStripeRepair, cooperative_multi_disk_repair

        cfg = HDSSConfig(
            num_disks=18, n=9, k=6, chunk_size=1024, memory_chunks=12,
            spares=3, enclosure_size=3, seed=5, placement="random",
        )
        srv = HighDensityStorageServer(cfg)
        srv.provision_stripes(40)
        failed = srv.fail_enclosure(2)  # 3 disks <= m = 3
        out = cooperative_multi_disk_repair(srv, FullStripeRepair, failed)
        assert out.chunks_rebuilt > 0
        assert out.time_to_safety is not None
