"""End-to-end ``hdpsr serve`` / ``hdpsr client`` subprocess tests.

These drive the real wire path: a daemon subprocess on an ephemeral port
(discovered through ``--port-file``), a client subprocess failing a disk
and hammering the front door, and — for the crash leg — a scripted
``process_crash`` that kills the daemon mid-repair followed by a second
incarnation resuming from the journal.
"""

import json
import os
import subprocess
import sys
import time
from pathlib import Path

import pytest

SERVER_ARGS = [
    "--num-disks", "12", "--chunk-size", "32KiB", "--disk-size", "128KiB",
    "--placement", "rotating", "--seed", "7",
]
START_TIMEOUT = 30.0


def _env():
    env = dict(os.environ)
    src = str(Path(__file__).resolve().parent.parent / "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    return env


def _spawn_serve(*extra):
    return subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "serve", *SERVER_ARGS, *extra],
        env=_env(), stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True,
    )


def _wait_port(port_file: Path, proc: subprocess.Popen) -> int:
    deadline = time.monotonic() + START_TIMEOUT
    while time.monotonic() < deadline:
        if proc.poll() is not None:
            out, err = proc.communicate()
            raise AssertionError(f"serve exited early ({proc.returncode}): {err}")
        if port_file.exists() and port_file.read_text().strip():
            return int(port_file.read_text().strip())
        time.sleep(0.05)
    proc.kill()
    raise AssertionError("serve never wrote its port file")


def _run_client(port: int, *extra) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, "-m", "repro.cli", "client", "--port", str(port),
         "--reads", "40", "--json", *extra],
        env=_env(), capture_output=True, text=True, timeout=START_TIMEOUT * 2,
    )


@pytest.fixture
def serve(tmp_path):
    procs = []

    def start(*extra):
        port_file = tmp_path / f"port-{len(procs)}"
        proc = _spawn_serve("--port-file", str(port_file), *extra)
        procs.append(proc)
        return proc, _wait_port(port_file, proc)

    yield start
    for proc in procs:
        if proc.poll() is None:
            proc.kill()
        proc.communicate()


class TestServeClientSmoke:
    def test_repair_under_load_exits_clean(self, serve, tmp_path):
        proc, port = serve("--store", str(tmp_path / "store"), "--no-fsync")
        result = _run_client(port, "--fail", "0", "--shutdown")
        assert result.returncode == 0, result.stderr
        report = json.loads(result.stdout)
        assert not report["crashed"]
        assert report["reads"] == 40
        assert report["read_errors"] == []
        (repair,) = report["repairs"]
        assert repair["certified"] and repair["stripes_lost"] == 0
        assert report["read_p99_seconds"] >= report["read_p50_seconds"] >= 0
        assert proc.wait(timeout=START_TIMEOUT) == 0

    def test_two_disk_workload(self, serve):
        proc, port = serve()
        result = _run_client(port, "--fail", "0", "--fail", "6", "--shutdown")
        assert result.returncode == 0, result.stderr
        report = json.loads(result.stdout)
        assert {r["disk"] for r in report["repairs"]} == {0, 6}
        assert all(r["certified"] for r in report["repairs"])
        assert proc.wait(timeout=START_TIMEOUT) == 0

    def test_crash_then_resume(self, serve, tmp_path):
        faults = tmp_path / "crash.json"
        faults.write_text(json.dumps(
            {"events": [{"at": 2e-4, "kind": "process_crash"}]}
        ))
        store, journal = str(tmp_path / "store"), str(tmp_path / "journal")
        common = ["--store", store, "--journal", journal, "--no-fsync",
                  "--faults", str(faults), "--max-stripes", "1"]

        proc, port = serve(*common)
        result = _run_client(port, "--fail", "0")
        assert result.returncode == 4, result.stderr  # EXIT_CRASHED
        assert json.loads(result.stdout)["crashed"]
        assert proc.wait(timeout=START_TIMEOUT) == 4
        assert "restart the service" in proc.communicate()[1]

        # Second incarnation: same config/store/faults; the journal's
        # resume count skips the already-fired crash.
        proc2, port2 = serve(*common)
        result = _run_client(port2, "--fail", "0", "--resume", "--shutdown")
        assert result.returncode == 0, result.stderr
        report = json.loads(result.stdout)
        (repair,) = report["repairs"]
        assert repair["certified"] and not report["crashed"]
        assert proc2.wait(timeout=START_TIMEOUT) == 0
