"""Active probing and passive monitoring."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.hdss import HDSSConfig, HighDensityStorageServer
from repro.hdss.profiles import BimodalSlowProfile
from repro.hdss.prober import ActiveProber, PassiveMonitor


@pytest.fixture
def server():
    cfg = HDSSConfig(
        num_disks=12, n=6, k=4, chunk_size=64 * 1024, memory_chunks=8,
        profile=BimodalSlowProfile(100e6, ros=0.25, slow_factor=4.0), seed=2,
    )
    s = HighDensityStorageServer(cfg)
    s.provision_stripes(20)
    return s


class TestActiveProber:
    def test_probe_disk_close_to_truth(self, server):
        prober = ActiveProber(server, noise=0.01)
        bw = prober.probe_disk(0)
        truth = server.disk(0).current_bandwidth
        assert abs(bw - truth) / truth < 0.1

    def test_probe_all_skips_failed(self, server):
        server.fail_disk(0)
        prober = ActiveProber(server)
        measured = prober.probe_all()
        assert 0 not in measured
        assert len(measured) == len(server.disks) - 1

    def test_estimated_chunk_time(self, server):
        prober = ActiveProber(server, noise=0.0)
        t = prober.estimated_chunk_time(1)
        truth = server.disk(1).transfer_time(server.config.chunk_size, jittered=False)
        assert t == pytest.approx(truth, rel=1e-6)

    def test_estimate_matrix_matches_oracle_shape(self, server):
        server.fail_disk(0)
        prober = ActiveProber(server, noise=0.0)
        sidx_e, surv_e, L_e = prober.estimate_matrix([0])
        sidx_o, surv_o, L_o = server.transfer_time_matrix([0], jittered=False)
        assert sidx_e == sidx_o and surv_e == surv_o
        assert np.allclose(L_e, L_o, rtol=1e-9)

    def test_probe_traffic_accounted(self, server):
        prober = ActiveProber(server, probe_size=2048)
        prober.probe_all([0, 1, 2])
        assert prober.probe_bytes_issued == 3 * 2048

    def test_noisy_estimates_differ_from_truth(self, server):
        server.fail_disk(0)
        prober = ActiveProber(server, noise=0.1)
        _, _, L_e = prober.estimate_matrix([0])
        _, _, L_o = server.transfer_time_matrix([0], jittered=False)
        assert not np.allclose(L_e, L_o)

    def test_bad_params(self, server):
        with pytest.raises(ConfigurationError):
            ActiveProber(server, probe_size=0)
        with pytest.raises(ConfigurationError):
            ActiveProber(server, noise=-0.1)


class TestPassiveMonitor:
    def test_absolute_threshold(self):
        mon = PassiveMonitor(threshold=2.0)
        assert not mon.observe(0, 1.9)
        assert mon.observe(1, 2.1)
        assert mon.slow_disks == [1]
        assert mon.is_slow(1) and not mon.is_slow(0)

    def test_derived_threshold(self):
        mon = PassiveMonitor(threshold_ratio=2.0)
        # establish a baseline near 1.0
        for i in range(20):
            mon.observe(0, 1.0)
        assert mon.current_threshold() == pytest.approx(2.0)
        assert mon.observe(5, 4.0)
        assert mon.is_slow(5)

    def test_first_observation_never_marks(self):
        mon = PassiveMonitor(threshold_ratio=2.0)
        assert not mon.observe(3, 100.0)

    def test_clear(self):
        mon = PassiveMonitor(threshold=1.0)
        mon.observe(0, 2.0)
        mon.observe(1, 2.0)
        mon.clear(0)
        assert mon.slow_disks == [1]
        mon.clear()
        assert mon.slow_disks == []

    def test_history(self):
        mon = PassiveMonitor(threshold=1.0)
        mon.observe(0, 0.5)
        mon.observe(1, 1.5)
        assert mon.history == [(0, 0.5), (1, 1.5)]

    def test_negative_observation_rejected(self):
        with pytest.raises(ConfigurationError):
            PassiveMonitor(threshold=1.0).observe(0, -1.0)

    def test_bad_ratio(self):
        with pytest.raises(ConfigurationError):
            PassiveMonitor(threshold_ratio=1.0)

    def test_bad_threshold(self):
        with pytest.raises(ConfigurationError):
            PassiveMonitor(threshold=0.0)

    def test_many_observations_fast(self):
        """Amortised-O(1) threshold: 20k observations in well under a second."""
        import time

        mon = PassiveMonitor(threshold_ratio=2.0)
        t0 = time.perf_counter()
        for i in range(20_000):
            mon.observe(i % 30, 1.0 + (i % 7) * 0.01)
        assert time.perf_counter() - t0 < 2.0
