"""Schedule executors: interval model vs slot model."""

import pytest

from repro.errors import PlanError
from repro.sim.transfer import (
    ChunkTransfer,
    StripeJob,
    safe_admission_cap,
    simulate_interval_schedule,
    simulate_slot_schedule,
)


def job(job_id, *rounds, acc=0):
    return StripeJob(
        job_id=job_id,
        rounds=[[ChunkTransfer((job_id, i, j), d) for j, d in enumerate(r)] for i, r in enumerate(rounds)],
        accumulator_slots=acc,
    )


class TestStripeJob:
    def test_validate_ok(self):
        job("a", [1.0, 2.0]).validate()

    def test_empty_round_rejected(self):
        j = StripeJob(job_id="x", rounds=[[]])
        with pytest.raises(PlanError):
            j.validate()

    def test_no_rounds_rejected(self):
        with pytest.raises(PlanError):
            StripeJob(job_id="x").validate()

    def test_duplicate_chunk_rejected(self):
        c = ChunkTransfer("same", 1.0)
        j = StripeJob(job_id="x", rounds=[[c], [c]])
        with pytest.raises(PlanError):
            j.validate()

    def test_negative_duration_rejected(self):
        with pytest.raises(PlanError):
            ChunkTransfer("x", -1.0)

    def test_counts(self):
        j = job("a", [1.0, 2.0], [3.0])
        assert j.chunk_count == 3
        assert j.max_round_size() == 2


class TestIntervalModel:
    def test_single_interval_serialises(self):
        jobs = [job("a", [2.0]), job("b", [3.0])]
        rep = simulate_interval_schedule(jobs, num_intervals=1)
        assert rep.total_time == 5.0

    def test_two_intervals_parallel(self):
        jobs = [job("a", [2.0]), job("b", [3.0])]
        rep = simulate_interval_schedule(jobs, num_intervals=2)
        assert rep.total_time == 3.0

    def test_round_time_is_max(self):
        rep = simulate_interval_schedule([job("a", [1.0, 5.0, 2.0])], 1)
        assert rep.total_time == 5.0

    def test_waits(self):
        rep = simulate_interval_schedule([job("a", [1.0, 5.0, 2.0])], 1)
        waits = sorted(r.wait for r in rep.records)
        assert waits == [0.0, 3.0, 4.0]
        assert rep.acwt == pytest.approx(7.0 / 3.0)

    def test_multi_round_sequential(self):
        rep = simulate_interval_schedule([job("a", [1.0, 2.0], [3.0, 1.0])], 1)
        assert rep.total_time == 5.0
        assert rep.rounds_per_job["a"] == 2

    def test_fifo_to_earliest_free(self):
        # jobs: 5 | 1 | 1 on two intervals: I0 gets 5; I1 gets 1 then 1.
        jobs = [job("a", [5.0]), job("b", [1.0]), job("c", [1.0])]
        rep = simulate_interval_schedule(jobs, 2)
        assert rep.total_time == 5.0
        assert rep.job_finish_times["c"] == 2.0

    def test_compute_time_added(self):
        rep = simulate_interval_schedule([job("a", [1.0], [1.0])], 1, compute_time_per_round=0.5)
        assert rep.total_time == 3.0

    def test_bad_intervals(self):
        with pytest.raises(PlanError):
            simulate_interval_schedule([job("a", [1.0])], 0)

    def test_empty_jobs(self):
        rep = simulate_interval_schedule([], 2)
        assert rep.total_time == 0.0
        assert rep.chunk_count == 0


class TestSlotModel:
    def test_matches_interval_for_uniform_fsr(self):
        # k-chunk single rounds, capacity 2k -> 2 concurrent, same makespan.
        jobs = [job(i, [1.0, 2.0]) for i in range(4)]
        slot = simulate_slot_schedule(jobs, capacity=4)
        interval = simulate_interval_schedule(jobs, num_intervals=2)
        assert slot.total_time == pytest.approx(interval.total_time)

    def test_capacity_limits_concurrency(self):
        jobs = [job(i, [1.0]) for i in range(4)]
        rep1 = simulate_slot_schedule(jobs, capacity=1)
        rep4 = simulate_slot_schedule(jobs, capacity=4)
        assert rep1.total_time == 4.0
        assert rep4.total_time == 1.0

    def test_accumulator_held_between_rounds(self):
        # One 2-round job with acc=1 on capacity 2: rounds of 1 chunk + acc.
        j = job("a", [1.0], [1.0], acc=1)
        rep = simulate_slot_schedule([j], capacity=2)
        assert rep.total_time == 2.0

    def test_job_exceeding_capacity_rejected(self):
        j = job("a", [1.0, 1.0, 1.0], acc=1)
        with pytest.raises(PlanError):
            simulate_slot_schedule([j], capacity=3)

    def test_max_concurrent_cap(self):
        jobs = [job(i, [1.0]) for i in range(4)]
        rep = simulate_slot_schedule(jobs, capacity=4, max_concurrent=1)
        assert rep.total_time == 4.0

    def test_utilization_reported(self):
        rep = simulate_slot_schedule([job("a", [1.0, 1.0])], capacity=4)
        assert rep.memory_utilization == pytest.approx(0.5)

    def test_deterministic(self):
        jobs = [job(i, [1.0 + i, 0.5], [2.0]) for i in range(6)]
        a = simulate_slot_schedule(jobs, capacity=5)
        b = simulate_slot_schedule(jobs, capacity=5)
        assert a.total_time == b.total_time
        assert [r.key for r in a.records] == [r.key for r in b.records]

    def test_fifo_policy_optional(self):
        jobs = [job(i, [1.0]) for i in range(3)]
        rep = simulate_slot_schedule(jobs, capacity=3, policy="fifo")
        assert rep.total_time == 1.0

    def test_psr_beats_fsr_with_slow_chunk(self):
        """The paper's core effect: a slow chunk holds fewer slots under PSR."""
        slow, fast = 8.0, 1.0
        # 4 stripes, k=4, one slow chunk each; capacity 8.
        fsr_jobs = [job(i, [slow, fast, fast, fast]) for i in range(4)]
        psr_jobs = [job(i, [slow], [fast, fast, fast], acc=1) for i in range(4)]
        t_fsr = simulate_slot_schedule(fsr_jobs, capacity=8).total_time
        t_psr = simulate_slot_schedule(psr_jobs, capacity=8).total_time
        assert t_psr < t_fsr


class TestSafeAdmissionCap:
    def test_no_accumulators_unbounded(self):
        jobs = [job(i, [1.0]) for i in range(10)]
        assert safe_admission_cap(jobs, 4) == 10

    def test_with_accumulators(self):
        jobs = [job(i, [1.0, 1.0], [1.0], acc=1) for i in range(10)]
        # max request = 2 + 1 = 3; cap = (8 - 3) // 1 + 1 = 6
        assert safe_admission_cap(jobs, 8) == 6

    def test_at_least_one(self):
        jobs = [job(0, [1.0, 1.0], [1.0], acc=1)]
        assert safe_admission_cap(jobs, 3) == 1

    def test_no_deadlock_under_stress(self):
        # Many multi-round accumulator jobs on tight memory must complete.
        jobs = [job(i, [1.0, 2.0], [3.0], [0.5, 0.5], acc=1) for i in range(30)]
        rep = simulate_slot_schedule(jobs, capacity=5)
        assert rep.rounds_per_job and len(rep.rounds_per_job) == 30


def faulted_job(job_id, *rounds, disks=None, acc=0):
    """Like ``job`` but tags each chunk with a source disk id."""
    return StripeJob(
        job_id=job_id,
        rounds=[
            [
                ChunkTransfer((job_id, i, j), d,
                              disk=None if disks is None else disks[i][j])
                for j, d in enumerate(r)
            ]
            for i, r in enumerate(rounds)
        ],
        accumulator_slots=acc,
    )


class TestFaultedExecution:
    def make_faults(self, *events):
        from repro.faults import FaultEvent, FaultSchedule, SimFaultModel

        return SimFaultModel(FaultSchedule([FaultEvent(**e) for e in events]))

    def test_no_faults_is_baseline(self):
        jobs = [faulted_job(0, [1.0, 1.0], disks=[[0, 1]])]
        base = simulate_slot_schedule(jobs, capacity=4)
        faulted = simulate_slot_schedule(
            jobs, capacity=4, faults=self.make_faults()
        )
        assert faulted.total_time == base.total_time
        assert not faulted.failed_jobs

    def test_slow_window_stretches_both_models(self):
        faults = self.make_faults(
            dict(at=0.0, kind="slow", disk=0, factor=4.0, duration=100.0),
        )
        jobs = [faulted_job(0, [1.0, 1.0], disks=[[0, 1]])]
        rep_i = simulate_interval_schedule(jobs, num_intervals=4, faults=faults)
        rep_s = simulate_slot_schedule(jobs, capacity=4, faults=faults)
        assert rep_i.total_time == pytest.approx(4.0)
        assert rep_s.total_time == pytest.approx(4.0)

    def test_disk_fail_aborts_job_in_both_models(self):
        faults = self.make_faults(dict(at=0.5, kind="disk_fail", disk=1))
        jobs = [
            faulted_job(0, [1.0, 1.0], disks=[[0, 1]]),
            faulted_job(1, [1.0], disks=[[2]]),
        ]
        for rep in (
            simulate_interval_schedule(jobs, num_intervals=4, faults=faults),
            simulate_slot_schedule(jobs, capacity=4, faults=faults),
        ):
            assert set(rep.failed_jobs) == {0}
            t, disk = rep.failed_jobs[0]
            assert disk == 1
            assert t == pytest.approx(0.5)
            # the unaffected job still completes
            assert 1 in rep.rounds_per_job

    def test_abort_releases_memory_for_waiters(self):
        """An aborted job must free its slots or the queue deadlocks."""
        faults = self.make_faults(dict(at=0.1, kind="disk_fail", disk=0))
        jobs = [faulted_job(i, [1.0, 1.0], [1.0], disks=[[0, 1], [2]], acc=1)
                for i in range(6)]
        rep = simulate_slot_schedule(jobs, capacity=3, faults=faults)
        # every job aborts (all touch disk 0) yet the run terminates
        assert len(rep.failed_jobs) == 6

    def test_failed_jobs_in_summary(self):
        faults = self.make_faults(dict(at=0.5, kind="disk_fail", disk=0))
        jobs = [faulted_job(0, [1.0], disks=[[0]])]
        rep = simulate_slot_schedule(jobs, capacity=2, faults=faults)
        assert rep.summary()["failed_jobs"] == 1
        # makespan covers the abort instant
        assert rep.total_time >= 0.5

    def test_faulted_run_deterministic(self):
        faults = self.make_faults(
            dict(at=0.4, kind="disk_fail", disk=1),
            dict(at=0.0, kind="slow", disk=2, factor=2.0, duration=3.0),
        )
        jobs = [faulted_job(i, [1.0, 0.5], disks=[[i % 3, (i + 1) % 3]])
                for i in range(5)]
        a = simulate_slot_schedule(jobs, capacity=4, faults=faults)
        b = simulate_slot_schedule(jobs, capacity=4, faults=faults)
        assert a.total_time == b.total_time
        assert a.failed_jobs == b.failed_jobs
        assert [r.key for r in a.records] == [r.key for r in b.records]

    def test_untagged_chunks_ignore_faults(self):
        faults = self.make_faults(dict(at=0.0, kind="disk_fail", disk=0))
        jobs = [job(0, [1.0])]  # no disk tags
        rep = simulate_slot_schedule(jobs, capacity=2, faults=faults)
        assert not rep.failed_jobs
        assert rep.total_time == pytest.approx(1.0)
