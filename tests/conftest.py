"""Shared fixtures for the HD-PSR test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro import HDSSConfig, HighDensityStorageServer
from repro.hdss.profiles import BimodalSlowProfile, UniformProfile


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(1234)


@pytest.fixture
def small_config() -> HDSSConfig:
    """A tiny, fast server config: 12 disks, RS(6,4), 64 KiB chunks."""
    return HDSSConfig(
        num_disks=12,
        n=6,
        k=4,
        chunk_size=64 * 1024,
        memory_chunks=8,
        spares=2,
        profile=UniformProfile(100e6),
        seed=42,
    )


@pytest.fixture
def small_server(small_config) -> HighDensityStorageServer:
    server = HighDensityStorageServer(small_config)
    server.provision_stripes(20, with_data=True)
    return server


@pytest.fixture
def hetero_server() -> HighDensityStorageServer:
    """Server with slow disks injected (10% at 4x slower)."""
    config = HDSSConfig(
        num_disks=20,
        n=9,
        k=6,
        chunk_size=64 * 1024,
        memory_chunks=12,
        spares=2,
        profile=BimodalSlowProfile(100e6, ros=0.15, slow_factor=4.0),
        seed=7,
    )
    server = HighDensityStorageServer(config)
    server.provision_stripes(40, with_data=False)
    return server


@pytest.fixture
def metadata_server(small_config) -> HighDensityStorageServer:
    """Metadata-only server (no chunk bytes) for scheduling tests."""
    server = HighDensityStorageServer(small_config)
    server.provision_stripes(30, with_data=False)
    return server
