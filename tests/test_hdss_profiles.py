"""Speed profiles: distribution shapes and determinism."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.hdss.profiles import (
    BimodalSlowProfile,
    LognormalProfile,
    NormalProfile,
    UniformProfile,
    build_disks,
)


class TestUniform:
    def test_constant(self):
        vals = UniformProfile(100.0).sample(10)
        assert np.all(vals == 100.0)

    def test_bad_bandwidth(self):
        with pytest.raises(ConfigurationError):
            UniformProfile(0)

    def test_describe(self):
        assert "uniform" in UniformProfile(1e6).describe()


class TestNormal:
    def test_mean_roughly(self):
        vals = NormalProfile(100.0, 10.0).sample(10_000, rng=0)
        assert abs(vals.mean() - 100.0) < 1.0

    def test_floor_applied(self):
        vals = NormalProfile(10.0, 100.0, floor_fraction=0.05).sample(10_000, rng=0)
        assert vals.min() >= 0.5 - 1e-12

    def test_deterministic(self):
        a = NormalProfile(100.0, 10.0).sample(100, rng=7)
        b = NormalProfile(100.0, 10.0).sample(100, rng=7)
        assert np.array_equal(a, b)


class TestLognormal:
    def test_positive(self):
        vals = LognormalProfile(100.0, 0.5).sample(1000, rng=0)
        assert np.all(vals > 0)

    def test_median_roughly(self):
        vals = LognormalProfile(100.0, 0.3).sample(20_000, rng=0)
        assert abs(np.median(vals) - 100.0) / 100.0 < 0.05


class TestBimodal:
    def test_slow_count(self):
        prof = BimodalSlowProfile(100.0, ros=0.25, slow_factor=4.0)
        vals = prof.sample(20, rng=0)
        assert (vals == 25.0).sum() == 5
        assert (vals == 100.0).sum() == 15

    def test_ros_zero(self):
        vals = BimodalSlowProfile(100.0, ros=0.0).sample(10, rng=0)
        assert np.all(vals == 100.0)

    def test_ros_one(self):
        vals = BimodalSlowProfile(100.0, ros=1.0, slow_factor=2.0).sample(10, rng=0)
        assert np.all(vals == 50.0)

    def test_bad_factor(self):
        with pytest.raises(ConfigurationError):
            BimodalSlowProfile(100.0, ros=0.1, slow_factor=0.5)

    def test_deterministic_slow_set(self):
        prof = BimodalSlowProfile(100.0, ros=0.3)
        a = prof.sample(30, rng=1)
        b = prof.sample(30, rng=1)
        assert np.array_equal(a, b)


class TestBuildDisks:
    def test_count_and_ids(self):
        disks = build_disks(5, UniformProfile(10.0), capacity=0, seed=0)
        assert [d.disk_id for d in disks] == [0, 1, 2, 3, 4]

    def test_bandwidths_from_profile(self):
        disks = build_disks(8, BimodalSlowProfile(100.0, ros=0.25), capacity=0, seed=3)
        bws = sorted(d.nominal_bandwidth for d in disks)
        assert bws[0] == 25.0 and bws[-1] == 100.0

    def test_reproducible(self):
        a = build_disks(6, LognormalProfile(1e6), capacity=0, seed=11)
        b = build_disks(6, LognormalProfile(1e6), capacity=0, seed=11)
        assert [d.nominal_bandwidth for d in a] == [d.nominal_bandwidth for d in b]
