"""Chunk stores: in-memory and file-backed backends, identical contract."""

import numpy as np
import pytest

from repro.ec.stripe import ChunkId
from repro.errors import ChunkNotFoundError, StorageError
from repro.hdss.store import FileChunkStore, InMemoryChunkStore


@pytest.fixture(params=["memory", "file"])
def store(request, tmp_path):
    if request.param == "memory":
        return InMemoryChunkStore()
    return FileChunkStore(tmp_path / "chunks")


def chunk(size=64, fill=7):
    return np.full(size, fill, dtype=np.uint8)


class TestContract:
    def test_put_get_roundtrip(self, store):
        cid = ChunkId(3, 1)
        store.put(0, cid, chunk(fill=9))
        out = store.get(0, cid)
        assert np.array_equal(out, chunk(fill=9))

    def test_get_missing_raises(self, store):
        with pytest.raises(ChunkNotFoundError):
            store.get(0, ChunkId(0, 0))

    def test_contains(self, store):
        cid = ChunkId(1, 2)
        assert not store.contains(5, cid)
        store.put(5, cid, chunk())
        assert store.contains(5, cid)
        assert (5, cid) in store

    def test_overwrite(self, store):
        cid = ChunkId(0, 0)
        store.put(0, cid, chunk(fill=1))
        store.put(0, cid, chunk(fill=2))
        assert store.get(0, cid)[0] == 2

    def test_delete(self, store):
        cid = ChunkId(0, 0)
        store.put(0, cid, chunk())
        store.delete(0, cid)
        assert not store.contains(0, cid)

    def test_delete_missing_raises(self, store):
        with pytest.raises(ChunkNotFoundError):
            store.delete(0, ChunkId(9, 9))

    def test_chunks_on_disk_sorted(self, store):
        ids = [ChunkId(2, 0), ChunkId(0, 1), ChunkId(0, 0)]
        for cid in ids:
            store.put(1, cid, chunk())
        assert store.chunks_on_disk(1) == sorted(ids)
        assert store.chunks_on_disk(99) == []

    def test_drop_disk(self, store):
        for j in range(4):
            store.put(2, ChunkId(0, j), chunk())
        store.put(3, ChunkId(0, 0), chunk())
        assert store.drop_disk(2) == 4
        assert store.chunks_on_disk(2) == []
        assert store.contains(3, ChunkId(0, 0))
        assert store.drop_disk(2) == 0

    def test_same_chunk_different_disks(self, store):
        cid = ChunkId(0, 0)
        store.put(0, cid, chunk(fill=1))
        store.put(1, cid, chunk(fill=2))
        assert store.get(0, cid)[0] == 1
        assert store.get(1, cid)[0] == 2

    def test_2d_rejected(self, store):
        with pytest.raises(StorageError):
            store.put(0, ChunkId(0, 0), np.zeros((2, 2), dtype=np.uint8))

    def test_get_returns_copy(self, store):
        cid = ChunkId(0, 0)
        store.put(0, cid, chunk(fill=5))
        out = store.get(0, cid)
        out[0] = 99
        assert store.get(0, cid)[0] == 5


class TestInMemorySpecific:
    def test_total_chunks(self):
        store = InMemoryChunkStore()
        store.put(0, ChunkId(0, 0), chunk())
        store.put(1, ChunkId(0, 1), chunk())
        assert store.total_chunks() == 2

    def test_iter_all(self):
        store = InMemoryChunkStore()
        store.put(0, ChunkId(0, 0), chunk())
        store.put(1, ChunkId(1, 0), chunk())
        assert sorted(store.iter_all()) == [(0, ChunkId(0, 0)), (1, ChunkId(1, 0))]

    def test_put_copies(self):
        store = InMemoryChunkStore()
        buf = chunk(fill=1)
        store.put(0, ChunkId(0, 0), buf)
        buf[0] = 42
        assert store.get(0, ChunkId(0, 0))[0] == 1


class TestFileSpecific:
    def test_layout_on_disk(self, tmp_path):
        store = FileChunkStore(tmp_path / "root")
        store.put(7, ChunkId(12, 3), chunk())
        expected = tmp_path / "root" / "disk-007" / "s000012.003.chunk"
        assert expected.exists()

    def test_foreign_files_ignored(self, tmp_path):
        store = FileChunkStore(tmp_path)
        store.put(0, ChunkId(0, 0), chunk())
        (tmp_path / "disk-000" / "junk.txt").write_text("x")
        (tmp_path / "disk-000" / "bad.chunk").write_bytes(b"")
        assert store.chunks_on_disk(0) == [ChunkId(0, 0)]

    def test_no_tmp_left_behind(self, tmp_path):
        store = FileChunkStore(tmp_path)
        store.put(0, ChunkId(0, 0), chunk())
        assert not list(tmp_path.rglob("*.tmp"))
