"""Chunk stores: in-memory and file-backed backends, identical contract."""

import numpy as np
import pytest

from repro.ec.stripe import ChunkId
from repro.errors import ChunkChecksumError, ChunkNotFoundError, StorageError
from repro.hdss.store import CRC_SUFFIX, FileChunkStore, InMemoryChunkStore


@pytest.fixture(params=["memory", "file"])
def store(request, tmp_path):
    if request.param == "memory":
        return InMemoryChunkStore()
    return FileChunkStore(tmp_path / "chunks")


def chunk(size=64, fill=7):
    return np.full(size, fill, dtype=np.uint8)


def dead_pid():
    """A pid guaranteed not to belong to a live process: spawn-and-reap."""
    import subprocess
    import sys

    proc = subprocess.run(
        [sys.executable, "-c", "import os; print(os.getpid())"],
        capture_output=True,
        text=True,
        check=True,
    )
    return int(proc.stdout.strip())


class TestContract:
    def test_put_get_roundtrip(self, store):
        cid = ChunkId(3, 1)
        store.put(0, cid, chunk(fill=9))
        out = store.get(0, cid)
        assert np.array_equal(out, chunk(fill=9))

    def test_get_missing_raises(self, store):
        with pytest.raises(ChunkNotFoundError):
            store.get(0, ChunkId(0, 0))

    def test_contains(self, store):
        cid = ChunkId(1, 2)
        assert not store.contains(5, cid)
        store.put(5, cid, chunk())
        assert store.contains(5, cid)
        assert (5, cid) in store

    def test_overwrite(self, store):
        cid = ChunkId(0, 0)
        store.put(0, cid, chunk(fill=1))
        store.put(0, cid, chunk(fill=2))
        assert store.get(0, cid)[0] == 2

    def test_delete(self, store):
        cid = ChunkId(0, 0)
        store.put(0, cid, chunk())
        store.delete(0, cid)
        assert not store.contains(0, cid)

    def test_delete_missing_raises(self, store):
        with pytest.raises(ChunkNotFoundError):
            store.delete(0, ChunkId(9, 9))

    def test_chunks_on_disk_sorted(self, store):
        ids = [ChunkId(2, 0), ChunkId(0, 1), ChunkId(0, 0)]
        for cid in ids:
            store.put(1, cid, chunk())
        assert store.chunks_on_disk(1) == sorted(ids)
        assert store.chunks_on_disk(99) == []

    def test_drop_disk(self, store):
        for j in range(4):
            store.put(2, ChunkId(0, j), chunk())
        store.put(3, ChunkId(0, 0), chunk())
        assert store.drop_disk(2) == 4
        assert store.chunks_on_disk(2) == []
        assert store.contains(3, ChunkId(0, 0))
        assert store.drop_disk(2) == 0

    def test_same_chunk_different_disks(self, store):
        cid = ChunkId(0, 0)
        store.put(0, cid, chunk(fill=1))
        store.put(1, cid, chunk(fill=2))
        assert store.get(0, cid)[0] == 1
        assert store.get(1, cid)[0] == 2

    def test_2d_rejected(self, store):
        with pytest.raises(StorageError):
            store.put(0, ChunkId(0, 0), np.zeros((2, 2), dtype=np.uint8))

    def test_get_returns_copy(self, store):
        cid = ChunkId(0, 0)
        store.put(0, cid, chunk(fill=5))
        out = store.get(0, cid)
        out[0] = 99
        assert store.get(0, cid)[0] == 5


class TestInMemorySpecific:
    def test_total_chunks(self):
        store = InMemoryChunkStore()
        store.put(0, ChunkId(0, 0), chunk())
        store.put(1, ChunkId(0, 1), chunk())
        assert store.total_chunks() == 2

    def test_iter_all(self):
        store = InMemoryChunkStore()
        store.put(0, ChunkId(0, 0), chunk())
        store.put(1, ChunkId(1, 0), chunk())
        assert sorted(store.iter_all()) == [(0, ChunkId(0, 0)), (1, ChunkId(1, 0))]

    def test_put_copies(self):
        store = InMemoryChunkStore()
        buf = chunk(fill=1)
        store.put(0, ChunkId(0, 0), buf)
        buf[0] = 42
        assert store.get(0, ChunkId(0, 0))[0] == 1


class TestFileSpecific:
    def test_layout_on_disk(self, tmp_path):
        store = FileChunkStore(tmp_path / "root")
        store.put(7, ChunkId(12, 3), chunk())
        expected = tmp_path / "root" / "disk-007" / "s000012.003.chunk"
        assert expected.exists()

    def test_foreign_files_ignored(self, tmp_path):
        store = FileChunkStore(tmp_path)
        store.put(0, ChunkId(0, 0), chunk())
        (tmp_path / "disk-000" / "junk.txt").write_text("x")
        (tmp_path / "disk-000" / "bad.chunk").write_bytes(b"")
        assert store.chunks_on_disk(0) == [ChunkId(0, 0)]

    def test_no_tmp_left_behind(self, tmp_path):
        store = FileChunkStore(tmp_path)
        store.put(0, ChunkId(0, 0), chunk())
        assert not list(tmp_path.rglob("*.tmp"))

    def test_stale_tmp_swept_on_startup(self, tmp_path):
        store = FileChunkStore(tmp_path)
        store.put(0, ChunkId(0, 0), chunk())
        # leftovers from a crashed writer: a half-written tmp and an
        # orphan checksum sidecar with no chunk next to it
        dead = dead_pid()
        stale = tmp_path / "disk-000" / f"s000009.001.chunk.{dead}.deadbeef.tmp"
        stale.write_bytes(b"partial")
        orphan = tmp_path / "disk-000" / ("s000009.001.chunk" + CRC_SUFFIX)
        orphan.write_text("00000000\n")
        reopened = FileChunkStore(tmp_path)
        assert not stale.exists()
        assert not orphan.exists()
        assert np.array_equal(reopened.get(0, ChunkId(0, 0)), chunk())

    def test_sweep_spares_live_writers_tmp(self, tmp_path):
        """Two stores on one directory: the sweep must not delete a tmp
        file that a live process (here: ourselves) is still writing."""
        store = FileChunkStore(tmp_path)
        store.put(0, ChunkId(0, 0), chunk())
        import os

        live = tmp_path / "disk-000" / f"s000009.001.chunk.{os.getpid()}.abc123.tmp"
        live.write_bytes(b"in flight")
        legacy = tmp_path / "disk-000" / "garbage.tmp"
        legacy.write_bytes(b"unparseable name: swept")
        FileChunkStore(tmp_path)  # concurrent open sweeps the directory
        assert live.exists()
        assert not legacy.exists()

    def test_concurrent_writers_same_chunk_stay_consistent(self, tmp_path):
        """Two threads hammering put() on one chunk id: readers only ever
        see one of the two valid payloads, and the final state verifies."""
        import threading

        store = FileChunkStore(tmp_path, durable=False)
        payloads = [chunk(fill=1), chunk(fill=2)]
        cid = ChunkId(0, 0)
        store.put(0, cid, payloads[0])
        stop = threading.Event()
        errors = []

        def writer(payload):
            while not stop.is_set():
                store.put(0, cid, payload)

        def reader():
            while not stop.is_set():
                try:
                    data = store.get(0, cid)
                except ChunkChecksumError:
                    continue  # torn put pair mid-replacement; transient
                if not (np.array_equal(data, payloads[0])
                        or np.array_equal(data, payloads[1])):
                    errors.append(data)

        threads = [threading.Thread(target=writer, args=(p,)) for p in payloads]
        threads += [threading.Thread(target=reader) for _ in range(2)]
        for t in threads:
            t.start()
        import time

        time.sleep(0.3)
        stop.set()
        for t in threads:
            t.join()
        assert not errors, "a reader observed torn chunk bytes"

    def test_get_retries_transient_sidecar_race(self, tmp_path):
        """A mismatch caused by reading mid-put must heal on the re-read."""

        class FlakySidecar(FileChunkStore):
            def __init__(self, root):
                super().__init__(root)
                self.misreads = 1

            def _read_expected_crc(self, path):
                if self.misreads:
                    self.misreads -= 1
                    return 0xDEADBEEF  # raced: stale sidecar bytes
                return super()._read_expected_crc(path)

        store = FlakySidecar(tmp_path)
        store.put(0, ChunkId(0, 0), chunk())
        data = store.get(0, ChunkId(0, 0))  # must not raise
        assert np.array_equal(data, chunk())
        assert store.checksum_failures == 0


class TestChecksumIntegrity:
    def test_sidecar_written_with_chunk(self, tmp_path):
        store = FileChunkStore(tmp_path)
        store.put(7, ChunkId(12, 3), chunk())
        sidecar = tmp_path / "disk-007" / ("s000012.003.chunk" + CRC_SUFFIX)
        assert sidecar.exists()
        int(sidecar.read_text().strip(), 16)  # hex crc, parseable

    def test_bit_flip_detected_on_get(self, tmp_path):
        store = FileChunkStore(tmp_path)
        store.put(0, ChunkId(0, 0), chunk(fill=9))
        path = tmp_path / "disk-000" / "s000000.000.chunk"
        data = bytearray(path.read_bytes())
        data[5] ^= 0x01  # a single flipped bit
        path.write_bytes(bytes(data))
        with pytest.raises(ChunkChecksumError):
            store.get(0, ChunkId(0, 0))
        assert store.checksum_failures == 1

    def test_overwrite_refreshes_sidecar(self, tmp_path):
        store = FileChunkStore(tmp_path)
        cid = ChunkId(0, 0)
        store.put(0, cid, chunk(fill=1))
        store.put(0, cid, chunk(fill=2))
        assert store.get(0, cid)[0] == 2  # sidecar matches the new bytes

    def test_verify_chunk(self, tmp_path):
        store = FileChunkStore(tmp_path)
        cid = ChunkId(0, 0)
        store.put(0, cid, chunk())
        assert store.verify_chunk(0, cid)
        path = tmp_path / "disk-000" / "s000000.000.chunk"
        path.write_bytes(b"\x00" * 64)
        with pytest.raises(ChunkChecksumError):
            store.verify_chunk(0, cid)

    def test_sidecar_less_legacy_chunk_served(self, tmp_path):
        store = FileChunkStore(tmp_path)
        cid = ChunkId(0, 0)
        store.put(0, cid, chunk(fill=4))
        sidecar = tmp_path / "disk-000" / ("s000000.000.chunk" + CRC_SUFFIX)
        sidecar.unlink()  # data written before checksums existed
        assert store.get(0, cid)[0] == 4

    def test_garbage_sidecar_counts_as_mismatch(self, tmp_path):
        store = FileChunkStore(tmp_path)
        cid = ChunkId(0, 0)
        store.put(0, cid, chunk())
        sidecar = tmp_path / "disk-000" / ("s000000.000.chunk" + CRC_SUFFIX)
        sidecar.write_text("not-a-crc\n")
        with pytest.raises(ChunkChecksumError):
            store.get(0, cid)

    def test_delete_removes_sidecar(self, tmp_path):
        store = FileChunkStore(tmp_path)
        cid = ChunkId(0, 0)
        store.put(0, cid, chunk())
        store.delete(0, cid)
        assert not list(tmp_path.rglob("*" + CRC_SUFFIX))

    def test_drop_disk_removes_sidecars(self, tmp_path):
        store = FileChunkStore(tmp_path)
        for j in range(3):
            store.put(2, ChunkId(0, j), chunk())
        assert store.drop_disk(2) == 3
        assert not list((tmp_path / "disk-002").glob("*" + CRC_SUFFIX))


class TestIntegrityEndToEnd:
    """A corrupted survivor surfaces as a degraded stripe, not a crash."""

    def make_file_backed_server(self, tmp_path):
        from repro.hdss import HDSSConfig, HighDensityStorageServer

        cfg = HDSSConfig(num_disks=14, n=9, k=6, chunk_size=2048,
                         memory_chunks=12, spares=5, seed=7)
        server = HighDensityStorageServer(
            cfg, store=FileChunkStore(tmp_path / "chunks")
        )
        server.provision_stripes(12, with_data=True)
        return server

    def test_corrupt_survivor_reported_as_degraded(self, tmp_path):
        from repro.core import FullStripeRepair, recover_disk
        from repro.core.executor import ReadPolicy
        from repro.faults import DataLossReport

        server = self.make_file_backed_server(tmp_path)
        server.fail_disk(0)
        # flip one byte in a surviving chunk of an affected stripe
        si = server.layout.stripe_set(0)[0]
        stripe = server.layout[si]
        shard = next(j for j, d in enumerate(stripe.disks) if d != 0)
        path = (tmp_path / "chunks" / f"disk-{stripe.disks[shard]:03d}"
                / f"s{si:06d}.{shard:03d}.chunk")
        data = bytearray(path.read_bytes())
        data[0] ^= 0x80
        path.write_bytes(bytes(data))

        result = recover_disk(server, FullStripeRepair(), 0,
                              policy=ReadPolicy())
        loss = result.loss
        assert isinstance(loss, DataLossReport)
        assert loss.checksum_failures >= 1
        assert not loss.has_loss  # k clean shards remain; stripe recovers
        assert si in loss.replanned

    def test_writeback_certified_by_reread(self, tmp_path):
        from repro.core import FullStripeRepair, recover_disk
        from repro.ec.stripe import ChunkId as CID

        server = self.make_file_backed_server(tmp_path)
        server.fail_disk(0)
        result = recover_disk(server, FullStripeRepair(), 0)
        assert result.certified
        for (si, shard, spare) in result.data_path.writebacks:
            assert server.store.verify_chunk(spare, CID(si, shard))
