"""Performance guardrails: the vectorised hot paths must stay vectorised.

These are generous upper bounds (10x headroom on a slow CI box), meant to
catch an accidental O(s*k) Python loop sneaking into a kernel, not to
benchmark.
"""

import time

import numpy as np

from repro.core import ActivePreliminaryRepair, ActiveSlowerFirstRepair, FullStripeRepair, execute_plan
from repro.gf import gf_mul_add_scalar, gf_mul_scalar
from repro.utils.units import MiB
from repro.workloads import normal_transfer_times


def elapsed(fn, *args, **kwargs):
    t0 = time.perf_counter()
    fn(*args, **kwargs)
    return time.perf_counter() - t0


def best_of(n, fn, *args, **kwargs):
    """Best-of-n wall time: robust to CI hosts with noisy neighbours."""
    return min(elapsed(fn, *args, **kwargs) for _ in range(n))


def gather_baseline(buf: np.ndarray) -> float:
    """Measured cost of one raw 256-entry ``np.take`` gather over ``buf``.

    The GF chunk kernels are a constant number of such gathers, so
    bounding them as a *ratio* of this baseline calibrates the guard to
    the host instead of hard-coding wall-clock seconds (which fails on
    slow or heavily loaded CI machines).
    """
    table = np.arange(256, dtype=np.uint8)
    return best_of(3, np.take, table, buf)


class TestSelectionScaling:
    def test_ap_select_10k_stripes_under_a_second(self):
        L = normal_transfer_times(10_000, 14, ros=0.08, seed=0).L
        algo = ActivePreliminaryRepair()
        assert elapsed(algo.select, L, 28) < 1.0

    def test_as_select_10k_stripes_under_100ms(self):
        L = normal_transfer_times(10_000, 14, ros=0.08, seed=0).L
        algo = ActiveSlowerFirstRepair()
        assert elapsed(algo.select, L, 28, 2.0 * float(L.mean())) < 0.1


class TestCodecThroughput:
    """GF kernels must stay within a small constant factor of one raw
    table gather on the same buffer — the bound is measured per host, so
    a loaded CI box moves the baseline and the kernel together, while an
    accidental Python loop (thousands of times slower) still fails."""

    # One gather for the multiply, gather+xor for the FMA; 10x covers
    # allocation of the output buffer plus scheduler noise. The absolute
    # floor absorbs timer jitter when the baseline itself is microscopic.
    RATIO = 10.0
    FLOOR_SECONDS = 0.25

    def test_gf_kernel_throughput(self):
        """A 16 MiB chunk-scalar multiply must run at table-gather speed."""
        rng = np.random.default_rng(0)
        buf = rng.integers(0, 256, size=16 * MiB, dtype=np.uint8)
        baseline = gather_baseline(buf)
        t = best_of(3, gf_mul_scalar, 37, buf)
        assert t < max(self.RATIO * baseline, self.FLOOR_SECONDS)

    def test_gf_fma_in_place(self):
        rng = np.random.default_rng(1)
        acc = rng.integers(0, 256, size=16 * MiB, dtype=np.uint8)
        buf = rng.integers(0, 256, size=16 * MiB, dtype=np.uint8)
        baseline = gather_baseline(buf)
        t = best_of(3, gf_mul_add_scalar, acc, 99, buf)
        assert t < max(self.RATIO * baseline, self.FLOOR_SECONDS)


class TestSimulatorScaling:
    def test_slot_sim_3200_stripes(self):
        """Full paper scale (200 GiB / 64 MiB) in single-digit seconds."""
        L = normal_transfer_times(3200, 10, ros=0.08, seed=2).L
        plan = FullStripeRepair().build_plan(L, 20)
        assert elapsed(execute_plan, plan, L, 20) < 10.0

    def test_interval_sim_is_fast(self):
        from repro.core.scheduler import ExecutionOptions

        L = normal_transfer_times(3200, 10, ros=0.08, seed=3).L
        plan = FullStripeRepair().build_plan(L, 20)
        assert elapsed(
            execute_plan, plan, L, 20, options=ExecutionOptions(model="interval")
        ) < 3.0
