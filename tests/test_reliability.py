"""Durability Monte-Carlo: lifetimes, loss detection, MTTDL shapes."""

import math

import numpy as np
import pytest

from repro.ec.stripe import Stripe, StripeLayout
from repro.errors import ConfigurationError
from repro.hdss.placement import rotating_placement
from repro.reliability import (
    ExponentialLifetime,
    WeibullLifetime,
    estimate_repair_seconds,
    simulate_durability,
)
from repro.reliability.lifetimes import YEAR_SECONDS


class TestLifetimes:
    def test_exponential_mean(self):
        model = ExponentialLifetime(mttf_seconds=1000.0)
        samples = model.sample(50_000, rng=0)
        assert abs(samples.mean() - 1000.0) / 1000.0 < 0.03
        assert model.mean() == 1000.0

    def test_afr_conversion(self):
        model = ExponentialLifetime(afr=0.5)  # half the fleet per year
        assert model.mttf_seconds == pytest.approx(2 * YEAR_SECONDS)

    def test_exactly_one_parameter(self):
        with pytest.raises(ConfigurationError):
            ExponentialLifetime()
        with pytest.raises(ConfigurationError):
            ExponentialLifetime(mttf_seconds=1.0, afr=0.1)

    def test_weibull_shape1_is_exponential(self):
        model = WeibullLifetime(scale_seconds=500.0, shape=1.0)
        assert model.mean() == pytest.approx(500.0)

    def test_weibull_mean_formula(self):
        model = WeibullLifetime(scale_seconds=100.0, shape=2.0)
        assert model.mean() == pytest.approx(100.0 * math.gamma(1.5))

    def test_sampling_seeded(self):
        m = WeibullLifetime(100.0, 1.2)
        assert np.array_equal(m.sample(10, rng=3), m.sample(10, rng=3))

    def test_describe(self):
        assert "exponential" in ExponentialLifetime(afr=0.02).describe()
        assert "weibull" in WeibullLifetime(1.0, 1.0).describe()


def small_layout(num_disks=8, stripes=16, n=5, k=3):
    return rotating_placement(num_disks, stripes, n, k)


class TestSimulateDurability:
    def test_fast_repair_never_loses(self):
        """Repair far faster than the failure interarrival: no losses."""
        layout = small_layout()
        result = simulate_durability(
            layout, num_disks=8,
            lifetime=ExponentialLifetime(mttf_seconds=100 * YEAR_SECONDS),
            repair_seconds=60.0,  # one minute
            mission_years=5, trials=200, seed=1,
        )
        assert result.losses == 0
        assert result.loss_probability == 0.0
        assert result.mttdl_seconds == float("inf")

    def test_absurdly_slow_repair_loses(self):
        """Repair slower than the mission: failures pile up and exceed m."""
        layout = small_layout()
        result = simulate_durability(
            layout, num_disks=8,
            lifetime=ExponentialLifetime(mttf_seconds=0.5 * YEAR_SECONDS),
            repair_seconds=100 * YEAR_SECONDS,
            mission_years=10, trials=200, seed=2,
        )
        assert result.losses > 150
        assert result.mean_time_to_loss is not None
        assert result.mttdl_seconds < 10 * YEAR_SECONDS

    def test_faster_repair_more_durable(self):
        """The central claim: cutting repair time cuts loss probability."""
        layout = small_layout(num_disks=12, stripes=24, n=6, k=4)
        kwargs = dict(
            num_disks=12,
            lifetime=ExponentialLifetime(mttf_seconds=0.8 * YEAR_SECONDS),
            mission_years=10,
            trials=400,
            seed=7,
        )
        slow = simulate_durability(layout, repair_seconds=30 * 24 * 3600.0, **kwargs)
        fast = simulate_durability(layout, repair_seconds=3 * 24 * 3600.0, **kwargs)
        assert fast.loss_probability < slow.loss_probability

    def test_wilson_interval_brackets_estimate(self):
        layout = small_layout()
        result = simulate_durability(
            layout, num_disks=8,
            lifetime=ExponentialLifetime(mttf_seconds=0.5 * YEAR_SECONDS),
            repair_seconds=30 * 24 * 3600.0,
            mission_years=10, trials=100, seed=3,
        )
        low, high = result.ci95
        assert low <= result.loss_probability <= high
        assert 0.0 <= low <= high <= 1.0

    def test_deterministic(self):
        layout = small_layout()
        kwargs = dict(
            num_disks=8,
            lifetime=ExponentialLifetime(mttf_seconds=1 * YEAR_SECONDS),
            repair_seconds=7 * 24 * 3600.0,
            mission_years=5, trials=100, seed=11,
        )
        a = simulate_durability(layout, **kwargs)
        b = simulate_durability(layout, **kwargs)
        assert a.losses == b.losses
        assert a.loss_probability == b.loss_probability

    def test_empty_layout_rejected(self):
        with pytest.raises(ConfigurationError):
            simulate_durability(
                StripeLayout(), num_disks=4,
                lifetime=ExponentialLifetime(afr=0.02),
                repair_seconds=1.0,
            )

    def test_summary_keys(self):
        layout = small_layout()
        result = simulate_durability(
            layout, num_disks=8,
            lifetime=ExponentialLifetime(mttf_seconds=YEAR_SECONDS),
            repair_seconds=3600.0, mission_years=1, trials=50, seed=4,
        )
        assert set(result.summary()) >= {"trials", "losses", "loss_probability", "mttdl_years"}

    def test_single_fatal_stripe_detected(self):
        """m=1 code: two overlapping failures on one stripe are fatal."""
        layout = StripeLayout()
        layout.add(Stripe(index=0, n=3, k=2, disks=(0, 1, 2)))
        result = simulate_durability(
            layout, num_disks=3,
            lifetime=ExponentialLifetime(mttf_seconds=0.2 * YEAR_SECONDS),
            repair_seconds=60 * 24 * 3600.0,  # two months
            mission_years=10, trials=200, seed=5,
        )
        assert result.losses > 0


class TestCorrelatedFailures:
    def _base_kwargs(self):
        return dict(
            num_disks=12,
            lifetime=ExponentialLifetime(mttf_seconds=1.5 * YEAR_SECONDS),
            repair_seconds=10 * 24 * 3600.0,
            mission_years=10,
            trials=300,
            seed=31,
        )

    def test_correlation_hurts_durability(self):
        layout = small_layout(num_disks=12, stripes=24, n=6, k=4)
        independent = simulate_durability(layout, **self._base_kwargs())
        correlated = simulate_durability(
            layout, enclosure_size=4, correlated_prob=0.4, **self._base_kwargs()
        )
        assert correlated.loss_probability > independent.loss_probability

    def test_zero_probability_matches_independent(self):
        layout = small_layout(num_disks=12, stripes=24, n=6, k=4)
        a = simulate_durability(layout, **self._base_kwargs())
        b = simulate_durability(
            layout, enclosure_size=4, correlated_prob=0.0, **self._base_kwargs()
        )
        assert a.loss_probability == b.loss_probability

    def test_correlation_needs_enclosures(self):
        layout = small_layout()
        with pytest.raises(ConfigurationError):
            simulate_durability(
                layout, num_disks=8,
                lifetime=ExponentialLifetime(afr=0.1),
                repair_seconds=1.0, correlated_prob=0.5,
            )

    def test_bad_probability(self):
        layout = small_layout()
        with pytest.raises(ConfigurationError):
            simulate_durability(
                layout, num_disks=8,
                lifetime=ExponentialLifetime(afr=0.1),
                repair_seconds=1.0, enclosure_size=4, correlated_prob=1.5,
            )

    def test_deterministic(self):
        layout = small_layout(num_disks=12, stripes=24, n=6, k=4)
        kwargs = self._base_kwargs()
        a = simulate_durability(layout, enclosure_size=4, correlated_prob=0.3, **kwargs)
        b = simulate_durability(layout, enclosure_size=4, correlated_prob=0.3, **kwargs)
        assert a.losses == b.losses

    def test_fast_repair_still_mitigates_correlation(self):
        """Even under backplane events, a repair window below the
        correlated-failure spread escapes the burst — the quantitative
        case for fast cooperative multi-disk repair."""
        layout = small_layout(num_disks=12, stripes=24, n=6, k=4)
        kwargs = self._base_kwargs()
        kwargs.pop("repair_seconds")
        common = dict(
            enclosure_size=4, correlated_prob=0.25,
            correlated_delay_seconds=7 * 24 * 3600.0, **kwargs,
        )
        slow = simulate_durability(layout, repair_seconds=14 * 24 * 3600.0, **common)
        fast = simulate_durability(layout, repair_seconds=0.5 * 24 * 3600.0, **common)
        assert fast.loss_probability < slow.loss_probability


class TestLatentErrors:
    def _base_kwargs(self):
        return dict(
            num_disks=12,
            lifetime=ExponentialLifetime(mttf_seconds=1.5 * YEAR_SECONDS),
            repair_seconds=10 * 24 * 3600.0,
            mission_years=10,
            trials=300,
            seed=31,
        )

    def test_zero_rate_reproduces_baseline(self):
        """The latent-error extension must not perturb the RNG stream."""
        layout = small_layout(num_disks=12, stripes=24, n=6, k=4)
        base = simulate_durability(layout, **self._base_kwargs())
        zero = simulate_durability(
            layout, latent_error_rate_per_disk_year=0.0, **self._base_kwargs()
        )
        assert base.summary() == zero.summary()
        assert zero.scrub_cycle_seconds is None
        assert zero.latent_losses == 0

    def test_shorter_scrub_cycle_more_durable(self):
        """The scrub plane's reliability argument: a tighter detection
        window shrinks the latent-error exposure, and no scrubbing at
        all is the worst case."""
        layout = small_layout(num_disks=12, stripes=24, n=6, k=4)
        kwargs = dict(latent_error_rate_per_disk_year=3.0, **self._base_kwargs())
        noscrub = simulate_durability(layout, **kwargs)
        slow = simulate_durability(
            layout, scrub_cycle_seconds=30 * 24 * 3600.0, **kwargs
        )
        fast = simulate_durability(layout, scrub_cycle_seconds=6 * 3600.0, **kwargs)
        assert fast.loss_probability <= slow.loss_probability
        assert slow.loss_probability <= noscrub.loss_probability
        assert fast.loss_probability < noscrub.loss_probability
        assert noscrub.latent_losses >= 1
        assert "latent_losses" in noscrub.summary()
        assert fast.summary()["scrub_cycle_seconds"] == 6 * 3600.0

    def test_bad_parameters_rejected(self):
        layout = small_layout()
        with pytest.raises(ConfigurationError):
            simulate_durability(
                layout, num_disks=8,
                lifetime=ExponentialLifetime(afr=0.1),
                repair_seconds=1.0, latent_error_rate_per_disk_year=-0.5,
            )
        with pytest.raises(ConfigurationError):
            simulate_durability(
                layout, num_disks=8,
                lifetime=ExponentialLifetime(afr=0.1),
                repair_seconds=1.0, scrub_cycle_seconds=0.0,
            )


class TestEstimateRepairSeconds:
    def test_matches_repair_single_disk(self, hetero_server):
        from repro.core import FullStripeRepair

        algo = FullStripeRepair()
        estimated = estimate_repair_seconds(hetero_server, algo, disk=0)
        assert estimated > 0
        # the server was not mutated
        assert hetero_server.failed_disks() == []

    def test_psr_estimate_not_worse(self, hetero_server):
        from repro.core import ActivePreliminaryRepair, FullStripeRepair

        fsr = estimate_repair_seconds(hetero_server, FullStripeRepair(), disk=0)
        ap = estimate_repair_seconds(hetero_server, ActivePreliminaryRepair(), disk=0)
        assert ap <= fsr * 1.05
