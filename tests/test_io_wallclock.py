"""Wall-clock paced-disk execution: real threads, real elapsed time."""

import threading
import time

import numpy as np
import pytest

from repro.core import ActiveSlowerFirstRepair, FullStripeRepair, RepairContext
from repro.core.scheduler import _disk_id_matrix
from repro.errors import ConfigurationError, DiskFailedError
from repro.hdss import HDSSConfig, HighDensityStorageServer
from repro.hdss.profiles import UniformProfile
from repro.io import PacedDisk, PacedDiskArray, WallClockRepairExecutor


class TestPacedDisk:
    def test_service_time(self):
        disk = PacedDisk(0, rate=1000.0)
        assert disk.service_time(500) == pytest.approx(0.5)

    def test_read_blocks_for_duration(self):
        disk = PacedDisk(0, rate=100_000.0)
        t0 = time.perf_counter()
        disk.read(5000)  # 50 ms
        elapsed = time.perf_counter() - t0
        assert elapsed >= 0.045
        assert disk.bytes_served == 5000
        assert disk.requests_served == 1

    def test_concurrent_reads_serialise(self):
        disk = PacedDisk(0, rate=100_000.0)
        t0 = time.perf_counter()
        threads = [threading.Thread(target=disk.read, args=(3000,)) for _ in range(3)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        elapsed = time.perf_counter() - t0
        assert elapsed >= 0.085  # 3 x 30 ms, serialised

    def test_different_disks_overlap(self):
        disks = [PacedDisk(i, rate=100_000.0) for i in range(3)]
        t0 = time.perf_counter()
        threads = [threading.Thread(target=d.read, args=(5000,)) for d in disks]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        elapsed = time.perf_counter() - t0
        assert elapsed < 0.14  # ~50 ms in parallel, not 150 ms

    def test_failed_disk_rejects(self):
        disk = PacedDisk(0, rate=1.0)
        disk.fail()
        with pytest.raises(DiskFailedError):
            disk.read(1)

    def test_bad_rate(self):
        with pytest.raises(ConfigurationError):
            PacedDisk(0, rate=0.0)

    def test_min_latency(self):
        disk = PacedDisk(0, rate=1e12, min_latency=0.02)
        t0 = time.perf_counter()
        disk.read(1)
        assert time.perf_counter() - t0 >= 0.015


class TestPacedDiskArray:
    def test_from_rates(self):
        array = PacedDiskArray.from_rates({0: 100.0, 1: 200.0})
        assert len(array) == 2
        assert array[1].rate == 200.0

    def test_duplicate_rejected(self):
        array = PacedDiskArray.from_rates({0: 100.0})
        with pytest.raises(ConfigurationError):
            array.add(PacedDisk(0, 1.0))

    def test_unknown_disk(self):
        with pytest.raises(ConfigurationError):
            PacedDiskArray()[5]

    def test_from_server_mirrors_bandwidths(self, small_server):
        array = PacedDiskArray.from_server(small_server, time_scale=2.0)
        assert len(array) == len(small_server.disks)
        d = small_server.disks[0]
        assert array[0].rate == pytest.approx(d.current_bandwidth * 2.0)

    def test_from_server_failed_propagates(self, small_server):
        small_server.fail_disk(3, destroy_data=False)
        array = PacedDiskArray.from_server(small_server)
        assert array[3].is_failed


@pytest.fixture
def wallclock_setup():
    """A server where memory competition (not one bottleneck disk) rules.

    Several mildly-slow disks spread the slow reads, so no single spindle's
    service capacity dominates the makespan — the regime where HD-PSR's
    memory scheduling matters and a wall-clock win is measurable.
    """
    cfg = HDSSConfig(
        num_disks=18, n=6, k=4, chunk_size=8 * 1024, memory_chunks=8, spares=2,
        profile=UniformProfile(100e6), placement="random", seed=42,
    )
    server = HighDensityStorageServer(cfg)
    server.provision_stripes(72, with_data=True)
    for d in (1, 2, 5, 7):
        server.degrade_disk(d, 8.0)
    victim = 0
    lost = {
        cid: server.store.get(victim, cid)
        for cid in server.store.chunks_on_disk(victim)
    }
    server.fail_disk(victim)
    # pace to test-friendly wall times: ~100 MB/s sim -> 2 MB/s wall
    disks = PacedDiskArray.from_server(server, time_scale=0.02)
    return server, disks, victim, lost


def run_wallclock(server, disks, victim, algorithm):
    stripe_indices, survivor_ids, L = server.transfer_time_matrix([victim], jittered=False)
    ctx = RepairContext(disk_ids=_disk_id_matrix(server, stripe_indices, survivor_ids))
    plan = algorithm.build_plan(L, server.config.memory_chunks, context=ctx)
    executor = WallClockRepairExecutor(
        server.code, server.layout, server.store, disks,
        memory_chunks=server.config.memory_chunks,
    )
    return executor.repair(plan, stripe_indices, survivor_ids, [victim])


class TestWallClockExecutor:
    def test_rebuilds_byte_exact(self, wallclock_setup):
        server, disks, victim, lost = wallclock_setup
        stats = run_wallclock(server, disks, victim, FullStripeRepair())
        assert stats.chunks_rebuilt == len(lost)
        for cid, original in lost.items():
            rebuilt = stats.rebuilt[(cid.stripe_index, cid.shard_index)]
            assert np.array_equal(rebuilt, original)

    def test_elapsed_is_real_time(self, wallclock_setup):
        server, disks, victim, _ = wallclock_setup
        t0 = time.perf_counter()
        stats = run_wallclock(server, disks, victim, FullStripeRepair())
        outer = time.perf_counter() - t0
        assert 0 < stats.elapsed_seconds <= outer + 0.05

    def test_memory_bound_respected(self, wallclock_setup):
        server, disks, victim, _ = wallclock_setup
        stats = run_wallclock(server, disks, victim, ActiveSlowerFirstRepair())
        assert stats.peak_memory_chunks <= server.config.memory_chunks

    def test_psr_faster_than_fsr_in_wall_time(self, wallclock_setup):
        """The headline claim, measured with a real clock and real threads."""
        server, disks, victim, _ = wallclock_setup
        fsr = run_wallclock(server, disks, victim, FullStripeRepair())
        # fresh pacing for the second run (stats accumulate otherwise)
        disks2 = PacedDiskArray.from_server(server, time_scale=0.02)
        psr = run_wallclock(server, disks2, victim, ActiveSlowerFirstRepair())
        assert psr.chunks_read == fsr.chunks_read
        assert psr.elapsed_seconds < fsr.elapsed_seconds

    def test_reads_accounted_on_paced_disks(self, wallclock_setup):
        server, disks, victim, _ = wallclock_setup
        stats = run_wallclock(server, disks, victim, FullStripeRepair())
        assert disks.total_bytes_served() == stats.bytes_read
