"""HD-PSR-AS: slower classification, partitioning, clamped P_a."""

import numpy as np

from repro.core.base import RepairContext
from repro.core.psr_as import (
    ActiveSlowerFirstRepair,
    classify_slow_chunks,
    slower_first_order,
)


class TestClassification:
    def test_threshold(self):
        L = np.array([[1.0, 3.0], [2.0, 0.5]])
        slow = classify_slow_chunks(L, threshold=1.5)
        assert slow.tolist() == [[False, True], [True, False]]

    def test_boundary_not_slow(self):
        assert not classify_slow_chunks(np.array([[2.0]]), 2.0)[0, 0]


class TestSlowerFirstOrder:
    def test_slowers_front_stable(self):
        slow = np.array([[False, True, False, True]])
        order = slower_first_order(slow)
        assert order.tolist() == [[1, 3, 0, 2]]

    def test_all_fast(self):
        order = slower_first_order(np.zeros((1, 4), dtype=bool))
        assert order.tolist() == [[0, 1, 2, 3]]

    def test_all_slow(self):
        order = slower_first_order(np.ones((1, 3), dtype=bool))
        assert order.tolist() == [[0, 1, 2]]

    def test_position_zero_slow_counted(self):
        """The paper's pseudocode misses a slow chunk at position 0; we must not."""
        slow = np.array([[True, False, True, False]])
        order = slower_first_order(slow)
        assert order.tolist() == [[0, 2, 1, 3]]


class TestSelect:
    def test_equation5_clamping(self):
        algo = ActiveSlowerFirstRepair()
        k = 8
        L = np.full((4, k), 1.0)
        # 0 slowers -> clamp up to 2
        pa, pr, max_slow, _ = algo.select(L, c=16, threshold=2.0)
        assert (pa, max_slow) == (2, 0)
        # 6 slowers in one stripe -> clamp down to k//2 = 4
        L2 = L.copy()
        L2[0, :6] = 10.0
        pa, _, max_slow, _ = algo.select(L2, c=16, threshold=2.0)
        assert (pa, max_slow) == (4, 6)
        # 3 slowers -> pa = 3
        L3 = L.copy()
        L3[1, :3] = 10.0
        pa, _, max_slow, _ = algo.select(L3, c=16, threshold=2.0)
        assert (pa, max_slow) == (3, 3)

    def test_pr_from_pa(self):
        algo = ActiveSlowerFirstRepair()
        L = np.full((4, 8), 1.0)
        L[0, :3] = 10.0
        pa, pr, _, _ = algo.select(L, c=16, threshold=2.0)
        assert pr == -(-16 // pa)

    def test_timed(self):
        algo = ActiveSlowerFirstRepair()
        _, _, _, seconds = algo.select(np.ones((100, 8)), c=16, threshold=2.0)
        assert seconds > 0


class TestPlan:
    def test_slowers_grouped_in_early_rounds(self):
        L = np.full((1, 8), 1.0)
        L[0, [1, 4, 6]] = 10.0  # 3 slowers
        plan = ActiveSlowerFirstRepair().build_plan(L, c=16, context=RepairContext(slow_threshold=2.0))
        assert plan.pa == 3
        first_round = plan.stripe_plans[0].rounds[0]
        assert sorted(first_round) == [1, 4, 6]

    def test_default_threshold_from_median(self):
        rng = np.random.default_rng(0)
        L = rng.uniform(1.0, 1.5, size=(20, 6))
        L[3, 2] = 50.0
        plan = ActiveSlowerFirstRepair().build_plan(L, c=12)
        assert plan.metadata["total_slow_chunks"] == 1
        assert plan.metadata["max_slow_per_stripe"] == 1

    def test_plan_valid(self):
        rng = np.random.default_rng(1)
        L = rng.uniform(1, 4, size=(25, 9))
        plan = ActiveSlowerFirstRepair().build_plan(L, c=18)
        plan.validate(9)
        assert plan.algorithm == "hd-psr-as"

    def test_stripe_order_preserved(self):
        L = np.random.default_rng(2).uniform(1, 4, size=(10, 6))
        plan = ActiveSlowerFirstRepair().build_plan(L, c=12)
        assert [sp.stripe_index for sp in plan.stripe_plans] == list(range(10))

    def test_accumulators_only_multi_round(self):
        L = np.ones((5, 6))
        plan = ActiveSlowerFirstRepair().build_plan(L, c=12, context=RepairContext(slow_threshold=9.0))
        for sp in plan.stripe_plans:
            assert sp.accumulator_chunks == (1 if sp.num_rounds > 1 else 0)
