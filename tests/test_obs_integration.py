"""Observability wired through the repair stack.

The headline assertion: a traced ``repair_single_disk`` emits exactly one
``round`` span per scheduled round and one ``stripe`` span per planned
stripe — the trace is a faithful rendering of the :class:`RepairPlan`.
"""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.core import ALGORITHMS, repair_single_disk
from repro.core.executor import DataPathExecutor
from repro.core.multi_disk import naive_multi_disk_repair
from repro.core.scheduler import ExecutionOptions
from repro.obs import (
    MetricsRegistry,
    NULL_TRACER,
    RecordingTracer,
    current_registry,
    current_tracer,
    profile,
    use_registry,
    use_tracer,
    validate_chrome_trace,
)


@pytest.fixture
def traced():
    tracer = RecordingTracer()
    registry = MetricsRegistry()
    with use_tracer(tracer), use_registry(registry):
        yield tracer, registry


class TestContextThreading:
    def test_defaults(self):
        assert current_tracer() is NULL_TRACER
        assert current_registry() is not None

    def test_nested_scopes_restore(self):
        outer, inner = RecordingTracer(), RecordingTracer()
        with use_tracer(outer):
            with use_tracer(inner):
                assert current_tracer() is inner
            assert current_tracer() is outer
        assert current_tracer() is NULL_TRACER


class TestSchedulerTracing:
    @pytest.mark.parametrize("algo", ["fsr", "hd-psr-ap"])
    def test_round_spans_match_plan(self, metadata_server, traced, algo):
        tracer, _ = traced
        metadata_server.fail_disk(0)
        out = repair_single_disk(metadata_server, ALGORITHMS[algo](), 0)
        round_spans = tracer.spans("round")
        stripe_spans = tracer.spans("stripe")
        assert len(round_spans) == out.plan.total_rounds()
        assert len(stripe_spans) == out.plan.num_stripes
        assert len(stripe_spans) == len(out.stripe_indices)
        # Simulated spans live in the sim clock domain.
        assert all(e.domain == "sim" for e in round_spans)
        # One read span per transferred chunk.
        assert len(tracer.spans("read")) == out.report.chunk_count

    def test_interval_model_round_spans_match_plan(self, metadata_server,
                                                   traced):
        tracer, _ = traced
        metadata_server.fail_disk(0)
        out = repair_single_disk(
            metadata_server, ALGORITHMS["fsr"](), 0,
            options=ExecutionOptions(model="interval"),
        )
        assert len(tracer.spans("round")) == out.plan.total_rounds()

    def test_plan_instant_and_profile_span(self, metadata_server, traced):
        tracer, registry = traced
        metadata_server.fail_disk(0)
        repair_single_disk(metadata_server, ALGORITHMS["fsr"](), 0)
        (inst,) = tracer.instants("plan")
        assert inst.args["rounds"] > 0
        assert any(e.name == "plan/fsr" for e in tracer.spans("profile"))
        snap = registry.snapshot()
        assert snap["hdpsr_profile_runs_total"]["series"][0]["value"] == 1
        rounds = snap["hdpsr_rounds_scheduled_total"]["series"][0]
        assert rounds["value"] == len(tracer.spans("round"))

    def test_untraced_run_records_metrics_only(self, metadata_server):
        registry = MetricsRegistry()
        metadata_server.fail_disk(0)
        with use_registry(registry):
            repair_single_disk(metadata_server, ALGORITHMS["fsr"](), 0)
        assert registry.get("hdpsr_plan_executions_total") is not None


class TestDataPathTracing:
    def test_executor_emits_rounds_and_writebacks(self, small_server, traced):
        tracer, registry = traced
        small_server.fail_disk(0)
        out = repair_single_disk(small_server, ALGORITHMS["fsr"](), 0)
        tracer.clear()
        stats = DataPathExecutor(small_server).repair(
            out.plan, out.stripe_indices, out.survivor_ids
        )
        datapath_rounds = [e for e in tracer.spans("round")
                           if e.track == "datapath"]
        assert len(datapath_rounds) == out.plan.total_rounds()
        assert len(tracer.spans("writeback")) == stats.stripes_repaired
        snap = registry.snapshot()
        read = snap["hdpsr_datapath_bytes_read_total"]["series"][0]["value"]
        assert read == stats.bytes_read


class TestMultiDiskTracing:
    def test_naive_phases_are_offset_sequentially(self, hetero_server, traced):
        tracer, registry = traced
        hetero_server.fail_disk(0)
        hetero_server.fail_disk(1)
        out = naive_multi_disk_repair(
            hetero_server, ALGORITHMS["fsr"], [0, 1]
        )
        phases = tracer.spans("phase")
        assert len(phases) == 2
        # Phase 2 starts exactly where phase 1 ends on the shared timeline.
        assert phases[1].ts == pytest.approx(phases[0].end)
        assert phases[-1].end == pytest.approx(out.total_time)
        snap = registry.snapshot()
        series = snap["hdpsr_multi_disk_repairs_total"]["series"]
        assert series[0]["labels"]["mode"] == "naive"


class TestCliFlags:
    def _args(self, extra):
        return ["repair", "--n", "6", "--k", "4", "--num-disks", "12",
                "--disk-size", "4MiB", "--chunk-size", "1MiB",
                "--algorithm", "fsr"] + extra

    def test_trace_and_metrics_files(self, tmp_path, capsys):
        trace = tmp_path / "out.json"
        metrics = tmp_path / "m.prom"
        rc = main(self._args(["--trace", str(trace),
                              "--metrics", str(metrics)]))
        assert rc == 0
        doc = json.loads(trace.read_text())
        assert validate_chrome_trace(doc) == []
        assert any(e.get("cat") == "round" for e in doc["traceEvents"])
        assert "hdpsr_rounds_scheduled_total" in metrics.read_text()
        outp = capsys.readouterr().out
        assert "trace written" in outp and "metrics written" in outp

    def test_jsonl_extension_switches_format(self, tmp_path):
        trace = tmp_path / "out.jsonl"
        assert main(self._args(["--trace", str(trace)])) == 0
        lines = trace.read_text().splitlines()
        assert lines and all(json.loads(line) for line in lines)

    def test_no_flags_means_no_tracing(self, tmp_path, capsys):
        assert main(self._args([])) == 0
        assert "trace written" not in capsys.readouterr().out


class TestProfileHook:
    def test_profile_record_and_metrics(self):
        registry = MetricsRegistry()
        tracer = RecordingTracer()
        with profile("block", tracer=tracer, registry=registry) as rec:
            sum(range(1000))
        assert rec.wall_seconds > 0
        assert rec.peak_bytes is None
        (span,) = tracer.spans("profile")
        assert span.name == "block" and span.domain == "wall"
        snap = registry.snapshot()
        assert snap["hdpsr_profile_runs_total"]["series"][0]["value"] == 1

    def test_trace_malloc_peak(self):
        registry = MetricsRegistry()
        with profile("alloc", trace_malloc=True, registry=registry) as rec:
            _ = bytearray(256 * 1024)
        assert rec.peak_bytes is not None
        assert rec.peak_bytes >= 256 * 1024
