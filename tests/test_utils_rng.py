"""Unit tests for repro.utils.rng."""

import numpy as np
import pytest

from repro.utils.rng import derive_seed, make_rng, optional_seed, spawn_rngs


class TestMakeRng:
    def test_int_seed_deterministic(self):
        a = make_rng(5).integers(0, 1_000_000, size=10)
        b = make_rng(5).integers(0, 1_000_000, size=10)
        assert np.array_equal(a, b)

    def test_different_seeds_differ(self):
        a = make_rng(5).integers(0, 1_000_000, size=10)
        b = make_rng(6).integers(0, 1_000_000, size=10)
        assert not np.array_equal(a, b)

    def test_generator_passthrough(self):
        gen = np.random.default_rng(0)
        assert make_rng(gen) is gen

    def test_none_gives_generator(self):
        assert isinstance(make_rng(None), np.random.Generator)


class TestDeriveSeed:
    def test_stable(self):
        assert derive_seed(42, "disk", 3) == derive_seed(42, "disk", 3)

    def test_label_sensitivity(self):
        assert derive_seed(42, "disk", 3) != derive_seed(42, "disk", 4)
        assert derive_seed(42, "disk") != derive_seed(42, "placement")

    def test_base_sensitivity(self):
        assert derive_seed(1, "x") != derive_seed(2, "x")

    def test_in_63_bit_range(self):
        for i in range(50):
            s = derive_seed(i, "label", i * 7)
            assert 0 <= s < 2**63

    def test_no_concatenation_collision(self):
        # ("ab", "c") must differ from ("a", "bc")
        assert derive_seed(0, "ab", "c") != derive_seed(0, "a", "bc")


class TestSpawnRngs:
    def test_count(self):
        assert len(spawn_rngs(0, 5)) == 5

    def test_independent_streams(self):
        streams = spawn_rngs(0, 3)
        draws = [g.integers(0, 2**32) for g in streams]
        assert len(set(draws)) == 3

    def test_reproducible(self):
        a = [g.integers(0, 2**32) for g in spawn_rngs(9, 4)]
        b = [g.integers(0, 2**32) for g in spawn_rngs(9, 4)]
        assert a == b

    def test_zero_count(self):
        assert spawn_rngs(0, 0) == []

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            spawn_rngs(0, -1)


class TestOptionalSeed:
    def test_int(self):
        assert optional_seed(7) == 7

    def test_none(self):
        assert optional_seed(None) is None

    def test_generator(self):
        assert optional_seed(np.random.default_rng(0)) is None
