"""Shard ownership: clocks, lease records, locks, rings, ClusterNode.

Every test drives the cluster plane synchronously — ``tick()`` is a plain
method, and the :class:`ClusterClock` takes an injectable time base — so
lease expiry, failover, and fencing are exercised without sleeping.
"""

import pytest

from repro.errors import FencedError, LeaseError
from repro.obs import MetricsRegistry, use_registry
from repro.service.cluster import (
    LEASE_RECORD,
    ClusterClock,
    ClusterConfig,
    ClusterNode,
    HashRing,
    LeaseRecord,
    LeaseStore,
)


@pytest.fixture(autouse=True)
def _registry():
    with use_registry(MetricsRegistry()):
        yield


def manual_clock(start=100.0):
    state = {"t": start}
    clock = ClusterClock(base=lambda: state["t"])
    return clock, state


def make_node(tmp_path, name, state, **over):
    cfg = dict(
        root=tmp_path / "cluster", node_id=name, endpoint=f"{name}:1",
        num_shards=4, lease_ttl=2.0, heartbeat_interval=0.5, durable=False,
    )
    cfg.update(over)
    return ClusterNode(
        ClusterConfig(**cfg), clock=ClusterClock(base=lambda: state["t"])
    )


# ---------------------------------------------------------------------------
class TestClusterClock:
    def test_advance_accumulates_skew(self):
        clock, state = manual_clock(50.0)
        assert clock.now() == 50.0
        clock.advance(3.5)
        assert clock.now() == 53.5
        state["t"] = 60.0
        assert clock.now() == 63.5

    def test_wall_clock_default(self):
        clock = ClusterClock()
        a = clock.now()
        assert clock.now() >= a


class TestLeaseRecord:
    def test_meta_round_trip(self):
        rec = LeaseRecord(
            shard=2, owner="a", endpoint="h:1", epoch=7,
            expires_at=123.5, renewed_at=121.5,
        )
        assert LeaseRecord.from_meta(rec.to_meta()) == rec

    def test_expiry_boundary(self):
        rec = LeaseRecord(
            shard=0, owner="a", endpoint="", epoch=1,
            expires_at=10.0, renewed_at=8.0,
        )
        assert not rec.expired(9.999)
        assert rec.expired(10.0)

    def test_malformed_meta_raises(self):
        with pytest.raises(LeaseError):
            LeaseRecord.from_meta({"shard": "x"})


class TestLeaseStore:
    def test_write_read(self, tmp_path):
        store = LeaseStore(tmp_path, durable=False)
        rec = LeaseRecord(
            shard=1, owner="a", endpoint="h:1", epoch=3,
            expires_at=5.0, renewed_at=4.0,
        )
        store.write(rec)
        assert store.read(1) == rec
        assert store.read(2) is None

    def test_torn_record_reads_as_absent(self, tmp_path):
        store = LeaseStore(tmp_path, durable=False)
        store.write(LeaseRecord(
            shard=0, owner="a", endpoint="", epoch=1,
            expires_at=5.0, renewed_at=4.0,
        ))
        path = store._lease_path(0)
        blob = path.read_bytes()
        path.write_bytes(blob[: len(blob) // 2])  # torn write
        assert store.read(0) is None

    def test_presence_and_liveness(self, tmp_path):
        store = LeaseStore(tmp_path, durable=False)
        store.publish_node("a", "h:1", alive_until=12.0, now=10.0)
        store.publish_node("b", "h:2", alive_until=12.5, now=10.5)
        assert store.live_nodes(11.0) == {"a": "h:1", "b": "h:2"}
        assert store.live_nodes(12.2) == {"b": "h:2"}
        assert store.live_nodes(99.0) == {}

    def test_lock_is_exclusive_and_breaks_stale(self, tmp_path):
        store = LeaseStore(tmp_path, durable=False, lock_stale_after=0.1)
        with store.lock(0):
            assert store._lock_path(0).exists()
        # A stale lock left by a dead process is broken, not waited out.
        store._lock_path(0).touch()
        import os
        import time
        stale = time.time() - 5.0
        os.utime(store._lock_path(0), (stale, stale))
        with store.lock(0):
            pass


class TestHashRing:
    def test_preference_is_deterministic(self):
        nodes = ["a", "b", "c"]
        ring = HashRing()
        for shard in range(8):
            assert ring.preference(shard, nodes) == ring.preference(shard, nodes)
        assert any(
            ring.preference(s, nodes) != ring.preference(0, nodes)
            for s in range(1, 8)
        )

    def test_owner_moves_only_for_departed_node(self):
        ring = HashRing()
        for shard in range(8):
            owner = ring.owner(shard, ["a", "b", "c"])
            survivors = [n for n in ("a", "b", "c") if n != owner]
            # Removing a non-owner never moves the shard.
            others = [n for n in ("a", "b", "c") if n != survivors[0]]
            if owner in others:
                assert ring.owner(shard, others) == owner

    def test_owner_of_empty_set(self):
        assert HashRing().owner(0, []) is None


# ---------------------------------------------------------------------------
class TestClusterNode:
    def test_first_comer_claims_every_shard(self, tmp_path):
        clock, state = manual_clock()
        node = make_node(tmp_path, "a", state)
        claims = node.tick()
        assert sorted(s for s, _ in claims) == [0, 1, 2, 3]
        assert all(prev is None for _, prev in claims)
        assert node.owned_shards == [0, 1, 2, 3]
        assert all(e == 1 for e in node.held.values())
        assert node.failovers == 0

    def test_renewal_keeps_epoch(self, tmp_path):
        _, state = manual_clock()
        node = make_node(tmp_path, "a", state)
        node.tick()
        state["t"] += 0.5
        assert node.tick() == []
        assert all(e == 1 for e in node.held.values())
        lease = node.store.read(0)
        assert lease.expires_at == state["t"] + 2.0

    def test_second_node_is_sticky_while_leases_live(self, tmp_path):
        _, state = manual_clock()
        a = make_node(tmp_path, "a", state)
        b = make_node(tmp_path, "b", state)
        a.tick()
        state["t"] += 0.5
        assert b.tick() == []
        assert b.owned_shards == []

    def test_expired_leases_fail_over_with_epoch_bump(self, tmp_path):
        _, state = manual_clock()
        a = make_node(tmp_path, "a", state)
        b = make_node(tmp_path, "b", state)
        a.tick()
        b.tick()
        state["t"] += 2.5  # past the TTL without a renewal from a
        claims = b.tick()
        assert sorted(s for s, _ in claims) == [0, 1, 2, 3]
        assert all(prev == "a" for _, prev in claims)
        assert all(e == 2 for e in b.held.values())
        assert b.failovers == 4

    def test_clean_release_is_claimable_immediately(self, tmp_path):
        _, state = manual_clock()
        a = make_node(tmp_path, "a", state)
        b = make_node(tmp_path, "b", state)
        a.tick()
        b.tick()
        a.release_all()
        state["t"] += 0.01  # no TTL wait: released leases expire at once
        claimed = {s for s, _ in b.tick()}
        # a's presence record is still live, so b picks up only the shards
        # the rendezvous ring assigns to b — the rest stay parked for a.
        assert claimed == {
            s for s in range(4) if HashRing().owner(s, ["a", "b"]) == "b"
        }
        # Once a's heartbeat lapses too, b sweeps up the remainder.
        state["t"] += 2.5
        b.tick()
        assert b.owned_shards == [0, 1, 2, 3]

    def test_heartbeat_misses_count_transitions(self, tmp_path):
        _, state = manual_clock()
        a = make_node(tmp_path, "a", state)
        b = make_node(tmp_path, "b", state)
        a.tick()
        b.tick()
        assert b.heartbeat_misses == 0
        state["t"] += 2.5
        b.tick()
        assert b.heartbeat_misses == 1
        state["t"] += 0.5
        b.tick()  # a is still gone, but that's the same outage
        assert b.heartbeat_misses == 1

    def test_clock_skew_expires_leases_early(self, tmp_path):
        _, state = manual_clock()
        a = make_node(tmp_path, "a", state)
        b = make_node(tmp_path, "b", state)
        a.tick()
        b.tick()
        b.clock.advance(2.5)  # b's clock runs fast: a looks dead to it
        claims = b.tick()
        assert sorted(s for s, _ in claims) == [0, 1, 2, 3]
        # ...but a, on the true clock, is fenced at its next commit.
        with pytest.raises(FencedError):
            a.check_fence(0)

    def test_fence_passes_for_live_owner(self, tmp_path):
        _, state = manual_clock()
        a = make_node(tmp_path, "a", state)
        a.tick()
        a.check_fence(3)  # disk 3 -> shard 3

    def test_fence_rejects_stale_epoch(self, tmp_path):
        _, state = manual_clock()
        a = make_node(tmp_path, "a", state)
        b = make_node(tmp_path, "b", state)
        a.tick()
        b.tick()
        state["t"] += 2.5
        b.tick()
        state["t"] += 0.6  # a's fence cache (one heartbeat) has lapsed
        with pytest.raises(FencedError) as err:
            a.check_fence(0)
        assert err.value.held_epoch == 1
        assert err.value.current_epoch == 2
        # Fencing demotes the stale owner's in-memory claim too.
        assert 0 not in a.held

    def test_fence_cache_spares_reread(self, tmp_path):
        _, state = manual_clock()
        a = make_node(tmp_path, "a", state)
        a.tick()
        a.check_fence(0)
        # Clobber the on-disk lease; within one heartbeat the cached view
        # still answers (per-chunk commits must not become per-chunk IO).
        a.store.write(LeaseRecord(
            shard=0, owner="z", endpoint="", epoch=9,
            expires_at=state["t"] + 10, renewed_at=state["t"],
        ))
        a.check_fence(0)
        state["t"] += 0.6
        with pytest.raises(FencedError):
            a.check_fence(0)

    def test_status_snapshot_shape(self, tmp_path):
        _, state = manual_clock()
        a = make_node(tmp_path, "a", state)
        a.tick()
        status = a.status()
        assert status["node"] == "a"
        assert status["owned_shards"] == [0, 1, 2, 3]
        assert status["epochs"] == {"0": 1, "1": 1, "2": 1, "3": 1}
        assert list(status["live_nodes"]) == ["a"]
        assert status["leases"]["0"]["owner"] == "a"
        assert status["leases"]["0"]["expires_in"] == 2.0

    def test_shard_of_disk_and_ownership(self, tmp_path):
        _, state = manual_clock()
        a = make_node(tmp_path, "a", state, num_shards=3)
        assert a.shard_of_disk(7) == 1
        assert not a.owns_disk(7)
        a.tick()
        assert a.owns_disk(7)

    def test_heartbeat_must_undercut_ttl(self, tmp_path):
        with pytest.raises(LeaseError):
            ClusterConfig(
                root=tmp_path, node_id="a", lease_ttl=1.0,
                heartbeat_interval=1.0,
            )

    def test_lease_record_type_constant(self, tmp_path):
        # The WAL frame type is part of the on-disk format: renaming it
        # silently orphans every existing lease file.
        assert LEASE_RECORD == "lease"
