"""Stripe placement strategies."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.hdss.placement import random_placement, rotating_placement


class TestRotating:
    def test_distinct_disks_per_stripe(self):
        layout = rotating_placement(num_disks=10, num_stripes=50, n=6, k=4)
        for stripe in layout:
            assert len(set(stripe.disks)) == 6

    def test_even_load(self):
        layout = rotating_placement(num_disks=12, num_stripes=120, n=6, k=4)
        counts = [len(layout.stripe_set(d)) for d in range(12)]
        # 120 stripes x 6 shards / 12 disks = 60 per disk exactly
        assert counts == [60] * 12

    def test_deterministic(self):
        a = rotating_placement(10, 20, 5, 3)
        b = rotating_placement(10, 20, 5, 3)
        assert all(x.disks == y.disks for x, y in zip(a, b))

    def test_n_exceeds_disks_rejected(self):
        with pytest.raises(ConfigurationError):
            rotating_placement(4, 10, 6, 4)

    def test_zero_stripes(self):
        assert len(rotating_placement(10, 0, 5, 3)) == 0

    def test_bad_nk(self):
        with pytest.raises(ConfigurationError):
            rotating_placement(10, 5, 4, 4)


class TestRandom:
    def test_distinct_disks_per_stripe(self):
        layout = random_placement(num_disks=10, num_stripes=50, n=6, k=4, seed=0)
        for stripe in layout:
            assert len(set(stripe.disks)) == 6

    def test_seeded_reproducible(self):
        a = random_placement(10, 20, 5, 3, seed=4)
        b = random_placement(10, 20, 5, 3, seed=4)
        assert all(x.disks == y.disks for x, y in zip(a, b))

    def test_seeds_differ(self):
        a = random_placement(10, 20, 5, 3, seed=4)
        b = random_placement(10, 20, 5, 3, seed=5)
        assert any(x.disks != y.disks for x, y in zip(a, b))

    def test_roughly_balanced(self):
        layout = random_placement(num_disks=10, num_stripes=2000, n=5, k=3, seed=1)
        counts = np.array([len(layout.stripe_set(d)) for d in range(10)])
        expected = 2000 * 5 / 10
        assert np.all(np.abs(counts - expected) < expected * 0.15)

    def test_negative_stripes_rejected(self):
        with pytest.raises(ConfigurationError):
            random_placement(10, -1, 5, 3)
