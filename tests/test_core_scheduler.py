"""Plan execution and single-disk repair orchestration."""

import numpy as np
import pytest

from repro.core import (
    ActivePreliminaryRepair,
    ActiveSlowerFirstRepair,
    ExecutionOptions,
    FullStripeRepair,
    PassiveRepair,
    execute_plan,
    repair_single_disk,
)
from repro.core.analysis import uniform_pa_plan
from repro.errors import ConfigurationError, StorageError
from repro.hdss import HDSSConfig, HighDensityStorageServer
from repro.hdss.profiles import BimodalSlowProfile, UniformProfile


@pytest.fixture
def L():
    return np.random.default_rng(0).uniform(1, 4, size=(20, 6))


@pytest.fixture
def failed_server():
    cfg = HDSSConfig(
        num_disks=15, n=6, k=4, chunk_size=64 * 1024, memory_chunks=8, spares=2,
        profile=BimodalSlowProfile(100e6, ros=0.2, slow_factor=4.0), seed=9,
    )
    server = HighDensityStorageServer(cfg)
    server.provision_stripes(40)
    server.fail_disk(0)
    return server


class TestExecutePlan:
    def test_slot_vs_interval_models(self, L):
        plan = uniform_pa_plan(L, pa=2, pr=6)
        slot = execute_plan(plan, L, c=12, options=ExecutionOptions(model="slot"))
        interval = execute_plan(plan, L, c=12, options=ExecutionOptions(model="interval"))
        assert slot.total_time > 0 and interval.total_time > 0
        # slot model can be slower (slot contention) but never < the ideal
        # single-stripe bound
        assert slot.total_time >= max(
            sum(max(L[i, c] for c in rnd) for rnd in sp.rounds)
            for i, sp in enumerate(plan.stripe_plans)
        ) - 1e-9

    def test_bad_model_rejected(self):
        with pytest.raises(ConfigurationError):
            ExecutionOptions(model="quantum")

    def test_max_concurrent_override(self, L):
        plan = uniform_pa_plan(L, pa=2, pr=6)
        serial = execute_plan(plan, L, c=12, options=ExecutionOptions(max_concurrent=1))
        parallel = execute_plan(plan, L, c=12, options=ExecutionOptions(max_concurrent=6))
        assert serial.total_time >= parallel.total_time

    def test_compute_time_adds(self, L):
        plan = uniform_pa_plan(L, pa=3, pr=4)
        fast = execute_plan(plan, L, c=12)
        slow = execute_plan(plan, L, c=12, options=ExecutionOptions(compute_time_per_round=0.5))
        assert slow.total_time > fast.total_time

    def test_pa_plan_without_pr_interval_model(self, L):
        """Plans with pr=None (PA-style) fall back to a derived interval count."""
        plan = uniform_pa_plan(L, pa=3, pr=4)
        plan.pr = None
        rep = execute_plan(plan, L, c=12, options=ExecutionOptions(model="interval"))
        assert rep.total_time > 0


class TestRepairSingleDisk:
    def test_requires_failed_disk(self, failed_server):
        with pytest.raises(StorageError):
            repair_single_disk(failed_server, FullStripeRepair(), 1)

    def test_all_algorithms_run(self, failed_server):
        algos = [FullStripeRepair(), ActivePreliminaryRepair(), ActiveSlowerFirstRepair(), PassiveRepair()]
        outcomes = {a.name: repair_single_disk(failed_server, a, 0) for a in algos}
        stripe_count = len(failed_server.layout.stripe_set(0))
        k = failed_server.config.k
        for name, out in outcomes.items():
            assert out.chunks_read == stripe_count * k, name
            assert out.transfer_time > 0, name
            assert len(out.stripe_indices) == stripe_count, name

    def test_psr_beats_fsr_with_slow_disks(self, failed_server):
        fsr = repair_single_disk(failed_server, FullStripeRepair(), 0)
        ap = repair_single_disk(failed_server, ActivePreliminaryRepair(), 0)
        as_ = repair_single_disk(failed_server, ActiveSlowerFirstRepair(), 0)
        pa = repair_single_disk(failed_server, PassiveRepair(), 0)
        assert ap.transfer_time < fsr.transfer_time
        assert as_.transfer_time < fsr.transfer_time
        assert pa.transfer_time <= fsr.transfer_time

    def test_acwt_improves(self, failed_server):
        fsr = repair_single_disk(failed_server, FullStripeRepair(), 0)
        ap = repair_single_disk(failed_server, ActivePreliminaryRepair(), 0)
        assert ap.acwt < fsr.acwt

    def test_probe_bytes_only_for_active(self, failed_server):
        assert repair_single_disk(failed_server, FullStripeRepair(), 0).probe_bytes == 0
        assert repair_single_disk(failed_server, PassiveRepair(), 0).probe_bytes == 0
        assert repair_single_disk(failed_server, ActivePreliminaryRepair(), 0).probe_bytes > 0

    def test_outcome_summary(self, failed_server):
        out = repair_single_disk(failed_server, FullStripeRepair(), 0)
        s = out.summary()
        assert s["algorithm"] == "fsr"
        assert s["transfer_time"] == out.transfer_time

    def test_deterministic_under_seed(self):
        def run():
            cfg = HDSSConfig(
                num_disks=12, n=6, k=4, chunk_size=64 * 1024, memory_chunks=8,
                profile=BimodalSlowProfile(100e6, ros=0.2), seed=5,
            )
            srv = HighDensityStorageServer(cfg)
            srv.provision_stripes(30)
            srv.fail_disk(2)
            return repair_single_disk(srv, ActivePreliminaryRepair(), 2, probe_noise=0.02)

        a, b = run(), run()
        assert a.transfer_time == b.transfer_time
        assert a.plan.pa == b.plan.pa

    def test_empty_disk_rejected(self):
        cfg = HDSSConfig(
            num_disks=12, n=6, k=4, chunk_size=1024, memory_chunks=8,
            profile=UniformProfile(1e6), seed=0,
        )
        srv = HighDensityStorageServer(cfg)
        srv.provision_stripes(0)
        srv.fail_disk(3)
        with pytest.raises(StorageError):
            repair_single_disk(srv, FullStripeRepair(), 3)
