"""Crash-consistent repair journal: WAL framing, replay, and --resume.

The acceptance scenario from the crash-consistency milestone lives here: a
repair killed mid-run by a scripted ``process_crash`` resumes from its
journal without re-planning or re-reading completed stripes, and the
resumed run's rebuilt bytes are identical to an uninterrupted run's.
"""

import json

import numpy as np
import pytest

from repro.cli import main as cli_main
from repro.core import ALGORITHMS, FullStripeRepair, recover_disk, recover_disks
from repro.ec.encoder import RSCode
from repro.ec.partial import PartialDecoder
from repro.ec.stripe import ChunkId
from repro.errors import JournalError
from repro.faults import (
    EXIT_CRASHED,
    FaultEvent,
    FaultSchedule,
    SimulatedCrash,
)
from repro.hdss import HDSSConfig, HighDensityStorageServer
from repro.journal import RepairJournal, WALReader, WALRecord, WALWriter
from repro.journal.journal import journal_exists, load_state
from repro.journal.wal import list_segments

CHUNK = 2048
#: Seconds one fault-free chunk read takes on the default 180 MB/s profile.
READ_SECONDS = CHUNK / 180e6


def make_server(seed=7, num_disks=14, stripes=25, memory_chunks=12):
    cfg = HDSSConfig(
        num_disks=num_disks, n=9, k=6, chunk_size=CHUNK,
        memory_chunks=memory_chunks, spares=5, seed=seed,
    )
    server = HighDensityStorageServer(cfg)
    server.provision_stripes(stripes, with_data=True)
    return server


def capture_chunks(server):
    out = {}
    for stripe in server.layout:
        for shard, disk in enumerate(stripe.disks):
            out[(stripe.index, shard)] = server.store.get(
                disk, ChunkId(stripe.index, shard)
            ).copy()
    return out


# --------------------------------------------------------------------- WAL
class TestWAL:
    def write(self, root, records, **kw):
        writer = WALWriter(root, **kw)
        for rec in records:
            writer.append(rec)
        writer.commit()
        writer.close()

    def test_roundtrip_meta_and_blobs(self, tmp_path):
        records = [
            WALRecord(type="begin", meta={"algorithm": "fsr", "n": 9}),
            WALRecord(type="round_commit", meta={"stripe": 3},
                      blobs={"acc:6": b"\x01\x02\x03", "acc:8": b""}),
            WALRecord(type="complete", meta={"ok": True}),
        ]
        self.write(tmp_path, records)
        back = list(WALReader(tmp_path))
        assert [r.type for r in back] == ["begin", "round_commit", "complete"]
        assert back[0].meta == {"algorithm": "fsr", "n": 9}
        assert back[1].blobs == {"acc:6": b"\x01\x02\x03", "acc:8": b""}
        assert back[2].meta == {"ok": True}

    def test_torn_tail_is_clipped(self, tmp_path):
        self.write(tmp_path, [
            WALRecord(type="begin", meta={}),
            WALRecord(type="stripe_done", meta={"stripe": 1}),
        ])
        seg = list_segments(tmp_path)[-1]
        # simulate a crash mid-append: half a frame at the end of the log
        with open(seg, "ab") as fh:
            fh.write(b"HDJ1\x10\x00\x00")
        back = list(WALReader(tmp_path))
        assert [r.type for r in back] == ["begin", "stripe_done"]

    def test_corrupt_record_stops_replay(self, tmp_path):
        self.write(tmp_path, [
            WALRecord(type="begin", meta={}),
            WALRecord(type="stripe_done", meta={"stripe": 1}),
            WALRecord(type="complete", meta={}),
        ])
        seg = list_segments(tmp_path)[-1]
        data = bytearray(seg.read_bytes())
        # flip one byte in the middle record's body; its CRC now fails and
        # replay must stop at the last-good prefix rather than guess
        data[len(data) // 2] ^= 0xFF
        seg.write_bytes(bytes(data))
        back = list(WALReader(tmp_path))
        assert len(back) < 3
        assert all(r.type in ("begin", "stripe_done") for r in back)

    def test_segment_rotation(self, tmp_path):
        records = [
            WALRecord(type="phase", meta={"i": i}, blobs={"b": bytes(64)})
            for i in range(10)
        ]
        writer = WALWriter(tmp_path, segment_bytes=128)
        for rec in records:
            writer.append(rec)
            writer.commit()
        writer.close()
        assert len(list_segments(tmp_path)) > 1
        back = list(WALReader(tmp_path))
        assert [r.meta["i"] for r in back] == list(range(10))

    def test_reopen_appends_new_segment(self, tmp_path):
        self.write(tmp_path, [WALRecord(type="begin", meta={})])
        self.write(tmp_path, [WALRecord(type="resume", meta={})])
        assert [r.type for r in WALReader(tmp_path)] == ["begin", "resume"]


# -------------------------------------------------- decoder state round-trip
class TestDecoderState:
    def test_state_roundtrip_mid_repair(self):
        code = RSCode(9, 6)
        rng = np.random.default_rng(11)
        message = rng.integers(0, 256, size=(6, CHUNK), dtype=np.uint8)
        shards = code.encode(message)

        survivors, targets = [0, 1, 2, 3, 5, 7], [4, 8]
        ref = PartialDecoder(code, survivors, targets)
        ref.feed({j: shards[j] for j in survivors})

        pd = PartialDecoder(code, survivors, targets)
        pd.feed({0: shards[0], 1: shards[1]})
        restored = PartialDecoder.from_state(code, pd.to_state())
        assert restored.fed == pd.fed
        assert restored.pending == pd.pending
        assert restored.rounds_fed == pd.rounds_fed
        restored.feed({j: shards[j] for j in [2, 3, 5, 7]})
        for t in targets:
            assert np.array_equal(restored.result(t), ref.result(t))

    def test_state_survives_json_and_blob_split(self, tmp_path):
        """The exact path the journal takes: acc as blobs, rest as JSON."""
        code = RSCode(9, 6)
        shards = code.encode(
            np.random.default_rng(3).integers(0, 256, (6, 64), dtype=np.uint8)
        )
        pd = PartialDecoder(code, [0, 1, 2, 3, 4, 5], [6])
        pd.feed({0: shards[0], 1: shards[1], 2: shards[2]})

        journal = RepairJournal(tmp_path, durable=False)
        journal.begin(algorithm="fsr", plan={}, stripe_indices=[0],
                      survivor_ids=[[0, 1, 2, 3, 4, 5]], failed_disks=[0],
                      fingerprint={})
        journal.round_commit(0, 0.5, pd.to_state())
        journal.close()

        state = load_state(tmp_path)
        snap = dict(state.inflight[0])
        snap.pop("outcome")
        restored = PartialDecoder.from_state(code, snap)
        restored.feed({j: shards[j] for j in [3, 4, 5]})
        assert np.array_equal(restored.result(6), shards[6])


# ------------------------------------------------------------ journal replay
class TestJournalReplay:
    def test_empty_directory_rejected(self, tmp_path):
        assert not journal_exists(tmp_path)
        with pytest.raises(JournalError):
            load_state(tmp_path)

    def test_missing_begin_rejected(self, tmp_path):
        writer = WALWriter(tmp_path, durable=False)
        writer.append(WALRecord(type="stripe_done", meta={"stripe": 0}))
        writer.commit()
        writer.close()
        with pytest.raises(JournalError):
            load_state(tmp_path)

    def test_full_lifecycle_replay(self, tmp_path):
        with RepairJournal(tmp_path, durable=False) as journal:
            journal.begin(
                algorithm="hd-psr-pa", plan={"kind": "x"},
                stripe_indices=[3, 7], survivor_ids=[[0, 1], [2, 3]],
                failed_disks=[0], fingerprint={"n": 9},
            )
            journal.stripe_done(
                3, "recovered", 0.25,
                writebacks=[(6, 12, np.arange(8, dtype=np.uint8))],
            )
            journal.stripe_done(7, "lost", 0.5, writebacks=[(6, 12, None)])
            journal.mark_resume(0.5)
            journal.complete(stripes_repaired=1)
        state = load_state(tmp_path)
        assert state.algorithm == "hd-psr-pa"
        assert state.stripe_indices == [3, 7]
        assert state.survivor_ids == [[0, 1], [2, 3]]
        assert state.resume_count == 1
        assert state.completed
        assert state.clock == 0.5
        assert state.done[3].outcome == "recovered"
        shard, spare, payload = state.done[3].writebacks[0]
        assert (shard, spare) == (6, 12)
        assert np.array_equal(payload, np.arange(8, dtype=np.uint8))
        assert state.done[7].writebacks[0][2] is None

    def test_stripe_done_clears_inflight(self, tmp_path):
        code = RSCode(9, 6)
        pd = PartialDecoder(code, [0, 1, 2, 3, 4, 5], [6], chunk_size=8)
        pd.feed({0: np.zeros(8, dtype=np.uint8)})
        with RepairJournal(tmp_path, durable=False) as journal:
            journal.begin(algorithm="fsr", plan={}, stripe_indices=[0],
                          survivor_ids=[[0]], failed_disks=[0], fingerprint={})
            journal.round_commit(0, 0.1, pd.to_state())
            journal.stripe_done(0, "recovered", 0.2)
        state = load_state(tmp_path)
        assert state.inflight == {}
        assert 0 in state.done


# ------------------------------------------------------------- crash/resume
class TestCrashResume:
    """Kill a repair mid-run; resume must be byte-identical and cheaper."""

    CRASH = FaultSchedule([
        FaultEvent(at=60 * READ_SECONDS, kind="process_crash"),
    ])

    def baseline(self):
        server = make_server()
        originals = capture_chunks(server)
        server.fail_disk(0)
        result = recover_disk(server, FullStripeRepair(), 0)
        return server, originals, result

    def crash_then_resume(self, tmp_path, faults=CRASH):
        crash_server = make_server()
        crash_server.fail_disk(0)
        with pytest.raises(SimulatedCrash):
            recover_disk(
                crash_server, FullStripeRepair(), 0,
                faults=faults, journal=tmp_path / "journal",
            )
        resume_server = make_server()
        resume_server.fail_disk(0)
        result = recover_disk(
            resume_server, FullStripeRepair(), 0,
            faults=faults, journal=tmp_path / "journal", resume=True,
        )
        return resume_server, result

    def test_crash_leaves_resumable_journal(self, tmp_path):
        server = make_server()
        server.fail_disk(0)
        with pytest.raises(SimulatedCrash):
            recover_disk(server, FullStripeRepair(), 0,
                         faults=self.CRASH, journal=tmp_path / "journal")
        state = load_state(tmp_path / "journal")
        assert not state.completed
        assert state.done  # some stripes finished before the crash
        assert state.fingerprint == server.config.fingerprint()

    def test_resume_is_byte_identical(self, tmp_path):
        base_server, originals, base = self.baseline()
        resumed_server, resumed = self.crash_then_resume(tmp_path)
        assert resumed.certified
        assert sorted(resumed.data_path.writebacks) == sorted(
            base.data_path.writebacks
        )
        for (si, shard, spare) in base.data_path.writebacks:
            rebuilt = resumed_server.store.get(spare, ChunkId(si, shard))
            assert np.array_equal(rebuilt, originals[(si, shard)]), (si, shard)

    def test_resume_skips_completed_stripes(self, tmp_path):
        _, _, base = self.baseline()
        _, resumed = self.crash_then_resume(tmp_path)
        stats = resumed.data_path
        assert stats.resumed_stripes > 0
        assert stats.replayed_chunks > 0
        # replayed stripes re-put journaled payloads: zero survivor re-reads
        assert stats.chunks_read < base.data_path.chunks_read
        assert stats.chunks_read == base.data_path.chunks_read - \
            6 * stats.resumed_stripes

    def test_resume_of_complete_journal_reads_nothing(self, tmp_path):
        server = make_server()
        server.fail_disk(0)
        done = recover_disk(server, FullStripeRepair(), 0,
                            journal=tmp_path / "journal")
        assert done.certified

        again = make_server()
        again.fail_disk(0)
        result = recover_disk(again, FullStripeRepair(), 0,
                              journal=tmp_path / "journal", resume=True)
        assert result.certified
        assert result.data_path.chunks_read == 0
        assert result.data_path.resumed_stripes == len(
            result.outcome.stripe_indices
        )

    def test_fingerprint_mismatch_refused(self, tmp_path):
        server = make_server()
        server.fail_disk(0)
        with pytest.raises(SimulatedCrash):
            recover_disk(server, FullStripeRepair(), 0,
                         faults=self.CRASH, journal=tmp_path / "journal")
        other = make_server(num_disks=16)
        other.fail_disk(0)
        with pytest.raises(JournalError, match="num_disks"):
            recover_disk(other, FullStripeRepair(), 0,
                         faults=self.CRASH, journal=tmp_path / "journal",
                         resume=True)

    def test_resume_without_journal_rejected(self):
        server = make_server()
        server.fail_disk(0)
        with pytest.raises(JournalError):
            recover_disk(server, FullStripeRepair(), 0, resume=True)

    def test_double_crash_double_resume(self, tmp_path):
        """Each incarnation survives exactly one more scripted crash."""
        faults = FaultSchedule([
            FaultEvent(at=30 * READ_SECONDS, kind="process_crash"),
            FaultEvent(at=60 * READ_SECONDS, kind="process_crash"),
        ])
        for _ in range(2):
            server = make_server()
            server.fail_disk(0)
            with pytest.raises(SimulatedCrash):
                recover_disk(server, FullStripeRepair(), 0, faults=faults,
                             journal=tmp_path / "journal",
                             resume=journal_exists(tmp_path / "journal"))
        assert load_state(tmp_path / "journal").resume_count == 1
        final = make_server()
        final.fail_disk(0)
        result = recover_disk(final, FullStripeRepair(), 0, faults=faults,
                              journal=tmp_path / "journal", resume=True)
        assert result.certified

    def test_multi_disk_crash_resume(self, tmp_path):
        base_server = make_server()
        originals = capture_chunks(base_server)
        base_server.fail_disk(0)
        base_server.fail_disk(1)
        base = recover_disks(base_server, FullStripeRepair(), [0, 1])

        crash_server = make_server()
        crash_server.fail_disk(0)
        crash_server.fail_disk(1)
        with pytest.raises(SimulatedCrash):
            recover_disks(crash_server, FullStripeRepair(), [0, 1],
                          faults=self.CRASH, journal=tmp_path / "journal")
        resume_server = make_server()
        resume_server.fail_disk(0)
        resume_server.fail_disk(1)
        resumed = recover_disks(resume_server, FullStripeRepair(), [0, 1],
                                faults=self.CRASH,
                                journal=tmp_path / "journal", resume=True)
        assert resumed.certified
        assert sorted(resumed.data_path.writebacks) == sorted(
            base.data_path.writebacks
        )
        for (si, shard, spare) in base.data_path.writebacks:
            rebuilt = resume_server.store.get(spare, ChunkId(si, shard))
            assert np.array_equal(rebuilt, originals[(si, shard)]), (si, shard)


class TestMidStripeResume:
    """Crash between rounds of one stripe; resume continues mid-stripe.

    Needs a genuinely multi-round plan: hd-psr-as at c=8 splits each
    stripe's k=6 reads into rounds of 2, so a crash can land with a stripe
    partially fed and its accumulator checkpointed in the journal.
    """

    def test_inflight_stripe_continues_from_checkpoint(self, tmp_path):
        crash = FaultSchedule([
            FaultEvent(at=8.5 * READ_SECONDS, kind="process_crash"),
        ])
        base_server = make_server(memory_chunks=8)
        originals = capture_chunks(base_server)
        base_server.fail_disk(0)
        base = recover_disk(base_server, ALGORITHMS["hd-psr-as"](), 0)

        crash_server = make_server(memory_chunks=8)
        crash_server.fail_disk(0)
        with pytest.raises(SimulatedCrash):
            recover_disk(crash_server, ALGORITHMS["hd-psr-as"](), 0,
                         faults=crash, journal=tmp_path / "journal")
        state = load_state(tmp_path / "journal")
        assert state.inflight, "crash time missed the mid-stripe window"
        snap = next(iter(state.inflight.values()))
        assert snap["fed"] and snap["pending"]

        resume_server = make_server(memory_chunks=8)
        resume_server.fail_disk(0)
        resumed = recover_disk(resume_server, ALGORITHMS["hd-psr-as"](), 0,
                               faults=crash, journal=tmp_path / "journal",
                               resume=True)
        assert resumed.certified
        # the in-flight stripe re-read only its pending survivors
        assert resumed.data_path.chunks_read < base.data_path.chunks_read
        for (si, shard, spare) in base.data_path.writebacks:
            rebuilt = resume_server.store.get(spare, ChunkId(si, shard))
            assert np.array_equal(rebuilt, originals[(si, shard)]), (si, shard)


# --------------------------------------------------------------------- CLI
class TestCLI:
    SERVER_ARGS = [
        "--algorithm", "hd-psr-pa", "--disk", "0", "--num-disks", "14",
        "--disk-size", "256KiB", "--chunk-size", "32KiB",
    ]

    def test_crash_exit_code_then_resume(self, tmp_path, capsys):
        spec = tmp_path / "crash.json"
        spec.write_text(json.dumps(
            {"events": [{"at": 0.007, "kind": "process_crash"}]}
        ))
        argv = ["repair", *self.SERVER_ARGS,
                "--faults", str(spec), "--journal", str(tmp_path / "j")]
        assert cli_main(argv) == EXIT_CRASHED
        err = capsys.readouterr().err
        assert "--resume" in err
        assert cli_main(argv + ["--resume"]) == 0
        out = capsys.readouterr().out
        assert "certified" in out

    def test_journal_without_faults_runs_hardened(self, tmp_path, capsys):
        argv = ["repair", *self.SERVER_ARGS, "--journal", str(tmp_path / "j")]
        assert cli_main(argv) == 0
        assert journal_exists(tmp_path / "j")
        assert "certified" in capsys.readouterr().out

    def test_resume_without_journal_rejected(self, capsys):
        assert cli_main(["repair", *self.SERVER_ARGS, "--resume"]) == 2
        assert "--journal" in capsys.readouterr().err
