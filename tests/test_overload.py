"""Overload control: deadlines, the brownout controller, retry budgets,
and the flash-crowd chaos scenario.

Unit layers first — :class:`Deadline` and :class:`OverloadController` are
clock-injected, so the CoDel window arithmetic is tested without
sleeping — then daemon-backed tests that drive real TCP round trips
(two-hop deadline propagation: client → daemon admission → gate), and
finally one positive + one negative flash-crowd episode, which is the
acceptance test of the whole stack: bounded p99 *with* control, budget
violation *without* it, byte-identical repair either way. No
pytest-asyncio in the toolchain: tests drive coroutines via
``asyncio.run``.
"""

import asyncio

import pytest

from repro.core import ALGORITHMS
from repro.errors import (
    ConfigurationError,
    DeadlineExceededError,
    OverloadError,
)
from repro.hdss.server import HDSSConfig, HighDensityStorageServer
from repro.hdss.store import InMemoryChunkStore
from repro.obs import MetricsRegistry, use_registry
from repro.service.chaos_overload import (
    OverloadChaosConfig,
    SlowStore,
    run_overload_chaos,
)
from repro.service.client import ClusterClient, ServiceClient
from repro.service.netserver import ServiceDaemon
from repro.service.overload import (
    CLASS_DEGRADED,
    CLASS_READ,
    CLASS_REPAIR,
    CLASS_SCRUB,
    STATE_BROWNED_OUT,
    STATE_HEALTHY,
    STATE_SHEDDING,
    Deadline,
    OverloadConfig,
    OverloadController,
    RetryBudget,
)
from repro.service.protocol import ERR_DEADLINE, ERR_OVERLOAD
from repro.service.service import RepairService, ServiceConfig


@pytest.fixture(autouse=True)
def _registry():
    with use_registry(MetricsRegistry()):
        yield


class FakeClock:
    def __init__(self, now: float = 100.0) -> None:
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


# ------------------------------------------------------------------ Deadline
class TestDeadline:
    def test_budget_counts_down_on_the_injected_clock(self):
        clock = FakeClock()
        deadline = Deadline.from_budget_ms(50.0, clock=clock)
        assert deadline.remaining() == pytest.approx(0.05)
        assert not deadline.expired
        clock.advance(0.049)
        deadline.check("gate")  # still alive: no raise
        clock.advance(0.002)
        assert deadline.expired
        with pytest.raises(DeadlineExceededError) as err:
            deadline.check("gate")
        assert err.value.hop == "gate"
        assert err.value.overshoot_seconds == pytest.approx(0.001, abs=1e-6)

    def test_negative_budget_rejected(self):
        with pytest.raises(ConfigurationError):
            Deadline.from_budget_ms(-1.0)

    def test_zero_budget_expires_at_first_hop(self):
        deadline = Deadline.from_budget_ms(0.0, clock=FakeClock())
        with pytest.raises(DeadlineExceededError) as err:
            deadline.check("admission")
        assert err.value.hop == "admission"


# -------------------------------------------------------------- controller
def make_controller(clock, **overrides):
    defaults = dict(
        target_ms=5.0, shed_target_ms=50.0, interval_ms=100.0,
        recovery_intervals=2, idle_reset_s=10.0, queue_cap=4,
    )
    defaults.update(overrides)
    return OverloadController(OverloadConfig(**defaults), clock=clock)


def feed_window(ctrl, clock, disk, wait_s, observations=3):
    """One full CoDel interval of identical waits, then the rollover."""
    for _ in range(observations):
        ctrl.observe_wait(disk, wait_s)
        clock.advance(0.04)
    ctrl.observe_wait(disk, wait_s)  # past interval_ms: judges the window


class TestOverloadController:
    def test_transient_burst_does_not_trip(self):
        # CoDel's whole point: one horrific wait inside a window whose
        # *minimum* stayed low is a burst, not a standing queue.
        clock = FakeClock()
        ctrl = make_controller(clock)
        ctrl.observe_wait(1, 0.5)
        clock.advance(0.05)
        ctrl.observe_wait(1, 0.001)  # the lucky read proves no standing queue
        clock.advance(0.06)
        ctrl.observe_wait(1, 0.002)  # rollover: min is 1 ms < target
        assert ctrl.state == STATE_HEALTHY

    def test_standing_queue_browns_out_then_sheds(self):
        clock = FakeClock()
        ctrl = make_controller(clock)
        feed_window(ctrl, clock, disk=1, wait_s=0.010)  # min 10 ms > 5 ms
        assert ctrl.state == STATE_BROWNED_OUT
        feed_window(ctrl, clock, disk=1, wait_s=0.080)  # min 80 ms > 50 ms
        assert ctrl.state == STATE_SHEDDING
        assert ctrl.transitions == 2

    def test_worst_disk_wins(self):
        clock = FakeClock()
        ctrl = make_controller(clock)
        feed_window(ctrl, clock, disk=1, wait_s=0.001)
        feed_window(ctrl, clock, disk=2, wait_s=0.080)
        assert ctrl.state == STATE_SHEDDING

    def test_recovery_needs_consecutive_clean_windows(self):
        clock = FakeClock()
        ctrl = make_controller(clock)
        feed_window(ctrl, clock, disk=1, wait_s=0.080)
        assert ctrl.state == STATE_SHEDDING
        feed_window(ctrl, clock, disk=1, wait_s=0.001)
        assert ctrl.state == STATE_SHEDDING  # one clean window isn't enough
        feed_window(ctrl, clock, disk=1, wait_s=0.001)
        assert ctrl.state == STATE_BROWNED_OUT  # de-escalates one level
        for _ in range(2):
            feed_window(ctrl, clock, disk=1, wait_s=0.001)
        assert ctrl.state == STATE_HEALTHY

    def test_idle_disk_forgotten(self):
        clock = FakeClock()
        ctrl = make_controller(clock, idle_reset_s=1.0)
        feed_window(ctrl, clock, disk=1, wait_s=0.080)
        assert ctrl.state == STATE_SHEDDING
        clock.advance(1.5)  # no traffic at all: the queue is gone
        assert ctrl.state == STATE_HEALTHY

    def test_shed_priority_strict_and_inverse_to_cost(self):
        clock = FakeClock()
        ctrl = make_controller(clock, queue_cap=4)
        feed_window(ctrl, clock, disk=1, wait_s=0.080)
        assert ctrl.state == STATE_SHEDDING
        # repair is never refused, only paced:
        ctrl.admit(CLASS_REPAIR, queue_depth=100)
        assert ctrl.repair_pause() > 0.0
        # degraded decodes are refused outright:
        with pytest.raises(OverloadError) as err:
            ctrl.admit(CLASS_DEGRADED)
        assert err.value.work_class == CLASS_DEGRADED
        assert err.value.retry_after_ms > 0.0
        # plain reads survive until the queue-cap backstop:
        ctrl.admit(CLASS_READ, queue_depth=3)
        with pytest.raises(OverloadError):
            ctrl.admit(CLASS_READ, queue_depth=4)

    def test_healthy_and_browned_admit_everything(self):
        clock = FakeClock()
        ctrl = make_controller(clock)
        for state_setup in (0.001, 0.010):  # healthy, then browned_out
            feed_window(ctrl, clock, disk=1, wait_s=state_setup)
            ctrl.admit(CLASS_DEGRADED)
            ctrl.admit(CLASS_READ, queue_depth=10_000)

    def test_repair_pause_zero_while_healthy(self):
        clock = FakeClock()
        ctrl = make_controller(clock, repair_pace_ms=20.0)
        assert ctrl.repair_pause() == 0.0
        feed_window(ctrl, clock, disk=1, wait_s=0.010)
        browned = ctrl.repair_pause()
        feed_window(ctrl, clock, disk=1, wait_s=0.080)
        assert ctrl.repair_pause() == pytest.approx(2.0 * browned)

    def test_retry_after_scales_with_measured_wait(self):
        clock = FakeClock()
        ctrl = make_controller(clock, retry_after_floor_ms=25.0)
        assert ctrl.retry_after_ms() >= 100.0  # floor: the interval
        feed_window(ctrl, clock, disk=1, wait_s=0.200)
        assert ctrl.retry_after_ms() == pytest.approx(400.0)  # 2x min wait

    def test_snapshot_shape(self):
        clock = FakeClock()
        ctrl = make_controller(clock)
        feed_window(ctrl, clock, disk=3, wait_s=0.080)
        with pytest.raises(OverloadError):
            ctrl.admit(CLASS_DEGRADED)
        snap = ctrl.snapshot()
        assert snap["state"] == STATE_SHEDDING
        assert snap["sheds_total"] == 1
        assert snap["browned_disks"] == [3]
        assert snap["retry_after_ms"] > 0.0

    def test_config_validation(self):
        with pytest.raises(ConfigurationError):
            OverloadConfig(target_ms=0.0)
        with pytest.raises(ConfigurationError):
            OverloadConfig(target_ms=10.0, shed_target_ms=5.0)
        with pytest.raises(ConfigurationError):
            OverloadConfig(recovery_intervals=0)


# ----------------------------------------------------------- scrub pacing
class TestScrubThrottle:
    def test_throttle_walks_the_states(self):
        """1.0 healthy → brownout factor browned out → None (park) shedding."""
        clock = FakeClock()
        ctrl = make_controller(clock, scrub_brownout_factor=6.0)
        assert ctrl.scrub_throttle() == 1.0
        assert ctrl.scrub_paced == 0
        feed_window(ctrl, clock, disk=1, wait_s=0.010)  # min 10 ms > 5 ms
        assert ctrl.state == STATE_BROWNED_OUT
        assert ctrl.scrub_throttle() == 6.0
        feed_window(ctrl, clock, disk=1, wait_s=0.080)  # min 80 ms > 50 ms
        assert ctrl.state == STATE_SHEDDING
        assert ctrl.scrub_throttle() is None
        assert ctrl.scrub_paced == 2
        assert ctrl.snapshot()["scrub_paced"] == 2

    def test_shedding_sheds_scrub_before_reads(self):
        """Scrub is the cheapest work class: refused outright while a
        below-cap plain read still passes."""
        clock = FakeClock()
        ctrl = make_controller(clock)
        ctrl.admit(CLASS_SCRUB)  # healthy: admitted
        feed_window(ctrl, clock, disk=1, wait_s=0.080)
        assert ctrl.state == STATE_SHEDDING
        with pytest.raises(OverloadError) as err:
            ctrl.admit(CLASS_SCRUB)
        assert err.value.work_class == CLASS_SCRUB
        ctrl.admit(CLASS_READ, queue_depth=0)  # protected class: no raise

    def test_recovery_restores_full_rate(self):
        clock = FakeClock()
        ctrl = make_controller(clock, idle_reset_s=1.0)
        feed_window(ctrl, clock, disk=1, wait_s=0.080)
        assert ctrl.scrub_throttle() is None
        clock.advance(2.0)  # idle expiry returns the disk to healthy
        assert ctrl.state == STATE_HEALTHY
        assert ctrl.scrub_throttle() == 1.0


# ------------------------------------------------------------ retry budget
class TestRetryBudget:
    def test_exhaustion_after_cap_retries(self):
        budget = RetryBudget(ratio=0.0, cap=3.0)
        assert [budget.allow_retry() for _ in range(4)] == [
            True, True, True, False,
        ]
        assert budget.exhausted_count == 1

    def test_requests_earn_fractional_tokens(self):
        budget = RetryBudget(ratio=0.25, cap=2.0)
        for _ in range(2):
            assert budget.allow_retry()
        assert not budget.allow_retry()  # bucket dry
        for _ in range(4):  # 4 successful first attempts earn one token
            budget.on_request()
        assert budget.allow_retry()
        assert not budget.allow_retry()

    def test_cap_bounds_hoarding(self):
        budget = RetryBudget(ratio=1.0, cap=2.0)
        for _ in range(100):
            budget.on_request()
        assert budget.tokens == 2.0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            RetryBudget(ratio=1.5)
        with pytest.raises(ConfigurationError):
            RetryBudget(cap=0.5)


# ----------------------------------------------------- daemon-backed layers
def make_server(store=None, seed=11):
    config = HDSSConfig(
        num_disks=12, n=5, k=3, chunk_size=2048, memory_chunks=16,
        spares=3, seed=seed, placement="rotating",
    )
    server = HighDensityStorageServer(config, store=store)
    server.provision_stripes(12, with_data=True)
    return server


async def start_daemon(service, **kwargs):
    daemon = ServiceDaemon(service, **kwargs)
    port = await daemon.start()
    task = asyncio.create_task(daemon.serve_until_stopped())
    return daemon, port, task


async def stop_daemon(port, task):
    control = await ServiceClient.connect("127.0.0.1", port)
    try:
        await control.call("shutdown")
    finally:
        await control.close()
    await task


class TestDeadlinePropagation:
    """Two-hop deadline propagation: client → daemon admission → gate."""

    def test_deadline_expires_at_each_hop(self):
        async def run():
            # 50 ms of real service time per read behind a width-1 gate:
            # concurrent reads of one chunk queue 50 ms apart, so a 75 ms
            # budget admits the first two and kills the rest *at the gate*
            # (they were alive at admission).
            store = SlowStore(InMemoryChunkStore(), service_time_s=0.05)
            server = make_server(store=store)
            service = RepairService(
                server, ALGORITHMS["hd-psr-ap"](),
                ServiceConfig(per_disk_reads=1),
            )
            daemon, port, task = await start_daemon(service)
            conns = [
                await ServiceClient.connect("127.0.0.1", port)
                for _ in range(6)
            ]
            try:
                results = await asyncio.gather(
                    *(c.read_chunk(0, 0, deadline_ms=75.0) for c in conns),
                    return_exceptions=True,
                )
                # hop 1: an already-expired budget dies at admission,
                # before touching any queue.
                with pytest.raises(Exception) as err:
                    await conns[0].read_chunk(0, 0, deadline_ms=0.0)
                admission_err = err.value
            finally:
                for c in conns:
                    await c.close()
                await stop_daemon(port, task)

            ok = [r for r in results if not isinstance(r, Exception)]
            dead = [r for r in results if isinstance(r, Exception)]
            assert len(ok) >= 1, "at least the head of the queue must win"
            assert len(dead) >= 2, "the tail must be shed at the gate"
            for exc in dead:
                assert exc.code == ERR_DEADLINE
                assert not exc.retryable
                assert exc.reply["hop"] == "gate"
                assert exc.reply["overshoot_ms"] >= 0.0
            assert admission_err.code == ERR_DEADLINE
            assert admission_err.reply["hop"] == "admission"
            return service

        service = asyncio.run(run())
        # The daemon's controller saw both corpses arrive.
        assert service.overload is None  # deadlines work without a controller

    def test_deadline_tallied_by_controller_when_enabled(self):
        async def run():
            store = SlowStore(InMemoryChunkStore(), service_time_s=0.05)
            server = make_server(store=store)
            service = RepairService(
                server, ALGORITHMS["hd-psr-ap"](),
                ServiceConfig(per_disk_reads=1, overload=OverloadConfig()),
            )
            daemon, port, task = await start_daemon(service)
            conns = [
                await ServiceClient.connect("127.0.0.1", port)
                for _ in range(5)
            ]
            try:
                await asyncio.gather(
                    *(c.read_chunk(0, 0, deadline_ms=60.0) for c in conns),
                    return_exceptions=True,
                )
            finally:
                for c in conns:
                    await c.close()
                await stop_daemon(port, task)
            return service.overload.deadline_expired

        assert asyncio.run(run()) >= 1


class TestClusterClientBudgets:
    def test_overload_retries_stop_when_budget_dry(self):
        async def run():
            # max_inflight=0: every read is refused with a retryable
            # overload + retry_after_ms. An unmetered client would ride
            # the full retry ladder; the budget must cut it short.
            server = make_server()
            service = RepairService(server, ALGORITHMS["hd-psr-ap"]())
            daemon, port, task = await start_daemon(service, max_inflight=0)
            endpoint = f"127.0.0.1:{port}"
            client = ClusterClient(
                [endpoint], retries=8, hedge_after=None,
                retry_budget_ratio=0.0, retry_budget_cap=2.0,
            )
            try:
                with pytest.raises(Exception) as err:
                    await client.read_chunk(0, 0)
                budget = client.retry_budget(endpoint)
                assert err.value.code == ERR_OVERLOAD
                assert err.value.reply.get("retry_after_ms", 0) > 0
                # cap=2 → exactly 2 metered retries then surfacing, far
                # below the configured 8-retry ladder.
                assert budget.exhausted_count >= 1
                assert budget.tokens < 1.0
                assert client.retry_count <= 3
            finally:
                await client.close()
                await stop_daemon(port, task)

        asyncio.run(run())


# ---------------------------------------------------------- chaos episodes
def quick_chaos(control: bool) -> dict:
    return run_overload_chaos(OverloadChaosConfig(
        control=control,
        base_rate=60.0,
        spike_factor=10.0,
        pre_seconds=0.8,
        spike_seconds=0.8,
        post_seconds=0.4,
        deadline_ms=80.0,
        p99_budget=0.25,
        stripes=8,
    ))


class TestOverloadChaos:
    def test_flash_crowd_with_control(self):
        report = quick_chaos(control=True)
        assert report["passed"], report["failures"]
        # brownout entered and exited:
        assert report["max_state_level"] >= 1
        assert report["recovered_healthy"]
        # at least one shed carried the backoff hint on the wire:
        assert report["sheds"] + report["deadline_expired"] >= 1
        if report["sheds"]:
            assert report["shed_example"]["retry_after_ms"] > 0
            assert report["shed_example"]["retryable"] is True
        # bounded tail, preserved goodput, clean repair:
        assert report["read_p99_seconds"] <= report["p99_budget"]
        assert report["goodput_spike_per_s"] >= 0.8 * report["goodput_pre_per_s"]
        assert report["byte_identical"]
        assert report["repair"].get("certified")

    def test_flash_crowd_negative_control_violates_budget(self):
        report = quick_chaos(control=False)
        # Without the controller the same schedule must blow the budget —
        # this is what proves the bounded p99 above is earned, not free.
        assert report["p99_violated"], (
            "negative control stayed under budget; the scenario is not "
            "actually saturating the hot disk"
        )
        assert report["errors"] == {}  # nothing shed: everything queued
        # ...but correctness never degrades, only latency:
        assert report["byte_identical"]
        assert report["repair"].get("certified")
        assert report["passed"], report["failures"]
