"""Full-stripe reconstruction: the MDS property, targets, error paths."""

from itertools import combinations

import numpy as np
import pytest

from repro.ec import RSCode
from repro.ec.decoder import decode_matrix_for, reconstruction_coefficients
from repro.errors import CodingError, InsufficientShardsError
from repro.gf import gf_identity, gf_mat_mul


@pytest.fixture
def rng():
    return np.random.default_rng(21)


@pytest.fixture
def code():
    return RSCode(6, 4)


@pytest.fixture
def shards(code, rng):
    data = rng.integers(0, 256, size=4 * 256, dtype=np.uint8).tobytes()
    return code.encode(code.split(data))


class TestDecodeMatrix:
    def test_data_survivors_give_identity(self, code):
        assert np.array_equal(decode_matrix_for(code, [0, 1, 2, 3]), gf_identity(4))

    def test_inverse_property(self, code):
        ids = [1, 3, 4, 5]
        dec = decode_matrix_for(code, ids)
        assert np.array_equal(gf_mat_mul(dec, code.matrix[ids]), gf_identity(4))

    def test_wrong_count(self, code):
        with pytest.raises(InsufficientShardsError):
            decode_matrix_for(code, [0, 1, 2])

    def test_duplicates_rejected(self, code):
        with pytest.raises(CodingError):
            decode_matrix_for(code, [0, 0, 1, 2])

    def test_out_of_range(self, code):
        with pytest.raises(CodingError):
            decode_matrix_for(code, [0, 1, 2, 9])


class TestReconstructionCoefficients:
    def test_rebuild_data_shard(self, code, shards):
        coeffs = reconstruction_coefficients(code, [1, 2, 3, 4], target=0)
        acc = np.zeros_like(shards[0])
        for sid, c in coeffs.items():
            from repro.gf import gf_mul_add_scalar

            gf_mul_add_scalar(acc, c, shards[sid])
        assert np.array_equal(acc, shards[0])

    def test_rebuild_parity_shard(self, code, shards):
        coeffs = reconstruction_coefficients(code, [0, 1, 2, 3], target=5)
        acc = np.zeros_like(shards[0])
        from repro.gf import gf_mul_add_scalar

        for sid, c in coeffs.items():
            gf_mul_add_scalar(acc, c, shards[sid])
        assert np.array_equal(acc, shards[5])

    def test_bad_target(self, code):
        with pytest.raises(CodingError):
            reconstruction_coefficients(code, [0, 1, 2, 3], target=6)


class TestReconstructMDS:
    def test_any_two_erasures(self, code, shards):
        """Exhaustive MDS check: every erasure pattern up to m=2 decodes."""
        for lost in combinations(range(6), 2):
            holed = [None if j in lost else shards[j] for j in range(6)]
            rebuilt = code.reconstruct(holed)
            for j in range(6):
                assert np.array_equal(rebuilt[j], shards[j]), (lost, j)

    def test_single_erasure(self, code, shards):
        for lost in range(6):
            holed = [None if j == lost else shards[j] for j in range(6)]
            rebuilt = code.reconstruct(holed)
            assert np.array_equal(rebuilt[lost], shards[lost])

    def test_three_erasures_unrecoverable(self, code, shards):
        holed = [None, None, None] + list(shards[3:])
        with pytest.raises(InsufficientShardsError):
            code.reconstruct(holed)

    def test_targets_subset(self, code, shards):
        holed = [None, shards[1], None, shards[3], shards[4], shards[5]]
        out = code.reconstruct(holed, targets=[0])
        assert np.array_equal(out[0], shards[0])
        assert out[2] is None  # not requested

    def test_target_not_missing_rejected(self, code, shards):
        with pytest.raises(CodingError):
            code.reconstruct(list(shards), targets=[0])

    def test_nothing_missing_noop(self, code, shards):
        out = code.reconstruct(list(shards))
        for a, b in zip(out, shards):
            assert np.array_equal(a, b)

    def test_wrong_length(self, code, shards):
        with pytest.raises(CodingError):
            code.reconstruct(list(shards[:5]))

    def test_differing_sizes_rejected(self, code, shards):
        holed = list(shards)
        holed[0] = None
        holed[1] = np.zeros(7, dtype=np.uint8)
        with pytest.raises(CodingError):
            code.reconstruct(holed)


class TestLargerCode:
    def test_14_10_max_erasures(self, rng):
        code = RSCode(14, 10)
        data = rng.integers(0, 256, size=10 * 64, dtype=np.uint8).tobytes()
        shards = code.encode(code.split(data))
        lost = [0, 4, 9, 13]
        holed = [None if j in lost else shards[j] for j in range(14)]
        rebuilt = code.reconstruct(holed)
        for j in lost:
            assert np.array_equal(rebuilt[j], shards[j])
