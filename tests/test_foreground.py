"""Foreground degraded reads: arrivals, priorities, latency accounting."""

import pytest

from repro.errors import ConfigurationError, PlanError
from repro.sim.foreground import foreground_latency, generate_degraded_reads
from repro.sim.transfer import ChunkTransfer, StripeJob, simulate_slot_schedule


class TestGeneration:
    def test_poisson_rate_roughly(self):
        jobs = generate_degraded_reads(10.0, 100.0, k=4, chunk_time_mean=0.1, seed=0)
        assert 800 < len(jobs) < 1200  # ~1000 arrivals

    def test_arrivals_sorted_and_bounded(self):
        jobs = generate_degraded_reads(5.0, 10.0, k=3, chunk_time_mean=0.1, seed=1)
        arrivals = [j.arrival_time for j in jobs]
        assert arrivals == sorted(arrivals)
        assert all(0 < a < 10.0 for a in arrivals)

    def test_jobs_shape(self):
        jobs = generate_degraded_reads(5.0, 5.0, k=4, chunk_time_mean=0.2, seed=2)
        for job in jobs:
            assert len(job.rounds) == 1
            assert len(job.rounds[0]) == 4
            assert job.priority == -1

    def test_deterministic(self):
        a = generate_degraded_reads(5.0, 5.0, k=2, chunk_time_mean=0.1, seed=7)
        b = generate_degraded_reads(5.0, 5.0, k=2, chunk_time_mean=0.1, seed=7)
        assert [j.arrival_time for j in a] == [j.arrival_time for j in b]

    def test_bad_params(self):
        with pytest.raises(ConfigurationError):
            generate_degraded_reads(0.0, 1.0, 2, 0.1)
        with pytest.raises(ConfigurationError):
            generate_degraded_reads(1.0, 1.0, 2, 0.1, chunk_time_std=-1)


class TestArrivalSemantics:
    def test_job_waits_for_arrival(self):
        job = StripeJob("a", [[ChunkTransfer(("a", 0), 1.0)]], arrival_time=5.0)
        rep = simulate_slot_schedule([job], capacity=2)
        assert rep.total_time == pytest.approx(6.0)

    def test_negative_arrival_rejected(self):
        job = StripeJob("a", [[ChunkTransfer(("a", 0), 1.0)]], arrival_time=-1.0)
        with pytest.raises(PlanError):
            simulate_slot_schedule([job], capacity=2)

    def test_foreground_bypasses_admission_cap(self):
        repair = [
            StripeJob(("r", i), [[ChunkTransfer(("r", i, 0), 5.0)]])
            for i in range(2)
        ]
        fg = StripeJob(("f", 0), [[ChunkTransfer(("f", 0, 0), 1.0)]],
                       arrival_time=0.5, priority=-1)
        # admission cap 1 serialises the two repair jobs; the foreground
        # read slips into the free memory slot immediately on arrival.
        rep = simulate_slot_schedule(repair + [fg], capacity=3, max_concurrent=1)
        assert rep.job_finish_times[("f", 0)] == pytest.approx(1.5)
        assert rep.job_finish_times[("r", 1)] == pytest.approx(10.0)


class TestLatency:
    def test_latency_stats(self):
        fg = generate_degraded_reads(2.0, 20.0, k=2, chunk_time_mean=0.5, seed=3)
        rep = simulate_slot_schedule(fg, capacity=8)
        lat = foreground_latency(rep, fg)
        assert lat.count == len(fg)
        assert 0 < lat.p50 <= lat.p95 <= lat.p99 <= lat.max
        assert lat.mean >= 0.4  # at least one chunk's transfer time

    def test_contention_raises_latency(self):
        fg = generate_degraded_reads(4.0, 10.0, k=4, chunk_time_mean=0.3, seed=4)
        roomy = foreground_latency(simulate_slot_schedule(fg, capacity=64), fg)
        tight = foreground_latency(simulate_slot_schedule(fg, capacity=4), fg)
        assert tight.p95 >= roomy.p95

    def test_missing_job_rejected(self):
        fg = generate_degraded_reads(2.0, 5.0, k=2, chunk_time_mean=0.1, seed=5)
        rep = simulate_slot_schedule(fg[:-1], capacity=8)
        with pytest.raises(ConfigurationError):
            foreground_latency(rep, fg)

    def test_empty(self):
        lat = foreground_latency(
            simulate_slot_schedule([], capacity=4), []
        )
        assert lat.count == 0
        assert lat.summary()["p99"] == 0.0
