"""FSR baseline plan shape."""

import numpy as np
import pytest

from repro.core.fsr import FullStripeRepair
from repro.errors import ConfigurationError


@pytest.fixture
def L():
    return np.random.default_rng(0).uniform(1, 3, size=(10, 6))


class TestFSRPlan:
    def test_single_round_all_k(self, L):
        plan = FullStripeRepair().build_plan(L, c=12)
        assert plan.algorithm == "fsr"
        for sp in plan.stripe_plans:
            assert sp.num_rounds == 1
            assert sorted(sp.rounds[0]) == list(range(6))
            assert sp.accumulator_chunks == 0

    def test_pa_is_k(self, L):
        plan = FullStripeRepair().build_plan(L, c=12)
        assert plan.pa == 6

    def test_pr_is_floor_c_over_k(self, L):
        assert FullStripeRepair().build_plan(L, c=12).pr == 2
        assert FullStripeRepair().build_plan(L, c=13).pr == 2
        assert FullStripeRepair().build_plan(L, c=6).pr == 1

    def test_no_selection_cost(self, L):
        assert FullStripeRepair().build_plan(L, c=12).selection_seconds == 0.0

    def test_one_plan_per_stripe(self, L):
        plan = FullStripeRepair().build_plan(L, c=12)
        assert plan.num_stripes == 10
        assert [sp.stripe_index for sp in plan.stripe_plans] == list(range(10))

    def test_memory_smaller_than_k_rejected(self, L):
        with pytest.raises(ConfigurationError):
            FullStripeRepair().build_plan(L, c=5)

    def test_bad_L_rejected(self):
        with pytest.raises(ConfigurationError):
            FullStripeRepair().build_plan(np.array([[1.0, -2.0]]), c=4)
        with pytest.raises(ConfigurationError):
            FullStripeRepair().build_plan(np.empty((0, 4)), c=4)

    def test_validates(self, L):
        FullStripeRepair().build_plan(L, c=12).validate(6)
