"""Trace persistence round-trips."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.workloads import load_trace, normal_transfer_times, save_trace


class TestRoundTrip:
    def test_save_load_identical(self, tmp_path):
        w = normal_transfer_times(30, 8, ros=0.05, seed=7)
        path = save_trace(w, tmp_path / "trace")
        loaded = load_trace(path)
        assert np.array_equal(loaded.L, w.L)
        assert np.array_equal(loaded.slow_mask, w.slow_mask)
        assert loaded.params["ros"] == 0.05

    def test_extension_added(self, tmp_path):
        w = normal_transfer_times(5, 4, seed=0)
        path = save_trace(w, tmp_path / "t")
        assert path.suffix == ".npz"

    def test_explicit_extension_kept(self, tmp_path):
        w = normal_transfer_times(5, 4, seed=0)
        path = save_trace(w, tmp_path / "t.npz")
        assert path.name == "t.npz"

    def test_nested_directory_created(self, tmp_path):
        w = normal_transfer_times(5, 4, seed=0)
        path = save_trace(w, tmp_path / "a" / "b" / "t.npz")
        assert path.exists()

    def test_missing_file(self, tmp_path):
        with pytest.raises(ConfigurationError):
            load_trace(tmp_path / "nope.npz")

    def test_corrupt_archive_missing_fields(self, tmp_path):
        path = tmp_path / "bad.npz"
        np.savez(path, L=np.ones((2, 2)))
        with pytest.raises(ConfigurationError):
            load_trace(path)

    def test_version_check(self, tmp_path):
        import json

        w = normal_transfer_times(5, 4, seed=0)
        path = save_trace(w, tmp_path / "t.npz")
        meta = dict(w.params)
        meta["format_version"] = 99
        np.savez(
            path,
            L=w.L,
            slow_mask=w.slow_mask,
            meta=np.frombuffer(json.dumps(meta).encode(), dtype=np.uint8),
        )
        with pytest.raises(ConfigurationError):
            load_trace(path)
