"""Hardened recovery: mid-repair failures, retries, hedging, data loss.

The acceptance scenario from the robustness milestone lives here: a second
disk dies mid-round during a cooperative multi-disk repair, the executor
salvages the accumulated partial sums instead of restarting every stripe,
and two identically-seeded runs produce byte-identical outcomes.
"""

import numpy as np
import pytest

from repro.core import ALGORITHMS, FullStripeRepair, recover_disk, recover_disks
from repro.core.executor import ReadPolicy
from repro.ec.stripe import ChunkId
from repro.errors import StorageError
from repro.faults import DataLossReport, FaultEvent, FaultSchedule
from repro.hdss import HDSSConfig, HighDensityStorageServer
from repro.obs import MetricsRegistry, use_registry

CHUNK = 2048
#: Seconds one fault-free chunk read takes on the default 100 MB/s profile.
READ_SECONDS = CHUNK / 100e6


def make_server(seed=7, num_disks=14, stripes=25):
    cfg = HDSSConfig(
        num_disks=num_disks, n=9, k=6, chunk_size=CHUNK,
        memory_chunks=12, spares=5, seed=seed,
    )
    server = HighDensityStorageServer(cfg)
    server.provision_stripes(stripes, with_data=True)
    return server


def capture_chunks(server):
    """Snapshot every chunk's bytes before any disk loses data."""
    out = {}
    for stripe in server.layout:
        for shard, disk in enumerate(stripe.disks):
            out[(stripe.index, shard)] = server.store.get(
                disk, ChunkId(stripe.index, shard)
            ).copy()
    return out


class TestFaultFree:
    def test_recover_disks_certifies(self):
        server = make_server()
        originals = capture_chunks(server)
        server.fail_disk(0)
        server.fail_disk(1)
        result = recover_disks(server, FullStripeRepair(), [0, 1])
        assert result.certified
        assert result.loss is None
        for (si, shard, spare) in result.data_path.writebacks:
            rebuilt = server.store.get(spare, ChunkId(si, shard))
            assert np.array_equal(rebuilt, originals[(si, shard)])

    def test_recover_disks_rejects_healthy_disk(self):
        server = make_server()
        server.fail_disk(0)
        with pytest.raises(StorageError):
            recover_disks(server, FullStripeRepair(), [0, 1])

    def test_recover_disks_rejects_empty_list(self):
        server = make_server()
        with pytest.raises(StorageError):
            recover_disks(server, FullStripeRepair(), [])


class TestMidRepairCasualty:
    """The scripted scenario: a second disk dies during cooperative repair."""

    SCHEDULE = FaultSchedule([
        FaultEvent(at=2 * READ_SECONDS, kind="disk_fail", disk=4),
    ])

    def run_once(self, algo="fsr"):
        server = make_server()
        originals = capture_chunks(server)
        server.fail_disk(0)
        server.fail_disk(1)
        result = recover_disks(
            server, ALGORITHMS[algo](), [0, 1], faults=self.SCHEDULE
        )
        return server, originals, result

    def test_completes_with_structured_report(self):
        server, originals, result = self.run_once()
        loss = result.loss
        assert isinstance(loss, DataLossReport)
        # every affected stripe got exactly one outcome
        assert set(loss.stripes) == set(result.outcome.stripe_indices)
        assert loss.faults_injected.get("disk_fail") == 1

    def test_salvage_beats_full_rerepair(self):
        _, _, result = self.run_once()
        loss = result.loss
        assert loss.replans > 0
        assert loss.salvaged_chunks > 0
        # the headline claim: re-planning re-reads fewer chunks than
        # repairing the affected stripes from scratch would
        k = 6
        assert loss.reread_chunks < k * (loss.replans + loss.fresh_restarts)

    def test_rebuilt_bytes_exact(self):
        server, originals, result = self.run_once()
        for (si, shard, spare) in result.data_path.writebacks:
            rebuilt = server.store.get(spare, ChunkId(si, shard))
            assert np.array_equal(rebuilt, originals[(si, shard)]), (si, shard)

    def test_lost_stripes_excluded_from_scrub(self):
        server, _, result = self.run_once()
        if result.loss.has_loss:
            scrubbed = set(result.scrub.clean) | set(result.scrub.degraded) \
                | set(result.scrub.corrupt)
            assert not scrubbed & set(result.loss.lost)

    @pytest.mark.parametrize("algo", sorted(ALGORITHMS))
    def test_every_algorithm_survives(self, algo):
        _, _, result = self.run_once(algo)
        assert isinstance(result.loss, DataLossReport)

    def test_byte_identical_across_runs(self):
        server_a, _, a = self.run_once()
        server_b, _, b = self.run_once()
        assert a.loss.summary() == b.loss.summary()
        assert a.data_path.writebacks == b.data_path.writebacks
        assert a.data_path.modeled_seconds == b.data_path.modeled_seconds
        for (si, shard, spare) in a.data_path.writebacks:
            assert np.array_equal(
                server_a.store.get(spare, ChunkId(si, shard)),
                server_b.store.get(spare, ChunkId(si, shard)),
            )

    def test_obs_counters_recorded(self):
        registry = MetricsRegistry()
        with use_registry(registry):
            self.run_once()
        assert registry.counter(
            "hdpsr_faults_injected_total", ""
        ).labels(kind="disk_fail").value == 1
        assert registry.counter("hdpsr_replans_total", "").value > 0
        assert registry.counter("hdpsr_chunks_salvaged_total", "").value > 0


class TestDataLoss:
    def test_too_many_failures_reported_not_raised(self):
        # n - k = 3 tolerance; three more deaths mid-repair overwhelm it
        schedule = FaultSchedule([
            FaultEvent(at=READ_SECONDS, kind="disk_fail", disk=4),
            FaultEvent(at=2 * READ_SECONDS, kind="disk_fail", disk=5),
            FaultEvent(at=3 * READ_SECONDS, kind="disk_fail", disk=6),
        ])
        server = make_server()
        server.fail_disk(0)
        server.fail_disk(1)
        result = recover_disks(
            server, FullStripeRepair(), [0, 1], faults=schedule
        )
        loss = result.loss
        assert loss.has_loss
        assert loss.exit_code == 3
        assert not result.certified
        with pytest.raises(Exception):
            loss.raise_for_loss()
        # the non-lost stripes were still rescued
        assert len(loss.recovered) + len(loss.replanned) > 0

    def test_sector_error_on_survivor_still_recovers(self):
        server = make_server()
        server.fail_disk(0)
        # poison a surviving chunk of a stripe that disk 0's repair touches
        si = server.layout.stripe_set(0)[0]
        stripe = server.layout[si]
        shard = next(j for j, d in enumerate(stripe.disks) if d != 0)
        schedule = FaultSchedule([
            FaultEvent(at=0.0, kind="sector_error", disk=stripe.disks[shard],
                       stripe=si, shard=shard),
        ])
        result = recover_disk(
            server, FullStripeRepair(), 0, faults=schedule
        )
        assert isinstance(result.loss, DataLossReport)
        # one bad sector leaves >= k readable shards; nothing is lost
        assert not result.loss.has_loss


class TestReadPolicy:
    def test_timeout_and_retry_ride_out_hang(self):
        schedule = FaultSchedule([
            FaultEvent(at=0.0, kind="hang", disk=2, duration=0.01),
        ])
        server = make_server()
        server.fail_disk(0)
        policy = ReadPolicy(timeout_seconds=10 * READ_SECONDS, max_retries=4,
                            backoff_base=0.005, backoff_cap=0.02)
        result = recover_disk(
            server, FullStripeRepair(), 0, faults=schedule, policy=policy
        )
        loss = result.loss
        assert not loss.has_loss  # slowness never loses data
        if loss.timeouts:
            assert loss.retries > 0

    def test_hedge_moves_read_to_another_survivor(self):
        schedule = FaultSchedule([
            FaultEvent(at=0.0, kind="slow", disk=2, factor=1e6, duration=60.0),
        ])
        server = make_server()
        server.fail_disk(0)
        policy = ReadPolicy(
            timeout_seconds=10 * READ_SECONDS, max_retries=1,
            backoff_base=1e-6, backoff_cap=1e-5, hedge=True,
        )
        result = recover_disk(
            server, FullStripeRepair(), 0, faults=schedule, policy=policy
        )
        loss = result.loss
        assert not loss.has_loss
        # hedging only fires when the slow disk was actually drawn on
        if loss.timeouts:
            assert loss.hedged_reads > 0

    def test_policy_without_faults_is_clean(self):
        server = make_server()
        server.fail_disk(0)
        policy = ReadPolicy(timeout_seconds=1.0)
        result = recover_disk(server, FullStripeRepair(), 0, policy=policy)
        assert result.certified
        assert result.loss is not None
        assert result.loss.summary()["exit_code"] == 0
