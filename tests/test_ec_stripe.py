"""Stripe metadata and per-disk stripe sets."""

import pytest

from repro.ec.stripe import ChunkId, Stripe, StripeLayout
from repro.errors import ConfigurationError


class TestChunkId:
    def test_ordering(self):
        assert ChunkId(0, 1) < ChunkId(0, 2) < ChunkId(1, 0)

    def test_hashable(self):
        assert len({ChunkId(0, 1), ChunkId(0, 1), ChunkId(0, 2)}) == 2

    def test_str(self):
        assert str(ChunkId(3, 4)) == "S3,4"


class TestStripe:
    def test_basic(self):
        s = Stripe(index=0, n=5, k=3, disks=(0, 1, 2, 3, 4))
        assert s.m == 2
        assert len(s.chunk_ids()) == 5

    def test_duplicate_disk_rejected(self):
        with pytest.raises(ConfigurationError):
            Stripe(index=0, n=3, k=2, disks=(0, 0, 1))

    def test_wrong_disk_count(self):
        with pytest.raises(ConfigurationError):
            Stripe(index=0, n=3, k=2, disks=(0, 1))

    def test_bad_nk(self):
        with pytest.raises(ConfigurationError):
            Stripe(index=0, n=3, k=3, disks=(0, 1, 2))

    def test_shard_on_disk(self):
        s = Stripe(index=0, n=3, k=2, disks=(5, 7, 9))
        assert s.shard_on_disk(7) == 1
        assert s.shard_on_disk(6) is None

    def test_surviving_and_lost(self):
        s = Stripe(index=0, n=5, k=3, disks=(0, 1, 2, 3, 4))
        assert s.surviving_shards([3, 4]) == [0, 1, 2]
        assert s.lost_shards([3, 4]) == [3, 4]
        assert s.lost_shards([9]) == []


class TestStripeLayout:
    def _layout(self):
        layout = StripeLayout()
        # Figure 6: (5,3), six disks, three stripes
        layout.add(Stripe(index=0, n=5, k=3, disks=(0, 1, 2, 3, 4)))
        layout.add(Stripe(index=1, n=5, k=3, disks=(0, 1, 2, 3, 5)))
        layout.add(Stripe(index=2, n=5, k=3, disks=(0, 1, 2, 4, 5)))
        return layout

    def test_len_iter_getitem(self):
        layout = self._layout()
        assert len(layout) == 3
        assert [s.index for s in layout] == [0, 1, 2]
        assert layout[1].index == 1

    def test_stripe_sets(self):
        layout = self._layout()
        assert layout.stripe_set(3) == [0, 1]
        assert layout.stripe_set(4) == [0, 2]
        assert layout.stripe_set(5) == [1, 2]
        assert layout.stripe_set(99) == []

    def test_union_dedupes(self):
        """The Figure-6 core claim: union of disk-4/5 stripe sets = {0,1,2}."""
        layout = self._layout()
        assert layout.stripes_touching([3, 4]) == [0, 1, 2]

    def test_union_counts_each_stripe_once(self):
        layout = self._layout()
        union = layout.stripes_touching([3, 4, 5])
        assert union == [0, 1, 2]

    def test_out_of_order_add_rejected(self):
        layout = StripeLayout()
        with pytest.raises(ConfigurationError):
            layout.add(Stripe(index=1, n=3, k=2, disks=(0, 1, 2)))

    def test_disks(self):
        assert self._layout().disks() == [0, 1, 2, 3, 4, 5]

    def test_constructor_with_stripes(self):
        stripes = [Stripe(index=0, n=3, k=2, disks=(0, 1, 2))]
        layout = StripeLayout(stripes=stripes)
        assert layout.stripe_set(0) == [0]
