"""Text timeline visualisations."""

import pytest

from repro.core import ActivePreliminaryRepair, FullStripeRepair, execute_plan
from repro.errors import ConfigurationError
from repro.sim.metrics import build_report
from repro.sim.viz import (
    memory_occupancy_series,
    render_disk_load,
    render_memory_timeline,
)
from repro.workloads import disk_heterogeneous_transfer_times


@pytest.fixture
def report():
    w, disks = disk_heterogeneous_transfer_times(30, 6, 18, ros=0.2, seed=0)
    plan = FullStripeRepair().build_plan(w.L, 12)
    return execute_plan(plan, w.L, 12, disk_ids=disks)


class TestOccupancySeries:
    def test_shapes(self, report):
        times, occ = memory_occupancy_series(report, buckets=40)
        assert times.shape == (40,) and occ.shape == (40,)

    def test_occupancy_bounded_by_capacity(self, report):
        _, occ = memory_occupancy_series(report, buckets=50)
        assert occ.max() <= 12 + 1e-6

    def test_total_slot_seconds_conserved(self, report):
        times, occ = memory_occupancy_series(report, buckets=200)
        width = report.total_time / 200
        integrated = float(occ.sum() * width)
        expected = sum(r.round_end - r.start for r in report.records)
        assert integrated == pytest.approx(expected, rel=0.02)

    def test_empty_report(self):
        rep = build_report([], {}, {})
        times, occ = memory_occupancy_series(rep)
        assert occ.size == 0

    def test_bad_buckets(self, report):
        with pytest.raises(ConfigurationError):
            memory_occupancy_series(report, buckets=0)


class TestRenderers:
    def test_memory_timeline_string(self, report):
        out = render_memory_timeline(report, capacity=12, width=40)
        assert out.startswith("memory |")
        assert "/12 slots" in out
        assert len(out.split("|")[1]) == 40

    def test_empty_timeline(self):
        rep = build_report([], {}, {})
        assert "empty" in render_memory_timeline(rep)

    def test_disk_load_table(self, report):
        out = render_disk_load(report, top=5)
        assert "Disk load" in out
        assert "%" in out

    def test_disk_load_without_disks(self):
        rep = build_report([], {}, {})
        assert "no disk information" in render_disk_load(rep)

    def test_psr_flattens_occupancy(self):
        """Visual claim made checkable: PSR's occupancy has less idle-wait
        area relative to useful transfer than FSR (higher efficiency)."""
        w, disks = disk_heterogeneous_transfer_times(40, 6, 18, ros=0.2,
                                                     slow_factor=5.0, seed=2)
        fsr_rep = execute_plan(FullStripeRepair().build_plan(w.L, 12), w.L, 12, disk_ids=disks)
        ap_rep = execute_plan(ActivePreliminaryRepair().build_plan(w.L, 12), w.L, 12, disk_ids=disks)

        def efficiency(rep):
            useful = sum(r.duration for r in rep.records)
            held = sum(r.round_end - r.start for r in rep.records)
            return useful / held

        assert efficiency(ap_rep) > efficiency(fsr_rep)
