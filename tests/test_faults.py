"""repro.faults: schedules, the generator, and both schedule interpreters."""

import numpy as np
import pytest

from repro.ec.stripe import ChunkId
from repro.errors import ConfigurationError, LatentSectorError
from repro.faults import (
    FAULT_KINDS,
    FaultEvent,
    FaultInjector,
    FaultSchedule,
    SimFaultModel,
    generate_fault_schedule,
)
from repro.faults.spec import HANG_FACTOR
from repro.hdss import HDSSConfig, HighDensityStorageServer
from repro.hdss.store import FaultyChunkStore


def make_server(seed=0, num_disks=12, stripes=6):
    cfg = HDSSConfig(
        num_disks=num_disks, n=9, k=6, chunk_size=1024,
        memory_chunks=12, spares=3, seed=seed,
    )
    server = HighDensityStorageServer(cfg)
    server.provision_stripes(stripes, with_data=True)
    return server


class TestFaultEvent:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigurationError):
            FaultEvent(at=0.0, kind="meteor", disk=0)

    def test_negative_time_rejected(self):
        with pytest.raises(ConfigurationError):
            FaultEvent(at=-1.0, kind="disk_fail", disk=0)

    def test_sector_error_needs_coordinates(self):
        with pytest.raises(ConfigurationError):
            FaultEvent(at=0.0, kind="sector_error", disk=0)

    def test_slow_factor_below_one_rejected(self):
        with pytest.raises(ConfigurationError):
            FaultEvent(at=0.0, kind="slow", disk=0, factor=0.5)

    def test_nonpositive_duration_rejected(self):
        with pytest.raises(ConfigurationError):
            FaultEvent(at=0.0, kind="slow", disk=0, duration=0.0)

    def test_window_end(self):
        assert FaultEvent(at=1.0, kind="slow", disk=0, duration=2.0).window_end == 3.0
        assert FaultEvent(at=1.0, kind="slow", disk=0).window_end == float("inf")

    def test_hang_uses_hang_factor(self):
        e = FaultEvent(at=0.0, kind="hang", disk=0, duration=1.0)
        assert e.effective_factor == HANG_FACTOR


class TestScheduleSpec:
    def test_events_sorted_by_time(self):
        sched = FaultSchedule([
            FaultEvent(at=5.0, kind="disk_fail", disk=1),
            FaultEvent(at=1.0, kind="slow", disk=2, duration=1.0),
        ])
        assert [e.at for e in sched] == [1.0, 5.0]

    def test_spec_roundtrip(self):
        sched = FaultSchedule([
            FaultEvent(at=0.5, kind="disk_fail", disk=3),
            FaultEvent(at=1.0, kind="sector_error", disk=2, stripe=4, shard=1),
            FaultEvent(at=2.0, kind="slow", disk=0, factor=8.0, duration=3.0),
            FaultEvent(at=2.5, kind="hang", disk=1, duration=0.5),
        ])
        assert FaultSchedule.from_spec(sched.to_spec()) == sched

    def test_json_roundtrip(self, tmp_path):
        sched = generate_fault_schedule(seed=3, num_events=6, num_stripes=10)
        path = sched.to_json(tmp_path / "spec.json")
        assert FaultSchedule.from_json(path) == sched

    def test_bare_list_spec_accepted(self):
        sched = FaultSchedule.from_spec([{"at": 1.0, "kind": "disk_fail", "disk": 0}])
        assert len(sched) == 1

    def test_unknown_keys_rejected(self):
        with pytest.raises(ConfigurationError):
            FaultSchedule.from_spec([{"at": 1.0, "kind": "disk_fail", "disk": 0,
                                      "severity": "bad"}])

    def test_invalid_json_rejected(self, tmp_path):
        p = tmp_path / "bad.json"
        p.write_text("{nope")
        with pytest.raises(ConfigurationError):
            FaultSchedule.from_json(p)

    def test_disk_fail_times_keeps_earliest(self):
        sched = FaultSchedule([
            FaultEvent(at=4.0, kind="disk_fail", disk=1),
            FaultEvent(at=2.0, kind="disk_fail", disk=1),
            FaultEvent(at=3.0, kind="disk_fail", disk=5),
        ])
        assert sched.disk_fail_times() == {1: 2.0, 5: 3.0}


class TestShifted:
    def test_nonpositive_origin_is_identity(self):
        sched = FaultSchedule([FaultEvent(at=1.0, kind="disk_fail", disk=0)])
        assert sched.shifted(0.0) is sched
        assert sched.shifted(-1.0) is sched

    def test_future_events_move_earlier(self):
        sched = FaultSchedule([FaultEvent(at=5.0, kind="disk_fail", disk=0)])
        out = sched.shifted(2.0)
        assert [e.at for e in out] == [3.0]

    def test_past_permanent_events_dropped(self):
        sched = FaultSchedule([FaultEvent(at=1.0, kind="disk_fail", disk=0)])
        assert len(sched.shifted(2.0)) == 0

    def test_straddling_window_keeps_remaining_duration(self):
        sched = FaultSchedule([
            FaultEvent(at=1.0, kind="slow", disk=0, factor=4.0, duration=3.0),
        ])
        (ev,) = sched.shifted(2.0).events
        assert ev.at == 0.0
        assert ev.duration == pytest.approx(2.0)
        assert ev.factor == 4.0

    def test_expired_window_dropped(self):
        sched = FaultSchedule([
            FaultEvent(at=1.0, kind="slow", disk=0, duration=0.5),
        ])
        assert len(sched.shifted(2.0)) == 0

    def test_unbounded_window_survives(self):
        sched = FaultSchedule([FaultEvent(at=1.0, kind="slow", disk=0)])
        (ev,) = sched.shifted(5.0).events
        assert ev.at == 0.0
        assert ev.duration is None


class TestGenerator:
    def test_same_seed_same_schedule(self):
        a = generate_fault_schedule(seed=11, num_events=8, num_stripes=20)
        b = generate_fault_schedule(seed=11, num_events=8, num_stripes=20)
        assert a == b

    def test_different_seed_differs(self):
        a = generate_fault_schedule(seed=11, num_events=8)
        b = generate_fault_schedule(seed=12, num_events=8)
        assert a != b

    def test_disk_fail_cap_respected(self):
        sched = generate_fault_schedule(
            seed=0, num_events=40, kinds=("disk_fail", "slow"), max_disk_fails=2
        )
        assert len(sched.for_kind("disk_fail")) <= 2

    def test_no_sector_errors_without_stripes(self):
        sched = generate_fault_schedule(seed=0, num_events=30, num_stripes=0)
        assert not sched.for_kind("sector_error")

    def test_sector_errors_carry_coordinates(self):
        sched = generate_fault_schedule(
            seed=1, num_events=30, num_stripes=10, kinds=("sector_error",)
        )
        assert sched.for_kind("sector_error")
        for e in sched.for_kind("sector_error"):
            assert 0 <= e.stripe < 10
            assert 0 <= e.shard < 9

    def test_bad_args_rejected(self):
        with pytest.raises(ConfigurationError):
            generate_fault_schedule(num_events=-1)
        with pytest.raises(ConfigurationError):
            generate_fault_schedule(horizon=0.0)
        with pytest.raises(ConfigurationError):
            generate_fault_schedule(kinds=("meteor",))

    def test_all_kinds_valid_events(self):
        sched = generate_fault_schedule(
            seed=5, num_events=50, num_stripes=10, horizon=2.0
        )
        for e in sched:
            assert e.kind in FAULT_KINDS
            assert 0.0 <= e.at < 2.0


class TestSimFaultModel:
    def test_fail_time(self):
        model = SimFaultModel(FaultSchedule([
            FaultEvent(at=3.0, kind="disk_fail", disk=2),
        ]))
        assert model.fail_time(2) == 3.0
        assert model.fail_time(0) is None

    def test_duration_unchanged_without_windows(self):
        model = SimFaultModel(FaultSchedule())
        assert model.effective_duration(0, 0.0, 2.0) == 2.0

    def test_duration_inside_window_stretched(self):
        model = SimFaultModel(FaultSchedule([
            FaultEvent(at=0.0, kind="slow", disk=0, factor=4.0, duration=100.0),
        ]))
        assert model.effective_duration(0, 1.0, 2.0) == pytest.approx(8.0)

    def test_duration_straddling_window_piecewise(self):
        # Window [0, 2) at factor 2: first 2 s deliver 1 s of work, the
        # remaining 1 s runs at nominal -> 3 s total.
        model = SimFaultModel(FaultSchedule([
            FaultEvent(at=0.0, kind="slow", disk=0, factor=2.0, duration=2.0),
        ]))
        assert model.effective_duration(0, 0.0, 2.0) == pytest.approx(3.0)

    def test_transfer_after_window_unaffected(self):
        model = SimFaultModel(FaultSchedule([
            FaultEvent(at=0.0, kind="slow", disk=0, factor=8.0, duration=1.0),
        ]))
        assert model.effective_duration(0, 5.0, 2.0) == pytest.approx(2.0)

    def test_other_disks_unaffected(self):
        model = SimFaultModel(FaultSchedule([
            FaultEvent(at=0.0, kind="slow", disk=0, factor=8.0, duration=10.0),
        ]))
        assert model.effective_duration(1, 0.0, 2.0) == pytest.approx(2.0)

    def test_hang_effectively_stalls(self):
        model = SimFaultModel(FaultSchedule([
            FaultEvent(at=0.0, kind="hang", disk=0, duration=5.0),
        ]))
        # Work cannot meaningfully progress inside the hang window; the
        # transfer completes only after the window closes.
        assert model.effective_duration(0, 0.0, 1.0) >= 5.0


class TestFaultInjector:
    def test_disk_fail_really_fails(self):
        server = make_server()
        inj = FaultInjector(server, FaultSchedule([
            FaultEvent(at=1.0, kind="disk_fail", disk=2),
        ]))
        assert inj.advance(0.5) == []
        assert not server.disk(2).is_failed
        fired = inj.advance(1.5)
        assert [e.kind for e in fired] == ["disk_fail"]
        assert server.disk(2).is_failed
        assert inj.applied == {"disk_fail": 1}

    def test_duplicate_disk_fail_is_noop(self):
        server = make_server()
        inj = FaultInjector(server, FaultSchedule([
            FaultEvent(at=1.0, kind="disk_fail", disk=2),
            FaultEvent(at=2.0, kind="disk_fail", disk=2),
        ]))
        fired = inj.advance(3.0)
        assert len(fired) == 1

    def test_out_of_range_disk_is_noop(self):
        server = make_server(num_disks=12)
        inj = FaultInjector(server, FaultSchedule([
            FaultEvent(at=1.0, kind="disk_fail", disk=99),
        ]))
        assert inj.advance(2.0) == []
        assert inj.applied == {}

    def test_slow_window_degrades_then_heals(self):
        server = make_server()
        nominal = server.disk(3).current_bandwidth
        inj = FaultInjector(server, FaultSchedule([
            FaultEvent(at=1.0, kind="slow", disk=3, factor=4.0, duration=2.0),
        ]))
        inj.advance(1.0)
        assert server.disk(3).current_bandwidth == pytest.approx(nominal / 4.0)
        inj.advance(10.0)
        assert server.disk(3).current_bandwidth == pytest.approx(nominal)
        assert inj.exhausted

    def test_overlapping_windows_keep_worst_factor(self):
        server = make_server()
        nominal = server.disk(3).current_bandwidth
        inj = FaultInjector(server, FaultSchedule([
            FaultEvent(at=1.0, kind="slow", disk=3, factor=2.0, duration=10.0),
            FaultEvent(at=2.0, kind="slow", disk=3, factor=8.0, duration=2.0),
        ]))
        inj.advance(2.0)
        assert server.disk(3).current_bandwidth == pytest.approx(nominal / 8.0)
        inj.advance(5.0)  # inner window closed; outer still open
        assert server.disk(3).current_bandwidth == pytest.approx(nominal / 2.0)

    def test_sector_error_poisons_one_chunk(self):
        server = make_server()
        stripe = server.layout[0]
        shard = 0
        disk = stripe.disks[shard]
        inj = FaultInjector(server, FaultSchedule([
            FaultEvent(at=1.0, kind="sector_error", disk=disk,
                       stripe=0, shard=shard),
        ]))
        inj.advance(1.0)
        assert isinstance(server.store, FaultyChunkStore)
        with pytest.raises(LatentSectorError):
            server.store.get(disk, ChunkId(0, shard))
        # the rest of the disk still serves
        other = next(c for c in server.store.chunks_on_disk(disk)
                     if c != ChunkId(0, shard))
        assert isinstance(server.store.get(disk, other), np.ndarray)

    def test_next_change_time_tracks_pending_and_windows(self):
        server = make_server()
        inj = FaultInjector(server, FaultSchedule([
            FaultEvent(at=1.0, kind="slow", disk=3, factor=4.0, duration=2.0),
            FaultEvent(at=5.0, kind="disk_fail", disk=4),
        ]))
        assert inj.next_change_time() == 1.0
        inj.advance(1.0)
        assert inj.next_change_time() == 3.0  # window close precedes next event
        inj.advance(3.0)
        assert inj.next_change_time() == 5.0
        inj.advance(5.0)
        assert inj.next_change_time() == float("inf")
        assert inj.exhausted


class TestProcessCrash:
    """Scripted process_crash events and the resume skip budget."""

    def test_spec_roundtrip_without_disk(self):
        schedule = FaultSchedule.from_spec(
            {"events": [{"at": 1.5, "kind": "process_crash"}]}
        )
        event = schedule.events[0]
        assert event.kind == "process_crash"
        assert event.disk == 0
        assert FaultSchedule.from_spec(schedule.to_spec()) == schedule

    def test_generator_never_draws_crashes(self):
        from repro.faults import GENERATED_KINDS

        assert "process_crash" not in GENERATED_KINDS
        schedule = generate_fault_schedule(seed=1, num_events=50, num_disks=12)
        assert not schedule.for_kind("process_crash")

    def test_injector_raises_simulated_crash(self):
        from repro.faults import SimulatedCrash

        server = make_server()
        inj = FaultInjector(server, FaultSchedule([
            FaultEvent(at=1.0, kind="process_crash"),
        ]))
        inj.advance(0.5)  # not yet
        with pytest.raises(SimulatedCrash) as exc_info:
            inj.advance(1.0)
        assert exc_info.value.event.at == 1.0
        assert inj.applied.get("process_crash") == 1

    def test_crash_is_not_a_plain_exception(self):
        """Retry/replan handlers catch Exception; a crash must pass them."""
        from repro.faults import SimulatedCrash

        assert not issubclass(SimulatedCrash, Exception)
        assert issubclass(SimulatedCrash, BaseException)

    def test_skip_crashes_budget(self):
        from repro.faults import SimulatedCrash

        server = make_server()
        schedule = FaultSchedule([
            FaultEvent(at=1.0, kind="process_crash"),
            FaultEvent(at=2.0, kind="process_crash"),
        ])
        inj = FaultInjector(server, schedule, skip_crashes=1)
        inj.advance(1.0)  # first crash already happened pre-resume: skipped
        with pytest.raises(SimulatedCrash):
            inj.advance(2.0)


# ---------------------------------------------------------------------------
# Service-plane faults: spec round-trips, the daemon split, wire injector
# ---------------------------------------------------------------------------
class TestServiceFaultSpec:
    def test_service_kinds_round_trip_with_daemon(self):
        from repro.faults.spec import SERVICE_FAULT_KINDS

        schedule = FaultSchedule([
            FaultEvent(at=1.0, kind="daemon_crash", daemon=2),
            FaultEvent(at=3, kind="conn_reset", daemon=1),
            FaultEvent(at=5, kind="slow_peer", daemon=0, factor=4, duration=0.2),
            FaultEvent(at=7, kind="partial_frame", daemon=1),
            FaultEvent(at=9, kind="clock_skew", daemon=0, factor=2.5),
        ])
        spec = schedule.to_spec()
        for entry in spec["events"]:
            assert "daemon" in entry
            assert "disk" not in entry
            assert entry["kind"] in SERVICE_FAULT_KINDS
        again = FaultSchedule.from_spec(spec)
        assert [e.kind for e in again] == [e.kind for e in schedule]
        assert [e.daemon for e in again] == [2, 1, 0, 1, 0]

    def test_for_daemon_splits_planes(self):
        from repro.faults.service import is_service_schedule

        schedule = FaultSchedule([
            FaultEvent(at=0.5, kind="disk_fail", disk=4),
            FaultEvent(at=1.0, kind="daemon_crash", daemon=1),
            FaultEvent(at=2, kind="conn_reset", daemon=0),
            FaultEvent(at=3, kind="slow_peer", daemon=1, duration=0.1),
        ])
        assert is_service_schedule(schedule)
        local0, wire0 = schedule.for_daemon(0)
        # Generic disk faults reach every daemon; daemon 1's crash and
        # slow_peer do not reach daemon 0.
        assert [e.kind for e in local0] == ["disk_fail"]
        assert [e.kind for e in wire0] == ["conn_reset"]
        local1, wire1 = schedule.for_daemon(1)
        # The addressed daemon sees its crash as a process_crash on the
        # modeled clock — same semantics as the single-process kind.
        assert [e.kind for e in local1] == ["disk_fail", "process_crash"]
        assert local1.events[1].at == 1.0
        assert [e.kind for e in wire1] == ["slow_peer"]
        assert not is_service_schedule(local1)


class TestServiceFaultInjector:
    def make(self, events, daemon=0):
        from repro.faults.service import ServiceFaultInjector

        return ServiceFaultInjector(FaultSchedule(events), daemon=daemon)

    def test_oneshots_fire_once_at_their_ordinal(self):
        inj = self.make([
            FaultEvent(at=1, kind="conn_reset"),
            FaultEvent(at=2, kind="partial_frame"),
        ])
        assert not inj.on_request().disruptive          # ordinal 0
        verdict = inj.on_request()                      # ordinal 1
        assert verdict.reset and not verdict.partial
        verdict = inj.on_request()                      # ordinal 2
        assert verdict.partial and not verdict.reset
        assert not inj.on_request().disruptive          # consumed
        assert inj.applied == {"conn_reset": 1, "partial_frame": 1}
        assert inj.exhausted

    def test_slow_peer_window_spans_factor_requests(self):
        inj = self.make([
            FaultEvent(at=1, kind="slow_peer", factor=2, duration=0.25),
        ])
        assert inj.on_request().delay_seconds == 0.0    # ordinal 0
        assert not inj.exhausted
        assert inj.on_request().delay_seconds == 0.25   # ordinal 1
        assert inj.on_request().delay_seconds == 0.25   # ordinal 2
        assert inj.on_request().delay_seconds == 0.0    # window closed
        assert inj.applied["slow_peer"] == 2
        assert inj.exhausted

    def test_clock_skew_accumulates(self):
        inj = self.make([
            FaultEvent(at=0, kind="clock_skew", factor=1.5),
            FaultEvent(at=0, kind="clock_skew", factor=2.0),
        ])
        assert inj.on_request().skew_seconds == pytest.approx(3.5)
        assert inj.on_request().skew_seconds == 0.0

    def test_late_oneshot_fires_on_next_request(self):
        # An event whose ordinal already passed still fires exactly once.
        inj = self.make([FaultEvent(at=0, kind="conn_reset")])
        inj.requests_seen = 5
        assert inj.on_request().reset
        assert not inj.on_request().reset


class TestCorruptionFaultSpec:
    def test_corruption_kinds_round_trip_with_coordinates(self):
        from repro.faults.spec import CORRUPTION_FAULT_KINDS

        schedule = FaultSchedule([
            FaultEvent(at=2, kind="bitrot", disk=3, stripe=1, shard=0),
            FaultEvent(at=4, kind="torn_write", disk=7, stripe=5, shard=2),
            FaultEvent(at=6, kind="misdirected_write", disk=1, stripe=9, shard=4),
        ])
        spec = schedule.to_spec()
        for entry in spec["events"]:
            assert entry["kind"] in CORRUPTION_FAULT_KINDS
            # corruption needs full chunk coordinates on the wire
            assert {"disk", "stripe", "shard"} <= set(entry)
        again = FaultSchedule.from_spec(spec)
        assert again == schedule

    def test_corruption_requires_stripe_and_shard(self):
        with pytest.raises(ConfigurationError):
            FaultEvent(at=1, kind="bitrot", disk=0)
        with pytest.raises(ConfigurationError):
            FaultEvent(at=1, kind="torn_write", disk=0, stripe=1)

    def test_injector_delivers_corruptions_once_at_ordinal(self):
        from repro.faults.service import ServiceFaultInjector

        inj = ServiceFaultInjector(FaultSchedule([
            FaultEvent(at=1, kind="bitrot", disk=2, stripe=0, shard=1),
            FaultEvent(at=1, kind="torn_write", disk=3, stripe=4, shard=0),
        ]))
        assert inj.on_request().corruptions == []       # ordinal 0
        verdict = inj.on_request()                      # ordinal 1
        assert [e.kind for e in verdict.corruptions] == ["bitrot", "torn_write"]
        assert verdict.corruptions[0].stripe == 0
        assert inj.on_request().corruptions == []       # consumed
        assert inj.applied == {"bitrot": 1, "torn_write": 1}
        assert inj.exhausted
