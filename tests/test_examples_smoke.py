"""Smoke-run the fast example scripts so they cannot rot silently."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).parent.parent / "examples"

FAST_EXAMPLES = [
    "observation_explorer.py",
    "filestore_durability.py",
]


@pytest.mark.parametrize("script", FAST_EXAMPLES)
def test_example_runs_clean(script, tmp_path):
    args = [sys.executable, str(EXAMPLES / script)]
    if script == "filestore_durability.py":
        args.append(str(tmp_path / "store"))
    proc = subprocess.run(args, capture_output=True, text=True, timeout=300)
    assert proc.returncode == 0, proc.stderr[-2000:]
    assert proc.stdout  # produced a report


def test_quickstart_runs_clean():
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES / "quickstart.py")],
        capture_output=True, text=True, timeout=300,
    )
    assert proc.returncode == 0, proc.stderr[-2000:]
    assert "Figure 2 motivation" in proc.stdout
    assert "Single-disk recovery" in proc.stdout
    # the Figure-2 numbers must be in the output verbatim
    assert "7.000" in proc.stdout and "5.000" in proc.stdout


def test_spec_files_are_valid():
    from repro.experiment import expand_sweep
    import json

    for spec_path in (EXAMPLES / "specs").glob("*.json"):
        specs = expand_sweep(json.loads(spec_path.read_text()))
        assert specs, spec_path
