"""Reproduce the paper's Figure 2 motivation example exactly.

Setup: k = 4, memory c = 4 chunks, two stripes each losing one chunk.
Chunk transfer times (solved from the figure's stated waits):

* stripe 1: (1, 1, 2, 3) time units
* stripe 2: (1, 1, 2, 4) time units

Paper numbers: FSR total = 7, ACWT = 13/8 = 1.625;
PSR (P_a = 2, P_r = 2) total = 5, ACWT = 3/8 = 0.375 (only c3 waits 1 and
c7 waits 2).
"""

import pytest

from repro.sim.transfer import (
    ChunkTransfer,
    StripeJob,
    simulate_interval_schedule,
    simulate_slot_schedule,
)

S1 = [1.0, 1.0, 2.0, 3.0]
S2 = [1.0, 1.0, 2.0, 4.0]


def fsr_jobs():
    return [
        StripeJob(1, [[ChunkTransfer((1, j), d) for j, d in enumerate(S1)]]),
        StripeJob(2, [[ChunkTransfer((2, j), d) for j, d in enumerate(S2)]]),
    ]


def psr_jobs():
    def rounds(sid, times):
        return [
            [ChunkTransfer((sid, 0), times[0]), ChunkTransfer((sid, 1), times[1])],
            [ChunkTransfer((sid, 2), times[2]), ChunkTransfer((sid, 3), times[3])],
        ]

    return [StripeJob(1, rounds(1, S1)), StripeJob(2, rounds(2, S2))]


class TestFigure2FSR:
    def test_total_time_7(self):
        rep = simulate_interval_schedule(fsr_jobs(), num_intervals=1)
        assert rep.total_time == pytest.approx(7.0)

    def test_acwt_1625(self):
        rep = simulate_interval_schedule(fsr_jobs(), num_intervals=1)
        assert rep.acwt == pytest.approx(1.625)

    def test_waits_match_figure(self):
        rep = simulate_interval_schedule(fsr_jobs(), num_intervals=1)
        waits = sorted(r.wait for r in rep.records)
        assert waits == [0.0, 0.0, 1.0, 2.0, 2.0, 2.0, 3.0, 3.0]
        assert sum(waits) == pytest.approx(13.0)

    def test_slot_model_agrees(self):
        rep = simulate_slot_schedule(fsr_jobs(), capacity=4)
        assert rep.total_time == pytest.approx(7.0)
        assert rep.acwt == pytest.approx(1.625)


class TestFigure2PSR:
    def test_total_time_5(self):
        rep = simulate_interval_schedule(psr_jobs(), num_intervals=2)
        assert rep.total_time == pytest.approx(5.0)

    def test_acwt_0375(self):
        rep = simulate_interval_schedule(psr_jobs(), num_intervals=2)
        assert rep.acwt == pytest.approx(0.375)

    def test_only_c3_and_c7_wait(self):
        rep = simulate_interval_schedule(psr_jobs(), num_intervals=2)
        waiting = {r.key: r.wait for r in rep.records if r.wait > 0}
        assert waiting == {(1, 2): 1.0, (2, 2): 2.0}

    def test_improvement_ratios(self):
        fsr = simulate_interval_schedule(fsr_jobs(), num_intervals=1)
        psr = simulate_interval_schedule(psr_jobs(), num_intervals=2)
        assert psr.total_time < fsr.total_time
        assert psr.acwt < fsr.acwt / 4  # 0.375 vs 1.625
