"""LRC codes: encode/verify, local vs global repair, cost accounting."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ec.lrc import LRCCode
from repro.errors import CodingError, ConfigurationError, InsufficientShardsError


@pytest.fixture
def code():
    return LRCCode(k=6, l=2, g=2)  # Azure LRC(6,2,2): n=10


@pytest.fixture
def shards(code):
    rng = np.random.default_rng(0)
    data = [rng.integers(0, 256, size=128, dtype=np.uint8) for _ in range(code.k)]
    return code.encode(data)


class TestConstruction:
    def test_layout(self, code):
        assert code.n == 10
        assert code.group_size == 3
        assert code.group_members(0) == [0, 1, 2]
        assert code.group_members(1) == [3, 4, 5]
        assert code.local_parity_index(0) == 6
        assert code.global_parity_indices() == [8, 9]

    def test_shard_kinds(self, code):
        assert code.shard_kind(0) == "data"
        assert code.shard_kind(6) == "local"
        assert code.shard_kind(9) == "global"

    def test_storage_overhead(self, code):
        assert code.storage_overhead == pytest.approx(10 / 6)

    def test_k_not_divisible_rejected(self):
        with pytest.raises(ConfigurationError):
            LRCCode(k=7, l=2, g=2)

    def test_bad_params(self):
        with pytest.raises(ConfigurationError):
            LRCCode(k=6, l=0, g=2)


class TestEncodeVerify:
    def test_local_parity_is_group_xor(self, code, shards):
        for group in range(code.l):
            acc = np.zeros_like(shards[0])
            for idx in code.group_members(group):
                acc ^= shards[idx]
            assert np.array_equal(shards[code.local_parity_index(group)], acc)

    def test_verify_consistent(self, code, shards):
        assert code.verify(shards)

    def test_verify_detects_corruption(self, code, shards):
        bad = list(shards)
        bad[7] = bad[7].copy()
        bad[7][0] ^= 1
        assert not code.verify(bad)

    def test_unequal_shards_rejected(self, code):
        data = [np.zeros(8, dtype=np.uint8)] * 5 + [np.zeros(9, dtype=np.uint8)]
        with pytest.raises(CodingError):
            code.encode(data)


class TestLocalRepair:
    def test_single_data_loss_uses_group(self, code, shards):
        available = set(range(code.n)) - {1}
        plan = code.repair_plan_for([1], available)
        assert sorted(plan[1]) == [0, 2, 6]  # group peers + local parity

    def test_single_local_parity_loss(self, code, shards):
        available = set(range(code.n)) - {6}
        plan = code.repair_plan_for([6], available)
        assert sorted(plan[6]) == [0, 1, 2]

    def test_repair_cost_single(self, code):
        # LRC: 3 reads instead of RS(8,6)'s 6
        assert code.repair_cost([1]) == 3

    def test_two_losses_same_group_go_global(self, code):
        cost = code.repair_cost([0, 1])
        assert cost == code.k  # global decode

    def test_two_losses_different_groups_stay_local(self, code):
        assert code.repair_cost([0, 3]) == 6  # two local circles of 3


class TestReconstruct:
    @pytest.mark.parametrize("lost", [[0], [5], [6], [9], [0, 3], [0, 9], [6, 7]])
    def test_patterns_rebuild_exactly(self, code, shards, lost):
        holed = [None if j in lost else shards[j] for j in range(code.n)]
        rebuilt = code.reconstruct(holed)
        for j in range(code.n):
            assert np.array_equal(rebuilt[j], shards[j]), (lost, j)

    def test_g_plus_one_tolerance(self, code, shards):
        """g+1 = 3 failures with at most one per group + globals decode."""
        lost = [0, 8, 9]
        holed = [None if j in lost else shards[j] for j in range(code.n)]
        rebuilt = code.reconstruct(holed)
        for j in lost:
            assert np.array_equal(rebuilt[j], shards[j])

    def test_heavy_pattern_recoverable_with_locals(self, code, shards):
        """4 losses can still decode when locals carry enough info."""
        lost = [0, 3, 8, 9]  # one per group + both globals
        holed = [None if j in lost else shards[j] for j in range(code.n)]
        rebuilt = code.reconstruct(holed)
        for j in lost:
            assert np.array_equal(rebuilt[j], shards[j])

    def test_unrecoverable_pattern_raises(self, code, shards):
        # whole group 0 + its local parity + a global: 3 data shards of one
        # group gone with only 2 global parities -> undecodable.
        lost = [0, 1, 2, 6, 8]
        holed = [None if j in lost else shards[j] for j in range(code.n)]
        with pytest.raises(InsufficientShardsError):
            code.reconstruct(holed)

    def test_wrong_length_rejected(self, code):
        with pytest.raises(CodingError):
            code.reconstruct([None] * 5)


class TestRecoverability:
    def test_all_three_erasure_patterns_decode(self, code, shards):
        """Azure LRC guarantee: every g+1 = 3 erasure pattern decodes."""
        from itertools import combinations

        for lost in combinations(range(code.n), 3):
            holed = [None if j in lost else shards[j] for j in range(code.n)]
            rebuilt = code.reconstruct(holed)
            for j in lost:
                assert np.array_equal(rebuilt[j], shards[j]), lost

    def test_four_erasure_recoverability_ratio(self, code, shards):
        """~85% of 4-erasure patterns are information-theoretically decodable."""
        from itertools import combinations

        ok = total = 0
        for lost in combinations(range(code.n), 4):
            total += 1
            holed = [None if j in lost else shards[j] for j in range(code.n)]
            try:
                rebuilt = code.reconstruct(holed)
            except InsufficientShardsError:
                continue
            if all(np.array_equal(rebuilt[j], shards[j]) for j in lost):
                ok += 1
        assert 0.80 < ok / total < 0.90


class TestPropertyRoundtrip:
    @given(
        seed=st.integers(0, 2**31 - 1),
        lost_count=st.integers(1, 3),
    )
    @settings(max_examples=30, deadline=None)
    def test_any_g_plus_one_pattern(self, seed, lost_count):
        """Any pattern of up to g+1 = 3 erasures decodes byte-exactly."""
        rng = np.random.default_rng(seed)
        code = LRCCode(k=6, l=2, g=2)
        data = [rng.integers(0, 256, size=32, dtype=np.uint8) for _ in range(6)]
        shards = code.encode(data)
        lost = sorted(rng.choice(code.n, size=lost_count, replace=False).tolist())
        holed = [None if j in lost else shards[j] for j in range(code.n)]
        rebuilt = code.reconstruct(holed)
        for j in lost:
            assert np.array_equal(rebuilt[j], shards[j])
