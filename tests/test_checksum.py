"""CRC32C (Castagnoli): known-answer vectors and incremental updates."""

import numpy as np
import pytest

from repro.utils.checksum import (
    _crc32c_bytewise,
    _crc32c_sliced,
    crc32c,
    verify_crc32c,
)


class TestKnownAnswers:
    """Reference values from RFC 3720 appendix B.4 / kernel test vectors."""

    VECTORS = [
        (b"", 0x00000000),
        (b"123456789", 0xE3069283),
        (b"\x00" * 32, 0x8A9136AA),
        (b"\xff" * 32, 0x62A8AB43),
        (bytes(range(32)), 0x46DD794E),
    ]

    @pytest.mark.parametrize("data,expected", VECTORS)
    def test_vector(self, data, expected):
        assert crc32c(data) == expected

    def test_incremental_matches_one_shot(self):
        data = bytes(range(256)) * 7
        acc = 0
        for i in range(0, len(data), 100):
            acc = crc32c(data[i:i + 100], acc)
        assert acc == crc32c(data)

    def test_accepts_ndarray_and_memoryview(self):
        arr = np.arange(64, dtype=np.uint8)
        raw = arr.tobytes()
        assert crc32c(arr) == crc32c(raw) == crc32c(memoryview(raw))

    def test_single_bit_flip_changes_crc(self):
        data = bytearray(b"123456789")
        ref = crc32c(bytes(data))
        for byte in range(len(data)):
            for bit in range(8):
                data[byte] ^= 1 << bit
                assert crc32c(bytes(data)) != ref
                data[byte] ^= 1 << bit

    def test_verify_helper(self):
        assert verify_crc32c(b"123456789", 0xE3069283)
        assert not verify_crc32c(b"123456789", 0xE3069284)


class TestSlicedEquivalence:
    """The slicing-by-4 fast path must match the bytewise reference exactly."""

    @pytest.mark.parametrize("length", list(range(0, 17)) + [31, 32, 33, 63, 64, 65, 127, 255, 4096, 4097])
    def test_boundary_lengths(self, length):
        rng = np.random.default_rng(length)
        data = rng.integers(0, 256, size=length, dtype=np.uint8).tobytes()
        assert _crc32c_sliced(data) == _crc32c_bytewise(data)

    def test_random_inputs_and_seeds(self):
        rng = np.random.default_rng(7)
        for _ in range(50):
            length = int(rng.integers(0, 1024))
            data = rng.integers(0, 256, size=length, dtype=np.uint8).tobytes()
            seed = int(rng.integers(0, 2**32))
            assert _crc32c_sliced(data, seed) == _crc32c_bytewise(data, seed)

    def test_streaming_continuation_across_unaligned_splits(self):
        rng = np.random.default_rng(11)
        data = rng.integers(0, 256, size=1000, dtype=np.uint8).tobytes()
        for split in (0, 1, 2, 3, 4, 5, 7, 500, 999, 1000):
            acc = _crc32c_sliced(data[:split])
            acc = _crc32c_sliced(data[split:], acc)
            assert acc == _crc32c_bytewise(data)

    def test_public_entrypoint_uses_equivalent_path(self):
        data = bytes(range(256)) * 3
        assert crc32c(data) == _crc32c_bytewise(data)
