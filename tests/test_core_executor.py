"""DataPathExecutor: byte-exact repair through the bounded memory."""

import numpy as np
import pytest

from repro.core import (
    ActivePreliminaryRepair,
    ActiveSlowerFirstRepair,
    DataPathExecutor,
    FullStripeRepair,
    PassiveRepair,
    RepairContext,
)
from repro.core.scheduler import _disk_id_matrix
from repro.ec.stripe import ChunkId
from repro.errors import StorageError
from repro.hdss import HDSSConfig, HighDensityStorageServer
from repro.hdss.profiles import BimodalSlowProfile


@pytest.fixture
def server():
    cfg = HDSSConfig(
        num_disks=12, n=6, k=4, chunk_size=8 * 1024, memory_chunks=8, spares=3,
        profile=BimodalSlowProfile(100e6, ros=0.2, slow_factor=4.0), seed=13,
    )
    srv = HighDensityStorageServer(cfg)
    srv.provision_stripes(15, with_data=True)
    return srv


def snapshot_disk(server, disk_id):
    return {
        cid: server.store.get(disk_id, cid)
        for cid in server.store.chunks_on_disk(disk_id)
    }


def run_repair(server, algorithm, failed_disk, context=None):
    stripe_indices, survivor_ids, L = server.transfer_time_matrix([failed_disk])
    ctx = context or RepairContext()
    ctx.disk_ids = _disk_id_matrix(server, stripe_indices, survivor_ids)
    plan = algorithm.build_plan(L, server.config.memory_chunks, context=ctx)
    executor = DataPathExecutor(server)
    stats = executor.repair(plan, stripe_indices, survivor_ids)
    return stats, stripe_indices


@pytest.mark.parametrize(
    "algorithm",
    [FullStripeRepair(), ActivePreliminaryRepair(), ActiveSlowerFirstRepair(), PassiveRepair()],
    ids=["fsr", "ap", "as", "pa"],
)
class TestByteExactRepair:
    def test_rebuilt_bytes_identical(self, server, algorithm):
        lost = snapshot_disk(server, 0)
        server.fail_disk(0)
        stats, _ = run_repair(server, algorithm, 0)
        assert stats.chunks_rebuilt == len(lost)
        for (stripe_idx, shard_idx, spare) in stats.writebacks:
            cid = ChunkId(stripe_idx, shard_idx)
            assert np.array_equal(server.store.get(spare, cid), lost[cid])

    def test_memory_capacity_respected(self, server, algorithm):
        server.fail_disk(0)
        stats, _ = run_repair(server, algorithm, 0)
        assert stats.peak_memory_chunks <= server.config.memory_chunks
        assert server.memory.occupancy == 0  # fully drained

    def test_read_accounting(self, server, algorithm):
        server.fail_disk(0)
        stats, stripes = run_repair(server, algorithm, 0)
        k = server.config.k
        assert stats.chunks_read == len(stripes) * k
        assert stats.bytes_read == stats.chunks_read * server.config.chunk_size


class TestExecutorSemantics:
    def test_fsr_peak_is_k(self, server):
        server.fail_disk(0)
        stats, _ = run_repair(server, FullStripeRepair(), 0)
        assert stats.peak_memory_chunks == server.config.k

    def test_psr_peak_below_fsr(self):
        """With small P_a, PSR's data-path footprint < k (pa + accumulator)."""
        cfg = HDSSConfig(
            num_disks=14, n=9, k=6, chunk_size=4 * 1024, memory_chunks=12, spares=2,
            profile=BimodalSlowProfile(100e6, ros=0.3, slow_factor=8.0), seed=3,
        )
        srv = HighDensityStorageServer(cfg)
        srv.provision_stripes(10, with_data=True)
        srv.fail_disk(0)
        stats, _ = run_repair(srv, ActiveSlowerFirstRepair(), 0)
        # AS clamps pa to [2, 3]; footprint = pa + 1 accumulator <= 4 < 6
        assert stats.peak_memory_chunks < srv.config.k

    def test_no_failed_disks_rejected(self, server):
        stripe_indices, survivor_ids, L = server.transfer_time_matrix([])
        plan = FullStripeRepair().build_plan(np.ones((1, 4)), 8)
        with pytest.raises(StorageError):
            DataPathExecutor(server).repair(plan, [0], [[0, 1, 2, 3]])

    def test_write_back_disabled(self, server):
        server.fail_disk(0)
        stripe_indices, survivor_ids, L = server.transfer_time_matrix([0])
        plan = FullStripeRepair().build_plan(L, server.config.memory_chunks)
        stats = DataPathExecutor(server, write_back=False).repair(
            plan, stripe_indices, survivor_ids
        )
        assert stats.bytes_written == 0
        assert stats.writebacks == []
        assert stats.chunks_rebuilt > 0

    def test_disk_read_telemetry(self, server):
        server.fail_disk(0)
        before = {d.disk_id: d.bytes_read for d in server.disks}
        stats, _ = run_repair(server, FullStripeRepair(), 0)
        total_delta = sum(d.bytes_read - before[d.disk_id] for d in server.disks)
        assert total_delta == stats.bytes_read

    def test_multi_target_cooperative_repair(self):
        """One stripe losing two chunks is rebuilt in a single pass."""
        cfg = HDSSConfig(
            num_disks=8, n=6, k=4, chunk_size=4 * 1024, memory_chunks=10, spares=3,
            seed=21,
        )
        srv = HighDensityStorageServer(cfg)
        srv.provision_stripes(12, with_data=True)
        lost0 = snapshot_disk(srv, 0)
        lost1 = snapshot_disk(srv, 1)
        srv.fail_disk(0)
        srv.fail_disk(1)
        stripe_indices = srv.stripes_needing_repair([0, 1])
        survivor_ids = [
            srv.survivor_shards(srv.layout[si], [0, 1]) for si in stripe_indices
        ]
        L = np.ones((len(stripe_indices), 4))
        plan = FullStripeRepair().build_plan(L, srv.config.memory_chunks)
        stats = DataPathExecutor(srv).repair(plan, stripe_indices, survivor_ids)
        rebuilt = {(s, t): spare for (s, t, spare) in stats.writebacks}
        for cid, data in {**lost0, **lost1}.items():
            spare = rebuilt[(cid.stripe_index, cid.shard_index)]
            assert np.array_equal(srv.store.get(spare, cid), data)

    def test_dirty_memory_rejected(self, server):
        server.fail_disk(0)
        server.memory.admit("leftover")
        stripe_indices, survivor_ids, L = server.transfer_time_matrix([0])
        plan = FullStripeRepair().build_plan(L, server.config.memory_chunks)
        with pytest.raises(StorageError):
            DataPathExecutor(server).repair(plan, stripe_indices, survivor_ids)
