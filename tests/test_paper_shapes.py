"""Fast regression tests pinning the paper's qualitative claims.

These mirror the benchmark assertions at unit-test scale, so a code change
that silently breaks a headline result fails `pytest tests/` in seconds
rather than only in a benchmark run.
"""

import pytest

from repro.core import (
    ActivePreliminaryRepair,
    ActiveSlowerFirstRepair,
    FullStripeRepair,
    PassiveRepair,
    RepairContext,
    execute_plan,
)
from repro.core.analysis import acwt_curve_vs_pa, rounds_curve_vs_pr
from repro.utils.timer import time_call
from repro.workloads import disk_heterogeneous_transfer_times, normal_transfer_times

S, K, C = 240, 6, 12
NUM_DISKS = 36


@pytest.fixture(scope="module")
def workload():
    return disk_heterogeneous_transfer_times(
        S, K, NUM_DISKS, ros=0.10, slow_factor=4.0, seed=11
    )


@pytest.fixture(scope="module")
def repair_times(workload):
    w, disk_ids = workload
    times = {}
    for algo in (FullStripeRepair(), ActivePreliminaryRepair(),
                 ActiveSlowerFirstRepair(), PassiveRepair()):
        ctx = RepairContext(disk_ids=disk_ids)
        plan = algo.build_plan(w.L, C, context=ctx)
        times[algo.name] = execute_plan(plan, w.L, C, disk_ids=disk_ids).total_time
    return times


class TestExperiment1Shape:
    def test_every_hdpsr_scheme_beats_fsr(self, repair_times):
        for name in ("hd-psr-ap", "hd-psr-as", "hd-psr-pa"):
            assert repair_times[name] < repair_times["fsr"], name

    def test_reductions_are_substantial(self, repair_times):
        best = min(v for k, v in repair_times.items() if k != "fsr")
        assert (1 - best / repair_times["fsr"]) > 0.15

    def test_gap_widens_with_k(self):
        """Paper: 'the larger the k, the greater the reduction'."""
        reductions = {}
        for (n, k) in ((6, 4), (14, 10)):
            w, disks = disk_heterogeneous_transfer_times(
                200, k, NUM_DISKS, ros=0.10, slow_factor=4.0, seed=3
            )
            fsr = execute_plan(FullStripeRepair().build_plan(w.L, 2 * k), w.L, 2 * k).total_time
            ap = execute_plan(
                ActivePreliminaryRepair().build_plan(w.L, 2 * k), w.L, 2 * k
            ).total_time
            reductions[k] = 1 - ap / fsr
        assert reductions[10] > reductions[4] - 0.05


class TestExperiment2Shape:
    def test_as_selection_cheaper_than_ap(self):
        L = normal_transfer_times(1500, 10, ros=0.08, seed=5).L
        ap = ActivePreliminaryRepair()
        as_ = ActiveSlowerFirstRepair()
        # take the best of a few calls to tame timer noise
        ap_time = min(time_call(ap.select, L, 20)[1] for _ in range(3))
        as_time = min(time_call(as_.select, L, 20, 2.0 * float(L.mean()))[1] for _ in range(3))
        assert as_time < ap_time

    def test_pa_has_no_selection_cost(self, workload):
        w, disk_ids = workload
        plan = PassiveRepair().build_plan(w.L, C, context=RepairContext(disk_ids=disk_ids))
        assert plan.selection_seconds == 0.0


class TestObservationShapes:
    def test_acwt_monotone_in_pa(self):
        L = normal_transfer_times(100, 12, ros=0.05, seed=1).L
        curve = acwt_curve_vs_pa(L, 12, pa_values=[1, 3, 6, 12])
        values = list(curve.values())
        assert values == sorted(values)

    def test_tr_monotone_in_pr(self):
        values = list(rounds_curve_vs_pr(12, 12).values())
        assert values == sorted(values)


class TestHomogeneousBaseline:
    def test_no_heterogeneity_no_gain(self):
        """With identical disks there is nothing for HD-PSR to exploit."""
        w, disk_ids = disk_heterogeneous_transfer_times(
            150, K, NUM_DISKS, ros=0.0, base_std=0.0, seed=2
        )
        fsr = execute_plan(FullStripeRepair().build_plan(w.L, C), w.L, C).total_time
        ap = execute_plan(ActivePreliminaryRepair().build_plan(w.L, C), w.L, C).total_time
        assert ap == pytest.approx(fsr, rel=0.05)
