"""Wide-stripe RS over GF(2^16)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ec.wide import WideRSCode
from repro.errors import CodingError, ConfigurationError, InsufficientShardsError


@pytest.fixture
def code():
    return WideRSCode(300, 256)  # impossible for GF(2^8)


@pytest.fixture
def small():
    return WideRSCode(9, 6)


class TestConstruction:
    def test_beyond_gf256(self, code):
        assert code.n == 300 and code.m == 44

    def test_too_wide_rejected(self):
        with pytest.raises(ConfigurationError):
            WideRSCode(70000, 100)

    def test_bad_params(self):
        with pytest.raises(ConfigurationError):
            WideRSCode(6, 6)

    def test_repr(self, small):
        assert "2^16" in repr(small)


class TestSplitJoin:
    def test_roundtrip(self, small):
        data = bytes(range(256)) * 7 + b"x"  # odd length
        shards = small.split(data)
        assert len(shards) == 6
        assert small.join(shards, len(data)) == data

    def test_empty_rejected(self, small):
        with pytest.raises(CodingError):
            small.split(b"")

    def test_symbols_are_uint16(self, small):
        shards = small.split(b"hello world!")
        assert all(s.dtype == np.uint16 for s in shards)


class TestEncodeReconstruct:
    def test_systematic(self, small):
        rng = np.random.default_rng(0)
        data = [rng.integers(0, 65536, size=50, dtype=np.uint16) for _ in range(6)]
        shards = small.encode(data)
        for i in range(6):
            assert np.array_equal(shards[i], data[i])

    def test_mds_small(self, small):
        rng = np.random.default_rng(1)
        data = rng.integers(0, 256, size=600, dtype=np.uint8).tobytes()
        shards = small.encode(small.split(data))
        for lost in ([0, 4, 8], [6, 7, 8], [0, 1, 2]):
            holed = [None if j in lost else shards[j] for j in range(9)]
            rebuilt = small.reconstruct(holed)
            for j in lost:
                assert np.array_equal(rebuilt[j], shards[j]), lost
        assert small.join(rebuilt[:6], len(data)) == data

    def test_wide_stripe_repair(self):
        """A stripe wider than 256 shards — the GF(2^16) point."""
        rng = np.random.default_rng(2)
        code = WideRSCode(300, 280)
        data = [rng.integers(0, 65536, size=8, dtype=np.uint16) for _ in range(280)]
        shards = code.encode(data)
        lost = sorted(rng.choice(300, size=15, replace=False).tolist())
        holed = [None if j in lost else shards[j] for j in range(300)]
        rebuilt = code.reconstruct(holed)
        for j in lost:
            assert np.array_equal(rebuilt[j], shards[j])

    def test_insufficient_shards(self, small):
        holed = [None] * 4 + [np.zeros(4, dtype=np.uint16)] * 5
        with pytest.raises(InsufficientShardsError):
            small.reconstruct(holed)

    def test_unequal_shards_rejected(self, small):
        data = [np.zeros(4, dtype=np.uint16)] * 5 + [np.zeros(5, dtype=np.uint16)]
        with pytest.raises(CodingError):
            small.encode(data)

    @given(seed=st.integers(0, 2**31 - 1))
    @settings(max_examples=15, deadline=None)
    def test_roundtrip_property(self, seed):
        rng = np.random.default_rng(seed)
        code = WideRSCode(12, 8)
        size = int(rng.integers(1, 400))
        data = rng.integers(0, 256, size=size, dtype=np.uint8).tobytes()
        shards = code.encode(code.split(data))
        lost = sorted(rng.choice(12, size=4, replace=False).tolist())
        holed = [None if j in lost else shards[j] for j in range(12)]
        rebuilt = code.reconstruct(holed)
        assert code.join(rebuilt[:8], size) == data
