"""Probe-staleness drift model."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.workloads.staleness import StalenessModel, drift_transfer_times


@pytest.fixture
def setup():
    rng = np.random.default_rng(0)
    L = rng.uniform(1.0, 1.5, size=(30, 6))
    disks = rng.integers(0, 12, size=(30, 6))
    return L, disks


class TestModelValidation:
    def test_defaults_identity(self):
        StalenessModel()

    def test_bad_factor(self):
        with pytest.raises(ConfigurationError):
            StalenessModel(episode_factor=0.5)

    def test_bad_probs(self):
        with pytest.raises(ConfigurationError):
            StalenessModel(episode_prob=1.5)
        with pytest.raises(ConfigurationError):
            StalenessModel(drift_sigma=-0.1)


class TestDrift:
    def test_identity_model_no_change(self, setup):
        L, disks = setup
        out = drift_transfer_times(L, disks, StalenessModel(), seed=1)
        assert np.array_equal(out.L_actual, L)
        assert out.new_slow_disks == [] and out.recovered_disks == []
        assert all(f == 1.0 for f in out.disk_factors.values())

    def test_per_disk_coherence(self, setup):
        """All chunks on one disk drift by the same factor."""
        L, disks = setup
        out = drift_transfer_times(
            L, disks, StalenessModel(drift_sigma=0.3, episode_prob=0.2), seed=2
        )
        ratio = out.L_actual / L
        for d, factor in out.disk_factors.items():
            mask = disks == d
            assert np.allclose(ratio[mask], factor)

    def test_episodes_slow_down(self, setup):
        L, disks = setup
        out = drift_transfer_times(
            L, disks, StalenessModel(episode_prob=1.0, episode_factor=4.0), seed=3
        )
        # every previously-fast disk entered an episode
        assert len(out.new_slow_disks) == len(out.disk_factors)
        assert np.all(out.L_actual >= L * 3.9)

    def test_recovery_speeds_up(self):
        L = np.ones((10, 4))
        L[:, 0] = 8.0  # column 0 = slow disk 0
        disks = np.tile(np.array([0, 1, 2, 3]), (10, 1))
        out = drift_transfer_times(
            L, disks, StalenessModel(recovery_prob=1.0, episode_factor=4.0), seed=4
        )
        assert out.recovered_disks == [0]
        assert np.allclose(out.L_actual[:, 0], 2.0)

    def test_deterministic(self, setup):
        L, disks = setup
        model = StalenessModel(drift_sigma=0.2, episode_prob=0.3)
        a = drift_transfer_times(L, disks, model, seed=9)
        b = drift_transfer_times(L, disks, model, seed=9)
        assert np.array_equal(a.L_actual, b.L_actual)

    def test_shape_mismatch_rejected(self, setup):
        L, disks = setup
        with pytest.raises(ConfigurationError):
            drift_transfer_times(L, disks[:, :3], StalenessModel())

    def test_times_stay_positive(self, setup):
        L, disks = setup
        out = drift_transfer_times(
            L, disks,
            StalenessModel(drift_sigma=0.5, episode_prob=0.5, recovery_prob=0.5),
            seed=11,
        )
        assert np.all(out.L_actual > 0)
