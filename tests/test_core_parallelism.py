"""Observation-1 arithmetic and round splitting."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.parallelism import pa_for_pr, pr_for_pa, rounds_for, split_rounds
from repro.errors import ConfigurationError


class TestObservation1:
    def test_paper_figure3_examples(self):
        """Figure 3: c=4 -> (Pa=4, Pr=1) and (Pa=2, Pr=2)."""
        assert pr_for_pa(4, 4) == 1
        assert pr_for_pa(4, 2) == 2
        assert pa_for_pr(4, 1) == 4
        assert pa_for_pr(4, 2) == 2

    def test_ceil_policy_default(self):
        assert pr_for_pa(12, 5) == 3  # ceil(12/5)

    def test_floor_policy(self):
        assert pr_for_pa(12, 5, policy="floor") == 2
        assert pr_for_pa(3, 5, policy="floor") == 1  # never below 1

    def test_mutual_restriction_monotonic(self):
        prs = [pr_for_pa(12, pa) for pa in range(1, 13)]
        assert prs == sorted(prs, reverse=True)

    def test_unknown_policy(self):
        with pytest.raises(ConfigurationError):
            pr_for_pa(4, 2, policy="round")

    @pytest.mark.parametrize("bad", [0, -1, 1.5, True])
    def test_bad_inputs(self, bad):
        with pytest.raises(ConfigurationError):
            pr_for_pa(bad, 2)
        with pytest.raises(ConfigurationError):
            pa_for_pr(4, bad)

    @given(c=st.integers(1, 100), pa=st.integers(1, 100))
    @settings(max_examples=100, deadline=None)
    def test_floor_never_overcommits(self, c, pa):
        pr = pr_for_pa(c, pa, policy="floor")
        assert pr >= 1
        assert pr == 1 or pr * pa <= c

    @given(c=st.integers(1, 100), pr=st.integers(1, 100))
    @settings(max_examples=100, deadline=None)
    def test_equation3_roundtrip(self, c, pr):
        """pa = ceil(c/pr) implies pr_for_pa(c, pa) <= pr stays feasible."""
        pa = pa_for_pr(c, pr)
        assert 1 <= pa <= c
        assert pr_for_pa(c, pa) <= pr or pa == 1


class TestRounds:
    def test_paper_example(self):
        """§3.2: k=6, Pa=2 -> 3 rounds."""
        assert rounds_for(6, 2) == 3

    def test_fsr_single_round(self):
        assert rounds_for(10, 10) == 1

    def test_ceiling(self):
        assert rounds_for(10, 3) == 4

    @given(k=st.integers(1, 64), pa=st.integers(1, 64))
    @settings(max_examples=100, deadline=None)
    def test_rounds_cover_k(self, k, pa):
        tr = rounds_for(k, pa)
        assert (tr - 1) * pa < k <= tr * pa


class TestSplitRounds:
    def test_exact_split(self):
        assert split_rounds([0, 1, 2, 3], 2) == [[0, 1], [2, 3]]

    def test_ragged_tail(self):
        assert split_rounds([0, 1, 2, 3, 4], 2) == [[0, 1], [2, 3], [4]]

    def test_single_round(self):
        assert split_rounds([2, 0, 1], 5) == [[2, 0, 1]]

    def test_order_preserved(self):
        assert split_rounds([3, 1, 2, 0], 2) == [[3, 1], [2, 0]]

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            split_rounds([], 2)

    @given(k=st.integers(1, 40), pa=st.integers(1, 40))
    @settings(max_examples=100, deadline=None)
    def test_partition_property(self, k, pa):
        rounds = split_rounds(list(range(k)), pa)
        assert [x for r in rounds for x in r] == list(range(k))
        assert all(len(r) <= pa for r in rounds)
        assert all(len(r) == pa for r in rounds[:-1])
