"""Write-back tail-time modelling (extension beyond the paper's reads-only accounting)."""

import numpy as np
import pytest

from repro.core import ExecutionOptions, FullStripeRepair, execute_plan
from repro.core.analysis import uniform_pa_plan
from repro.errors import PlanError
from repro.sim.transfer import (
    ChunkTransfer,
    StripeJob,
    simulate_interval_schedule,
    simulate_slot_schedule,
)


def one_job(tail_id="a"):
    return StripeJob(tail_id, [[ChunkTransfer((tail_id, 0), 2.0)]])


class TestIntervalTail:
    def test_tail_extends_finish(self):
        rep = simulate_interval_schedule([one_job()], 1, tail_time_per_job=0.5)
        assert rep.total_time == pytest.approx(2.5)

    def test_tail_occupies_interval(self):
        jobs = [one_job("a"), one_job("b")]
        rep = simulate_interval_schedule(jobs, 1, tail_time_per_job=1.0)
        # serial: (2 + 1) + (2 + 1)
        assert rep.total_time == pytest.approx(6.0)

    def test_negative_tail_rejected(self):
        with pytest.raises(PlanError):
            simulate_interval_schedule([one_job()], 1, tail_time_per_job=-1.0)


class TestSlotTail:
    def test_tail_extends_finish(self):
        rep = simulate_slot_schedule([one_job()], capacity=2, tail_time_per_job=0.5)
        assert rep.total_time == pytest.approx(2.5)

    def test_tail_does_not_hold_slots(self):
        # capacity 1: job B's transfer can start while A is writing back.
        jobs = [one_job("a"), one_job("b")]
        rep = simulate_slot_schedule(jobs, capacity=1, tail_time_per_job=10.0)
        # A: transfer [0,2], tail to 12; B: transfer [2,4], tail to 14.
        assert rep.total_time == pytest.approx(14.0)
        assert rep.job_finish_times["b"] == pytest.approx(14.0)

    def test_negative_tail_rejected(self):
        with pytest.raises(PlanError):
            simulate_slot_schedule([one_job()], capacity=1, tail_time_per_job=-0.1)


class TestExecutionOptionsWireUp:
    def test_writeback_increases_total(self):
        L = np.random.default_rng(0).uniform(1, 3, size=(10, 4))
        plan = FullStripeRepair().build_plan(L, c=8)
        plain = execute_plan(plan, L, c=8)
        with_wb = execute_plan(
            plan, L, c=8, options=ExecutionOptions(writeback_seconds=0.7)
        )
        assert with_wb.total_time > plain.total_time

    def test_both_models_supported(self):
        L = np.random.default_rng(1).uniform(1, 3, size=(6, 4))
        plan = uniform_pa_plan(L, pa=2, pr=4)
        for model in ("slot", "interval"):
            rep = execute_plan(
                plan, L, c=8,
                options=ExecutionOptions(model=model, writeback_seconds=0.5),
            )
            assert rep.total_time > 0
