"""Metrics registry: counters, gauges, histogram bucket edges, snapshots."""

from __future__ import annotations

import threading

import pytest

from repro.errors import ConfigurationError
from repro.obs.metrics import (
    DEFAULT_TIME_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    default_registry,
)


class TestCounter:
    def test_inc_accumulates(self):
        c = Counter("reads_total")
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5

    def test_rejects_negative(self):
        c = Counter("reads_total")
        with pytest.raises(ConfigurationError):
            c.inc(-1)

    def test_labels_fan_out(self):
        c = Counter("reads_total")
        c.labels(algorithm="fsr").inc(3)
        c.labels(algorithm="hd-psr-ap").inc(1)
        assert c.labels(algorithm="fsr").value == 3
        # Same label set -> same child, regardless of kwarg order.
        c2 = Counter("x")
        assert c2.labels(a="1", b="2") is c2.labels(b="2", a="1")


class TestGauge:
    def test_set_inc_dec(self):
        g = Gauge("slots_in_use")
        g.set(5)
        g.inc(2)
        g.dec(3)
        assert g.value == 4.0


class TestHistogramBuckets:
    def test_rejects_bad_edges(self):
        for bad in ([], [1.0, 1.0], [2.0, 1.0], [1.0, 3.0, 2.0]):
            with pytest.raises(ConfigurationError):
                Histogram("h", buckets=bad)

    def test_le_semantics_value_on_edge_counts_in_bucket(self):
        h = Histogram("h", buckets=(1.0, 2.0, 4.0))
        h.observe(1.0)   # le="1" (inclusive upper edge)
        h.observe(1.5)   # le="2"
        h.observe(4.0)   # le="4"
        h.observe(4.01)  # +Inf overflow
        assert h.bucket_counts() == [1, 1, 1, 1]
        assert h.cumulative_counts() == [1, 2, 3, 4]
        assert h.count == 4
        assert h.sum == pytest.approx(10.51)

    def test_below_first_edge_lands_in_first_bucket(self):
        h = Histogram("h", buckets=(1.0, 2.0))
        h.observe(0.0)
        h.observe(-5.0)
        assert h.bucket_counts() == [2, 0, 0]

    def test_default_buckets_are_strictly_increasing(self):
        assert all(b > a for a, b in zip(DEFAULT_TIME_BUCKETS,
                                         DEFAULT_TIME_BUCKETS[1:]))
        Histogram("h")  # default edges must construct

    def test_labelled_children_share_edges(self):
        h = Histogram("h", buckets=(1.0, 2.0))
        child = h.labels(algorithm="fsr")
        assert child.buckets == (1.0, 2.0)


class TestRegistry:
    def test_get_or_create_is_idempotent(self):
        r = MetricsRegistry()
        assert r.counter("a") is r.counter("a")
        assert r.histogram("h") is r.histogram("h")

    def test_type_conflict_raises(self):
        r = MetricsRegistry()
        r.counter("a")
        with pytest.raises(ConfigurationError):
            r.gauge("a")

    def test_invalid_name_rejected(self):
        r = MetricsRegistry()
        with pytest.raises(ConfigurationError):
            r.counter("bad name!")

    def test_snapshot_shapes(self):
        r = MetricsRegistry()
        r.counter("c", "help c").inc(2)
        r.gauge("g").set(7)
        h = r.histogram("h", buckets=(1.0, 2.0))
        h.observe(1.5)
        snap = r.snapshot()
        assert snap["c"]["type"] == "counter"
        assert snap["c"]["help"] == "help c"
        assert snap["c"]["series"][0] == {"labels": {}, "value": 2.0}
        assert snap["g"]["series"][0]["value"] == 7.0
        hs = snap["h"]["series"][0]
        assert hs["buckets"] == {"1.0": 0, "2.0": 1, "+Inf": 1}
        assert hs["count"] == 1 and hs["sum"] == 1.5

    def test_snapshot_omits_untouched_bare_series_with_children(self):
        r = MetricsRegistry()
        c = r.counter("c")
        c.labels(algorithm="fsr").inc()
        series = r.snapshot()["c"]["series"]
        assert len(series) == 1
        assert series[0]["labels"] == {"algorithm": "fsr"}
        # Touch the bare series -> it reappears.
        c.inc()
        assert len(r.snapshot()["c"]["series"]) == 2

    def test_reset(self):
        r = MetricsRegistry()
        r.counter("c").inc()
        r.reset()
        assert r.get("c") is None

    def test_default_registry_is_shared(self):
        assert default_registry() is default_registry()

    def test_concurrent_increments(self):
        r = MetricsRegistry()
        c = r.counter("c")

        def work():
            for _ in range(500):
                c.inc()

        threads = [threading.Thread(target=work) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert c.value == 4000


class TestRegistryLockHammer:
    """Regression: label-child creation and P² updates under concurrency.

    Every metric a registry creates shares the registry's single re-entrant
    lock, so racing get-or-create of the *same* labelled child can never
    produce two children (lost updates), and summary observations
    interleaved with snapshots never tear the P² marker state.
    """

    def test_label_child_creation_races_one_child_per_labelset(self):
        r = MetricsRegistry()
        winners = []

        def work(i):
            # Every thread races get-or-create on the same 4 label sets.
            for n in range(400):
                child = r.counter("hammer_total").labels(disk=str(n % 4))
                winners.append(child)
                child.inc()

        threads = [threading.Thread(target=work, args=(i,)) for i in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        c = r.counter("hammer_total")
        total = sum(c.labels(disk=str(d)).value for d in range(4))
        assert total == 8 * 400  # no lost increments
        # get-or-create must have been idempotent: 4 distinct children only.
        assert len({id(w) for w in winners}) == 4

    def test_summary_observe_vs_snapshot_races(self):
        r = MetricsRegistry()
        stop = threading.Event()
        errors = []

        def observe(path):
            try:
                s = r.summary("lat_seconds", quantiles=(0.5, 0.99))
                for i in range(2000):
                    s.labels(path=path).observe(i / 1000.0)
            except Exception as exc:  # pragma: no cover - the regression
                errors.append(exc)

        def scrape():
            try:
                while not stop.is_set():
                    for snap in r.snapshot().values():
                        for series in snap["series"]:
                            q = series.get("quantiles", {})
                            vals = [v for v in q.values() if v == v]
                            assert vals == sorted(vals)  # monotone markers
            except Exception as exc:  # pragma: no cover - the regression
                errors.append(exc)

        writers = [
            threading.Thread(target=observe, args=(p,))
            for p in ("healthy", "piggyback", "decode", "healthy")
        ]
        scraper = threading.Thread(target=scrape)
        scraper.start()
        for t in writers:
            t.start()
        for t in writers:
            t.join()
        stop.set()
        scraper.join()
        assert errors == []
        s = r.summary("lat_seconds", quantiles=(0.5, 0.99))
        assert s.labels(path="healthy").count == 4000
        assert s.labels(path="piggyback").count == 2000

    def test_registry_metrics_share_one_lock(self):
        r = MetricsRegistry()
        c = r.counter("a_total")
        g = r.gauge("b")
        assert c._lock is g._lock is r._lock
        assert c.labels(x="1")._lock is r._lock
