"""Declarative experiment runner."""

import json

import pytest

from repro.cli import main
from repro.errors import ConfigurationError
from repro.experiment import ExperimentSpec, run_experiment, save_rows

SERVER = {
    "n": 6, "k": 4, "disk_size": "128MiB", "chunk_size": "32MiB",
    "num_disks": 12, "ros": 0.2, "placement": "random",
}


def spec_dict(**overrides):
    base = {
        "name": "test-exp",
        "server": dict(SERVER),
        "failure": {"disks": [0], "mode": "single"},
        "algorithms": ["fsr", "hd-psr-as"],
        "runs": 2,
        "base_seed": 5,
    }
    base.update(overrides)
    return base


class TestSpecValidation:
    def test_valid(self):
        ExperimentSpec.from_dict(spec_dict())

    def test_missing_name(self):
        with pytest.raises(ConfigurationError):
            ExperimentSpec.from_dict({"server": {}})

    def test_unknown_algorithm(self):
        with pytest.raises(ConfigurationError):
            ExperimentSpec.from_dict(spec_dict(algorithms=["fsr", "magic"]))

    def test_unknown_mode(self):
        d = spec_dict()
        d["failure"]["mode"] = "chaos"
        with pytest.raises(ConfigurationError):
            ExperimentSpec.from_dict(d)

    def test_single_mode_one_disk(self):
        d = spec_dict()
        d["failure"]["disks"] = [0, 1]
        with pytest.raises(ConfigurationError):
            ExperimentSpec.from_dict(d)

    def test_no_disks(self):
        d = spec_dict()
        d["failure"]["disks"] = []
        with pytest.raises(ConfigurationError):
            ExperimentSpec.from_dict(d)

    def test_unknown_server_key(self):
        d = spec_dict()
        d["server"]["warp_drive"] = True
        with pytest.raises(ConfigurationError):
            ExperimentSpec.from_dict(d)

    def test_bad_runs(self):
        with pytest.raises(ConfigurationError):
            ExperimentSpec.from_dict(spec_dict(runs=0))

    def test_from_file(self, tmp_path):
        path = tmp_path / "spec.json"
        path.write_text(json.dumps(spec_dict()))
        spec = ExperimentSpec.from_file(path)
        assert spec.name == "test-exp"

    def test_missing_file(self, tmp_path):
        with pytest.raises(ConfigurationError):
            ExperimentSpec.from_file(tmp_path / "nope.json")

    def test_invalid_json(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        with pytest.raises(ConfigurationError):
            ExperimentSpec.from_file(path)


class TestRunExperiment:
    def test_single_mode(self):
        rows = run_experiment(ExperimentSpec.from_dict(spec_dict()))
        assert len(rows) == 2
        assert {r["algorithm"] for r in rows} == {"fsr", "hd-psr-as"}
        for r in rows:
            assert r["total_time"] > 0
            assert r["chunks_read"] > 0
            assert r["runs"] == 2

    def test_multi_modes(self):
        d = spec_dict(algorithms=["hd-psr-as"])
        d["failure"] = {"disks": [0, 1], "mode": "multi-naive"}
        naive = run_experiment(ExperimentSpec.from_dict(d))[0]
        d["failure"]["mode"] = "multi-cooperative"
        coop = run_experiment(ExperimentSpec.from_dict(d))[0]
        assert coop["chunks_read"] <= naive["chunks_read"]

    def test_deterministic(self):
        spec = ExperimentSpec.from_dict(spec_dict())
        a = run_experiment(spec)
        b = run_experiment(spec)
        assert [r["total_time"] for r in a] == [r["total_time"] for r in b]

    def test_save_rows(self, tmp_path):
        rows = run_experiment(ExperimentSpec.from_dict(spec_dict(runs=1)))
        path = save_rows(rows, tmp_path / "out" / "rows.json")
        assert path.exists()
        assert json.loads(path.read_text())[0]["experiment"] == "test-exp"


class TestSweep:
    def test_expand_cartesian(self):
        from repro.experiment import expand_sweep

        d = spec_dict(runs=1)
        d["sweep"] = {"ros": [0.0, 0.2], "k": [3, 4]}
        specs = expand_sweep(d)
        assert len(specs) == 4
        names = {s.name for s in specs}
        assert "test-exp/k=3/ros=0.0" in names
        assert all(s.server["ros"] in (0.0, 0.2) for s in specs)

    def test_no_sweep_passthrough(self):
        from repro.experiment import expand_sweep

        specs = expand_sweep(spec_dict())
        assert len(specs) == 1
        assert specs[0].name == "test-exp"

    def test_unknown_sweep_key(self):
        from repro.experiment import expand_sweep

        d = spec_dict()
        d["sweep"] = {"flux_capacitor": [1]}
        with pytest.raises(ConfigurationError):
            expand_sweep(d)

    def test_empty_sweep_list(self):
        from repro.experiment import expand_sweep

        d = spec_dict()
        d["sweep"] = {"ros": []}
        with pytest.raises(ConfigurationError):
            expand_sweep(d)

    def test_run_sweep_rows(self):
        from repro.experiment import run_sweep

        d = spec_dict(runs=1, algorithms=["fsr"])
        d["sweep"] = {"ros": [0.0, 0.3]}
        rows = run_sweep(d)
        assert len(rows) == 2
        assert {r["experiment"] for r in rows} == {
            "test-exp/ros=0.0", "test-exp/ros=0.3"
        }
        # heavier slow-disk population repairs slower
        by = {r["experiment"]: r["total_time"] for r in rows}
        assert by["test-exp/ros=0.3"] > by["test-exp/ros=0.0"]


class TestCliRun:
    def test_run_and_output(self, tmp_path, capsys):
        spec_path = tmp_path / "spec.json"
        spec_path.write_text(json.dumps(spec_dict(runs=1)))
        out_path = tmp_path / "rows.json"
        code = main(["run", str(spec_path), "--output", str(out_path)])
        assert code == 0
        out = capsys.readouterr().out
        assert "test-exp" in out
        assert out_path.exists()
