"""Event-kernel edge cases and guards."""

import pytest

from repro.errors import SimulationError
from repro.sim.engine import AllOf, Engine, Event


class TestRunGuards:
    def test_max_steps_guard(self):
        eng = Engine()

        def rescheduler():
            eng.schedule(0.0, rescheduler)

        eng.schedule(0.0, rescheduler)
        with pytest.raises(SimulationError):
            eng.run(max_steps=100)

    def test_negative_schedule_rejected(self):
        eng = Engine()
        with pytest.raises(SimulationError):
            eng.schedule(-0.1, lambda: None)

    def test_run_until_leaves_future_events(self):
        eng = Engine()
        fired = []
        eng.timeout(2.0).add_callback(lambda e: fired.append(1))
        eng.run(until=1.0)
        assert fired == []
        eng.run()
        assert fired == [1]


class TestProcessEdges:
    def test_return_value_propagates(self):
        eng = Engine()

        def proc():
            yield eng.timeout(1.0)
            return {"answer": 42}

        p = eng.process(proc())
        eng.run()
        assert p.value == {"answer": 42}

    def test_immediate_return(self):
        eng = Engine()

        def proc():
            return "done"
            yield  # pragma: no cover

        p = eng.process(proc())
        eng.run()
        assert p.triggered and p.value == "done"

    def test_nested_processes(self):
        eng = Engine()

        def child():
            yield eng.timeout(2.0)
            return "child-done"

        def parent():
            result = yield eng.process(child())
            return f"parent-saw-{result}"

        p = eng.process(parent())
        eng.run()
        assert p.value == "parent-saw-child-done"
        assert eng.now == 2.0

    def test_exception_in_process_propagates_to_run(self):
        eng = Engine()

        def proc():
            yield eng.timeout(1.0)
            raise ValueError("boom")

        eng.process(proc())
        with pytest.raises(ValueError, match="boom"):
            eng.run()

    def test_many_parallel_timeouts(self):
        eng = Engine()
        done = []

        def proc(i):
            yield eng.timeout(float(i % 7) + 0.1)
            done.append(i)

        for i in range(500):
            eng.process(proc(i))
        eng.run()
        assert len(done) == 500


class TestAllOfEdges:
    def test_all_of_with_already_triggered_child(self):
        eng = Engine()
        ev = Event(eng)
        ev.succeed("early")
        join = AllOf(eng, [ev, eng.timeout(1.0, "late")])
        results = []
        join.add_callback(lambda e: results.append(e.value))
        eng.run()
        assert results == [["early", "late"]]

    def test_all_of_value_order_stable(self):
        eng = Engine()
        join = AllOf(eng, [eng.timeout(3.0, "a"), eng.timeout(1.0, "b")])
        got = []
        join.add_callback(lambda e: got.append(e.value))
        eng.run()
        assert got == [["a", "b"]]  # original order, not completion order


class TestSlotResourceEdges:
    def test_release_more_than_in_use(self):
        eng = Engine()
        res = eng.slot_resource(4)

        def proc():
            yield res.request(2)
            res.release(2)
            res.release(1)  # nothing in use any more

        eng.process(proc())
        with pytest.raises(SimulationError):
            eng.run()

    def test_zero_request_rejected(self):
        eng = Engine()
        res = eng.slot_resource(4)
        with pytest.raises(SimulationError):
            res.request(0)

    def test_bad_policy(self):
        with pytest.raises(SimulationError):
            Engine().slot_resource(4, policy="lifo")

    def test_many_waiters_all_served(self):
        eng = Engine()
        res = eng.slot_resource(3, policy="first-fit")
        served = []

        def proc(i, size):
            yield res.request(size)
            yield eng.timeout(1.0)
            res.release(size)
            served.append(i)

        for i in range(50):
            eng.process(proc(i, 1 + i % 3))
        eng.run()
        assert len(served) == 50
        assert res.in_use == 0
