"""End-to-end integration: full recovery stories across the whole stack."""

import numpy as np
import pytest

from repro import (
    ActivePreliminaryRepair,
    ActiveSlowerFirstRepair,
    DataPathExecutor,
    FileChunkStore,
    FullStripeRepair,
    HDSSConfig,
    HighDensityStorageServer,
    PassiveRepair,
    RepairContext,
    build_exp_server,
    cooperative_multi_disk_repair,
    naive_multi_disk_repair,
    repair_single_disk,
)
from repro.core.scheduler import _disk_id_matrix
from repro.ec.stripe import ChunkId
from repro.hdss.profiles import BimodalSlowProfile


class TestSingleDiskStory:
    """The paper's headline scenario on a scaled-down server."""

    @pytest.fixture
    def server(self):
        return build_exp_server(
            n=9, k=6, disk_size="512MiB", chunk_size="32MiB",
            num_disks=36, ros=0.1, slow_factor=4.0, seed=17,
        )

    def test_all_schemes_beat_or_match_fsr(self, server):
        server.fail_disk(0)
        fsr = repair_single_disk(server, FullStripeRepair(), 0)
        results = {
            "hd-psr-ap": repair_single_disk(server, ActivePreliminaryRepair(), 0),
            "hd-psr-as": repair_single_disk(server, ActiveSlowerFirstRepair(), 0),
            "hd-psr-pa": repair_single_disk(server, PassiveRepair(), 0),
        }
        for name, out in results.items():
            assert out.transfer_time <= fsr.transfer_time * 1.05, name

    def test_same_chunks_read(self, server):
        server.fail_disk(0)
        reads = {
            algo.name: repair_single_disk(server, algo, 0).chunks_read
            for algo in (FullStripeRepair(), ActivePreliminaryRepair(), PassiveRepair())
        }
        assert len(set(reads.values())) == 1  # no scheme reads extra chunks


class TestObjectDurability:
    """Objects survive a disk failure + repair, byte for byte."""

    def test_object_readable_after_repair(self):
        cfg = HDSSConfig(
            num_disks=10, n=6, k=4, chunk_size=16 * 1024, memory_chunks=8, spares=2,
            seed=5,
        )
        server = HighDensityStorageServer(cfg)
        rng = np.random.default_rng(0)
        objects = {}
        for i in range(8):
            data = rng.integers(0, 256, size=int(rng.integers(1000, 60_000)), dtype=np.uint8).tobytes()
            stripe = server.write_object(data)
            objects[stripe.index] = data

        victim = server.layout[0].disks[0]
        server.fail_disk(victim)

        # repair through the data path
        stripe_indices, survivor_ids, L = server.transfer_time_matrix([victim])
        plan = FullStripeRepair().build_plan(L, server.config.memory_chunks)
        DataPathExecutor(server).repair(plan, stripe_indices, survivor_ids)

        # every object still reads back exactly (degraded or repaired)
        for idx, data in objects.items():
            assert server.read_object(idx) == data


class TestFileStoreEndToEnd:
    """The paper's directory-per-disk layout with real files on disk."""

    def test_full_cycle_on_files(self, tmp_path):
        cfg = HDSSConfig(
            num_disks=8, n=5, k=3, chunk_size=4 * 1024, memory_chunks=6, spares=2,
            seed=3,
        )
        server = HighDensityStorageServer(cfg, store=FileChunkStore(tmp_path))
        server.provision_stripes(6, with_data=True)

        victim = 2
        lost = {
            cid: server.store.get(victim, cid)
            for cid in server.store.chunks_on_disk(victim)
        }
        assert lost
        server.fail_disk(victim)
        assert server.store.chunks_on_disk(victim) == []

        stripe_indices, survivor_ids, L = server.transfer_time_matrix([victim])
        plan = ActiveSlowerFirstRepair().build_plan(L, server.config.memory_chunks)
        stats = DataPathExecutor(server).repair(plan, stripe_indices, survivor_ids)

        assert stats.chunks_rebuilt == len(lost)
        for (si, shard, spare) in stats.writebacks:
            cid = ChunkId(si, shard)
            assert np.array_equal(server.store.get(spare, cid), lost[cid])
        # files physically exist under the spare's directory
        spare_dirs = list(tmp_path.glob("disk-*"))
        assert any(p.name == f"disk-{stats.writebacks[0][2]:03d}" for p in spare_dirs)


class TestMultiDiskStory:
    def test_three_disk_recovery_with_cooperation(self):
        cfg = HDSSConfig(
            num_disks=20, n=14, k=10, chunk_size=64 * 1024, memory_chunks=20,
            spares=4, profile=BimodalSlowProfile(100e6, ros=0.1, slow_factor=4.0),
            seed=8,
        )
        server = HighDensityStorageServer(cfg)
        server.provision_stripes(50)
        for d in (0, 1, 2):
            server.fail_disk(d)
        naive = naive_multi_disk_repair(server, ActiveSlowerFirstRepair, [0, 1, 2])
        coop = cooperative_multi_disk_repair(server, ActiveSlowerFirstRepair, [0, 1, 2])
        assert coop.total_time < naive.total_time
        assert coop.chunks_read < naive.chunks_read
        # all stripes still recoverable: no stripe lost more than m = 4 chunks
        for si in server.stripes_needing_repair([0, 1, 2]):
            assert len(server.layout[si].lost_shards([0, 1, 2])) <= 4


class TestConsistencyAcrossRuns:
    def test_timing_and_data_paths_agree_on_reads(self):
        """The timing outcome and the byte executor count the same work."""
        server = build_exp_server(
            n=6, k=4, disk_size="2MiB", chunk_size="256KiB", num_disks=12,
            ros=0.2, seed=23, with_data=True,
        )
        server.fail_disk(0)
        outcome = repair_single_disk(server, PassiveRepair(), 0)

        stripe_indices, survivor_ids, L = server.transfer_time_matrix([0])
        ctx = RepairContext(disk_ids=_disk_id_matrix(server, stripe_indices, survivor_ids))
        plan = PassiveRepair().build_plan(L, server.config.memory_chunks, context=ctx)
        stats = DataPathExecutor(server).repair(plan, stripe_indices, survivor_ids)
        assert stats.chunks_read == outcome.chunks_read
