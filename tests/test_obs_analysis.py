"""Trace analytics: critical-path attribution, occupancy, run diffing."""

import json

import pytest

from repro.obs import (
    RecordingTracer,
    analyze_trace,
    diff_metrics,
    events_from_jsonl,
    events_to_jsonl,
    flatten_summary,
    load_run_metrics,
    summarize_trace,
)
from repro.obs.analysis import metric_direction
from repro.sim.transfer import ChunkTransfer, StripeJob, simulate_slot_schedule


def synthetic_trace() -> RecordingTracer:
    """Two rounds of one stripe with a known critical path.

    Round 0 (t=0..3): disk 1 reads 1s, disk 2 reads 3s (critical),
    disk 3 reads 2s -> induced wait (3-1) + (3-2) = 3s.
    Round 1 (t=3..5): disk 1 reads 2s (critical), disk 3 reads 1s
    -> induced wait 1s.
    """
    t = RecordingTracer()
    t.complete("read", "chunk a", 0.0, 1.0, track="stripe-0",
               disk=1, stripe=0, round=0)
    t.complete("read", "chunk b", 0.0, 3.0, track="stripe-0",
               disk=2, stripe=0, round=0)
    t.complete("read", "chunk c", 0.0, 2.0, track="stripe-0",
               disk=3, stripe=0, round=0)
    t.complete("round", "stripe 0 round 0", 0.0, 3.0, track="stripe-0",
               stripe=0, round=0, chunks=3)
    t.complete("read", "chunk d", 3.0, 2.0, track="stripe-0",
               disk=1, stripe=0, round=1)
    t.complete("read", "chunk e", 3.0, 1.0, track="stripe-0",
               disk=3, stripe=0, round=1)
    t.complete("round", "stripe 0 round 1", 3.0, 2.0, track="stripe-0",
               stripe=0, round=1, chunks=2)
    t.complete("stripe", "stripe 0", 0.0, 5.0, track="stripe-0",
               stripe=0, rounds=2)
    t.complete("wait", "memory-wait", 0.0, 1.5, track="memory", count=3)
    t.instant("slot", "memory-acquire", ts=0.0, track="memory",
              domain="sim", count=3, in_use=3)
    t.instant("slot", "memory-release", ts=3.0, track="memory",
              domain="sim", count=3, in_use=0)
    t.instant("slot", "memory-acquire", ts=3.0, track="memory",
              domain="sim", count=2, in_use=2)
    t.instant("slot", "memory-release", ts=5.0, track="memory",
              domain="sim", count=2, in_use=0)
    return t


class TestCriticalPath:
    def test_known_attribution(self):
        analysis = analyze_trace(synthetic_trace())
        assert analysis.stripes == 1
        assert analysis.reads == 5
        assert len(analysis.rounds) == 2
        assert analysis.makespan == pytest.approx(5.0)

        r0, r1 = analysis.rounds
        assert r0.critical_disk == 2
        assert r0.stall_seconds == pytest.approx(3.0)
        assert r1.critical_disk == 1
        assert r1.stall_seconds == pytest.approx(1.0)

        assert analysis.total_wait_seconds == pytest.approx(4.0)
        assert analysis.acwt == pytest.approx(4.0 / 5.0)

        blame = analysis.disks
        assert blame[2].critical_rounds == 1
        assert blame[2].induced_wait_seconds == pytest.approx(3.0)
        assert blame[2].blame_share == pytest.approx(0.75)
        assert blame[1].critical_rounds == 1
        assert blame[1].blame_share == pytest.approx(0.25)
        assert blame[3].critical_rounds == 0
        # disk 1: reads at [0,1] and [3,5] -> 3s busy over a 5s makespan
        assert blame[1].busy_seconds == pytest.approx(3.0)
        assert blame[1].utilization == pytest.approx(0.6)

    def test_memory_occupancy_curve(self):
        analysis = analyze_trace(synthetic_trace())
        mem = analysis.memory
        assert mem is not None
        assert mem.peak_slots == 3
        # 3 slots for 3s + 2 slots for 2s = 13 slot-seconds over 5s
        assert mem.slot_seconds == pytest.approx(13.0)
        assert mem.mean_slots == pytest.approx(13.0 / 5.0)

    def test_resource_wait_classified(self):
        analysis = analyze_trace(synthetic_trace())
        assert analysis.resource_waits["memory"] == pytest.approx(1.5)
        assert analysis.stripe_memory_wait_seconds == 0.0

    def test_jsonl_round_trip_preserves_analysis(self):
        tracer = synthetic_trace()
        restored = events_from_jsonl(events_to_jsonl(tracer))
        a = summarize_trace(analyze_trace(tracer.events))
        b = summarize_trace(analyze_trace(restored))
        assert a == b

    def test_colliding_replays_split_by_sequence(self):
        # Two replayed runs in one trace: same track/stripe/round keys,
        # both starting at sim t=0 (what `hdpsr repair` with all
        # algorithms produces). Reads must not pool across the replays.
        t = RecordingTracer()
        for _run in range(2):
            t.complete("read", "chunk a", 0.0, 1.0, track="stripe-0",
                       disk=1, stripe=0, round=0)
            t.complete("read", "chunk b", 0.0, 2.0, track="stripe-0",
                       disk=2, stripe=0, round=0)
            t.complete("round", "stripe 0 round 0", 0.0, 2.0,
                       track="stripe-0", stripe=0, round=0, chunks=2)
        analysis = analyze_trace(t)
        assert len(analysis.rounds) == 2
        for rnd in analysis.rounds:
            assert rnd.chunks == 2
            assert rnd.critical_disk == 2
            assert rnd.stall_seconds == pytest.approx(1.0)
        assert analysis.total_wait_seconds == pytest.approx(2.0)

    def test_empty_trace(self):
        analysis = analyze_trace([])
        assert analysis.reads == 0
        assert analysis.acwt == 0.0
        assert analysis.memory is None
        summary = summarize_trace(analysis)
        assert summary["rounds"]["count"] == 0


class TestAgainstSimulator:
    def test_matches_report_blame(self):
        # The trace-level attribution must agree with the record-level
        # attribution computed straight from the TransferReport.
        durations = [1.0, 2.5, 0.7, 1.9, 3.1, 0.4]
        jobs = [
            StripeJob(
                job_id=s,
                rounds=[
                    [ChunkTransfer((s, j), durations[(s + j) % len(durations)] + 0.01 * s,
                                   disk=(s + j) % 4) for j in range(3)],
                    [ChunkTransfer((s, 3 + j), durations[(s * 2 + j) % len(durations)],
                                   disk=(s + j + 1) % 4) for j in range(2)],
                ],
            )
            for s in range(4)
        ]
        tracer = RecordingTracer()
        report = simulate_slot_schedule(jobs, capacity=8, tracer=tracer)
        analysis = analyze_trace(tracer)

        assert analysis.reads == report.chunk_count
        assert analysis.makespan == pytest.approx(report.total_time)
        assert analysis.total_wait_seconds == pytest.approx(
            report.total_waiting_time)

        record_blame = report.disk_blame()
        for disk, entry in record_blame.items():
            assert analysis.disks[disk].critical_rounds == entry["critical_rounds"]
            assert analysis.disks[disk].induced_wait_seconds == pytest.approx(
                entry["induced_wait_seconds"])
            assert analysis.disks[disk].blame_share == pytest.approx(
                entry["blame_share"])

    def test_occupancy_bounded_by_capacity(self):
        jobs = [
            StripeJob(s, [[ChunkTransfer((s, j), 1.0 + 0.1 * j, disk=j)
                           for j in range(3)]])
            for s in range(6)
        ]
        tracer = RecordingTracer()
        simulate_slot_schedule(jobs, capacity=7, tracer=tracer)
        analysis = analyze_trace(tracer)
        assert analysis.memory is not None
        assert 0 < analysis.memory.peak_slots <= 7
        assert 0 < analysis.memory.mean_slots <= analysis.memory.peak_slots


class TestDiff:
    def test_directions(self):
        assert metric_direction("acwt.acwt_seconds") == "lower"
        assert metric_direction("makespan_seconds") == "lower"
        assert metric_direction("reads.count") == "neutral"
        assert metric_direction("disks.3.blame_share") == "neutral"
        assert metric_direction("hdpsr_chunks_transferred_total") == "neutral"
        assert metric_direction("hdpsr_repair_sim_seconds_sum") == "lower"
        assert metric_direction("hdpsr_repair_sim_seconds_count") == "neutral"

    def test_identical_runs_no_regression(self):
        metrics = {"acwt.acwt_seconds": 1.0, "reads.count": 10.0}
        result = diff_metrics(metrics, dict(metrics))
        assert not result.regressions
        assert not result.changed

    def test_regression_past_threshold(self):
        old = {"acwt.acwt_seconds": 1.0}
        new = {"acwt.acwt_seconds": 1.2}
        assert diff_metrics(old, new, threshold=0.1).regressions
        assert not diff_metrics(old, new, threshold=0.5).regressions
        # improvements never regress
        assert not diff_metrics(new, old, threshold=0.1).regressions
        assert diff_metrics(new, old, threshold=0.1).improvements

    def test_neutral_keys_never_regress(self):
        result = diff_metrics({"reads.count": 10.0}, {"reads.count": 100.0})
        assert not result.regressions
        assert result.changed

    def test_move_off_zero_regresses(self):
        result = diff_metrics({"waits.memory_seconds": 0.0},
                              {"waits.memory_seconds": 2.0})
        assert result.regressions

    def test_missing_and_extra_keys(self):
        result = diff_metrics({"a.seconds": 1.0}, {"b.seconds": 1.0})
        assert result.missing == ["a.seconds"]
        assert result.extra == ["b.seconds"]

    def test_only_filter(self):
        old = {"acwt.acwt_seconds": 1.0, "makespan_seconds": 1.0}
        new = {"acwt.acwt_seconds": 2.0, "makespan_seconds": 2.0}
        result = diff_metrics(old, new, only="makespan")
        assert [e.key for e in result.regressions] == ["makespan_seconds"]


class TestLoading:
    def test_flatten(self):
        flat = flatten_summary({"a": {"b": 1, "c": [2.0, 3.0]}, "d": "text",
                                "e": True})
        assert flat == {"a.b": 1.0, "a.c.0": 2.0, "a.c.1": 3.0}

    def test_load_trace_jsonl(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text(events_to_jsonl(synthetic_trace()) + "\n")
        flat = load_run_metrics(path)
        assert flat["acwt.acwt_seconds"] == pytest.approx(0.8)
        assert flat["memory.peak_slots"] == 3.0

    def test_load_benchmark_artefact(self, tmp_path):
        path = tmp_path / "exp.json"
        path.write_text(json.dumps({
            "experiment": "exp1",
            "rows": [
                {"algorithm": "fsr", "total_time": 10.0},
                {"algorithm": "hd-psr-ap", "total_time": 6.0},
            ],
        }))
        flat = load_run_metrics(path)
        assert flat["rows.fsr.total_time"] == 10.0
        assert flat["rows.hd-psr-ap.total_time"] == 6.0

    def test_load_prometheus_dump(self, tmp_path):
        path = tmp_path / "m.prom"
        path.write_text(
            "# TYPE hdpsr_repair_sim_seconds histogram\n"
            'hdpsr_repair_sim_seconds_bucket{le="1.0"} 3\n'
            "hdpsr_repair_sim_seconds_sum 4.5\n"
            "hdpsr_repair_sim_seconds_count 3\n"
        )
        flat = load_run_metrics(path)
        assert flat["hdpsr_repair_sim_seconds_sum"] == 4.5
        # cumulative bucket samples have no stable direction: skipped
        assert not any("_bucket" in k for k in flat)

    def test_unsupported_suffix(self, tmp_path):
        path = tmp_path / "t.csv"
        path.write_text("x\n")
        with pytest.raises(ValueError):
            load_run_metrics(path)
