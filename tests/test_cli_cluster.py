"""CLI cluster surface: ``hdpsr chaos`` and ``hdpsr top --endpoint``.

``chaos`` runs fully in-process (two daemons on ephemeral ports inside
one event loop), so ``main([...])`` is enough. The ``top`` aggregation
tests front a real ``serve`` subprocess the way the single-endpoint smoke
tests in ``test_cli_service.py`` do.
"""

import json
import os
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.cli import main

SERVER_ARGS = [
    "--n", "5", "--k", "3", "--num-disks", "12", "--chunk-size", "2KiB",
    "--disk-size", "16KiB", "--memory", "16", "--ros", "0",
    "--placement", "rotating", "--seed", "11", "--no-fsync",
]
START_TIMEOUT = 30.0


def _env():
    env = dict(os.environ)
    src = str(Path(__file__).resolve().parent.parent / "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    return env


def _wait_port(port_file: Path, proc: subprocess.Popen) -> int:
    deadline = time.monotonic() + START_TIMEOUT
    while time.monotonic() < deadline:
        if proc.poll() is not None:
            out, err = proc.communicate()
            raise AssertionError(f"serve exited early ({proc.returncode}): {err}")
        if port_file.exists() and port_file.read_text().strip():
            return int(port_file.read_text().strip())
        time.sleep(0.05)
    proc.kill()
    raise AssertionError("serve never wrote its port file")


@pytest.fixture
def serve(tmp_path):
    procs = []

    def start(*extra):
        port_file = tmp_path / f"port-{len(procs)}"
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro.cli", "serve", *SERVER_ARGS,
             "--port-file", str(port_file), *extra],
            env=_env(), stdout=subprocess.PIPE, stderr=subprocess.PIPE,
            text=True,
        )
        procs.append(proc)
        return proc, _wait_port(port_file, proc)

    yield start
    for proc in procs:
        if proc.poll() is None:
            proc.kill()
        proc.communicate()


class TestChaosCommand:
    def test_chaos_passes_and_writes_report(self, tmp_path, capsys):
        out_file = tmp_path / "report.json"
        code = main([
            "chaos", "--dir", str(tmp_path / "run"), "--json",
            "--output", str(out_file),
        ])
        assert code == 0
        report = json.loads(capsys.readouterr().out)
        assert report["passed"] is True
        assert report["failures"] == []
        assert report["byte_identical"] is True
        assert report["duplicate_writes"] == []
        assert report["stale_owner_fenced"] is True
        assert json.loads(out_file.read_text()) == report

    def test_chaos_human_summary(self, tmp_path, capsys):
        code = main(["chaos", "--dir", str(tmp_path / "run")])
        assert code == 0
        out = capsys.readouterr().out
        assert "chaos: PASS" in out
        assert "takeover" in out


class TestTopEndpoint:
    def test_aggregated_json_over_two_daemons(self, serve, tmp_path, capsys):
        cluster = tmp_path / "cluster"
        common = [
            "--cluster-dir", str(cluster), "--cluster-shards", "4",
            "--lease-ttl", "1.0", "--heartbeat-interval", "0.25",
            "--journal", str(tmp_path / "journal"),
        ]
        _, port_a = serve(
            "--store", str(tmp_path / "store"), "--node-id", "a", *common,
        )
        _, port_b = serve(
            "--store", str(tmp_path / "store"), "--attach", "--node-id", "b",
            "--daemon-index", "1", *common,
        )
        ep_a, ep_b = f"127.0.0.1:{port_a}", f"127.0.0.1:{port_b}"
        code = main([
            "top", "--endpoint", ep_a, "--endpoint", ep_b, "--once", "--json",
        ])
        assert code == 0
        snapshots = json.loads(capsys.readouterr().out)
        assert set(snapshots) == {ep_a, ep_b}
        assert snapshots[ep_a]["cluster"]["node"] == "a"
        assert snapshots[ep_b]["cluster"]["node"] == "b"
        # First comer holds every shard; the second stays sticky.
        assert snapshots[ep_a]["cluster"]["owned_shards"] == [0, 1, 2, 3]
        assert snapshots[ep_b]["cluster"]["owned_shards"] == []
        assert "jobs" in snapshots[ep_a]["stats"]

        # The human-readable frame renders both tables.
        code = main(["top", "--endpoint", ep_a, "--endpoint", ep_b, "--once"])
        assert code == 0
        frame = capsys.readouterr().out
        assert "cluster daemons" in frame
        assert "shard leases" in frame

    def test_single_endpoint_json_shape_is_stable(self, serve, tmp_path, capsys):
        # The pre-cluster contract: no --endpoint, same snapshot keys.
        _, port = serve("--store", str(tmp_path / "store"))
        code = main(["top", "--port", str(port), "--once", "--json"])
        assert code == 0
        stats = json.loads(capsys.readouterr().out)
        for key in ("jobs", "foreground", "chunks_enqueued", "modeled_now"):
            assert key in stats

    def test_all_endpoints_down_exits_one(self, capsys):
        code = main([
            "top", "--endpoint", "127.0.0.1:1", "--once", "--json",
        ])
        assert code == 1
