"""HighDensityStorageServer: provisioning, failure, repair views."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, DiskFailedError, StorageError
from repro.hdss import HDSSConfig, HighDensityStorageServer
from repro.hdss.profiles import BimodalSlowProfile


class TestConfig:
    def test_defaults(self):
        cfg = HDSSConfig()
        assert cfg.num_disks == 36 and cfg.n == 9 and cfg.k == 6

    def test_string_chunk_size(self):
        cfg = HDSSConfig(chunk_size="1MiB")
        assert cfg.chunk_size == 2**20

    def test_memory_too_small(self):
        with pytest.raises(ConfigurationError):
            HDSSConfig(n=9, k=6, memory_chunks=5)

    def test_n_exceeds_disks(self):
        with pytest.raises(ConfigurationError):
            HDSSConfig(num_disks=5, n=9, k=6)

    def test_bad_placement(self):
        with pytest.raises(ConfigurationError):
            HDSSConfig(placement="hash")

    def test_negative_spares(self):
        with pytest.raises(ConfigurationError):
            HDSSConfig(spares=-1)


class TestProvisioning:
    def test_metadata_only(self, metadata_server):
        assert len(metadata_server.layout) == 30
        from repro.hdss.store import InMemoryChunkStore

        assert isinstance(metadata_server.store, InMemoryChunkStore)
        assert metadata_server.store.total_chunks() == 0

    def test_with_data(self, small_server):
        assert small_server.store.total_chunks() == 20 * 6

    def test_double_provision_rejected(self, small_server):
        with pytest.raises(StorageError):
            small_server.provision_stripes(5)

    def test_spare_ids(self, small_server):
        assert small_server.spare_disk_ids == [12, 13]
        assert small_server.regular_disk_ids == list(range(12))

    def test_stripes_only_on_regular_disks(self, small_server):
        for stripe in small_server.layout:
            assert all(d < 12 for d in stripe.disks)


class TestObjects:
    def test_write_read_object(self, small_config):
        server = HighDensityStorageServer(small_config)
        data = bytes(range(256)) * 100
        stripe = server.write_object(data)
        assert server.read_object(stripe.index) == data

    def test_degraded_read(self, small_config):
        server = HighDensityStorageServer(small_config)
        data = b"hello world" * 1000
        stripe = server.write_object(data)
        server.fail_disk(stripe.disks[0])
        assert server.read_object(stripe.index) == data

    def test_read_unprovisioned_object(self, metadata_server):
        with pytest.raises(StorageError):
            metadata_server.read_object(0)


class TestFailure:
    def test_fail_destroys_chunks(self, small_server):
        before = small_server.store.total_chunks()
        lost = small_server.fail_disk(0)
        assert lost > 0
        assert small_server.store.total_chunks() == before - lost
        assert small_server.failed_disks() == [0]

    def test_double_fail_rejected(self, small_server):
        small_server.fail_disk(0)
        with pytest.raises(DiskFailedError):
            small_server.fail_disk(0)

    def test_fail_keep_data(self, small_server):
        before = small_server.store.total_chunks()
        small_server.fail_disk(1, destroy_data=False)
        assert small_server.store.total_chunks() == before

    def test_unknown_disk(self, small_server):
        with pytest.raises(ConfigurationError):
            small_server.disk(99)

    def test_inject_slow_disks(self, metadata_server):
        slow = metadata_server.inject_slow_disks(0.25, slow_factor=4.0)
        assert len(slow) == 3  # 25% of 12
        for d in slow:
            assert metadata_server.disk(d).is_slow

    def test_slow_disks_ground_truth(self):
        cfg = HDSSConfig(
            num_disks=20, n=6, k=4, chunk_size=1024, memory_chunks=8,
            profile=BimodalSlowProfile(100e6, ros=0.2, slow_factor=4.0), seed=1,
        )
        server = HighDensityStorageServer(cfg)
        slow = server.slow_disks()
        assert len(slow) >= 1
        for d in slow:
            assert server.disk(d).current_bandwidth < 50e6


class TestRepairView:
    def test_stripes_needing_repair(self, metadata_server):
        metadata_server.fail_disk(0)
        stripes = metadata_server.stripes_needing_repair([0])
        assert stripes == metadata_server.layout.stripe_set(0)

    def test_transfer_matrix_shape(self, metadata_server):
        metadata_server.fail_disk(0)
        sidx, survivors, L = metadata_server.transfer_time_matrix([0])
        assert L.shape == (len(sidx), metadata_server.config.k)
        assert len(survivors) == len(sidx)
        assert np.all(L > 0)

    def test_survivors_exclude_failed(self, metadata_server):
        metadata_server.fail_disk(0)
        sidx, survivors, _ = metadata_server.transfer_time_matrix([0])
        for si, shards in zip(sidx, survivors):
            stripe = metadata_server.layout[si]
            for j in shards:
                assert stripe.disks[j] != 0

    def test_survivor_selection_policies(self, hetero_server):
        hetero_server.fail_disk(0)
        stripe = hetero_server.layout[hetero_server.layout.stripe_set(0)[0]]
        first = hetero_server.survivor_shards(stripe, [0], select="first")
        fastest = hetero_server.survivor_shards(stripe, [0], select="fastest")
        rand = hetero_server.survivor_shards(stripe, [0], select="random")
        k = hetero_server.config.k
        assert len(first) == len(fastest) == len(rand) == k
        # fastest must pick survivors whose min bandwidth >= first's min
        bw = lambda ids: min(
            hetero_server.disks[stripe.disks[j]].current_bandwidth for j in ids
        )
        assert bw(fastest) >= bw(first)

    def test_unknown_selection(self, metadata_server):
        stripe = metadata_server.layout[0]
        with pytest.raises(ConfigurationError):
            metadata_server.survivor_shards(stripe, [], select="best")

    def test_unrecoverable_stripe(self, small_config):
        server = HighDensityStorageServer(small_config)
        server.provision_stripes(10)
        stripe = server.layout[0]
        # kill m+1 = 3 of the stripe's disks
        for d in stripe.disks[:3]:
            server.fail_disk(d)
        with pytest.raises(StorageError):
            server.survivor_shards(stripe, stripe.disks[:3])

    def test_pick_spare(self, small_server):
        spare = small_server.pick_spare()
        assert spare in small_server.spare_disk_ids
        small_server.disks[spare].fail()
        assert small_server.pick_spare() != spare

    def test_pick_spare_exhausted(self, small_server):
        for d in small_server.spare_disk_ids:
            small_server.disks[d].fail()
        with pytest.raises(StorageError):
            small_server.pick_spare()

    def test_repr(self, small_server):
        assert "HighDensityStorageServer" in repr(small_server)
