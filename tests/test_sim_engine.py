"""The discrete-event kernel: events, processes, slot resources."""

import pytest

from repro.errors import SimulationError
from repro.sim.engine import AllOf, Engine, Event


class TestTimeAdvance:
    def test_timeout_fires_at_delay(self):
        eng = Engine()
        fired = []
        eng.timeout(5.0).add_callback(lambda ev: fired.append(eng.now))
        eng.run()
        assert fired == [5.0]

    def test_ordering(self):
        eng = Engine()
        order = []
        eng.timeout(3.0).add_callback(lambda ev: order.append("b"))
        eng.timeout(1.0).add_callback(lambda ev: order.append("a"))
        eng.timeout(3.0).add_callback(lambda ev: order.append("c"))
        eng.run()
        assert order == ["a", "b", "c"]  # ties broken by schedule order

    def test_run_until(self):
        eng = Engine()
        fired = []
        eng.timeout(10.0).add_callback(lambda ev: fired.append(1))
        assert eng.run(until=5.0) == 5.0
        assert fired == []

    def test_negative_delay_rejected(self):
        eng = Engine()
        with pytest.raises(SimulationError):
            eng.timeout(-1.0)

    def test_empty_run(self):
        assert Engine().run() == 0.0


class TestEvent:
    def test_double_trigger_rejected(self):
        eng = Engine()
        ev = Event(eng)
        ev.succeed()
        with pytest.raises(SimulationError):
            ev.succeed()

    def test_late_callback_still_runs(self):
        eng = Engine()
        ev = Event(eng)
        ev.succeed("v")
        got = []
        ev.add_callback(lambda e: got.append(e.value))
        eng.run()
        assert got == ["v"]


class TestProcess:
    def test_sequential_timeouts(self):
        eng = Engine()

        def proc():
            yield eng.timeout(1.0)
            yield eng.timeout(2.0)
            return "done"

        p = eng.process(proc())
        eng.run()
        assert p.triggered
        assert p.value == "done"
        assert eng.now == 3.0

    def test_yield_non_event_raises(self):
        eng = Engine()

        def proc():
            yield 42

        eng.process(proc())
        with pytest.raises(SimulationError):
            eng.run()

    def test_all_of_join(self):
        eng = Engine()

        def proc():
            results = yield AllOf(eng, [eng.timeout(1.0, "a"), eng.timeout(3.0, "b")])
            return results

        p = eng.process(proc())
        eng.run()
        assert p.value == ["a", "b"]
        assert eng.now == 3.0

    def test_all_of_empty(self):
        eng = Engine()

        def proc():
            yield AllOf(eng, [])
            return "ok"

        p = eng.process(proc())
        eng.run()
        assert p.value == "ok"


class TestSlotResource:
    def test_grant_within_capacity(self):
        eng = Engine()
        res = eng.slot_resource(4)

        def proc():
            yield res.request(3)
            assert res.in_use == 3
            res.release(3)

        eng.process(proc())
        eng.run()
        assert res.in_use == 0

    def test_fifo_blocks_head_of_line(self):
        eng = Engine()
        res = eng.slot_resource(4, policy="fifo")
        order = []

        def holder():
            yield res.request(3)
            yield eng.timeout(5.0)
            res.release(3)

        def big():
            yield res.request(3)
            order.append(("big", eng.now))
            res.release(3)

        def small():
            yield res.request(1)
            order.append(("small", eng.now))
            res.release(1)

        eng.process(holder())
        eng.process(big())
        eng.process(small())
        eng.run()
        # FIFO: small waits behind big even though a slot was free.
        assert order == [("big", 5.0), ("small", 5.0)]

    def test_first_fit_overtakes(self):
        eng = Engine()
        res = eng.slot_resource(4, policy="first-fit")
        order = []

        def holder():
            yield res.request(3)
            yield eng.timeout(5.0)
            res.release(3)

        def big():
            yield res.request(3)
            order.append(("big", eng.now))
            res.release(3)

        def small():
            yield res.request(1)
            order.append(("small", eng.now))
            res.release(1)

        eng.process(holder())
        eng.process(big())
        eng.process(small())
        eng.run()
        # first-fit: small slips into the free slot at t=0.
        assert ("small", 0.0) in order

    def test_oversized_request_rejected(self):
        eng = Engine()
        res = eng.slot_resource(2)
        with pytest.raises(SimulationError):
            res.request(3)

    def test_over_release_rejected(self):
        eng = Engine()
        res = eng.slot_resource(2)
        with pytest.raises(SimulationError):
            res.release(1)

    def test_bad_capacity(self):
        with pytest.raises(SimulationError):
            Engine().slot_resource(0)

    def test_utilization_full_then_idle(self):
        eng = Engine()
        res = eng.slot_resource(2)

        def proc():
            yield res.request(2)
            yield eng.timeout(5.0)
            res.release(2)
            yield eng.timeout(5.0)

        eng.process(proc())
        eng.run()
        assert res.utilization(until=10.0) == pytest.approx(0.5)

    def test_utilization_zero_time(self):
        eng = Engine()
        res = eng.slot_resource(2)
        assert res.utilization(until=0.0) == 0.0


class TestSlotPriority:
    def test_high_priority_served_first(self):
        eng = Engine()
        res = eng.slot_resource(2, policy="first-fit")
        order = []

        def holder():
            yield res.request(2)
            yield eng.timeout(1.0)
            res.release(2)

        def waiter(name, priority):
            yield res.request(2, priority=priority)
            order.append((name, eng.now))
            res.release(2)

        eng.process(holder())
        eng.process(waiter("background", 0))   # enqueued first
        eng.process(waiter("foreground", -1))  # enqueued second, outranks
        eng.run()
        assert order[0][0] == "foreground"

    def test_blocked_high_priority_bars_lower(self):
        """Small low-priority requests must not starve a blocked big
        high-priority one once it is at the front."""
        eng = Engine()
        res = eng.slot_resource(4, policy="first-fit")
        order = []

        def holder():
            yield res.request(3)
            yield eng.timeout(1.0)
            res.release(3)

        def big_fg():
            yield res.request(4, priority=-1)
            order.append(("big_fg", eng.now))
            res.release(4)

        def small_bg():
            yield res.request(1, priority=0)
            order.append(("small_bg", eng.now))
            res.release(1)

        eng.process(holder())
        eng.process(big_fg())
        eng.process(small_bg())
        eng.run()
        # small_bg fits at t=0 but must not overtake the blocked foreground
        assert order[0] == ("big_fg", 1.0)

    def test_same_priority_first_fit_still_overtakes(self):
        eng = Engine()
        res = eng.slot_resource(4, policy="first-fit")
        order = []

        def holder():
            yield res.request(3)
            yield eng.timeout(1.0)
            res.release(3)

        def big():
            yield res.request(4)
            order.append(("big", eng.now))
            res.release(4)

        def small():
            yield res.request(1)
            order.append(("small", eng.now))
            res.release(1)

        eng.process(holder())
        eng.process(big())
        eng.process(small())
        eng.run()
        assert ("small", 0.0) in order
