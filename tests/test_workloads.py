"""Workload generators and experiment scenarios."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.utils.units import GiB, MiB
from repro.workloads import (
    EXP1_GRID,
    PAPER_CODES,
    PAPER_DISK_SIZES,
    build_exp_server,
    normal_transfer_times,
    stripes_for,
    uniform_transfer_times,
)


class TestNormalWorkload:
    def test_shape_and_params(self):
        w = normal_transfer_times(100, 12, seed=0)
        assert w.L.shape == (100, 12)
        assert w.s == 100 and w.k == 12
        assert w.params["kind"] == "normal"

    def test_paper_distribution(self):
        """Mean ~2, variance ~4 before slow scaling (large-sample check)."""
        w = normal_transfer_times(3000, 12, mean=2.0, variance=4.0, ros=0.0, floor=-100, seed=1)
        assert abs(w.L.mean() - 2.0) < 0.05
        assert abs(w.L.var() - 4.0) < 0.2

    def test_floor_applied(self):
        w = normal_transfer_times(500, 12, mean=2.0, variance=4.0, seed=2)
        assert w.L.min() >= 0.1

    def test_ros_fraction(self):
        w = normal_transfer_times(100, 10, ros=0.08, seed=3)
        assert w.slow_mask.sum() == 80
        assert w.ros_actual == pytest.approx(0.08)

    def test_slow_chunks_scaled(self):
        w = normal_transfer_times(50, 10, ros=0.1, slow_factor=4.0, seed=4)
        assert w.L[w.slow_mask].mean() > 2.5 * w.L[~w.slow_mask].mean()

    def test_deterministic(self):
        a = normal_transfer_times(20, 6, ros=0.05, seed=9)
        b = normal_transfer_times(20, 6, ros=0.05, seed=9)
        assert np.array_equal(a.L, b.L)
        assert np.array_equal(a.slow_mask, b.slow_mask)

    def test_ros_zero_no_slow(self):
        w = normal_transfer_times(10, 5, ros=0.0, seed=0)
        assert not w.slow_mask.any()

    @pytest.mark.parametrize("bad", [{"ros": 1.5}, {"slow_factor": 0.5}, {"variance": -1}, {"mean": 0}])
    def test_bad_params(self, bad):
        with pytest.raises(ConfigurationError):
            normal_transfer_times(10, 5, **bad)


class TestUniformWorkload:
    def test_range(self):
        w = uniform_transfer_times(50, 6, low=1.0, high=3.0, seed=0)
        assert w.L.min() >= 1.0 and w.L.max() <= 3.0

    def test_bad_range(self):
        with pytest.raises(ConfigurationError):
            uniform_transfer_times(5, 5, low=3.0, high=1.0)


class TestScenarios:
    def test_paper_grids(self):
        assert PAPER_CODES == [(6, 4), (9, 6), (14, 10)]
        assert PAPER_DISK_SIZES == [100 * GiB, 150 * GiB, 200 * GiB]
        assert len(EXP1_GRID) == 9

    def test_stripes_for_multiple_of_disks(self):
        # 100 GiB disk / 64 MiB chunk = 1600 chunks on the failed disk
        s = stripes_for(100 * GiB, 64 * MiB, num_disks=36, n=9)
        assert s % 36 == 0
        assert s == round(1600 / 9) * 36

    def test_stripes_for_string_sizes(self):
        s = stripes_for("1GiB", "64MiB", 36, 9)
        assert s == round(16 / 9) * 36

    def test_stripes_for_misaligned(self):
        with pytest.raises(ConfigurationError):
            stripes_for(100, 64, 36, 9)

    def test_build_exp_server_failed_disk_holds_disk_size(self):
        server = build_exp_server(
            n=9, k=6, disk_size="1GiB", chunk_size="64MiB", num_disks=36, seed=0
        )
        # every disk holds within n/2 chunks of the requested size
        target = (1 * GiB) // (64 * MiB)
        for d in server.regular_disk_ids:
            assert abs(len(server.layout.stripe_set(d)) - target) <= 9 / 2

    def test_build_exp_server_even_load(self):
        server = build_exp_server(
            n=9, k=6, disk_size="1GiB", chunk_size="64MiB", num_disks=36, seed=0
        )
        counts = {len(server.layout.stripe_set(d)) for d in server.regular_disk_ids}
        assert len(counts) == 1  # perfectly even

    def test_build_exp_server_memory_default(self):
        server = build_exp_server(n=9, k=6, disk_size="1GiB", chunk_size="64MiB")
        assert server.config.memory_chunks == 12

    def test_slow_disks_present(self):
        server = build_exp_server(
            n=6, k=4, disk_size="1GiB", chunk_size="64MiB", ros=0.2, seed=1
        )
        assert len(server.slow_disks()) >= 1
