"""TransferReport metrics: ACWT, TR, summaries."""

import math

import pytest

from repro.sim.metrics import ChunkRecord, build_report


def rec(key, start, end, round_end, job="j", rnd=0):
    return ChunkRecord(
        key=key, job_id=job, round_index=rnd, disk=None,
        start=start, end=end, round_end=round_end,
    )


class TestChunkRecord:
    def test_duration_and_wait(self):
        r = rec("a", 0.0, 2.0, 5.0)
        assert r.duration == 2.0
        assert r.wait == 3.0

    def test_zero_wait_for_slowest(self):
        r = rec("a", 0.0, 5.0, 5.0)
        assert r.wait == 0.0


class TestTransferReport:
    def _report(self):
        records = [rec("a", 0, 1, 3), rec("b", 0, 3, 3), rec("c", 3, 4, 4)]
        return build_report(records, {"j": 2}, {"j": 4.0})

    def test_acwt(self):
        rep = self._report()
        assert rep.acwt == pytest.approx(2.0 / 3.0)
        assert rep.total_waiting_time == pytest.approx(2.0)

    def test_counts(self):
        rep = self._report()
        assert rep.chunk_count == 3
        assert rep.total_rounds == 2
        assert rep.max_rounds_per_stripe == 2

    def test_total_time_from_finish_times(self):
        rep = self._report()
        assert rep.total_time == 4.0

    def test_records_sorted_by_end(self):
        rep = self._report()
        ends = [r.end for r in rep.records]
        assert ends == sorted(ends)

    def test_empty_report(self):
        rep = build_report([], {}, {})
        assert rep.acwt == 0.0
        assert rep.total_time == 0.0
        assert rep.max_rounds_per_stripe == 0

    def test_summary_keys(self):
        s = self._report().summary()
        assert set(s) >= {"total_time", "acwt", "chunks_read", "total_rounds"}
        assert math.isnan(s["memory_utilization"])

    def test_summary_with_utilization(self):
        rep = build_report([rec("a", 0, 1, 1)], {"j": 1}, {"j": 1.0}, memory_utilization=0.8)
        assert rep.summary()["memory_utilization"] == pytest.approx(0.8)

    def test_waits_list(self):
        # records are ordered by transfer end time: a (end 1), b (3), c (4)
        assert self._report().waits() == [2.0, 0.0, 0.0]

    def test_to_csv_roundtrip(self, tmp_path):
        import csv

        rep = self._report()
        path = rep.to_csv(tmp_path / "nested" / "timeline.csv")
        assert path.exists()
        with path.open() as fh:
            rows = list(csv.DictReader(fh))
        assert len(rows) == 3
        assert rows[0]["key"] == "a"
        assert float(rows[0]["wait"]) == 2.0
        assert {r["job_id"] for r in rows} == {"j"}
