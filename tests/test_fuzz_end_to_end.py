"""Randomised end-to-end fuzzing: random configs, failures, full recovery.

Each case builds a random (valid) server with real bytes, fails a random
set of disks within the code's tolerance, recovers with a random scheme,
and checks the global invariants: every object readable, every rebuilt
chunk byte-exact, memory bound respected, placement consistent.
"""

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import (
    ALGORITHMS,
    FullStripeRepair,
    cooperative_multi_disk_repair,
    recover_disk,
)
from repro.hdss import HDSSConfig, HighDensityStorageServer
from repro.hdss.profiles import BimodalSlowProfile


configs = st.fixed_dictionaries({
    "seed": st.integers(0, 10_000),
    "nk": st.sampled_from([(5, 3), (6, 4), (9, 6)]),
    "num_disks": st.integers(10, 16),
    "stripes": st.integers(4, 14),
    "algo": st.sampled_from(sorted(ALGORITHMS)),
    "ros": st.sampled_from([0.0, 0.1, 0.25]),
})


def build(params):
    n, k = params["nk"]
    cfg = HDSSConfig(
        num_disks=params["num_disks"], n=n, k=k, chunk_size=2048,
        memory_chunks=2 * k, spares=3,
        profile=BimodalSlowProfile(100e6, ros=params["ros"], slow_factor=4.0),
        placement="random", seed=params["seed"],
    )
    server = HighDensityStorageServer(cfg)
    server.provision_stripes(params["stripes"], with_data=True)
    return server


class TestSingleDiskFuzz:
    @given(params=configs)
    @settings(max_examples=20, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_random_single_disk_recovery(self, params):
        server = build(params)
        rng = np.random.default_rng(params["seed"])
        victim = int(rng.integers(0, params["num_disks"]))
        if not server.layout.stripe_set(victim):
            return  # disk holds nothing; nothing to assert
        originals = {
            idx: server.read_object(idx) for idx in range(len(server.layout))
        }
        server.fail_disk(victim)
        result = recover_disk(server, ALGORITHMS[params["algo"]](), victim)
        assert result.certified
        assert result.data_path.peak_memory_chunks <= server.config.memory_chunks
        for idx, data in originals.items():
            assert server.read_object(idx) == data
        # placement no longer references the dead disk
        assert server.layout.stripe_set(victim) == []


class TestMultiDiskFuzz:
    @given(params=configs, extra=st.integers(0, 1))
    @settings(max_examples=15, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_random_multi_disk_cooperative(self, params, extra):
        server = build(params)
        n, k = params["nk"]
        m = n - k
        rng = np.random.default_rng(params["seed"] + 1)
        count = min(m, 2 + extra)
        victims = sorted(
            int(d) for d in rng.choice(params["num_disks"], size=count, replace=False)
        )
        victims = [v for v in victims if server.layout.stripe_set(v)]
        if not victims:
            return
        for v in victims:
            server.fail_disk(v)
        out = cooperative_multi_disk_repair(server, FullStripeRepair, victims)
        affected = server.stripes_needing_repair(victims)
        assert out.stripes_per_phase == [len(affected)]
        assert out.chunks_read == len(affected) * k
        assert out.chunks_rebuilt == sum(
            len(server.layout[si].lost_shards(victims)) for si in affected
        )
        # every object still readable via degraded reads
        for idx in range(len(server.layout)):
            assert server.read_object(idx)
