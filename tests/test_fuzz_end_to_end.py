"""Randomised end-to-end fuzzing: random configs, failures, full recovery.

Each case builds a random (valid) server with real bytes, fails a random
set of disks within the code's tolerance, recovers with a random scheme,
and checks the global invariants: every object readable, every rebuilt
chunk byte-exact, memory bound respected, placement consistent.
"""

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import (
    ALGORITHMS,
    FullStripeRepair,
    ReadPolicy,
    cooperative_multi_disk_repair,
    recover_disk,
)
from repro.faults import DataLossReport, generate_fault_schedule
from repro.hdss import HDSSConfig, HighDensityStorageServer
from repro.hdss.profiles import BimodalSlowProfile


configs = st.fixed_dictionaries({
    "seed": st.integers(0, 10_000),
    "nk": st.sampled_from([(5, 3), (6, 4), (9, 6)]),
    "num_disks": st.integers(10, 16),
    "stripes": st.integers(4, 14),
    "algo": st.sampled_from(sorted(ALGORITHMS)),
    "ros": st.sampled_from([0.0, 0.1, 0.25]),
})


def build(params):
    n, k = params["nk"]
    cfg = HDSSConfig(
        num_disks=params["num_disks"], n=n, k=k, chunk_size=2048,
        memory_chunks=2 * k, spares=3,
        profile=BimodalSlowProfile(100e6, ros=params["ros"], slow_factor=4.0),
        placement="random", seed=params["seed"],
    )
    server = HighDensityStorageServer(cfg)
    server.provision_stripes(params["stripes"], with_data=True)
    return server


class TestSingleDiskFuzz:
    @given(params=configs)
    @settings(max_examples=20, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_random_single_disk_recovery(self, params):
        server = build(params)
        rng = np.random.default_rng(params["seed"])
        victim = int(rng.integers(0, params["num_disks"]))
        if not server.layout.stripe_set(victim):
            return  # disk holds nothing; nothing to assert
        originals = {
            idx: server.read_object(idx) for idx in range(len(server.layout))
        }
        server.fail_disk(victim)
        result = recover_disk(server, ALGORITHMS[params["algo"]](), victim)
        assert result.certified
        assert result.data_path.peak_memory_chunks <= server.config.memory_chunks
        for idx, data in originals.items():
            assert server.read_object(idx) == data
        # placement no longer references the dead disk
        assert server.layout.stripe_set(victim) == []


class TestMultiDiskFuzz:
    @given(params=configs, extra=st.integers(0, 1))
    @settings(max_examples=15, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_random_multi_disk_cooperative(self, params, extra):
        server = build(params)
        n, k = params["nk"]
        m = n - k
        rng = np.random.default_rng(params["seed"] + 1)
        count = min(m, 2 + extra)
        victims = sorted(
            int(d) for d in rng.choice(params["num_disks"], size=count, replace=False)
        )
        victims = [v for v in victims if server.layout.stripe_set(v)]
        if not victims:
            return
        for v in victims:
            server.fail_disk(v)
        out = cooperative_multi_disk_repair(server, FullStripeRepair, victims)
        affected = server.stripes_needing_repair(victims)
        assert out.stripes_per_phase == [len(affected)]
        assert out.chunks_read == len(affected) * k
        assert out.chunks_rebuilt == sum(
            len(server.layout[si].lost_shards(victims)) for si in affected
        )
        # every object still readable via degraded reads
        for idx in range(len(server.layout)):
            assert server.read_object(idx)


class TestFaultedFuzz:
    """Random faults interleaved with recovery: the run must end in either a
    certified recovery or an explicit DataLossReport — never an unhandled
    exception."""

    @given(params=configs, fault_seed=st.integers(0, 10_000),
           hardened=st.booleans())
    @settings(max_examples=20, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_random_faults_never_raise(self, params, fault_seed, hardened):
        server = build(params)
        rng = np.random.default_rng(params["seed"])
        victim = int(rng.integers(0, params["num_disks"]))
        if not server.layout.stripe_set(victim):
            return
        server.fail_disk(victim)
        # fault times must land inside the repair's (tiny) modeled window
        read_seconds = server.config.chunk_size / 100e6
        schedule = generate_fault_schedule(
            seed=fault_seed,
            num_events=int(np.random.default_rng(fault_seed).integers(1, 6)),
            horizon=30 * read_seconds,
            num_disks=params["num_disks"],
            num_stripes=params["stripes"],
            num_shards=params["nk"][0],
            max_disk_fails=2,
            duration_range=(read_seconds, 10 * read_seconds),
        )
        policy = None
        if hardened:
            policy = ReadPolicy(
                timeout_seconds=20 * read_seconds, max_retries=2,
                backoff_base=read_seconds, backoff_cap=5 * read_seconds,
                hedge=True,
            )
        result = recover_disk(
            server, ALGORITHMS[params["algo"]](), victim,
            faults=schedule, policy=policy,
        )
        loss = result.loss
        assert isinstance(loss, DataLossReport)
        # every repaired stripe has exactly one outcome
        assert set(loss.stripes) == set(result.outcome.stripe_indices)
        assert loss.exit_code == (3 if loss.has_loss else 0)
        if not loss.has_loss and not loss.degraded \
                and not result.scrub.degraded:
            assert result.certified
        # memory bound holds even under replans and retries
        assert result.data_path.peak_memory_chunks <= server.config.memory_chunks
        # non-lost stripes remain readable (>= k shards survive somewhere)
        lost = set(loss.lost)
        for stripe in server.layout:
            if stripe.index in set(result.outcome.stripe_indices) - lost:
                healthy = sum(
                    1 for d in stripe.disks if not server.disk(d).is_failed
                )
                assert healthy >= server.config.k
