"""HD-PSR-AP: the twice dimensionality reduction and plan construction."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.psr_ap import (
    ActivePreliminaryRepair,
    ap_total_transfer_time,
    stripe_times_for_pa,
    window_makespan,
)
from repro.core.plans import plan_to_jobs
from repro.errors import ConfigurationError
from repro.sim.transfer import simulate_interval_schedule


class TestStripeTimesForPa:
    def test_fsr_block(self):
        L = np.array([[1.0, 2.0, 3.0, 4.0]])
        assert stripe_times_for_pa(L, 4)[0] == 4.0

    def test_pa_one_is_sum(self):
        L = np.array([[1.0, 2.0, 3.0, 4.0]])
        assert stripe_times_for_pa(L, 1)[0] == 10.0

    def test_block_maxima(self):
        L = np.array([[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]])
        # pa=2 on sorted row: blocks (1,2),(3,4),(5,6) -> maxima 2+4+6
        assert stripe_times_for_pa(L, 2)[0] == 12.0

    def test_ragged_final_block(self):
        L = np.array([[1.0, 2.0, 3.0, 4.0, 5.0]])
        # pa=2: (1,2),(3,4),(5) -> 2+4+5
        assert stripe_times_for_pa(L, 2)[0] == 11.0

    def test_bad_pa(self):
        with pytest.raises(ConfigurationError):
            stripe_times_for_pa(np.ones((1, 4)), 5)

    def test_matches_equation4_bruteforce(self):
        rng = np.random.default_rng(0)
        L = np.sort(rng.uniform(1, 5, size=(20, 9)), axis=1)
        for pa in range(1, 10):
            fast = stripe_times_for_pa(L, pa)
            slow = np.array([
                sum(row[i : i + pa].max() for i in range(0, 9, pa)) for row in L
            ])
            assert np.allclose(fast, slow)


class TestWindowMakespan:
    def test_single_machine_is_sum(self):
        assert window_makespan(np.array([1.0, 2.0, 3.0]), 1) == 6.0

    def test_all_parallel_is_max(self):
        assert window_makespan(np.array([1.0, 2.0, 3.0]), 3) == 3.0
        assert window_makespan(np.array([1.0, 2.0, 3.0]), 10) == 3.0

    def test_known_case(self):
        # d=[1,2,10], w=2: makespan = 11 (10 starts when 1 finishes)
        assert window_makespan(np.array([1.0, 2.0, 10.0]), 2) == 11.0

    def test_empty(self):
        assert window_makespan(np.array([]), 2) == 0.0

    def test_bad_pr(self):
        with pytest.raises(ConfigurationError):
            window_makespan(np.array([1.0]), 0)

    def test_matches_interval_simulation(self):
        """The closed form equals list-scheduling of ascending jobs."""
        from repro.sim.transfer import ChunkTransfer, StripeJob

        rng = np.random.default_rng(5)
        for trial in range(20):
            times = np.sort(rng.uniform(0.5, 10, size=rng.integers(1, 40)))
            pr = int(rng.integers(1, 6))
            jobs = [StripeJob(i, [[ChunkTransfer((i, 0), float(t))]]) for i, t in enumerate(times)]
            sim = simulate_interval_schedule(jobs, pr).total_time
            assert window_makespan(times, pr) == pytest.approx(sim), (trial, pr)


class TestSelection:
    def test_prefers_small_pa_with_scattered_slowers(self):
        """One slow chunk per stripe: small P_a isolates it, so AP avoids k."""
        rng = np.random.default_rng(1)
        L = rng.uniform(1.0, 1.2, size=(60, 8))
        L[:, 0] = 8.0  # every stripe has one very slow chunk
        algo = ActivePreliminaryRepair()
        pa, pr, candidates, _ = algo.select(L, c=16)
        assert pa < 8
        assert candidates[pa] == min(candidates.values())

    def test_uniform_times_prefer_large_pa(self):
        """Identical chunk times: waiting is free, rounds only add serialisation."""
        L = np.full((40, 6), 2.0)
        algo = ActivePreliminaryRepair()
        pa, _, candidates, _ = algo.select(L, c=12)
        # with all-equal times total transfer time is flat in pa under the
        # window model whenever pa divides k; argmin must be a minimiser
        assert candidates[pa] == min(candidates.values())

    def test_candidate_range(self):
        L = np.random.default_rng(0).uniform(1, 3, size=(10, 6))
        _, _, candidates, _ = ActivePreliminaryRepair().select(L, c=12)
        assert sorted(candidates) == list(range(2, 7))

    def test_selection_timed(self):
        L = np.random.default_rng(0).uniform(1, 3, size=(200, 12))
        _, _, _, seconds = ActivePreliminaryRepair().select(L, c=12)
        assert seconds > 0

    def test_pr_policy_floor(self):
        L = np.random.default_rng(0).uniform(1, 3, size=(10, 6))
        algo = ActivePreliminaryRepair(pr_policy="floor")
        pa, pr, _, _ = algo.select(L, c=12)
        assert pr == max(1, 12 // pa)


class TestPlan:
    def test_plan_valid_and_uniform(self):
        L = np.random.default_rng(2).uniform(1, 5, size=(30, 9))
        plan = ActivePreliminaryRepair().build_plan(L, c=18)
        plan.validate(9)
        pa = plan.pa
        for sp in plan.stripe_plans:
            assert all(len(r) == pa for r in sp.rounds[:-1])
            assert len(sp.rounds[-1]) <= pa

    def test_rounds_follow_sorted_order(self):
        L = np.array([[5.0, 1.0, 4.0, 2.0, 3.0, 6.0]])
        plan = ActivePreliminaryRepair().build_plan(L, c=6)
        cols = [c for r in plan.stripe_plans[0].rounds for c in r]
        times = [L[0, c] for c in cols]
        assert times == sorted(times)

    def test_admission_sorted_by_stripe_time(self):
        rng = np.random.default_rng(3)
        L = rng.uniform(1, 10, size=(20, 6))
        plan = ActivePreliminaryRepair().build_plan(L, c=12)
        pa = plan.pa
        sorted_rows = np.sort(L, axis=1)
        stripe_times = stripe_times_for_pa(sorted_rows, pa)
        admitted = [sp.stripe_index for sp in plan.stripe_plans]
        assert list(stripe_times[admitted]) == sorted(stripe_times)

    def test_predicted_T_matches_execution(self):
        """Interval-model execution of the plan reproduces the predicted T."""
        rng = np.random.default_rng(4)
        L = rng.uniform(1, 5, size=(50, 6))
        algo = ActivePreliminaryRepair()
        plan = algo.build_plan(L, c=12)
        jobs = plan_to_jobs(plan, L)
        sim = simulate_interval_schedule(jobs, plan.pr).total_time
        assert sim == pytest.approx(plan.metadata["predicted_T"])

    def test_accumulators_declared(self):
        L = np.random.default_rng(5).uniform(1, 5, size=(10, 6))
        plan = ActivePreliminaryRepair().build_plan(L, c=12)
        for sp in plan.stripe_plans:
            expected = 1 if sp.num_rounds > 1 else 0
            assert sp.accumulator_chunks == expected


class TestApTotalTransferTime:
    @given(seed=st.integers(0, 10_000), pa=st.integers(1, 8))
    @settings(max_examples=40, deadline=None)
    def test_positive_and_bounded(self, seed, pa):
        rng = np.random.default_rng(seed)
        L = rng.uniform(0.5, 4.0, size=(15, 8))
        t = ap_total_transfer_time(L, pa, c=16)
        # lower bound: slowest single stripe; upper: fully serial everything
        sorted_L = np.sort(L, axis=1)
        from repro.core.psr_ap import stripe_times_for_pa as stp

        stripe_times = stp(sorted_L, pa)
        assert stripe_times.max() <= t <= stripe_times.sum() + 1e-9
