"""P² streaming quantiles: accuracy, invariants, registry integration."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.obs import MetricsRegistry, QuantileSketch, parse_prometheus_text, prometheus_text
from repro.obs.quantiles import P2Quantile

QUANTILES = (0.5, 0.95, 0.99)


def _distributions(n=50000):
    rng = np.random.default_rng(42)
    bimodal = np.concatenate([
        rng.normal(10.0, 1.0, int(n * 0.7)),
        rng.normal(20.0, 1.5, n - int(n * 0.7)),
    ])
    rng.shuffle(bimodal)
    return {
        "uniform": rng.uniform(0.0, 10.0, n),
        "exponential": rng.exponential(2.0, n),
        "bimodal": bimodal,
    }


class TestAccuracy:
    @pytest.mark.parametrize("name", ["uniform", "exponential", "bimodal"])
    def test_within_one_percent_of_numpy(self, name):
        data = _distributions()[name]
        sketch = QuantileSketch(QUANTILES)
        for x in data:
            sketch.observe(x)
        estimates = sketch.quantiles()
        for q in QUANTILES:
            true = float(np.percentile(data, q * 100))
            assert estimates[q] == pytest.approx(true, rel=0.01), (name, q)

    def test_mean_min_max_exact(self):
        data = _distributions()["exponential"]
        sketch = QuantileSketch(QUANTILES)
        for x in data:
            sketch.observe(x)
        assert sketch.count == len(data)
        assert sketch.mean == pytest.approx(float(data.mean()))
        assert sketch.min == pytest.approx(float(data.min()))
        assert sketch.max == pytest.approx(float(data.max()))


class TestInvariants:
    def test_monotone_and_bounded(self):
        rng = np.random.default_rng(7)
        for trial in range(20):
            sketch = QuantileSketch(QUANTILES)
            for x in rng.exponential(1.0, int(rng.integers(1, 60))):
                sketch.observe(x)
            values = sketch.quantiles()
            assert values[0.5] <= values[0.95] <= values[0.99]
            assert sketch.min <= values[0.5]
            assert values[0.99] <= sketch.max

    def test_small_sample_exact(self):
        # With <= 5 observations P² still holds the raw values: the median
        # of five known numbers is exact.
        sketch = QuantileSketch((0.5,))
        for x in (5.0, 1.0, 3.0, 2.0, 4.0):
            sketch.observe(x)
        assert sketch.quantiles()[0.5] == pytest.approx(3.0)

    def test_empty_sketch_reports_zero(self):
        sketch = QuantileSketch(QUANTILES)
        assert sketch.quantiles() == {q: 0.0 for q in QUANTILES}
        assert sketch.mean == 0.0

    def test_constant_stream(self):
        sketch = QuantileSketch(QUANTILES)
        for _ in range(1000):
            sketch.observe(2.5)
        assert all(v == pytest.approx(2.5) for v in sketch.quantiles().values())

    def test_no_sample_retention(self):
        # The estimator keeps five markers per quantile, nothing that
        # grows with the stream.
        estimator = P2Quantile(0.95)
        for x in range(10000):
            estimator.observe(float(x % 97))
        assert len(estimator._q) == 5
        assert len(estimator._buf) == 5

    def test_summary_dict(self):
        sketch = QuantileSketch((0.5, 0.99))
        for x in (1.0, 2.0, 3.0):
            sketch.observe(x)
        summary = sketch.summary()
        assert summary["count"] == 3.0
        assert summary["mean"] == pytest.approx(2.0)
        assert "p50" in summary and "p99" in summary


class TestValidation:
    def test_bad_quantile_rejected(self):
        with pytest.raises(ConfigurationError):
            P2Quantile(0.0)
        with pytest.raises(ConfigurationError):
            P2Quantile(1.0)
        with pytest.raises(ConfigurationError):
            QuantileSketch(())

    def test_untracked_quantile_rejected(self):
        sketch = QuantileSketch((0.5,))
        sketch.observe(1.0)
        with pytest.raises(ConfigurationError):
            sketch.quantile(0.9)


class TestSummaryMetric:
    def test_registry_and_exposition(self):
        registry = MetricsRegistry()
        summary = registry.summary("hdpsr_test_sojourn_seconds", "test", (0.5, 0.99))
        for x in range(1, 101):
            summary.observe(float(x))
        assert summary.count == 100
        assert summary.sum == pytest.approx(5050.0)
        assert summary.quantile(0.5) == pytest.approx(50.0, rel=0.1)

        text = prometheus_text(registry)
        assert "# TYPE hdpsr_test_sojourn_seconds summary" in text
        samples = parse_prometheus_text(text)
        assert samples[("hdpsr_test_sojourn_seconds_count", ())] == 100
        q50 = samples[("hdpsr_test_sojourn_seconds", (("quantile", "0.5"),))]
        assert q50 == pytest.approx(summary.quantile(0.5))

    def test_labels_fan_out(self):
        registry = MetricsRegistry()
        summary = registry.summary("hdpsr_test_latency_seconds")
        summary.labels(algorithm="fsr").observe(1.0)
        summary.labels(algorithm="hd-psr-ap").observe(2.0)
        snap = registry.snapshot()["hdpsr_test_latency_seconds"]
        assert snap["type"] == "summary"
        assert len(snap["series"]) == 2
        for series in snap["series"]:
            assert series["count"] == 1

    def test_type_collision_rejected(self):
        registry = MetricsRegistry()
        registry.summary("hdpsr_thing")
        with pytest.raises(ConfigurationError):
            registry.counter("hdpsr_thing")

    def test_snapshot_quantiles_monotone(self):
        registry = MetricsRegistry()
        summary = registry.summary("hdpsr_mono_seconds")
        rng = np.random.default_rng(3)
        for x in rng.exponential(1.0, 500):
            summary.observe(float(x))
        series = registry.snapshot()["hdpsr_mono_seconds"]["series"][0]
        values = [series["quantiles"][f"{q:g}"] for q in (0.5, 0.95, 0.99)]
        assert values == sorted(values)
