"""Cross-module property-based tests (hypothesis)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    ActivePreliminaryRepair,
    ActiveSlowerFirstRepair,
    FullStripeRepair,
    PassiveRepair,
    RepairContext,
    execute_plan,
)
from repro.core.psr_ap import window_makespan
from repro.ec import PartialDecoder, RSCode
from repro.sim.transfer import simulate_interval_schedule, simulate_slot_schedule


L_matrices = st.builds(
    lambda seed, s, k: np.random.default_rng(seed).uniform(0.5, 5.0, size=(s, k)),
    seed=st.integers(0, 2**31 - 1),
    s=st.integers(2, 25),
    k=st.integers(2, 10),
)


class TestPlanInvariants:
    @given(L=L_matrices, c_extra=st.integers(0, 12))
    @settings(max_examples=40, deadline=None)
    def test_every_algorithm_reads_each_chunk_once(self, L, c_extra):
        s, k = L.shape
        c = k + c_extra
        ctx = RepairContext(disk_ids=np.tile(np.arange(k), (s, 1)))
        for algo in (FullStripeRepair(), ActivePreliminaryRepair(), ActiveSlowerFirstRepair(), PassiveRepair()):
            plan = algo.build_plan(L, c, context=ctx)
            plan.validate(k)  # covers each column exactly once per stripe
            assert plan.num_stripes == s

    @given(L=L_matrices)
    @settings(max_examples=30, deadline=None)
    def test_total_transfer_work_is_invariant(self, L):
        """No scheme changes the amount of data moved, only the schedule."""
        s, k = L.shape
        c = 2 * k
        ctx = RepairContext(disk_ids=np.tile(np.arange(k), (s, 1)))
        busy = []
        for algo in (FullStripeRepair(), ActivePreliminaryRepair(), PassiveRepair()):
            plan = algo.build_plan(L, c, context=ctx)
            report = execute_plan(plan, L, c)
            busy.append(sum(r.duration for r in report.records))
        assert all(abs(b - busy[0]) < 1e-6 for b in busy)

    @given(L=L_matrices)
    @settings(max_examples=30, deadline=None)
    def test_makespan_lower_bound(self, L):
        """Makespan >= the slowest single chunk, always."""
        s, k = L.shape
        c = 2 * k
        ctx = RepairContext(disk_ids=np.tile(np.arange(k), (s, 1)))
        for algo in (FullStripeRepair(), ActiveSlowerFirstRepair()):
            plan = algo.build_plan(L, c, context=ctx)
            report = execute_plan(plan, L, c)
            assert report.total_time >= L.max() - 1e-9

    @given(L=L_matrices)
    @settings(max_examples=30, deadline=None)
    def test_acwt_non_negative_and_bounded(self, L):
        s, k = L.shape
        c = 2 * k
        plan = FullStripeRepair().build_plan(L, c)
        report = execute_plan(plan, L, c)
        assert 0 <= report.acwt <= L.max()


class TestSchedulerProperties:
    @given(
        seed=st.integers(0, 2**31 - 1),
        s=st.integers(1, 15),
        pr=st.integers(1, 6),
    )
    @settings(max_examples=40, deadline=None)
    def test_more_intervals_never_slower(self, seed, s, pr):
        from repro.sim.transfer import ChunkTransfer, StripeJob

        rng = np.random.default_rng(seed)
        jobs = [
            StripeJob(i, [[ChunkTransfer((i, j), float(d)) for j, d in enumerate(rng.uniform(0.5, 3, size=4))]])
            for i in range(s)
        ]
        t1 = simulate_interval_schedule(jobs, pr).total_time
        t2 = simulate_interval_schedule(jobs, pr + 1).total_time
        assert t2 <= t1 + 1e-9

    @given(seed=st.integers(0, 2**31 - 1), s=st.integers(1, 12))
    @settings(max_examples=40, deadline=None)
    def test_slot_capacity_monotone(self, seed, s):
        from repro.sim.transfer import ChunkTransfer, StripeJob

        rng = np.random.default_rng(seed)
        jobs = [
            StripeJob(i, [[ChunkTransfer((i, j), float(d)) for j, d in enumerate(rng.uniform(0.5, 3, size=3))]])
            for i in range(s)
        ]
        t_small = simulate_slot_schedule(jobs, capacity=3).total_time
        t_big = simulate_slot_schedule(jobs, capacity=9).total_time
        assert t_big <= t_small + 1e-9

    @given(times=st.lists(st.floats(0.1, 100.0), min_size=1, max_size=50), pr=st.integers(1, 8))
    @settings(max_examples=60, deadline=None)
    def test_window_makespan_bounds(self, times, pr):
        arr = np.array(times)
        t = window_makespan(arr, pr)
        assert arr.max() - 1e-9 <= t <= arr.sum() + 1e-9
        if pr == 1:
            assert t == pytest.approx(arr.sum())


class TestCodingProperties:
    @given(
        seed=st.integers(0, 2**31 - 1),
        nk=st.sampled_from([(6, 4), (9, 6), (5, 3), (14, 10)]),
        size=st.integers(1, 500),
    )
    @settings(max_examples=25, deadline=None)
    def test_encode_reconstruct_roundtrip(self, seed, nk, size):
        n, k = nk
        rng = np.random.default_rng(seed)
        code = RSCode(n, k)
        data = rng.integers(0, 256, size=size, dtype=np.uint8).tobytes()
        shards = code.encode(code.split(data))
        lost = sorted(rng.choice(n, size=min(n - k, 3), replace=False).tolist())
        holed = [None if j in lost else shards[j] for j in range(n)]
        rebuilt = code.reconstruct(holed)
        assert code.join(rebuilt[:k], size) == data

    @given(seed=st.integers(0, 2**31 - 1))
    @settings(max_examples=25, deadline=None)
    def test_partial_decoder_any_round_sizes(self, seed):
        rng = np.random.default_rng(seed)
        code = RSCode(9, 6)
        data = rng.integers(0, 256, size=6 * 17, dtype=np.uint8).tobytes()
        shards = code.encode(code.split(data))
        lost = sorted(rng.choice(9, size=2, replace=False).tolist())
        survivors = [j for j in range(9) if j not in lost][:6]
        pd = PartialDecoder(code, survivors, lost)
        remaining = list(survivors)
        rng.shuffle(remaining)
        while remaining:
            take = int(rng.integers(1, len(remaining) + 1))
            batch, remaining = remaining[:take], remaining[take:]
            pd.feed({j: shards[j] for j in batch})
        for t in lost:
            assert np.array_equal(pd.result(t), shards[t])
