"""PartialDecoder: the RecoverWithSomeShards analogue at PSR's core."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ec import PartialDecoder, RSCode
from repro.errors import CodingError


@pytest.fixture
def rng():
    return np.random.default_rng(5)


@pytest.fixture
def code():
    return RSCode(9, 6)


@pytest.fixture
def shards(code, rng):
    data = rng.integers(0, 256, size=6 * 128, dtype=np.uint8).tobytes()
    return code.encode(code.split(data))


SURVIVORS = [0, 2, 3, 5, 6, 8]
TARGETS = [1, 4, 7]


class TestLifecycle:
    def test_round_grouping_invariance(self, code, shards):
        """Any grouping of the k survivors into rounds gives the same bytes."""
        groupings = [
            [[0], [2], [3], [5], [6], [8]],                 # P_a = 1
            [[0, 2], [3, 5], [6, 8]],                       # P_a = 2
            [[0, 2, 3], [5, 6, 8]],                         # P_a = 3
            [[0, 2, 3, 5, 6, 8]],                           # FSR
            [[8, 0], [6, 2], [5, 3]],                       # arbitrary order
            [[0, 2, 3, 5, 6], [8]],                         # ragged
        ]
        reference = None
        for rounds in groupings:
            pd = PartialDecoder(code, SURVIVORS, TARGETS)
            for rnd in rounds:
                pd.feed({j: shards[j] for j in rnd})
            result = {t: pd.result(t) for t in TARGETS}
            if reference is None:
                reference = result
            for t in TARGETS:
                assert np.array_equal(result[t], reference[t]), (rounds, t)
        for t in TARGETS:
            assert np.array_equal(reference[t], shards[t])

    def test_pending_and_complete(self, code, shards):
        pd = PartialDecoder(code, SURVIVORS, [1])
        assert pd.pending == sorted(SURVIVORS)
        assert not pd.complete
        pd.feed({0: shards[0], 2: shards[2]})
        assert pd.pending == [3, 5, 6, 8]
        pd.feed({3: shards[3], 5: shards[5], 6: shards[6], 8: shards[8]})
        assert pd.complete
        assert pd.rounds_fed == 2

    def test_memory_footprint_is_target_count(self, code, shards):
        pd = PartialDecoder(code, SURVIVORS, TARGETS)
        pd.feed({0: shards[0]})
        assert pd.memory_chunks_held() == len(TARGETS)
        pd.feed({j: shards[j] for j in [2, 3, 5, 6, 8]})
        assert pd.memory_chunks_held() == len(TARGETS)

    def test_results_dict(self, code, shards):
        pd = PartialDecoder(code, SURVIVORS, TARGETS)
        pd.feed({j: shards[j] for j in SURVIVORS})
        results = pd.results()
        assert set(results) == set(TARGETS)
        for t in TARGETS:
            assert np.array_equal(results[t], shards[t])


class TestErrors:
    def test_result_before_complete(self, code, shards):
        pd = PartialDecoder(code, SURVIVORS, [1])
        pd.feed({0: shards[0]})
        with pytest.raises(CodingError):
            pd.result(1)

    def test_double_feed_rejected(self, code, shards):
        pd = PartialDecoder(code, SURVIVORS, [1])
        pd.feed({0: shards[0]})
        with pytest.raises(CodingError):
            pd.feed({0: shards[0]})

    def test_undeclared_shard_rejected(self, code, shards):
        pd = PartialDecoder(code, SURVIVORS, [1])
        with pytest.raises(CodingError):
            pd.feed({1: shards[1]})  # 1 is a target, not a survivor

    def test_empty_feed_rejected(self, code):
        pd = PartialDecoder(code, SURVIVORS, [1])
        with pytest.raises(CodingError):
            pd.feed({})

    def test_no_targets_rejected(self, code):
        with pytest.raises(CodingError):
            PartialDecoder(code, SURVIVORS, [])

    def test_duplicate_targets_rejected(self, code):
        with pytest.raises(CodingError):
            PartialDecoder(code, SURVIVORS, [1, 1])

    def test_target_in_survivors_rejected(self, code):
        with pytest.raises(CodingError):
            PartialDecoder(code, SURVIVORS, [0])

    def test_size_mismatch_rejected(self, code, shards):
        pd = PartialDecoder(code, SURVIVORS, [1])
        pd.feed({0: shards[0]})
        with pytest.raises(CodingError):
            pd.feed({2: shards[2][:-1]})

    def test_2d_shard_rejected(self, code):
        pd = PartialDecoder(code, SURVIVORS, [1])
        with pytest.raises(CodingError):
            pd.feed({0: np.zeros((2, 2), dtype=np.uint8)})

    def test_result_for_non_target(self, code, shards):
        pd = PartialDecoder(code, SURVIVORS, [1])
        pd.feed({j: shards[j] for j in SURVIVORS})
        with pytest.raises(CodingError):
            pd.result(4)

    def test_wrong_survivor_count(self, code):
        with pytest.raises(Exception):
            PartialDecoder(code, [0, 2, 3], [1])


class TestReplan:
    def test_salvages_fed_rounds(self, code, shards):
        """Swap a dead pending survivor mid-decode; fed chunks are kept."""
        # Two targets leave shard 7 as a fresh replacement read.
        pd = PartialDecoder(code, SURVIVORS, [1, 4])
        pd.feed({j: shards[j] for j in [0, 2, 3]})
        # pending survivor 5 "dies": keep still-alive 6 and 8, bring in
        # fresh shard 7. The fed chunks stay folded into the accumulators.
        pd.replan([6, 8, 7, 0])
        assert pd.pending == [0, 6, 7, 8]
        pd.feed({j: shards[j] for j in [6, 8, 7, 0]})
        for t in (1, 4):
            assert np.array_equal(pd.result(t), shards[t])

    def test_replan_wrong_read_count(self, code, shards):
        pd = PartialDecoder(code, SURVIVORS, TARGETS)
        pd.feed({j: shards[j] for j in [0, 2, 3]})
        with pytest.raises(CodingError):
            pd.replan([6, 8])

    def test_replan_duplicate_reads(self, code, shards):
        pd = PartialDecoder(code, SURVIVORS, TARGETS)
        pd.feed({j: shards[j] for j in [0, 2, 3]})
        with pytest.raises(CodingError):
            pd.replan([6, 6, 8])

    def test_replan_target_rejected(self, code, shards):
        pd = PartialDecoder(code, SURVIVORS, TARGETS)
        pd.feed({j: shards[j] for j in [0, 2, 3]})
        with pytest.raises(CodingError):
            pd.replan([6, 8, 1])  # 1 is a repair target

    def test_replan_out_of_range(self, code, shards):
        pd = PartialDecoder(code, SURVIVORS, TARGETS)
        pd.feed({j: shards[j] for j in [0, 2, 3]})
        with pytest.raises(CodingError):
            pd.replan([6, 8, 9])

    def test_replan_before_enough_fed_is_singular(self, code, shards):
        """With fewer than t fed chunks the accumulator rows are dependent."""
        pd = PartialDecoder(code, SURVIVORS, TARGETS)  # t = 3 targets
        pd.feed({0: shards[0]})  # only 1 fed < 3
        with pytest.raises(CodingError):
            pd.replan([2, 3, 5])

    def test_replan_all_fed_rereads_singular(self, code, shards):
        """Re-reading every fed shard duplicates rows -> singular."""
        pd = PartialDecoder(code, SURVIVORS, TARGETS)
        pd.feed({j: shards[j] for j in [0, 2, 3]})
        with pytest.raises(CodingError):
            pd.replan([0, 2, 3])

    def test_replan_mixed_reread_allowed(self, code, shards):
        """Re-reading a fed shard is fine when enough rounds are banked.

        With t targets and r re-reads the stacked system has full rank only
        when at least ``t + r`` chunks were fed — the accumulator rows plus
        the re-read rows must span beyond the targets' worth of fold-down.
        """
        pd = PartialDecoder(code, SURVIVORS, [1, 4])  # t = 2
        pd.feed({j: shards[j] for j in [0, 2, 3]})    # 3 fed >= t + 1 re-read
        pd.replan([6, 8, 5, 0])  # keep 6/8/5, re-read 0
        pd.feed({j: shards[j] for j in [6, 8, 5, 0]})
        for t in (1, 4):
            assert np.array_equal(pd.result(t), shards[t])

    def test_replan_impossible_when_all_parity_targeted(self, code, shards):
        """t = n - k leaves no fresh shard: losing an unfed survivor is fatal.

        Only 5 readable symbols remain (3 fed + 2 alive unfed < k), so
        every replacement read set is singular and callers must report the
        stripe as lost rather than loop forever.
        """
        pd = PartialDecoder(code, SURVIVORS, TARGETS)
        pd.feed({j: shards[j] for j in [0, 2, 3]})
        # survivor 5 died; candidates avoiding it all fail
        for reads in ([6, 8, 0], [6, 8, 2], [6, 8, 3]):
            with pytest.raises(CodingError):
                pd.replan(reads)

    def test_restart_discards_everything(self, code, shards):
        pd = PartialDecoder(code, SURVIVORS, TARGETS)
        pd.feed({j: shards[j] for j in [0, 2, 3]})
        pd.restart([0, 2, 3, 5, 6, 8])
        assert pd.pending == [0, 2, 3, 5, 6, 8]
        assert pd.fed == []
        pd.feed({j: shards[j] for j in [0, 2, 3, 5, 6, 8]})
        for t in TARGETS:
            assert np.array_equal(pd.result(t), shards[t])

    def test_restart_rejects_targets_as_survivors(self, code):
        pd = PartialDecoder(code, SURVIVORS, TARGETS)
        with pytest.raises(CodingError):
            pd.restart([0, 2, 3, 5, 6, 1])

    @given(seed=st.integers(0, 2**31 - 1), fed_count=st.integers(2, 5))
    @settings(max_examples=30, deadline=None)
    def test_replan_equals_direct_decode(self, seed, fed_count):
        """Property: salvage after any partial feed gives the exact shards."""
        rng = np.random.default_rng(seed)
        code = RSCode(9, 6)
        data = rng.integers(0, 256, size=6 * 32, dtype=np.uint8).tobytes()
        shards = code.encode(code.split(data))
        targets = sorted(rng.choice(9, size=2, replace=False).tolist())
        pool = [j for j in range(9) if j not in targets]
        survivors = pool[:6]
        spares = pool[6:]

        pd = PartialDecoder(code, survivors, targets)
        fed = survivors[:fed_count]
        pd.feed({j: shards[j] for j in fed})
        # the first not-yet-fed survivor dies; rebuild the read set from the
        # still-alive pending shards, the spare, then re-reads of fed shards
        dead = survivors[fed_count]
        alive_pending = survivors[fed_count + 1:]
        need = 6 - len(targets)
        replacement = (alive_pending + spares + fed)[:need]
        pd.replan(replacement)
        assert dead not in pd.pending
        pd.feed({j: shards[j] for j in pd.pending})
        for t in targets:
            assert np.array_equal(pd.result(t), shards[t])


class TestEquivalenceWithFullDecode:
    @given(seed=st.integers(0, 2**31 - 1), pa=st.integers(1, 6))
    @settings(max_examples=30, deadline=None)
    def test_partial_equals_full(self, seed, pa):
        """Property: PSR partial sums == FSR full decode, any P_a, any data."""
        rng = np.random.default_rng(seed)
        code = RSCode(9, 6)
        data = rng.integers(0, 256, size=6 * 32, dtype=np.uint8).tobytes()
        shards = code.encode(code.split(data))
        lost = sorted(rng.choice(9, size=3, replace=False).tolist())
        survivors = [j for j in range(9) if j not in lost][:6]

        holed = [None if j in lost else shards[j] for j in range(9)]
        full = code.reconstruct(holed, targets=lost)

        pd = PartialDecoder(code, survivors, lost)
        for i in range(0, 6, pa):
            pd.feed({j: shards[j] for j in survivors[i : i + pa]})
        for t in lost:
            assert np.array_equal(pd.result(t), full[t])
            assert np.array_equal(pd.result(t), shards[t])
