"""PartialDecoder: the RecoverWithSomeShards analogue at PSR's core."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ec import PartialDecoder, RSCode
from repro.errors import CodingError


@pytest.fixture
def rng():
    return np.random.default_rng(5)


@pytest.fixture
def code():
    return RSCode(9, 6)


@pytest.fixture
def shards(code, rng):
    data = rng.integers(0, 256, size=6 * 128, dtype=np.uint8).tobytes()
    return code.encode(code.split(data))


SURVIVORS = [0, 2, 3, 5, 6, 8]
TARGETS = [1, 4, 7]


class TestLifecycle:
    def test_round_grouping_invariance(self, code, shards):
        """Any grouping of the k survivors into rounds gives the same bytes."""
        groupings = [
            [[0], [2], [3], [5], [6], [8]],                 # P_a = 1
            [[0, 2], [3, 5], [6, 8]],                       # P_a = 2
            [[0, 2, 3], [5, 6, 8]],                         # P_a = 3
            [[0, 2, 3, 5, 6, 8]],                           # FSR
            [[8, 0], [6, 2], [5, 3]],                       # arbitrary order
            [[0, 2, 3, 5, 6], [8]],                         # ragged
        ]
        reference = None
        for rounds in groupings:
            pd = PartialDecoder(code, SURVIVORS, TARGETS)
            for rnd in rounds:
                pd.feed({j: shards[j] for j in rnd})
            result = {t: pd.result(t) for t in TARGETS}
            if reference is None:
                reference = result
            for t in TARGETS:
                assert np.array_equal(result[t], reference[t]), (rounds, t)
        for t in TARGETS:
            assert np.array_equal(reference[t], shards[t])

    def test_pending_and_complete(self, code, shards):
        pd = PartialDecoder(code, SURVIVORS, [1])
        assert pd.pending == sorted(SURVIVORS)
        assert not pd.complete
        pd.feed({0: shards[0], 2: shards[2]})
        assert pd.pending == [3, 5, 6, 8]
        pd.feed({3: shards[3], 5: shards[5], 6: shards[6], 8: shards[8]})
        assert pd.complete
        assert pd.rounds_fed == 2

    def test_memory_footprint_is_target_count(self, code, shards):
        pd = PartialDecoder(code, SURVIVORS, TARGETS)
        pd.feed({0: shards[0]})
        assert pd.memory_chunks_held() == len(TARGETS)
        pd.feed({j: shards[j] for j in [2, 3, 5, 6, 8]})
        assert pd.memory_chunks_held() == len(TARGETS)

    def test_results_dict(self, code, shards):
        pd = PartialDecoder(code, SURVIVORS, TARGETS)
        pd.feed({j: shards[j] for j in SURVIVORS})
        results = pd.results()
        assert set(results) == set(TARGETS)
        for t in TARGETS:
            assert np.array_equal(results[t], shards[t])


class TestErrors:
    def test_result_before_complete(self, code, shards):
        pd = PartialDecoder(code, SURVIVORS, [1])
        pd.feed({0: shards[0]})
        with pytest.raises(CodingError):
            pd.result(1)

    def test_double_feed_rejected(self, code, shards):
        pd = PartialDecoder(code, SURVIVORS, [1])
        pd.feed({0: shards[0]})
        with pytest.raises(CodingError):
            pd.feed({0: shards[0]})

    def test_undeclared_shard_rejected(self, code, shards):
        pd = PartialDecoder(code, SURVIVORS, [1])
        with pytest.raises(CodingError):
            pd.feed({1: shards[1]})  # 1 is a target, not a survivor

    def test_empty_feed_rejected(self, code):
        pd = PartialDecoder(code, SURVIVORS, [1])
        with pytest.raises(CodingError):
            pd.feed({})

    def test_no_targets_rejected(self, code):
        with pytest.raises(CodingError):
            PartialDecoder(code, SURVIVORS, [])

    def test_duplicate_targets_rejected(self, code):
        with pytest.raises(CodingError):
            PartialDecoder(code, SURVIVORS, [1, 1])

    def test_target_in_survivors_rejected(self, code):
        with pytest.raises(CodingError):
            PartialDecoder(code, SURVIVORS, [0])

    def test_size_mismatch_rejected(self, code, shards):
        pd = PartialDecoder(code, SURVIVORS, [1])
        pd.feed({0: shards[0]})
        with pytest.raises(CodingError):
            pd.feed({2: shards[2][:-1]})

    def test_2d_shard_rejected(self, code):
        pd = PartialDecoder(code, SURVIVORS, [1])
        with pytest.raises(CodingError):
            pd.feed({0: np.zeros((2, 2), dtype=np.uint8)})

    def test_result_for_non_target(self, code, shards):
        pd = PartialDecoder(code, SURVIVORS, [1])
        pd.feed({j: shards[j] for j in SURVIVORS})
        with pytest.raises(CodingError):
            pd.result(4)

    def test_wrong_survivor_count(self, code):
        with pytest.raises(Exception):
            PartialDecoder(code, [0, 2, 3], [1])


class TestEquivalenceWithFullDecode:
    @given(seed=st.integers(0, 2**31 - 1), pa=st.integers(1, 6))
    @settings(max_examples=30, deadline=None)
    def test_partial_equals_full(self, seed, pa):
        """Property: PSR partial sums == FSR full decode, any P_a, any data."""
        rng = np.random.default_rng(seed)
        code = RSCode(9, 6)
        data = rng.integers(0, 256, size=6 * 32, dtype=np.uint8).tobytes()
        shards = code.encode(code.split(data))
        lost = sorted(rng.choice(9, size=3, replace=False).tolist())
        survivors = [j for j in range(9) if j not in lost][:6]

        holed = [None if j in lost else shards[j] for j in range(9)]
        full = code.reconstruct(holed, targets=lost)

        pd = PartialDecoder(code, survivors, lost)
        for i in range(0, 6, pa):
            pd.feed({j: shards[j] for j in survivors[i : i + pa]})
        for t in lost:
            assert np.array_equal(pd.result(t), full[t])
            assert np.array_equal(pd.result(t), shards[t])
