"""CLI smoke and behaviour tests."""

import pytest

from repro.cli import build_parser, main


def run(capsys, *argv):
    code = main(list(argv))
    out = capsys.readouterr().out
    return code, out


class TestRepair:
    def test_all_algorithms(self, capsys):
        code, out = run(
            capsys, "repair", "--disk-size", "128MiB", "--chunk-size", "32MiB",
            "--num-disks", "12", "--seed", "1",
        )
        assert code == 0
        for name in ("fsr", "hd-psr-ap", "hd-psr-as", "hd-psr-pa"):
            assert name in out
        assert "baseline" in out

    def test_timeline_export(self, capsys, tmp_path):
        target = tmp_path / "tl.csv"
        code, out = run(
            capsys, "repair", "--disk-size", "128MiB", "--chunk-size", "32MiB",
            "--num-disks", "12", "--algorithm", "fsr",
            "--timeline", str(target),
        )
        assert code == 0
        assert (tmp_path / "tl-fsr.csv").exists()

    def test_single_algorithm(self, capsys):
        code, out = run(
            capsys, "repair", "--disk-size", "128MiB", "--chunk-size", "32MiB",
            "--num-disks", "12", "--algorithm", "fsr",
        )
        assert code == 0
        assert "hd-psr-ap" not in out

    def test_deterministic(self, capsys):
        def simulated_columns(text):
            # drop the wall-clock "selection" column (last cell per row)
            return [
                line.rsplit("|", 2)[0]
                for line in text.splitlines()
                if line.startswith("|")
            ]

        _, a = run(capsys, "repair", "--disk-size", "128MiB", "--chunk-size",
                   "32MiB", "--num-disks", "12", "--seed", "7")
        _, b = run(capsys, "repair", "--disk-size", "128MiB", "--chunk-size",
                   "32MiB", "--num-disks", "12", "--seed", "7")
        assert simulated_columns(a) == simulated_columns(b)


class TestMulti:
    def test_naive_and_cooperative(self, capsys):
        code, out = run(
            capsys, "multi", "--failed", "2", "--disk-size", "128MiB",
            "--chunk-size", "32MiB", "--num-disks", "12",
            "--algorithm", "hd-psr-as",
        )
        assert code == 0
        assert "naive" in out and "cooperative" in out


class TestObserve:
    def test_tables_printed(self, capsys):
        code, out = run(capsys, "observe", "--stripes", "20", "--k", "6",
                        "--memory", "6")
        assert code == 0
        assert "Observation 1" in out
        assert "Observation 2" in out
        assert "Observation 3" in out


class TestDurability:
    def test_table_printed(self, capsys):
        code, out = run(
            capsys, "durability", "--disk-size", "128MiB", "--chunk-size",
            "32MiB", "--num-disks", "12", "--trials", "20", "--afr", "1.0",
            "--amplify", "50000",
        )
        assert code == 0
        assert "MTTDL" in out and "fsr" in out

    def test_weibull_option(self, capsys):
        code, out = run(
            capsys, "durability", "--disk-size", "128MiB", "--chunk-size",
            "32MiB", "--num-disks", "12", "--trials", "10",
            "--weibull-shape", "1.2", "--algorithm", "fsr",
        )
        assert code == 0
        assert "weibull" in out


class TestMisc:
    def test_version(self, capsys):
        code, out = run(capsys, "version")
        assert code == 0
        assert out.startswith("hdpsr ")

    def test_no_command_prints_help(self, capsys):
        code = main([])
        assert code == 2
        assert "usage" in capsys.readouterr().out

    def test_parser_rejects_unknown_algorithm(self):
        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args(["repair", "--algorithm", "bogus"])


class TestFaultsCommand:
    def test_writes_spec(self, capsys, tmp_path):
        spec = tmp_path / "spec.json"
        code, out = run(capsys, "faults", "--seed", "3", "--events", "5",
                        "--output", str(spec))
        assert code == 0
        assert spec.exists()
        from repro.faults import FaultSchedule
        assert len(FaultSchedule.from_json(spec)) == 5

    def test_prints_to_stdout_without_output(self, capsys):
        import json
        code, out = run(capsys, "faults", "--seed", "3", "--events", "2")
        assert code == 0
        assert len(json.loads(out)["events"]) == 2

    def test_deterministic(self, capsys, tmp_path):
        a, b = tmp_path / "a.json", tmp_path / "b.json"
        run(capsys, "faults", "--seed", "9", "--output", str(a))
        run(capsys, "faults", "--seed", "9", "--output", str(b))
        assert a.read_text() == b.read_text()

    def test_unknown_kind_rejected(self, capsys):
        code = main(["faults", "--kinds", "meteor"])
        assert code == 2


class TestHardenedExitCodes:
    """CLI convention: 0 clean, 0 + warning on replan, 3 on data loss."""

    SERVER = ["--num-disks", "12", "--disk-size", "256KiB",
              "--chunk-size", "64KiB", "--algorithm", "fsr"]

    def write_spec(self, tmp_path, events):
        import json
        spec = tmp_path / "faults.json"
        spec.write_text(json.dumps({"events": events}))
        return str(spec)

    def test_clean_recovery_exits_zero(self, capsys, tmp_path):
        code = main(["repair", *self.SERVER, "--read-timeout", "100"])
        err = capsys.readouterr().err
        assert code == 0
        assert "warning" not in err and "DATA LOSS" not in err

    def test_midrepair_casualty_warns_but_exits_zero(self, capsys, tmp_path):
        spec = self.write_spec(tmp_path, [
            {"at": 2e-6, "kind": "disk_fail", "disk": 4},
        ])
        code = main(["repair", *self.SERVER, "--faults", spec])
        captured = capsys.readouterr()
        assert code == 0
        assert "warning: recovery degraded" in captured.err
        assert "re-planned" in captured.err

    def test_data_loss_exits_three(self, capsys, tmp_path):
        spec = self.write_spec(tmp_path, [
            {"at": 1e-6, "kind": "disk_fail", "disk": 1},
            {"at": 2e-6, "kind": "disk_fail", "disk": 2},
            {"at": 3e-6, "kind": "disk_fail", "disk": 3},
            {"at": 4e-6, "kind": "disk_fail", "disk": 4},
        ])
        code = main(["repair", *self.SERVER, "--faults", spec])
        captured = capsys.readouterr()
        assert code == 3
        assert "DATA LOSS" in captured.err

    def test_multi_hardened_runs(self, capsys, tmp_path):
        spec = self.write_spec(tmp_path, [
            {"at": 2e-6, "kind": "disk_fail", "disk": 5},
        ])
        code = main(["multi", *self.SERVER, "--failed", "2", "--faults", spec])
        out = capsys.readouterr().out
        assert code in (0, 3)
        assert "fault-hardened recovery outcomes" in out

    def test_hardened_output_deterministic(self, capsys, tmp_path):
        spec = self.write_spec(tmp_path, [
            {"at": 2e-6, "kind": "disk_fail", "disk": 4},
        ])
        code_a = main(["repair", *self.SERVER, "--faults", spec])
        a = capsys.readouterr().out
        code_b = main(["repair", *self.SERVER, "--faults", spec])
        b = capsys.readouterr().out
        assert (code_a, a) == (code_b, b)
