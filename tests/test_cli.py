"""CLI smoke and behaviour tests."""

import pytest

from repro.cli import build_parser, main


def run(capsys, *argv):
    code = main(list(argv))
    out = capsys.readouterr().out
    return code, out


class TestRepair:
    def test_all_algorithms(self, capsys):
        code, out = run(
            capsys, "repair", "--disk-size", "128MiB", "--chunk-size", "32MiB",
            "--num-disks", "12", "--seed", "1",
        )
        assert code == 0
        for name in ("fsr", "hd-psr-ap", "hd-psr-as", "hd-psr-pa"):
            assert name in out
        assert "baseline" in out

    def test_timeline_export(self, capsys, tmp_path):
        target = tmp_path / "tl.csv"
        code, out = run(
            capsys, "repair", "--disk-size", "128MiB", "--chunk-size", "32MiB",
            "--num-disks", "12", "--algorithm", "fsr",
            "--timeline", str(target),
        )
        assert code == 0
        assert (tmp_path / "tl-fsr.csv").exists()

    def test_single_algorithm(self, capsys):
        code, out = run(
            capsys, "repair", "--disk-size", "128MiB", "--chunk-size", "32MiB",
            "--num-disks", "12", "--algorithm", "fsr",
        )
        assert code == 0
        assert "hd-psr-ap" not in out

    def test_deterministic(self, capsys):
        def simulated_columns(text):
            # drop the wall-clock "selection" column (last cell per row)
            return [
                line.rsplit("|", 2)[0]
                for line in text.splitlines()
                if line.startswith("|")
            ]

        _, a = run(capsys, "repair", "--disk-size", "128MiB", "--chunk-size",
                   "32MiB", "--num-disks", "12", "--seed", "7")
        _, b = run(capsys, "repair", "--disk-size", "128MiB", "--chunk-size",
                   "32MiB", "--num-disks", "12", "--seed", "7")
        assert simulated_columns(a) == simulated_columns(b)


class TestMulti:
    def test_naive_and_cooperative(self, capsys):
        code, out = run(
            capsys, "multi", "--failed", "2", "--disk-size", "128MiB",
            "--chunk-size", "32MiB", "--num-disks", "12",
            "--algorithm", "hd-psr-as",
        )
        assert code == 0
        assert "naive" in out and "cooperative" in out


class TestObserve:
    def test_tables_printed(self, capsys):
        code, out = run(capsys, "observe", "--stripes", "20", "--k", "6",
                        "--memory", "6")
        assert code == 0
        assert "Observation 1" in out
        assert "Observation 2" in out
        assert "Observation 3" in out


class TestDurability:
    def test_table_printed(self, capsys):
        code, out = run(
            capsys, "durability", "--disk-size", "128MiB", "--chunk-size",
            "32MiB", "--num-disks", "12", "--trials", "20", "--afr", "1.0",
            "--amplify", "50000",
        )
        assert code == 0
        assert "MTTDL" in out and "fsr" in out

    def test_weibull_option(self, capsys):
        code, out = run(
            capsys, "durability", "--disk-size", "128MiB", "--chunk-size",
            "32MiB", "--num-disks", "12", "--trials", "10",
            "--weibull-shape", "1.2", "--algorithm", "fsr",
        )
        assert code == 0
        assert "weibull" in out


class TestMisc:
    def test_version(self, capsys):
        code, out = run(capsys, "version")
        assert code == 0
        assert out.startswith("hdpsr ")

    def test_no_command_prints_help(self, capsys):
        code = main([])
        assert code == 2
        assert "usage" in capsys.readouterr().out

    def test_parser_rejects_unknown_algorithm(self):
        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args(["repair", "--algorithm", "bogus"])
