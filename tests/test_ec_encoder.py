"""RSCode: split/encode/verify/join."""

import numpy as np
import pytest

from repro.ec import RSCode
from repro.errors import CodingError, ConfigurationError


@pytest.fixture
def rng():
    return np.random.default_rng(11)


@pytest.fixture
def code():
    return RSCode(9, 6)


def random_bytes(rng, size):
    return rng.integers(0, 256, size=size, dtype=np.uint8).tobytes()


class TestConstruction:
    @pytest.mark.parametrize("n,k", [(6, 4), (9, 6), (14, 10), (2, 1), (256, 100)])
    def test_valid_params(self, n, k):
        code = RSCode(n, k)
        assert code.m == n - k
        assert code.matrix.shape == (n, k)

    @pytest.mark.parametrize("n,k", [(4, 4), (4, 5), (4, 0), (257, 100)])
    def test_invalid_params(self, n, k):
        with pytest.raises(ConfigurationError):
            RSCode(n, k)

    def test_non_int_rejected(self):
        with pytest.raises(ConfigurationError):
            RSCode(9.0, 6)

    def test_repr(self, code):
        assert "9" in repr(code) and "6" in repr(code)


class TestSplit:
    def test_split_sizes(self, code, rng):
        data = random_bytes(rng, 6 * 100)
        shards = code.split(data)
        assert len(shards) == 6
        assert all(s.size == 100 for s in shards)

    def test_split_pads(self, code, rng):
        data = random_bytes(rng, 601)  # not divisible by 6
        shards = code.split(data)
        assert all(s.size == shards[0].size for s in shards)
        assert shards[0].size * 6 >= 601

    def test_split_explicit_chunk_size(self, code, rng):
        data = random_bytes(rng, 50)
        shards = code.split(data, chunk_size=64)
        assert all(s.size == 64 for s in shards)

    def test_split_too_big_for_chunk_size(self, code, rng):
        with pytest.raises(CodingError):
            code.split(random_bytes(rng, 1000), chunk_size=10)

    def test_split_empty_rejected(self, code):
        with pytest.raises(CodingError):
            code.split(b"")

    def test_join_roundtrip(self, code, rng):
        data = random_bytes(rng, 599)
        shards = code.split(data)
        assert code.join(shards, len(data)) == data

    def test_join_wrong_count(self, code, rng):
        with pytest.raises(CodingError):
            code.join([np.zeros(4, dtype=np.uint8)] * 5, 10)

    def test_join_size_too_large(self, code):
        shards = [np.zeros(4, dtype=np.uint8)] * 6
        with pytest.raises(CodingError):
            code.join(shards, 100)


class TestEncode:
    def test_encode_shard_count(self, code, rng):
        shards = code.encode(code.split(random_bytes(rng, 600)))
        assert len(shards) == 9

    def test_systematic(self, code, rng):
        data_shards = code.split(random_bytes(rng, 600))
        shards = code.encode(data_shards)
        for i in range(6):
            assert np.array_equal(shards[i], data_shards[i])

    def test_parity_deterministic(self, code, rng):
        data_shards = code.split(random_bytes(rng, 600))
        a = code.encode(data_shards)
        b = code.encode(data_shards)
        for x, y in zip(a, b):
            assert np.array_equal(x, y)

    def test_parity_linear(self, code, rng):
        """Parity of (A xor B) == parity(A) xor parity(B) — Equation (1)."""
        a = code.split(random_bytes(rng, 600))
        b = code.split(random_bytes(rng, 600))
        xor = [x ^ y for x, y in zip(a, b)]
        pa = code.encode(a)[6:]
        pb = code.encode(b)[6:]
        pxor = code.encode(xor)[6:]
        for x, y, z in zip(pa, pb, pxor):
            assert np.array_equal(x ^ y, z)

    def test_wrong_shard_count(self, code):
        with pytest.raises(CodingError):
            code.encode([np.zeros(8, dtype=np.uint8)] * 5)

    def test_unequal_shards(self, code):
        shards = [np.zeros(8, dtype=np.uint8)] * 5 + [np.zeros(9, dtype=np.uint8)]
        with pytest.raises(CodingError):
            code.encode(shards)

    def test_2d_shards_rejected(self, code):
        with pytest.raises(CodingError):
            code.encode([np.zeros((2, 4), dtype=np.uint8)] * 6)


class TestVerify:
    def test_consistent(self, code, rng):
        shards = code.encode(code.split(random_bytes(rng, 600)))
        assert code.verify(shards)

    def test_corruption_detected(self, code, rng):
        shards = code.encode(code.split(random_bytes(rng, 600)))
        shards[7] = shards[7].copy()
        shards[7][0] ^= 1
        assert not code.verify(shards)

    def test_missing_shard_fails(self, code, rng):
        shards = list(code.encode(code.split(random_bytes(rng, 600))))
        shards[0] = None
        assert not code.verify(shards)

    def test_wrong_count(self, code):
        with pytest.raises(CodingError):
            code.verify([np.zeros(4, dtype=np.uint8)] * 3)
