"""Tracer behaviour: span nesting, ordering, offsets, the null default."""

from __future__ import annotations

import threading

from repro.obs.tracer import (
    NULL_TRACER,
    NullTracer,
    OffsetTracer,
    RecordingTracer,
    SpanContext,
    TraceEvent,
    current_span,
    new_span_context,
    use_span,
)


class FakeClock:
    """Deterministic monotonic clock: each call advances by ``step``."""

    def __init__(self, step: float = 1.0) -> None:
        self.now = 0.0
        self.step = step

    def __call__(self) -> float:
        t = self.now
        self.now += self.step
        return t


class TestNullTracer:
    def test_disabled_and_inert(self):
        assert NULL_TRACER.enabled is False
        with NULL_TRACER.span("round", "r0"):
            pass
        NULL_TRACER.complete("read", "chunk", 0.0, 1.0)
        NULL_TRACER.instant("plan", "built")
        assert isinstance(NULL_TRACER, NullTracer)

    def test_singleton_shared(self):
        from repro.obs import tracer as mod

        assert mod.NULL_TRACER is NULL_TRACER


class TestRecordingTracer:
    def test_span_records_wall_duration(self):
        t = RecordingTracer(clock=FakeClock())
        with t.span("decode", "partial decode", track="worker", chunks=4):
            pass
        (e,) = t.events
        assert e.is_span
        assert e.category == "decode"
        assert e.track == "worker"
        assert e.domain == "wall"
        assert e.duration == 1.0
        assert e.args == {"chunks": 4}

    def test_nested_spans_depth_and_emission_order(self):
        t = RecordingTracer(clock=FakeClock())
        with t.span("stripe", "outer"):
            with t.span("round", "mid"):
                with t.span("read", "inner"):
                    pass
        # Spans are emitted on exit: innermost first.
        assert [e.name for e in t.events] == ["inner", "mid", "outer"]
        depths = {e.name: e.depth for e in t.events}
        assert depths == {"outer": 0, "mid": 1, "inner": 2}
        # seq reflects emission order and is strictly increasing.
        assert [e.seq for e in t.events] == [0, 1, 2]

    def test_depth_tracked_per_track(self):
        t = RecordingTracer(clock=FakeClock())
        with t.span("stripe", "a", track="t1"):
            with t.span("stripe", "b", track="t2"):
                pass
        depths = {e.name: e.depth for e in t.events}
        assert depths == {"a": 0, "b": 0}  # separate lanes, both top-level

    def test_depth_restored_after_exception(self):
        t = RecordingTracer(clock=FakeClock())
        try:
            with t.span("round", "boom"):
                raise ValueError("x")
        except ValueError:
            pass
        with t.span("round", "after"):
            pass
        assert {e.name: e.depth for e in t.events} == {"boom": 0, "after": 0}

    def test_complete_and_instant(self):
        t = RecordingTracer(clock=FakeClock())
        t.complete("read", "chunk", start=2.5, duration=0.5, track="disk-3",
                    disk=3)
        t.instant("slot", "acquire", ts=3.0, domain="sim")
        span, inst = t.events
        assert span.is_span and span.ts == 2.5 and span.end == 3.0
        assert span.domain == "sim"  # complete() defaults to sim time
        assert not inst.is_span and inst.ts == 3.0

    def test_thread_safety_of_seq(self):
        t = RecordingTracer()
        n, workers = 200, 8

        def emit():
            for i in range(n):
                t.instant("slot", f"e{i}")

        threads = [threading.Thread(target=emit) for _ in range(workers)]
        for th in threads:
            th.start()
        for th in threads:
            th.join()
        seqs = sorted(e.seq for e in t.events)
        assert seqs == list(range(n * workers))

    def test_queries_and_clear(self):
        t = RecordingTracer(clock=FakeClock())
        with t.span("round", "r0"):
            pass
        t.instant("plan", "built")
        assert len(t.spans()) == 1
        assert len(t.spans("round")) == 1
        assert t.spans("read") == []
        assert len(t.instants("plan")) == 1
        t.clear()
        assert len(t) == 0
        t.instant("plan", "again")
        assert t.events[0].seq == 0  # sequence restarts after clear


class TestOffsetTracer:
    def test_shifts_complete_and_instant(self):
        inner = RecordingTracer(clock=FakeClock())
        off = OffsetTracer(inner, 10.0)
        off.complete("round", "r", start=1.0, duration=2.0)
        off.instant("slot", "s", ts=4.0)
        span, inst = inner.events
        assert span.ts == 11.0
        assert inst.ts == 14.0

    def test_wall_span_passes_through_unshifted(self):
        inner = RecordingTracer(clock=FakeClock())
        off = OffsetTracer(inner, 100.0)
        with off.span("decode", "d"):
            pass
        (e,) = inner.events
        assert e.ts < 100.0  # fake clock starts at 0; no shift applied

    def test_enabled_mirrors_inner(self):
        assert OffsetTracer(NULL_TRACER, 5.0).enabled is False
        assert OffsetTracer(RecordingTracer(), 5.0).enabled is True


class TestTraceEvent:
    def test_to_dict_roundtrip_fields(self):
        e = TraceEvent(name="n", category="read", ts=1.0, duration=0.5,
                       track="t", domain="sim", depth=2, seq=7,
                       args={"disk": 1})
        d = e.to_dict()
        assert d == {"name": "n", "cat": "read", "ts": 1.0, "dur": 0.5,
                     "track": "t", "domain": "sim", "depth": 2, "seq": 7,
                     "args": {"disk": 1}}

    def test_instant_omits_duration(self):
        d = TraceEvent(name="i", category="slot", ts=3.0).to_dict()
        assert "dur" not in d and "args" not in d


class TestSpanContext:
    def test_child_keeps_trace_and_parents_here(self):
        root = new_span_context()
        child = root.child()
        assert child.trace_id == root.trace_id
        assert child.parent_id == root.span_id
        assert child.span_id != root.span_id

    def test_wire_roundtrip(self):
        ctx = new_span_context()
        wired = SpanContext.from_wire(ctx.to_wire())
        assert wired.trace_id == ctx.trace_id
        assert wired.span_id == ctx.span_id

    def test_from_wire_rejects_malformed(self):
        assert SpanContext.from_wire(None) is None
        assert SpanContext.from_wire("nope") is None
        assert SpanContext.from_wire({"trace_id": "a"}) is None
        assert SpanContext.from_wire({"trace_id": 1, "span_id": "b"}) is None

    def test_use_span_installs_and_restores(self):
        assert current_span() is None
        ctx = new_span_context()
        with use_span(ctx):
            assert current_span() is ctx
        assert current_span() is None

    def test_nested_spans_stamp_child_lineage(self):
        tracer = RecordingTracer(clock=FakeClock())
        root = new_span_context()
        with use_span(root):
            with tracer.span("request", "outer"):
                inner_ctx = current_span()
                with tracer.span("decode", "inner"):
                    pass
        inner, outer = tracer.events  # inner closes first
        assert outer.args["trace_id"] == root.trace_id
        assert outer.args["parent_id"] == root.span_id
        assert inner.args["trace_id"] == root.trace_id
        # inner's parent is the span the outer block installed
        assert inner.args["parent_id"] == inner_ctx.span_id
        assert inner_ctx.span_id == outer.args["span_id"]

    def test_unstamped_without_context(self):
        tracer = RecordingTracer(clock=FakeClock())
        with tracer.span("read", "r"):
            pass
        tracer.instant("slot", "s")
        for e in tracer.events:
            assert "trace_id" not in e.args

    def test_for_trace_filters(self):
        tracer = RecordingTracer(clock=FakeClock())
        a, b = new_span_context(), new_span_context()
        with use_span(a):
            tracer.instant("slot", "in-a")
        with use_span(b):
            tracer.instant("slot", "in-b")
        tracer.instant("slot", "outside")
        assert [e.name for e in tracer.for_trace(a.trace_id)] == ["in-a"]
        assert [e.name for e in tracer.for_trace(b.trace_id)] == ["in-b"]
