"""GF(2^8) arithmetic: exhaustive identities plus hypothesis field axioms."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gf import (
    exp_table,
    gf_add,
    gf_div,
    gf_inv,
    gf_mul,
    gf_mul_add_scalar,
    gf_mul_scalar,
    gf_pow,
    gf_sub,
    log_table,
)

ALL = np.arange(256, dtype=np.uint8)
NONZERO = ALL[1:]

elements = st.integers(min_value=0, max_value=255)
nonzero_elements = st.integers(min_value=1, max_value=255)


class TestTables:
    def test_exp_table_doubled(self):
        exp = exp_table()
        assert exp.shape == (510,)
        assert np.array_equal(exp[:255], exp[255:])

    def test_exp_covers_all_nonzero(self):
        assert set(exp_table()[:255].tolist()) == set(range(1, 256))

    def test_log_exp_inverse(self):
        exp, log = exp_table(), log_table()
        for x in range(1, 256):
            assert exp[log[x]] == x

    def test_tables_read_only(self):
        with pytest.raises(ValueError):
            exp_table()[0] = 1
        with pytest.raises(ValueError):
            log_table()[0] = 1


class TestAddition:
    def test_add_is_xor(self):
        a = ALL.reshape(16, 16)
        b = ALL.reshape(16, 16)[::-1]
        assert np.array_equal(gf_add(a, b), a ^ b)

    def test_add_self_is_zero(self):
        assert np.all(gf_add(ALL, ALL) == 0)

    def test_sub_equals_add(self):
        assert np.array_equal(gf_sub(ALL, 7), gf_add(ALL, 7))


class TestMultiplication:
    def test_mul_by_zero(self):
        assert np.all(gf_mul(ALL, 0) == 0)
        assert np.all(gf_mul(0, ALL) == 0)

    def test_mul_by_one(self):
        assert np.array_equal(gf_mul(ALL, 1), ALL)

    def test_mul_commutative_exhaustive(self):
        a = ALL[:, None]
        b = ALL[None, :]
        assert np.array_equal(gf_mul(a, b), gf_mul(b, a))

    def test_mul_matches_carryless_reference(self):
        # Reference: bitwise carry-less multiply mod 0x11D.
        def ref_mul(x, y):
            r = 0
            while y:
                if y & 1:
                    r ^= x
                y >>= 1
                x <<= 1
                if x & 0x100:
                    x ^= 0x11D
            return r

        rng = np.random.default_rng(0)
        for _ in range(500):
            x = int(rng.integers(0, 256))
            y = int(rng.integers(0, 256))
            assert int(gf_mul(x, y)) == ref_mul(x, y)

    def test_scalar_inputs_give_scalars(self):
        assert int(gf_mul(3, 7)) == int(gf_mul(np.uint8(3), np.uint8(7)))

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            gf_mul(np.array([300]), 1)


class TestDivisionInverse:
    def test_div_inverse_of_mul(self):
        a = NONZERO[:, None]
        b = NONZERO[None, :]
        prod = gf_mul(a, b)
        assert np.array_equal(gf_div(prod, b * np.ones_like(a)), a * np.ones_like(b))

    def test_inv_exhaustive(self):
        assert np.all(gf_mul(NONZERO, gf_inv(NONZERO)) == 1)

    def test_zero_division_raises(self):
        with pytest.raises(ZeroDivisionError):
            gf_div(1, 0)
        with pytest.raises(ZeroDivisionError):
            gf_inv(0)

    def test_zero_numerator(self):
        assert np.all(gf_div(0, NONZERO) == 0)


class TestPow:
    def test_pow_zero_exponent(self):
        assert np.all(gf_pow(ALL, 0) == 1)

    def test_pow_one(self):
        assert np.array_equal(gf_pow(ALL, 1), ALL)

    def test_pow_matches_repeated_mul(self):
        x = np.uint8(37)
        acc = np.uint8(1)
        for e in range(1, 10):
            acc = gf_mul(acc, x)
            assert int(gf_pow(x, e)) == int(acc)

    def test_fermat(self):
        # a^255 == 1 for all non-zero a
        assert np.all(gf_pow(NONZERO, 255) == 1)

    def test_negative_exponent(self):
        assert np.all(gf_pow(NONZERO, -1) == gf_inv(NONZERO))

    def test_zero_base_positive_exponent(self):
        assert int(gf_pow(0, 5)) == 0


class TestBufferKernels:
    def test_mul_scalar_matches_elementwise(self, rng):
        buf = rng.integers(0, 256, size=1000, dtype=np.uint8)
        for coeff in (0, 1, 2, 37, 255):
            assert np.array_equal(gf_mul_scalar(coeff, buf), gf_mul(coeff, buf))

    def test_mul_scalar_zero_and_one(self, rng):
        buf = rng.integers(0, 256, size=64, dtype=np.uint8)
        assert np.all(gf_mul_scalar(0, buf) == 0)
        assert np.array_equal(gf_mul_scalar(1, buf), buf)

    def test_mul_scalar_does_not_alias(self, rng):
        buf = rng.integers(0, 256, size=64, dtype=np.uint8)
        out = gf_mul_scalar(1, buf)
        out[0] ^= 0xFF
        assert out[0] != buf[0] or buf[0] == out[0] ^ 0xFF  # original unchanged
        assert not np.shares_memory(out, buf)

    def test_mul_scalar_bad_coeff(self, rng):
        with pytest.raises(ValueError):
            gf_mul_scalar(256, np.zeros(4, dtype=np.uint8))

    def test_mul_add_scalar_in_place(self, rng):
        acc = rng.integers(0, 256, size=128, dtype=np.uint8)
        buf = rng.integers(0, 256, size=128, dtype=np.uint8)
        expected = acc ^ gf_mul(9, buf)
        returned = gf_mul_add_scalar(acc, 9, buf)
        assert returned is acc
        assert np.array_equal(acc, expected)

    def test_mul_add_scalar_zero_coeff_noop(self, rng):
        acc = rng.integers(0, 256, size=16, dtype=np.uint8)
        before = acc.copy()
        gf_mul_add_scalar(acc, 0, rng.integers(0, 256, size=16, dtype=np.uint8))
        assert np.array_equal(acc, before)

    def test_mul_add_scalar_shape_mismatch(self):
        with pytest.raises(ValueError):
            gf_mul_add_scalar(np.zeros(4, dtype=np.uint8), 1, np.zeros(5, dtype=np.uint8))

    def test_mul_add_scalar_wrong_dtype(self):
        with pytest.raises(ValueError):
            gf_mul_add_scalar(np.zeros(4, dtype=np.uint16), 1, np.zeros(4, dtype=np.uint8))


class TestFieldAxiomsHypothesis:
    @given(a=elements, b=elements, c=elements)
    @settings(max_examples=200, deadline=None)
    def test_mul_associative(self, a, b, c):
        assert int(gf_mul(gf_mul(a, b), c)) == int(gf_mul(a, gf_mul(b, c)))

    @given(a=elements, b=elements, c=elements)
    @settings(max_examples=200, deadline=None)
    def test_distributive(self, a, b, c):
        left = gf_mul(a, gf_add(b, c))
        right = gf_add(gf_mul(a, b), gf_mul(a, c))
        assert int(left) == int(right)

    @given(a=elements, b=elements)
    @settings(max_examples=200, deadline=None)
    def test_add_commutative(self, a, b):
        assert int(gf_add(a, b)) == int(gf_add(b, a))

    @given(a=nonzero_elements, b=nonzero_elements)
    @settings(max_examples=200, deadline=None)
    def test_product_of_nonzero_is_nonzero(self, a, b):
        assert int(gf_mul(a, b)) != 0

    @given(a=elements, b=nonzero_elements)
    @settings(max_examples=200, deadline=None)
    def test_div_roundtrip(self, a, b):
        assert int(gf_mul(gf_div(a, b), b)) == a


@pytest.fixture
def rng():
    return np.random.default_rng(99)
