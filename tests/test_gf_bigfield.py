"""Parametrised binary fields: GF(2^16) and cross-checks against GF(2^8)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import CodingError, ConfigurationError
from repro.gf import gf_mul
from repro.gf.bigfield import GF256, GF65536, BinaryField


class TestConstruction:
    def test_gf256_parameters(self):
        assert GF256.order == 256 and GF256.dtype == np.uint8

    def test_gf65536_parameters(self):
        assert GF65536.order == 65536 and GF65536.dtype == np.uint16

    def test_non_primitive_poly_rejected(self):
        # x^8 + 1 is not primitive
        with pytest.raises(ConfigurationError):
            BinaryField(8, 0x101)

    def test_wrong_degree_rejected(self):
        with pytest.raises(ConfigurationError):
            BinaryField(8, 0x1D)

    def test_bits_range(self):
        with pytest.raises(ConfigurationError):
            BinaryField(17, 1 << 17 | 1)

    def test_small_field(self):
        gf16 = BinaryField(4, 0x13)  # GF(2^4), x^4+x+1
        a = np.arange(16, dtype=np.uint8)
        nz = a[1:]
        assert np.all(gf16.mul(nz, gf16.inv(nz)) == 1)


class TestCrossCheckWithSpecialisedGF256:
    def test_mul_agrees(self):
        rng = np.random.default_rng(0)
        a = rng.integers(0, 256, size=2000, dtype=np.uint8)
        b = rng.integers(0, 256, size=2000, dtype=np.uint8)
        assert np.array_equal(GF256.mul(a, b), gf_mul(a, b))

    def test_matrix_agrees(self):
        from repro.gf import gf_rs_encoding_matrix

        assert np.array_equal(
            GF256.rs_encoding_matrix(9, 6), gf_rs_encoding_matrix(9, 6)
        )


class TestGF65536Axioms:
    @given(a=st.integers(0, 65535), b=st.integers(0, 65535), c=st.integers(0, 65535))
    @settings(max_examples=150, deadline=None)
    def test_mul_associative_distributive(self, a, b, c):
        f = GF65536
        assert int(f.mul(f.mul(a, b), c)) == int(f.mul(a, f.mul(b, c)))
        assert int(f.mul(a, f.add(b, c))) == int(f.add(f.mul(a, b), f.mul(a, c)))

    @given(a=st.integers(1, 65535))
    @settings(max_examples=150, deadline=None)
    def test_inverse(self, a):
        assert int(GF65536.mul(a, GF65536.inv(a))) == 1

    def test_fermat_sampled(self):
        rng = np.random.default_rng(1)
        samples = rng.integers(1, 65536, size=500, dtype=np.uint16)
        assert np.all(GF65536.pow(samples, 65535) == 1)

    def test_zero_rules(self):
        assert int(GF65536.mul(0, 12345)) == 0
        with pytest.raises(ZeroDivisionError):
            GF65536.inv(0)
        with pytest.raises(ZeroDivisionError):
            GF65536.div(5, 0)


class TestMatrixOps:
    def test_inverse_roundtrip(self):
        rng = np.random.default_rng(2)
        m = rng.integers(0, 65536, size=(8, 8), dtype=np.uint16)
        try:
            inv = GF65536.mat_inv(m)
        except CodingError:
            pytest.skip("singular draw")
        assert np.array_equal(GF65536.mat_mul(m, inv), GF65536.identity(8))

    def test_singular_raises(self):
        m = np.array([[1, 2], [1, 2]], dtype=np.uint16)
        with pytest.raises(CodingError):
            GF65536.mat_inv(m)

    def test_rs_matrix_systematic(self):
        m = GF65536.rs_encoding_matrix(300, 250)
        assert m.shape == (300, 250)
        assert np.array_equal(m[:250], GF65536.identity(250))


class TestBufferKernels:
    def test_mul_scalar(self):
        rng = np.random.default_rng(3)
        buf = rng.integers(0, 65536, size=500, dtype=np.uint16)
        out = GF65536.mul_scalar(777, buf)
        assert np.array_equal(out, GF65536.mul(777, buf))

    def test_mul_add_scalar_in_place(self):
        rng = np.random.default_rng(4)
        acc = rng.integers(0, 65536, size=64, dtype=np.uint16)
        buf = rng.integers(0, 65536, size=64, dtype=np.uint16)
        expected = acc ^ GF65536.mul(99, buf)
        GF65536.mul_add_scalar(acc, 99, buf)
        assert np.array_equal(acc, expected)

    def test_bad_coeff(self):
        with pytest.raises(ValueError):
            GF65536.mul_scalar(70000, np.zeros(4, dtype=np.uint16))
