"""Unit tests for tables, timers, and validation helpers."""

import time

import pytest

from repro.errors import ConfigurationError
from repro.utils.tables import AsciiTable, render_table
from repro.utils.timer import Stopwatch, time_call, timed
from repro.utils.validation import (
    check_in_range,
    check_non_negative,
    check_positive,
    check_probability,
    check_type,
)


class TestAsciiTable:
    def test_basic_render(self):
        t = AsciiTable(["a", "b"], title="T")
        t.add_row([1, 2.5])
        out = t.render()
        assert "T" in out and "a" in out and "2.500" in out

    def test_markdown_render(self):
        t = AsciiTable(["x"])
        t.add_row(["val"])
        out = t.render(markdown=True)
        assert out.splitlines()[0].startswith("|")
        assert "---" in out.splitlines()[1]

    def test_bool_cells(self):
        t = AsciiTable(["flag"])
        t.add_row([True]).add_row([False])
        assert "yes" in t.render() and "no" in t.render()

    def test_wrong_arity_rejected(self):
        t = AsciiTable(["a", "b"])
        with pytest.raises(ValueError):
            t.add_row([1])

    def test_render_table_helper(self):
        out = render_table(["h"], [[1], [2]], title="x")
        assert out.count("\n") >= 4

    def test_float_fmt(self):
        t = AsciiTable(["v"], float_fmt=".1f")
        t.add_row([3.14159])
        assert "3.1" in t.render() and "3.14" not in t.render()

    def test_column_alignment(self):
        t = AsciiTable(["name", "v"])
        t.add_row(["longvalue", 1])
        t.add_row(["s", 22])
        lines = [l for l in t.render().splitlines() if l.startswith("|")]
        widths = {len(l) for l in lines}
        assert len(widths) == 1  # all rows equally wide


class TestStopwatch:
    def test_elapsed_accumulates(self):
        sw = Stopwatch()
        sw.start()
        time.sleep(0.01)
        first = sw.stop()
        sw.start()
        time.sleep(0.01)
        second = sw.stop()
        assert second > first > 0

    def test_double_start_rejected(self):
        sw = Stopwatch().start()
        with pytest.raises(RuntimeError):
            sw.start()
        sw.stop()

    def test_stop_without_start_rejected(self):
        with pytest.raises(RuntimeError):
            Stopwatch().stop()

    def test_reset(self):
        sw = Stopwatch().start()
        sw.stop()
        sw.reset()
        assert sw.elapsed == 0.0
        assert not sw.running

    def test_context_manager(self):
        with Stopwatch() as sw:
            time.sleep(0.005)
        assert sw.elapsed >= 0.004

    def test_timed_helper(self):
        with timed() as sw:
            pass
        assert not sw.running
        assert sw.elapsed >= 0

    def test_time_call(self):
        result, elapsed = time_call(sum, [1, 2, 3])
        assert result == 6
        assert elapsed >= 0


class TestValidation:
    def test_positive_ok(self):
        assert check_positive("x", 1) == 1
        assert check_positive("x", 0.5) == 0.5

    @pytest.mark.parametrize("bad", [0, -1, -0.5, True, "a", None])
    def test_positive_bad(self, bad):
        with pytest.raises(ConfigurationError):
            check_positive("x", bad)

    def test_non_negative(self):
        assert check_non_negative("x", 0) == 0
        with pytest.raises(ConfigurationError):
            check_non_negative("x", -1e-9)

    def test_in_range(self):
        assert check_in_range("x", 5, 0, 10) == 5
        assert check_in_range("x", 0, 0, 10) == 0
        with pytest.raises(ConfigurationError):
            check_in_range("x", 11, 0, 10)
        with pytest.raises(ConfigurationError):
            check_in_range("x", 0, 0, 10, inclusive=False)

    def test_probability(self):
        assert check_probability("p", 0.5) == 0.5
        with pytest.raises(ConfigurationError):
            check_probability("p", 1.5)

    def test_check_type(self):
        assert check_type("x", 3, int) == 3
        with pytest.raises(ConfigurationError):
            check_type("x", "3", int)
        with pytest.raises(ConfigurationError):
            check_type("x", True, int)
