"""The asyncio repair service: concurrency, faults, resume, front door.

No pytest-asyncio in the toolchain: every test is a sync function driving
its coroutine with ``asyncio.run``.
"""

import asyncio
from pathlib import Path

import numpy as np
import pytest

from repro.core import ALGORITHMS, ReadPolicy
from repro.ec.stripe import ChunkId
from repro.errors import (
    ConfigurationError,
    InsufficientShardsError,
    JournalError,
    StorageError,
)
from repro.faults.injector import SimulatedCrash
from repro.faults.spec import FaultEvent, FaultSchedule
from repro.hdss.server import HDSSConfig, HighDensityStorageServer
from repro.hdss.store import ShardedChunkStore
from repro.obs import MetricsRegistry, use_registry
from repro.service import (
    AsyncShardWriter,
    DiskGate,
    RepairService,
    ServiceConfig,
)
from repro.service.service import DEGRADED_READS


def make_server(store=None, seed=11):
    config = HDSSConfig(
        num_disks=12, n=5, k=3, chunk_size=2048, memory_chunks=16,
        spares=3, seed=seed, placement="rotating",
    )
    server = HighDensityStorageServer(config, store=store)
    server.provision_stripes(12, with_data=True)
    return server


def make_service(server, **cfg):
    return RepairService(
        server, ALGORITHMS["hd-psr-ap"](), ServiceConfig(**cfg) if cfg else None
    )


def originals_of(server):
    return {si: server.read_object(si) for si in range(len(server.layout))}


def assert_all_objects_intact(server, originals):
    for si, data in originals.items():
        assert server.read_object(si) == data, f"stripe {si} bytes diverged"


# ---------------------------------------------------------------------------
# DiskGate
# ---------------------------------------------------------------------------
class TestDiskGate:
    def test_width_bounds_concurrency(self):
        async def run():
            gate = DiskGate(width=2)
            active = 0
            peak = 0

            async def reader():
                nonlocal active, peak
                async with gate.read(3):
                    active += 1
                    peak = max(peak, active)
                    await asyncio.sleep(0.005)
                    active -= 1

            await asyncio.gather(*(reader() for _ in range(8)))
            return peak

        assert asyncio.run(run()) == 2

    def test_different_disks_do_not_interfere(self):
        async def run():
            gate = DiskGate(width=1)
            order = []

            async def reader(disk):
                async with gate.read(disk):
                    order.append(disk)
                    await asyncio.sleep(0.01)

            await asyncio.wait_for(
                asyncio.gather(*(reader(d) for d in range(6))), timeout=0.05
            )
            return order

        assert sorted(asyncio.run(run())) == list(range(6))

    def test_foreground_parks_background(self):
        async def run():
            gate = DiskGate(width=1)
            log = []

            async def holder():
                async with gate.read(0):
                    await asyncio.sleep(0.02)

            async def background():
                await asyncio.sleep(0.005)  # let fg queue first
                async with gate.read(0, foreground=False):
                    log.append("bg")

            async def foreground():
                await asyncio.sleep(0.001)
                async with gate.read(0, foreground=True):
                    log.append("fg")

            await asyncio.gather(holder(), background(), foreground())
            return log

        assert asyncio.run(run()) == ["fg", "bg"]

    def test_rejects_zero_width(self):
        with pytest.raises(ConfigurationError):
            DiskGate(width=0)


# ---------------------------------------------------------------------------
# AsyncShardWriter
# ---------------------------------------------------------------------------
class TestAsyncShardWriter:
    def test_writes_reach_owning_shards(self, tmp_path):
        store = ShardedChunkStore.from_root(tmp_path, num_shards=3, durable=False)

        async def run():
            writer = AsyncShardWriter(store, queue_depth=4, batch_size=2)
            for disk in range(9):
                await writer.put(disk, ChunkId(disk, 0),
                                 np.full(64, disk, dtype=np.uint8))
            await writer.close()

        asyncio.run(run())
        for disk in range(9):
            assert store.shards[disk % 3].contains(disk, ChunkId(disk, 0))
            assert store.get(disk, ChunkId(disk, 0))[0] == disk

    def test_drain_error_surfaces_on_flush(self, tmp_path):
        store = ShardedChunkStore.from_root(tmp_path, num_shards=2, durable=False)

        def boom(items):
            raise OSError("disk full")

        store.shards[0].put_many = boom

        async def run():
            writer = AsyncShardWriter(store, batch_size=1)
            await writer.put(0, ChunkId(0, 0), np.zeros(8, dtype=np.uint8))
            with pytest.raises(StorageError, match="disk full"):
                await writer.flush()

        asyncio.run(run())

    def test_closed_writer_refuses_puts(self, tmp_path):
        store = ShardedChunkStore.from_root(tmp_path, num_shards=2, durable=False)

        async def run():
            writer = AsyncShardWriter(store)
            await writer.close()
            with pytest.raises(StorageError):
                await writer.put(0, ChunkId(0, 0), np.zeros(8, dtype=np.uint8))

        asyncio.run(run())

    def test_rejects_bad_knobs(self, tmp_path):
        store = ShardedChunkStore.from_root(tmp_path, num_shards=2, durable=False)
        with pytest.raises(ConfigurationError):
            AsyncShardWriter(store, queue_depth=0)
        with pytest.raises(ConfigurationError):
            AsyncShardWriter(store, batch_size=0)


# ---------------------------------------------------------------------------
# RepairService: repairs
# ---------------------------------------------------------------------------
class TestServiceRepair:
    def test_single_repair_certified_and_byte_identical(self, tmp_path):
        store = ShardedChunkStore.from_root(tmp_path, num_shards=4, durable=False)
        server = make_server(store=store)
        originals = originals_of(server)
        # Capture before repair: commit_writebacks remaps the stripes onto
        # spares, after which stripe_set(0) is empty.
        expected_stripes = len(server.layout.stripe_set(0))
        server.fail_disk(0)

        async def run():
            service = make_service(server)
            result = await service.submit_repair(0).wait()
            await service.close()
            return result

        result = asyncio.run(run())
        assert result.certified
        assert result.stripes == expected_stripes
        assert result.chunks_rebuilt == result.stripes
        assert result.exit_code == 0
        assert_all_objects_intact(server, originals)

    def test_concurrent_disjoint_repairs_overlap_modeled_time(self):
        # Rotating placement, 12 disks, n=5: disks 0 and 6 hold disjoint
        # stripe sets, so their repairs share no disk channels.
        server = make_server()
        originals = originals_of(server)
        assert not set(server.layout.stripe_set(0)) & set(server.layout.stripe_set(6))
        server.fail_disk(0)
        server.fail_disk(6)

        async def run():
            service = make_service(server)
            t0 = service.submit_repair(0)
            t6 = service.submit_repair(6)
            results = await asyncio.gather(t0.wait(), t6.wait())
            makespan = service.modeled_now
            await service.close()
            return results, makespan

        (r0, r6), makespan = asyncio.run(run())
        assert r0.certified and r6.certified
        # Concurrent jobs on disjoint disks overlap: the aggregate modeled
        # makespan beats the serial sum of the two jobs.
        assert makespan < r0.modeled_seconds + r6.modeled_seconds
        assert_all_objects_intact(server, originals)

    def test_overlapping_failures_claim_each_stripe_once(self):
        server = make_server()
        originals = originals_of(server)
        # Capture before repair: after writeback the stripes no longer
        # reference disks 0/1, so stripes_touching would come back empty.
        touched = set(server.layout.stripes_touching([0, 1]))
        server.fail_disk(0)
        server.fail_disk(1)

        async def run():
            service = make_service(server)
            t0 = service.submit_repair(0)
            await asyncio.sleep(0.02)  # let job 0 claim its stripes
            t1 = service.submit_repair(1)
            return await asyncio.gather(t0.wait(), t1.wait()), service

        (r0, r1), service = asyncio.run(run())
        repaired_0 = set(r0.loss.stripes)
        repaired_1 = set(r1.loss.stripes)
        assert not repaired_0 & repaired_1, "a stripe was repaired twice"
        assert repaired_0 | repaired_1 == touched
        assert not r0.loss.has_loss and not r1.loss.has_loss
        assert_all_objects_intact(server, originals)

    def test_submit_on_healthy_disk_fails(self):
        server = make_server()

        async def run():
            service = make_service(server)
            with pytest.raises(StorageError, match="healthy"):
                await service.submit_repair(0).wait()

        asyncio.run(run())

    def test_repair_metrics_exported(self):
        server = make_server()
        server.fail_disk(0)
        registry = MetricsRegistry()

        async def run():
            service = make_service(server)
            with use_registry(registry):
                return await service.submit_repair(0).wait()

        result = asyncio.run(run())
        assert result.certified
        stripes = registry.get("hdpsr_service_repair_stripes_total")
        assert stripes is not None
        assert stripes.labels(outcome="recovered").value == result.stripes


# ---------------------------------------------------------------------------
# RepairService: the foreground front door
# ---------------------------------------------------------------------------
class TestFrontDoor:
    def test_healthy_read_returns_stored_bytes(self):
        server = make_server()

        async def run():
            service = make_service(server)
            return await service.read_chunk(0, 0)

        data = asyncio.run(run())
        assert np.array_equal(data, server.store.get(0, ChunkId(0, 0)))

    def test_degraded_read_without_repair_decodes(self):
        server = make_server()
        stripe = server.layout[0]
        lost_disk = stripe.disks[1]
        expected = server.store.get(lost_disk, ChunkId(0, 1)).copy()
        server.fail_disk(lost_disk)

        async def run():
            service = make_service(server)
            registry = MetricsRegistry()
            with use_registry(registry):
                data = await service.read_chunk(0, 1)
            return data, registry

        data, registry = asyncio.run(run())
        assert np.array_equal(data, expected)
        assert registry.get(DEGRADED_READS).labels(source="decode").value == 1

    def test_degraded_read_piggybacks_on_inflight_repair(self):
        server = make_server()
        originals = originals_of(server)
        stripes_of_0 = server.layout.stripe_set(0)
        si = stripes_of_0[0]
        shard = server.layout[si].shard_on_disk(0)
        expected = server.store.get(0, ChunkId(si, shard)).copy()
        server.fail_disk(0)

        async def run():
            registry = MetricsRegistry()
            with use_registry(registry):
                service = make_service(server)
                ticket = service.submit_repair(0)
                # Wait for the job to register its piggyback futures, then
                # read the lost chunk *while the repair is in flight*.
                while si not in service._repair_futures:
                    assert not ticket.done
                    await asyncio.sleep(0.001)
                data = await service.read_chunk(si, shard)
                result = await ticket.wait()
                await service.close()
            return data, result, registry

        data, result, registry = asyncio.run(run())
        assert result.certified
        assert np.array_equal(data, expected)
        hits = registry.get(DEGRADED_READS).labels(source="piggyback").value
        assert hits == 1
        assert_all_objects_intact(server, originals)

    def test_read_object_during_repair_byte_identical(self):
        server = make_server()
        originals = originals_of(server)
        server.fail_disk(0)

        async def run():
            service = make_service(server)
            ticket = service.submit_repair(0)
            objs = {
                si: await service.read_object(si)
                for si in server.layout.stripe_set(0)
            }
            await ticket.wait()
            await service.close()
            return objs

        objs = asyncio.run(run())
        for si, data in objs.items():
            assert data == originals[si], f"degraded object {si} diverged"

    def test_too_many_failures_raise_insufficient_shards(self):
        server = make_server()
        for disk in server.layout[0].disks[:3]:  # k=3, m=2: 3 losses is fatal
            server.fail_disk(disk)

        async def run():
            service = make_service(server)
            with pytest.raises(InsufficientShardsError):
                await service.read_chunk(0, 0)

        asyncio.run(run())


# ---------------------------------------------------------------------------
# RepairService under faults
# ---------------------------------------------------------------------------
class TestServiceFaults:
    def test_survivor_disk_failure_mid_repair_replans(self):
        server = make_server()
        originals = originals_of(server)
        server.fail_disk(0)
        # Fail a survivor of disk 0's stripes partway through the modeled
        # repair; the decodes must replan onto other survivors.
        victim = server.layout[server.layout.stripe_set(0)[0]].disks[1]
        schedule = FaultSchedule([FaultEvent(at=1e-5, kind="disk_fail", disk=victim)])

        async def run():
            service = RepairService(
                server, ALGORITHMS["hd-psr-ap"](), ServiceConfig(), faults=schedule
            )
            result = await service.submit_repair(0).wait()
            await service.close()
            return result

        result = asyncio.run(run())
        assert not result.loss.has_loss
        assert result.loss.faults_injected.get("disk_fail") == 1
        assert result.loss.replans + result.loss.fresh_restarts >= 1
        assert_all_objects_intact(server, originals)

    def test_slow_fault_with_hedging_policy(self):
        server = make_server()
        originals = originals_of(server)
        server.fail_disk(0)
        victim = server.layout[server.layout.stripe_set(0)[0]].disks[2]
        schedule = FaultSchedule(
            [FaultEvent(at=0.0, kind="slow", disk=victim, factor=100.0)]
        )
        base = server.disk(victim).transfer_time(server.config.chunk_size,
                                                 jittered=False)

        async def run():
            service = RepairService(
                server,
                ALGORITHMS["hd-psr-ap"](),
                ServiceConfig(policy=ReadPolicy(
                    timeout_seconds=base * 2, max_retries=1, hedge=True,
                )),
                faults=schedule,
            )
            result = await service.submit_repair(0).wait()
            await service.close()
            return result

        result = asyncio.run(run())
        assert not result.loss.has_loss
        assert result.loss.timeouts >= 1
        assert result.loss.hedged_reads + result.loss.replans >= 1
        assert_all_objects_intact(server, originals)

    def test_process_crash_escapes_ticket(self, tmp_path):
        server = make_server()
        server.fail_disk(0)
        schedule = FaultSchedule([FaultEvent(at=1e-5, kind="process_crash")])

        async def run():
            service = RepairService(
                server, ALGORITHMS["hd-psr-ap"](),
                ServiceConfig(journal_root=tmp_path / "journal",
                              durable_journal=False),
                faults=schedule,
            )
            await service.submit_repair(0).wait()

        with pytest.raises(SimulatedCrash):
            asyncio.run(run())
        # The journal survived the crash and is resumable.
        from repro.journal.journal import journal_exists

        assert journal_exists(tmp_path / "journal" / "disk-000")

    def test_resume_needs_journal_root(self):
        server = make_server()
        server.fail_disk(0)

        async def run():
            service = make_service(server)
            with pytest.raises(JournalError):
                await service.submit_repair(0, resume=True).wait()

        asyncio.run(run())


# ---------------------------------------------------------------------------
# Crash + resume: byte-identical recovery across service incarnations
# ---------------------------------------------------------------------------
class TestServiceResume:
    def test_crashed_service_resumes_byte_identical(self, tmp_path):
        store = ShardedChunkStore.from_root(tmp_path / "store", num_shards=4,
                                            durable=False)
        server = make_server(store=store, seed=23)
        originals = originals_of(server)
        server.fail_disk(0)
        journal_root = tmp_path / "journal"
        schedule = FaultSchedule([FaultEvent(at=2e-5, kind="process_crash")])

        async def crash_run():
            # One stripe at a time so early stripes reach stripe_done (and
            # are journaled) before the modeled clock hits the crash.
            service = RepairService(
                server, ALGORITHMS["hd-psr-ap"](),
                ServiceConfig(journal_root=journal_root, durable_journal=False,
                              max_concurrent_stripes=1),
                faults=schedule,
            )
            await service.submit_repair(0).wait()

        with pytest.raises(SimulatedCrash):
            asyncio.run(crash_run())

        # Second incarnation: same config and store, same fault schedule
        # (the journal's resume count skips the already-fired crash).
        store2 = ShardedChunkStore.from_root(tmp_path / "store", num_shards=4,
                                             durable=False)
        server2 = make_server(store=store2, seed=23)
        server2.fail_disk(0)

        async def resume_run():
            service = RepairService(
                server2, ALGORITHMS["hd-psr-ap"](),
                ServiceConfig(journal_root=journal_root, durable_journal=False),
                faults=schedule,
            )
            result = await service.submit_repair(0, resume=True).wait()
            await service.close()
            return result

        result = asyncio.run(resume_run())
        assert result.certified
        assert result.resumed_stripes >= 1
        assert_all_objects_intact(server2, originals)

    def test_resume_refuses_mismatched_server(self, tmp_path):
        server = make_server(seed=5)
        server.fail_disk(0)
        journal_root = tmp_path / "journal"
        schedule = FaultSchedule([FaultEvent(at=2e-5, kind="process_crash")])

        async def crash_run():
            service = RepairService(
                server, ALGORITHMS["hd-psr-ap"](),
                ServiceConfig(journal_root=journal_root, durable_journal=False),
                faults=schedule,
            )
            await service.submit_repair(0).wait()

        with pytest.raises(SimulatedCrash):
            asyncio.run(crash_run())

        other = make_server(seed=99)  # different fingerprint
        other.fail_disk(0)

        async def resume_run():
            service = RepairService(
                other, ALGORITHMS["hd-psr-ap"](),
                ServiceConfig(journal_root=journal_root, durable_journal=False),
            )
            with pytest.raises(JournalError, match="different server"):
                await service.submit_repair(0, resume=True).wait()

        asyncio.run(resume_run())

    def test_journal_dirs_are_per_disk(self, tmp_path):
        server = make_server()
        server.fail_disk(0)
        server.fail_disk(6)
        journal_root = tmp_path / "journal"

        async def run():
            service = RepairService(
                server, ALGORITHMS["hd-psr-ap"](),
                ServiceConfig(journal_root=journal_root, durable_journal=False),
            )
            await asyncio.gather(
                service.submit_repair(0).wait(),
                service.submit_repair(6).wait(),
            )
            await service.close()

        asyncio.run(run())
        assert (Path(journal_root) / "disk-000").is_dir()
        assert (Path(journal_root) / "disk-006").is_dir()


# ---------------------------------------------------------------------------
# Silent corruption at the front door
# ---------------------------------------------------------------------------
class TestSilentCorruptionFrontDoor:
    """A corrupt chunk must never cross the front door as payload bytes:
    healthy reads degrade through decode, degraded decodes surface a
    structured retryable error — in both cases the rotted chunk is
    quarantined and read-repaired in the background."""

    def _file_service(self, tmp_path, **cfg):
        store = ShardedChunkStore.from_root(
            tmp_path / "store", num_shards=2, durable=False
        )
        return make_service(make_server(store=store), **cfg)

    @staticmethod
    def _corrupt(service, stripe_index, shard_idx, kind="bitrot"):
        from repro.faults import apply_corruption

        disk = service.server.layout[stripe_index].disks[shard_idx]
        cid = ChunkId(stripe_index, shard_idx)
        pristine = service.server.store.get(disk, cid).copy()
        apply_corruption(
            service.server.store,
            FaultEvent(
                at=0.0, kind=kind, disk=disk, stripe=stripe_index, shard=shard_idx
            ),
        )
        return disk, pristine

    def test_corrupt_healthy_read_degrades_never_serves_rot(self, tmp_path):
        async def run():
            service = self._file_service(tmp_path)
            disk, pristine = self._corrupt(service, 0, 1)
            cid = ChunkId(0, 1)
            data = await service.read_chunk(0, 1)
            assert np.array_equal(data, pristine)
            assert service.corrupt_found == 1
            await service.close()  # drains the background read-repair
            assert service.corrupt_repaired == 1
            assert not service.is_quarantined(disk, cid)
            assert service.server.store.verify_chunk(disk, cid)
            assert np.array_equal(service.server.store.get(disk, cid), pristine)

        asyncio.run(run())

    def test_corrupt_survivor_raises_quarantined_then_retry_succeeds(self, tmp_path):
        from repro.errors import ChunkQuarantinedError

        async def run():
            service = self._file_service(tmp_path)
            layout = service.server.layout
            failed_disk = layout[0].disks[0]
            stripe_index = layout.stripe_set(failed_disk)[0]
            stripe = layout[stripe_index]
            target = stripe.shard_on_disk(failed_disk)
            cid = ChunkId(stripe_index, target)
            pristine = service.server.store.get(failed_disk, cid).copy()
            service.server.fail_disk(failed_disk)
            bad = [
                s for s in stripe.surviving_shards([failed_disk]) if s != target
            ][0]
            bad_disk, _ = self._corrupt(service, stripe_index, bad)

            with pytest.raises(ChunkQuarantinedError) as err:
                await service.read_chunk(stripe_index, target)
            assert err.value.stripe == stripe_index
            assert err.value.shard == bad
            assert err.value.disk == bad_disk
            assert service.is_quarantined(bad_disk, ChunkId(stripe_index, bad))
            # the retry plans around the quarantined survivor
            data = await service.read_chunk(stripe_index, target)
            assert np.array_equal(data, pristine)
            await service.close()

        asyncio.run(run())

    def test_repair_read_quarantines_corrupt_survivor(self, tmp_path):
        """repair_chunk hitting a second rotted chunk quarantines it too
        and fails retryably instead of decoding garbage."""
        from repro.errors import ChunkQuarantinedError

        async def run():
            service = self._file_service(tmp_path)
            disk_a, pristine_a = self._corrupt(service, 4, 0)
            service.quarantine_chunk(4, 4, 0, source="test", auto_repair=False)
            # rot every other data/parity shard but k-1 so the first
            # repair attempt must touch a corrupt survivor
            stripe = service.server.layout[4]
            disk_b, _ = self._corrupt(service, 4, 1)
            with pytest.raises(ChunkQuarantinedError):
                await service.repair_chunk(4, 0)
            assert service.is_quarantined(disk_b, ChunkId(4, 1))
            # both rotted chunks now known: each repairs from the clean rest
            assert await service.repair_chunk(4, 0)
            assert await service.repair_chunk(4, 1)
            assert np.array_equal(service.server.store.get(disk_a, ChunkId(4, 0)), pristine_a)
            assert len(service.quarantine) == 0
            await service.close()

        asyncio.run(run())
