"""The failover failure matrix: crashes around commits, handoff, fencing.

Each case kills a repairing service at a different point relative to its
journal's records, then has a *different* service instance — fronting the
same shared store and journal directory, the way a surviving daemon does
after claiming the dead peer's shard — resume the repair. The invariants
are always the same: byte-identical objects, no chunk persisted twice,
and a fenced stale owner refused at the commit point.

The full wire-level scenario (real sockets, leases expiring on the wall
clock, hedged client reads) lives in ``ChaosScenario`` and runs once at
the end; the matrix cases here stay socket-free so each timing variant is
cheap enough to enumerate.
"""

import asyncio

import pytest

from repro.core import ALGORITHMS
from repro.errors import FencedError
from repro.faults.injector import SimulatedCrash
from repro.faults.spec import FaultEvent, FaultSchedule
from repro.hdss.server import HDSSConfig, HighDensityStorageServer
from repro.obs import MetricsRegistry, use_registry
from repro.service.chaos import ChaosConfig, ChaosScenario, CountingStore
from repro.service.cluster import ClusterClock, ClusterConfig, ClusterNode
from repro.service.service import RepairService, ServiceConfig
from repro.hdss.store import InMemoryChunkStore, ShardedChunkStore

DISK = 3


@pytest.fixture(autouse=True)
def _registry():
    with use_registry(MetricsRegistry()):
        yield


def make_server(store, seed=11):
    config = HDSSConfig(
        num_disks=12, n=5, k=3, chunk_size=2048, memory_chunks=16,
        spares=3, seed=seed, placement="rotating",
    )
    server = HighDensityStorageServer(config, store=store)
    server.provision_stripes(12, with_data=True)
    return server


def attach_server(store, seed=11):
    """A second daemon's view: provision into a throwaway store, then
    front the shared one (same seed => identical layout and spares)."""
    server = make_server(InMemoryChunkStore(), seed=seed)
    server.store = store
    return server


def make_service(server, journal_root, faults=None, fence=None):
    return RepairService(
        server, ALGORITHMS["hd-psr-ap"](),
        ServiceConfig(
            max_concurrent_stripes=1, journal_root=journal_root,
            durable_journal=False,
        ),
        faults=faults, fence=fence,
    )


def shared_store(tmp_path):
    return CountingStore(
        ShardedChunkStore.from_root(tmp_path / "store", durable=False)
    )


async def crash_repair(service, disk=DISK, resume=False):
    """Run a repair expected to die of a scripted crash; abort the writer
    afterwards the way a killed process loses its unflushed queue."""
    ticket = service.submit_repair(disk, resume=resume)
    with pytest.raises(SimulatedCrash):
        await ticket.task
    service.writer.abort()


async def finish_repair(service, disk=DISK):
    ticket = service.submit_repair(disk, resume=True)
    result = await ticket.task
    await service.close()
    return result


def assert_invariants(store, server, originals, result):
    assert result.certified, "handoff repair must certify clean"
    assert store.duplicates() == [], "a chunk was persisted twice"
    for si, want in originals.items():
        assert server.read_object(si) == want, f"stripe {si} bytes diverged"


def crash_then_handoff(tmp_path, crash_at):
    """One matrix cell: owner crashes at ``crash_at`` (modeled seconds),
    a survivor resumes from the shared journal. Returns (result, store)."""
    async def run():
        store = shared_store(tmp_path)
        server_a = make_server(store)
        originals = {
            si: server_a.read_object(si) for si in range(len(server_a.layout))
        }
        store.reset()
        journal = tmp_path / "journal"
        schedule = FaultSchedule(
            [FaultEvent(at=crash_at, kind="process_crash")]
        )
        service_a = make_service(server_a, journal, faults=schedule)
        server_a.fail_disk(DISK)
        await crash_repair(service_a)

        server_b = attach_server(store)
        server_b.fail_disk(DISK, destroy_data=False)
        service_b = make_service(server_b, journal)
        result = await finish_repair(service_b)
        assert_invariants(store, server_b, originals, result)
        return result

    return asyncio.run(run())


# ------------------------------------------------------------------ matrix
class TestCrashTimingMatrix:
    def test_crash_before_first_round_commit(self, tmp_path):
        # Almost immediately: the journal holds little more than `begin`.
        result = crash_then_handoff(tmp_path, crash_at=1e-7)
        assert result.stripes_repaired == result.stripes

    def test_crash_mid_repair_between_commits(self, tmp_path):
        result = crash_then_handoff(tmp_path, crash_at=2.5e-5)
        assert result.resumed_stripes > 0, "crash landed outside the window"
        assert result.stripes_repaired == result.stripes

    def test_crash_late_after_most_round_commits(self, tmp_path):
        result = crash_then_handoff(tmp_path, crash_at=3.2e-5)
        assert result.resumed_stripes > 0
        assert result.stripes_repaired == result.stripes

    def test_crash_during_journal_handoff(self, tmp_path):
        # The survivor itself dies mid-resume; a third incarnation
        # finishes. Two generations of partial journals, one answer.
        async def run():
            store = shared_store(tmp_path)
            server_a = make_server(store)
            originals = {
                si: server_a.read_object(si)
                for si in range(len(server_a.layout))
            }
            store.reset()
            journal = tmp_path / "journal"
            service_a = make_service(
                server_a, journal,
                faults=FaultSchedule(
                    [FaultEvent(at=2e-5, kind="process_crash")]
                ),
            )
            server_a.fail_disk(DISK)
            await crash_repair(service_a)

            server_b = attach_server(store)
            server_b.fail_disk(DISK, destroy_data=False)
            # The schedule is the external fault script: the survivor's
            # copy repeats the crash it already survived (swallowed via
            # resume_count) and adds the one that kills *it* mid-resume.
            service_b = make_service(
                server_b, journal,
                faults=FaultSchedule([
                    FaultEvent(at=2e-5, kind="process_crash"),
                    FaultEvent(at=2.8e-5, kind="process_crash"),
                ]),
            )
            await crash_repair(service_b, resume=True)

            server_c = attach_server(store)
            server_c.fail_disk(DISK, destroy_data=False)
            service_c = make_service(server_c, journal)
            result = await finish_repair(service_c)
            assert_invariants(store, server_c, originals, result)

        asyncio.run(run())


# ----------------------------------------------------------------- fencing
class TestEpochFencing:
    def test_fenced_service_cannot_commit(self, tmp_path):
        """Split-brain prevention end to end: the owner loses its lease
        mid-repair and its next durable effect raises FencedError instead
        of writing — the repair job dies fenced, not corrupting."""
        async def run():
            state = {"t": 100.0}
            cluster_cfg = dict(
                root=tmp_path / "cluster", num_shards=4,
                lease_ttl=2.0, heartbeat_interval=0.5, durable=False,
            )
            node_a = ClusterNode(
                ClusterConfig(node_id="a", endpoint="a:1", **cluster_cfg),
                clock=ClusterClock(base=lambda: state["t"]),
            )
            node_b = ClusterNode(
                ClusterConfig(node_id="b", endpoint="b:1", **cluster_cfg),
                clock=ClusterClock(base=lambda: state["t"]),
            )
            node_a.tick()
            node_b.tick()

            store = shared_store(tmp_path)
            server = make_server(store)
            store.reset()
            service = make_service(
                server, tmp_path / "journal", fence=node_a.check_fence
            )
            # a silently loses every lease to b (a partition would do
            # this); its in-memory state still says "owner".
            state["t"] += 2.5
            node_b.tick()
            state["t"] += 0.6  # a's fence cache lapses

            server.fail_disk(DISK)
            ticket = service.submit_repair(DISK)
            with pytest.raises(FencedError) as err:
                await ticket.task
            assert err.value.current_epoch > err.value.held_epoch
            # Fenced before any durable effect: nothing hit the store.
            assert store.write_counts == {}

        asyncio.run(run())

    def test_revived_stale_owner_rejected_after_handoff(self, tmp_path):
        async def run():
            state = {"t": 0.0}
            cfg = dict(
                root=tmp_path / "cluster", num_shards=4,
                lease_ttl=1.0, heartbeat_interval=0.25, durable=False,
            )
            a = ClusterNode(
                ClusterConfig(node_id="a", endpoint="a:1", **cfg),
                clock=ClusterClock(base=lambda: state["t"]),
            )
            b = ClusterNode(
                ClusterConfig(node_id="b", endpoint="b:1", **cfg),
                clock=ClusterClock(base=lambda: state["t"]),
            )
            a.tick()
            b.tick()
            state["t"] += 1.5
            claims = b.tick()  # a is "dead"; b takes everything
            assert claims
            # a revives with stale in-memory ownership: every commit-point
            # check must fail, and must not disturb b's epoch.
            state["t"] += 0.3
            for shard in range(4):
                with pytest.raises(FencedError):
                    a.check_fence(shard)  # disk i -> shard i for i < 4
            assert all(e == 2 for e in b.held.values())
            a_tick = a.tick()
            assert a_tick == []  # revival does not steal leases back

        asyncio.run(run())


# ---------------------------------------------------------------- scenario
class TestChaosScenario:
    def test_full_wire_scenario_passes(self, tmp_path):
        """The whole stack once: sockets, leases on the wall clock, client
        retries/hedging, handoff, and the report's invariant checks."""
        report = asyncio.run(
            ChaosScenario(ChaosConfig(root=tmp_path)).run()
        )
        assert report["failures"] == []
        assert report["passed"] is True
        assert report["exit_code_a"] == 4
        assert report["exit_code_b"] == 0
        assert report["handoffs"] == [DISK]
        assert report["byte_identical"] is True
        assert report["duplicate_writes"] == []
        assert report["stale_owner_fenced"] is True
        assert report["fence_epochs"]["current"] > report["fence_epochs"]["held"]
        assert report["repair_b"]["resumed_stripes"] > 0
        assert report["takeover_seconds"] < 30.0
