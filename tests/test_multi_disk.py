"""Multi-disk repair: naive vs cooperative, including the Figure 6 example."""

import pytest

from repro.core import (
    ActiveSlowerFirstRepair,
    FullStripeRepair,
    cooperative_multi_disk_repair,
    naive_multi_disk_repair,
)
from repro.ec.stripe import Stripe, StripeLayout
from repro.errors import StorageError
from repro.hdss import HDSSConfig, HighDensityStorageServer
from repro.hdss.profiles import BimodalSlowProfile, UniformProfile


def fig6_server():
    """The Figure-6 topology: (n,k)=(5,3), six disks, three stripes.

    Failed disk 3 (the paper's Disk4) holds a chunk of all three stripes;
    failed disk 4 (Disk5) holds chunks of stripes 0 and 2 — so naive repair
    reads 9 + 6 = 15 chunks while cooperative reads 3 x 3 = 9.
    """
    cfg = HDSSConfig(
        num_disks=6, n=5, k=3, chunk_size=1024, memory_chunks=6, spares=2,
        profile=UniformProfile(1e6), seed=0,
    )
    server = HighDensityStorageServer(cfg)
    layout = StripeLayout()
    layout.add(Stripe(index=0, n=5, k=3, disks=(0, 1, 2, 3, 4)))
    layout.add(Stripe(index=1, n=5, k=3, disks=(0, 1, 2, 3, 5)))
    layout.add(Stripe(index=2, n=5, k=3, disks=(0, 1, 3, 4, 5)))
    server.layout = layout
    return server


class TestFigure6Example:
    def test_naive_reads_15_chunks(self):
        server = fig6_server()
        server.fail_disk(3)
        server.fail_disk(4)
        out = naive_multi_disk_repair(server, FullStripeRepair, [3, 4])
        assert out.chunks_read == 15
        assert out.stripes_per_phase == [3, 2]  # disk3: {0,1,2}; disk4: {0,2}
        assert out.chunks_rebuilt == 5  # stripes 0 and 2 decoded twice

    def test_cooperative_reads_9_chunks(self):
        server = fig6_server()
        server.fail_disk(3)
        server.fail_disk(4)
        out = cooperative_multi_disk_repair(server, FullStripeRepair, [3, 4])
        assert out.chunks_read == 9
        assert out.stripes_per_phase == [3]
        assert out.chunks_rebuilt == 5  # S0 lost 2, S1 lost 1, S2 lost 2

    def test_cooperative_never_reads_more(self):
        server = fig6_server()
        server.fail_disk(3)
        server.fail_disk(4)
        naive = naive_multi_disk_repair(server, FullStripeRepair, [3, 4])
        coop = cooperative_multi_disk_repair(server, FullStripeRepair, [3, 4])
        assert coop.chunks_read <= naive.chunks_read
        assert coop.total_time <= naive.total_time + 1e-9


@pytest.fixture
def multi_failed_server():
    cfg = HDSSConfig(
        num_disks=18, n=9, k=6, chunk_size=64 * 1024, memory_chunks=12, spares=3,
        profile=BimodalSlowProfile(100e6, ros=0.15, slow_factor=4.0), seed=4,
    )
    server = HighDensityStorageServer(cfg)
    server.provision_stripes(60)
    for d in (0, 1, 2):
        server.fail_disk(d)
    return server


class TestAtScale:
    def test_cooperative_faster(self, multi_failed_server):
        naive = naive_multi_disk_repair(multi_failed_server, FullStripeRepair, [0, 1, 2])
        coop = cooperative_multi_disk_repair(multi_failed_server, FullStripeRepair, [0, 1, 2])
        assert coop.total_time < naive.total_time
        assert coop.chunks_read < naive.chunks_read

    def test_cooperative_with_hdpsr(self, multi_failed_server):
        naive = naive_multi_disk_repair(multi_failed_server, ActiveSlowerFirstRepair, [0, 1, 2])
        coop = cooperative_multi_disk_repair(multi_failed_server, ActiveSlowerFirstRepair, [0, 1, 2])
        assert coop.total_time < naive.total_time

    def test_union_equals_stripe_sets(self, multi_failed_server):
        coop = cooperative_multi_disk_repair(multi_failed_server, FullStripeRepair, [0, 1, 2])
        expected = multi_failed_server.layout.stripes_touching([0, 1, 2])
        assert coop.stripes_per_phase == [len(expected)]

    def test_single_disk_degenerate_case(self, multi_failed_server):
        """With one failed disk, naive == cooperative (same stripe set)."""
        naive = naive_multi_disk_repair(multi_failed_server, FullStripeRepair, [0])
        coop = cooperative_multi_disk_repair(multi_failed_server, FullStripeRepair, [0])
        assert naive.chunks_read == coop.chunks_read

    def test_healthy_disk_rejected(self, multi_failed_server):
        with pytest.raises(StorageError):
            naive_multi_disk_repair(multi_failed_server, FullStripeRepair, [0, 5])
        with pytest.raises(StorageError):
            cooperative_multi_disk_repair(multi_failed_server, FullStripeRepair, [5])

    def test_empty_failed_list_rejected(self, multi_failed_server):
        with pytest.raises(StorageError):
            naive_multi_disk_repair(multi_failed_server, FullStripeRepair, [])

    def test_duplicates_deduped(self, multi_failed_server):
        out = cooperative_multi_disk_repair(multi_failed_server, FullStripeRepair, [0, 0, 1, 2])
        assert out.failed_disks == [0, 1, 2]

    def test_summary(self, multi_failed_server):
        out = cooperative_multi_disk_repair(multi_failed_server, FullStripeRepair, [0, 1])
        s = out.summary()
        assert s["cooperative"] is True
        assert s["failed_disks"] == 2.0

    def test_time_to_safety_recorded(self, multi_failed_server):
        out = cooperative_multi_disk_repair(multi_failed_server, FullStripeRepair, [0, 1, 2])
        assert out.time_to_safety is not None
        assert 0 < out.time_to_safety <= out.total_time + 1e-9

    def test_vulnerability_order_secures_exposed_stripes_sooner(self, multi_failed_server):
        default = cooperative_multi_disk_repair(
            multi_failed_server, FullStripeRepair, [0, 1, 2], order="default"
        )
        vuln = cooperative_multi_disk_repair(
            multi_failed_server, FullStripeRepair, [0, 1, 2], order="vulnerability"
        )
        # same work either way
        assert vuln.chunks_read == default.chunks_read
        assert vuln.total_time == pytest.approx(default.total_time, rel=0.1)
        # the most exposed stripes finish no later (usually much sooner)
        assert vuln.time_to_safety <= default.time_to_safety + 1e-9

    def test_vulnerability_order_admits_multi_loss_first(self, multi_failed_server):
        out = cooperative_multi_disk_repair(
            multi_failed_server, FullStripeRepair, [0, 1, 2], order="vulnerability"
        )
        report = out.reports[0]
        layout = multi_failed_server.layout
        lost = {si: len(layout[si].lost_shards([0, 1, 2]))
                for si in report.job_finish_times}
        max_lost = max(lost.values())
        if max_lost > 1:
            worst_latest = max(t for si, t in report.job_finish_times.items()
                               if lost[si] == max_lost)
            single_latest = max(t for si, t in report.job_finish_times.items()
                                if lost[si] == 1)
            assert worst_latest <= single_latest

    def test_unknown_order_rejected(self, multi_failed_server):
        with pytest.raises(StorageError):
            cooperative_multi_disk_repair(
                multi_failed_server, FullStripeRepair, [0, 1], order="alphabetical"
            )

    def test_savings_grow_with_failures(self):
        """More failed disks -> more shared stripes -> bigger cooperative win."""
        def ratio(num_failed):
            cfg = HDSSConfig(
                num_disks=14, n=9, k=6, chunk_size=64 * 1024, memory_chunks=12,
                spares=3, profile=UniformProfile(100e6), seed=4,
            )
            server = HighDensityStorageServer(cfg)
            server.provision_stripes(60)
            disks = list(range(num_failed))
            for d in disks:
                server.fail_disk(d)
            naive = naive_multi_disk_repair(server, FullStripeRepair, disks)
            coop = cooperative_multi_disk_repair(server, FullStripeRepair, disks)
            return coop.chunks_read / naive.chunks_read

        r2, r3 = ratio(2), ratio(3)
        assert r3 <= r2 <= 1.0


def faulted_server(seed=0, stripes=20):
    cfg = HDSSConfig(
        num_disks=12, n=9, k=6, chunk_size=1024, memory_chunks=12, spares=3,
        profile=UniformProfile(1e6), seed=seed,
    )
    server = HighDensityStorageServer(cfg)
    server.provision_stripes(stripes)
    return server


class TestMidRepairReplan:
    """Timing-plane re-planning when a disk dies during cooperative repair."""

    def run_with_faults(self, events, stripes=20):
        from repro.core import ExecutionOptions
        from repro.faults import FaultEvent, FaultSchedule, SimFaultModel

        server = faulted_server(stripes=stripes)
        server.fail_disk(0)
        options = ExecutionOptions(
            faults=SimFaultModel(FaultSchedule([FaultEvent(**e) for e in events]))
        )
        out = cooperative_multi_disk_repair(
            server, FullStripeRepair, [0], options=options
        )
        return server, out

    def test_casualty_triggers_replan_phase(self):
        server, out = self.run_with_faults(
            [dict(at=2e-3, kind="disk_fail", disk=1)]
        )
        assert out.replan_phases >= 1
        assert 1 in out.failed_disks
        assert out.replanned_stripes
        assert not out.lost_stripes
        assert out.time_to_safety is not None
        assert server.disk(1).is_failed

    def test_no_faults_no_replan(self):
        _, out = self.run_with_faults([])
        assert out.replan_phases == 0
        assert not out.replanned_stripes
        assert out.failed_disks == [0]

    def test_slow_window_stretches_without_replan(self):
        _, base = self.run_with_faults([])
        _, slowed = self.run_with_faults(
            [dict(at=0.0, kind="slow", disk=2, factor=8.0, duration=60.0)]
        )
        assert slowed.replan_phases == 0
        assert slowed.total_time > base.total_time

    def test_overwhelming_casualties_lose_stripes(self):
        # n - k = 3: three extra deaths on top of disk 0 exceed tolerance
        _, out = self.run_with_faults([
            dict(at=1e-3, kind="disk_fail", disk=1),
            dict(at=2e-3, kind="disk_fail", disk=2),
            dict(at=3e-3, kind="disk_fail", disk=3),
        ])
        assert out.lost_stripes
        assert out.time_to_safety is None
        summary = out.summary()
        assert summary["lost_stripes"] == float(len(out.lost_stripes))

    def test_deterministic_across_runs(self):
        _, a = self.run_with_faults([dict(at=2e-3, kind="disk_fail", disk=1)])
        _, b = self.run_with_faults([dict(at=2e-3, kind="disk_fail", disk=1)])
        assert a.summary() == b.summary()
        assert a.replanned_stripes == b.replanned_stripes
        assert a.total_time == b.total_time
