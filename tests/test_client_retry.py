"""The cluster client's survival kit: taxonomy, backoff, breakers, wire.

Unit layers first (error classification, backoff arithmetic, breaker
state machine — all clock-injected, no sleeping), then daemon-backed
tests that run real :class:`ServiceDaemon`\\ s in-process and point a
:class:`ClusterClient` at them through scripted wire faults
(``conn_reset``/``slow_peer``/``partial_frame``) and real ``not_owner``
redirects. No pytest-asyncio in the toolchain: tests drive their
coroutines with ``asyncio.run``.
"""

import asyncio
import time

import pytest

from repro.core import ALGORITHMS
from repro.errors import ReproError
from repro.faults.service import ServiceFaultInjector
from repro.faults.spec import FaultEvent, FaultSchedule
from repro.hdss.server import HDSSConfig, HighDensityStorageServer
from repro.obs import MetricsRegistry, use_registry
from repro.service import protocol
from repro.service.client import (
    BREAKER_CLOSED,
    BREAKER_HALF_OPEN,
    BREAKER_OPEN,
    BackoffPolicy,
    CircuitBreaker,
    ClusterClient,
    ServiceError,
    parse_endpoint,
)
from repro.service.cluster import ClusterConfig, ClusterNode
from repro.service.netserver import ServiceDaemon
from repro.service.service import RepairService


@pytest.fixture(autouse=True)
def _registry():
    with use_registry(MetricsRegistry()):
        yield


def make_server(seed=11):
    config = HDSSConfig(
        num_disks=12, n=5, k=3, chunk_size=2048, memory_chunks=16,
        spares=3, seed=seed, placement="rotating",
    )
    server = HighDensityStorageServer(config, store=None)
    server.provision_stripes(12, with_data=True)
    return server


def make_service(server):
    return RepairService(server, ALGORITHMS["hd-psr-ap"]())


async def start_daemon(service, **kwargs):
    daemon = ServiceDaemon(service, **kwargs)
    port = await daemon.start()
    task = asyncio.create_task(daemon.serve_until_stopped())
    return daemon, port, task


async def stop_daemon(daemon, task, port):
    from repro.service.client import ServiceClient

    control = await ServiceClient.connect("127.0.0.1", port)
    try:
        await control.call("shutdown")
    finally:
        await control.close()
    await task


# --------------------------------------------------------------- taxonomy
class TestErrorTaxonomy:
    def test_codes_map_to_retryability(self):
        for code in protocol.RETRYABLE_CODES:
            assert protocol.is_retryable(code)
        for code in (
            protocol.ERR_FENCED, protocol.ERR_BAD_REQUEST,
            protocol.ERR_PROTOCOL, protocol.ERR_NOT_FOUND,
            protocol.ERR_INTERNAL,
        ):
            assert not protocol.is_retryable(code)

    def test_error_reply_carries_code_and_retryable(self):
        reply = protocol.error("nope", code=protocol.ERR_OVERLOAD)
        assert reply["ok"] is False
        assert reply["code"] == protocol.ERR_OVERLOAD
        assert reply["retryable"] is True
        assert protocol.error("x", code=protocol.ERR_BAD_REQUEST)[
            "retryable"
        ] is False

    def test_crash_reply_keeps_legacy_flag(self):
        # Pre-v3 clients key off `crashed`; the v3 reply still sets it.
        reply = protocol.error("dead", code=protocol.ERR_CRASH)
        assert reply["crashed"] is True

    def test_service_error_defaults(self):
        err = ServiceError("boom")
        assert err.code == protocol.ERR_INTERNAL
        assert not err.retryable and not err.crashed
        err = ServiceError("gone", crashed=True)
        assert err.code == protocol.ERR_CRASH
        assert err.retryable and err.crashed

    def test_service_error_redirect_fields(self):
        err = ServiceError(
            "not owner", code=protocol.ERR_NOT_OWNER,
            reply={"owner": "b", "endpoint": "h:9", "epoch": 3, "shard": 2},
        )
        assert err.retryable
        assert (err.owner, err.endpoint, err.epoch, err.shard) == (
            "b", "h:9", 3, 2
        )
        assert ServiceError("x").owner is None
        assert ServiceError("x").epoch == -1

    def test_explicit_retryable_overrides_code(self):
        err = ServiceError(
            "odd", code=protocol.ERR_INTERNAL, retryable=True
        )
        assert err.retryable


# ---------------------------------------------------------------- backoff
class TestBackoffPolicy:
    def test_growth_and_cap_without_jitter(self):
        policy = BackoffPolicy(base=0.01, cap=0.05, multiplier=2.0, jitter=0.0)
        assert [policy.delay(a) for a in range(5)] == pytest.approx(
            [0.01, 0.02, 0.04, 0.05, 0.05]
        )

    def test_jitter_is_seeded_and_bounded(self):
        a = BackoffPolicy(seed=7)
        b = BackoffPolicy(seed=7)
        seq_a = [a.delay(i) for i in range(6)]
        seq_b = [b.delay(i) for i in range(6)]
        assert seq_a == seq_b  # replayable for the chaos harness
        c = BackoffPolicy(seed=8)
        assert [c.delay(i) for i in range(6)] != seq_a
        for i, d in enumerate(seq_a):
            raw = min(0.5, 0.02 * 2.0 ** i)
            assert raw * 0.5 <= d <= raw

    def test_bad_parameters_rejected(self):
        for kwargs in (
            {"base": 0.0}, {"cap": 0.001}, {"multiplier": 0.5},
            {"jitter": 1.5},
        ):
            with pytest.raises(ReproError):
                BackoffPolicy(**kwargs)


# ---------------------------------------------------------------- breaker
class TestCircuitBreaker:
    def make(self, threshold=3, reset_after=1.0, start=100.0):
        state = {"t": start}
        breaker = CircuitBreaker(
            threshold, reset_after, clock=lambda: state["t"]
        )
        return breaker, state

    def test_opens_after_threshold_consecutive_failures(self):
        breaker, _ = self.make()
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == BREAKER_CLOSED and breaker.allow()
        breaker.record_failure()
        assert breaker.state == BREAKER_OPEN and not breaker.allow()

    def test_success_resets_the_streak(self):
        breaker, _ = self.make()
        breaker.record_failure()
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == BREAKER_CLOSED

    def test_half_open_admits_one_probe(self):
        breaker, state = self.make()
        for _ in range(3):
            breaker.record_failure()
        state["t"] += 1.0
        assert breaker.state == BREAKER_HALF_OPEN
        assert breaker.allow()
        assert not breaker.allow()  # second caller waits on the probe
        breaker.record_success()
        assert breaker.state == BREAKER_CLOSED and breaker.allow()

    def test_failed_probe_reopens(self):
        breaker, state = self.make()
        for _ in range(3):
            breaker.record_failure()
        state["t"] += 1.0
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == BREAKER_OPEN
        state["t"] += 1.0
        assert breaker.state == BREAKER_HALF_OPEN

    def test_parse_endpoint(self):
        assert parse_endpoint("10.0.0.2:8100") == ("10.0.0.2", 8100)
        assert parse_endpoint(":8100") == ("127.0.0.1", 8100)
        with pytest.raises(ReproError):
            parse_endpoint("no-port")


# ------------------------------------------------------------ wire faults
class TestClientUnderWireFaults:
    def test_conn_reset_is_retried_transparently(self):
        async def run():
            server = make_server()
            service = make_service(server)
            chaos = ServiceFaultInjector(FaultSchedule([
                FaultEvent(at=0, kind="conn_reset"),
            ]))
            daemon, port, task = await start_daemon(service, chaos=chaos)
            client = ClusterClient(
                [f"127.0.0.1:{port}"], hedge_after=None,
                backoff=BackoffPolicy(base=0.005, cap=0.01),
            )
            try:
                # First request is RST mid-flight; the ladder reconnects.
                data = await client.read_chunk(0, 0)
                expected = (await service.read_chunk(0, 0)).tobytes()
                assert data == expected
                assert client.retry_count >= 1
                assert chaos.applied == {"conn_reset": 1}
                assert chaos.exhausted
            finally:
                await client.close()
                await stop_daemon(daemon, task, port)

        asyncio.run(run())

    def test_partial_frame_is_retried_transparently(self):
        async def run():
            server = make_server()
            service = make_service(server)
            chaos = ServiceFaultInjector(FaultSchedule([
                FaultEvent(at=1, kind="partial_frame"),
            ]))
            daemon, port, task = await start_daemon(service, chaos=chaos)
            client = ClusterClient(
                [f"127.0.0.1:{port}"], hedge_after=None,
                backoff=BackoffPolicy(base=0.005, cap=0.01),
            )
            try:
                await client.call("ping")  # ordinal 0: clean
                data = await client.read_chunk(0, 1)  # ordinal 1: torn
                expected = (await service.read_chunk(0, 1)).tobytes()
                assert data == expected
                assert client.retry_count >= 1
                assert chaos.applied == {"partial_frame": 1}
            finally:
                await client.close()
                await stop_daemon(daemon, task, port)

        asyncio.run(run())

    def test_slow_peer_triggers_hedged_read(self):
        async def run():
            server = make_server()
            service = make_service(server)
            # Daemon A answers everything 0.5s late; B is clean. Both
            # front the same server, as cluster daemons front one store.
            slow = ServiceFaultInjector(FaultSchedule([
                FaultEvent(at=0, kind="slow_peer", factor=100, duration=0.5),
            ]))
            daemon_a, port_a, task_a = await start_daemon(service, chaos=slow)
            daemon_b, port_b, task_b = await start_daemon(service)
            client = ClusterClient(
                [f"127.0.0.1:{port_a}", f"127.0.0.1:{port_b}"],
                hedge_after=0.05,
            )
            try:
                started = time.monotonic()
                data = await client.read_chunk(2, 1)
                elapsed = time.monotonic() - started
                expected = (await service.read_chunk(2, 1)).tobytes()
                assert data == expected
                assert client.hedged_reads == 1
                assert elapsed < 0.5, "hedge did not bound the slow peer"
            finally:
                await client.close()
                await stop_daemon(daemon_a, task_a, port_a)
                await stop_daemon(daemon_b, task_b, port_b)

        asyncio.run(run())

    def test_overload_is_retried_until_admitted(self):
        async def run():
            server = make_server()
            service = make_service(server)
            daemon, port, task = await start_daemon(service, max_inflight=1)
            endpoint = f"127.0.0.1:{port}"
            # Separate clients => separate connections, so requests race
            # for the daemon's single admission slot.
            clients = [
                ClusterClient(
                    [endpoint], hedge_after=None,
                    backoff=BackoffPolicy(base=0.005, cap=0.02, seed=i),
                )
                for i in range(6)
            ]
            try:
                payloads = await asyncio.gather(*(
                    c.read_chunk(i % 12, i % 5) for i, c in enumerate(clients)
                ))
                for i, data in enumerate(payloads):
                    expected = (await service.read_chunk(i % 12, i % 5)).tobytes()
                    assert data == expected
                assert sum(c.retry_count for c in clients) > 0
            finally:
                for c in clients:
                    await c.close()
                await stop_daemon(daemon, task, port)

        asyncio.run(run())

    def test_fatal_errors_are_not_retried(self):
        async def run():
            server = make_server()
            service = make_service(server)
            daemon, port, task = await start_daemon(service)
            client = ClusterClient([f"127.0.0.1:{port}"], hedge_after=None)
            try:
                with pytest.raises(ServiceError) as err:
                    await client.call("read", stripe=0)  # missing `shard`
                assert err.value.code == protocol.ERR_BAD_REQUEST
                assert not err.value.retryable
                assert client.retry_count == 0
            finally:
                await client.close()
                await stop_daemon(daemon, task, port)

        asyncio.run(run())


# -------------------------------------------------------------- redirects
class TestNotOwnerRedirect:
    def test_client_follows_redirect_and_learns_owner(self, tmp_path):
        async def run():
            server = make_server()
            service_a = make_service(server)
            service_b = make_service(server)

            def node(name):
                return ClusterNode(ClusterConfig(
                    root=tmp_path / "cluster", node_id=name,
                    num_shards=4, lease_ttl=0.5, heartbeat_interval=0.1,
                    durable=False,
                ))

            daemon_a, port_a, task_a = await start_daemon(
                service_a, cluster=node("a")
            )
            # a claims every shard before b arrives (first comer).
            await asyncio.sleep(0)
            deadline = time.monotonic() + 10.0
            while len(daemon_a.cluster.owned_shards) < 4:
                assert time.monotonic() < deadline
                await asyncio.sleep(0.02)
            daemon_b, port_b, task_b = await start_daemon(
                service_b, cluster=node("b")
            )
            while daemon_b.cluster.ticks == 0:
                assert time.monotonic() < deadline
                await asyncio.sleep(0.02)

            ep_a = f"127.0.0.1:{port_a}"
            ep_b = f"127.0.0.1:{port_b}"
            # b listed first: the mutation lands on the wrong daemon.
            client = ClusterClient([ep_b, ep_a], hedge_after=None)
            try:
                disk = 3
                shard = daemon_a.cluster.shard_of_disk(disk)
                reply = await client.call("fail_disk", shard=shard, disk=disk)
                assert reply["ok"] is True
                assert client.redirects >= 1
                assert client.owners[shard] == ep_a
                # The next mutation goes straight to the learned owner.
                redirects_before = client.redirects
                reply = await client.call("repair", shard=shard, disk=disk)
                assert client.redirects == redirects_before
                control = await client._conn(ep_a)
                await control.call("wait", job_id=reply["job_id"])
            finally:
                await client.close()
                await stop_daemon(daemon_a, task_a, port_a)
                await stop_daemon(daemon_b, task_b, port_b)

        asyncio.run(run())
