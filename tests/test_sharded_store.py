"""ShardedChunkStore: routing, batching, and delegation semantics."""

import numpy as np
import pytest

from repro.ec.stripe import ChunkId
from repro.errors import ChunkNotFoundError, StorageError
from repro.hdss.store import (
    FileChunkStore,
    InMemoryChunkStore,
    ShardedChunkStore,
)


def chunk(size=64, fill=7):
    return np.full(size, fill, dtype=np.uint8)


@pytest.fixture(params=["memory", "file"])
def sharded(request, tmp_path):
    if request.param == "memory":
        return ShardedChunkStore([InMemoryChunkStore() for _ in range(4)])
    return ShardedChunkStore.from_root(tmp_path, num_shards=4, durable=False)


class TestRouting:
    def test_disk_maps_to_modulo_shard(self, sharded):
        for disk in range(12):
            assert sharded.shard_of(disk) == disk % 4
            assert sharded.shard_for(disk) is sharded.shards[disk % 4]

    def test_put_lands_on_owning_shard_only(self, sharded):
        cid = ChunkId(0, 0)
        sharded.put(6, cid, chunk())
        assert sharded.shards[2].contains(6, cid)
        for idx in (0, 1, 3):
            assert not sharded.shards[idx].contains(6, cid)
        assert np.array_equal(sharded.get(6, cid), chunk())

    def test_empty_shard_list_rejected(self):
        with pytest.raises(StorageError):
            ShardedChunkStore([])

    def test_from_root_rejects_zero_shards(self, tmp_path):
        with pytest.raises(StorageError):
            ShardedChunkStore.from_root(tmp_path, num_shards=0)

    def test_from_root_directory_layout(self, tmp_path):
        store = ShardedChunkStore.from_root(tmp_path, num_shards=3, durable=False)
        store.put(5, ChunkId(0, 0), chunk())
        # disk 5 -> shard 5 % 3 == 2 -> root/shard-02/disk-005
        assert (tmp_path / "shard-02" / "disk-005").is_dir()
        assert not (tmp_path / "shard-00" / "disk-005").exists()
        assert store.num_shards == 3


class TestContract:
    def test_roundtrip_delete_contains(self, sharded):
        cid = ChunkId(2, 1)
        sharded.put(9, cid, chunk(fill=3))
        assert sharded.contains(9, cid)
        assert (9, cid) in sharded
        sharded.delete(9, cid)
        assert not sharded.contains(9, cid)
        with pytest.raises(ChunkNotFoundError):
            sharded.get(9, cid)

    def test_chunks_on_disk_sorted(self, sharded):
        ids = [ChunkId(2, 0), ChunkId(0, 1), ChunkId(0, 0)]
        for cid in ids:
            sharded.put(3, cid, chunk())
        assert sharded.chunks_on_disk(3) == sorted(ids)

    def test_drop_disk_scoped_to_owner(self, sharded):
        sharded.put(0, ChunkId(0, 0), chunk())
        sharded.put(0, ChunkId(1, 0), chunk())
        sharded.put(4, ChunkId(2, 0), chunk())  # same shard (0), other disk
        sharded.put(1, ChunkId(3, 0), chunk())  # different shard
        assert sharded.drop_disk(0) == 2
        assert sharded.contains(4, ChunkId(2, 0))
        assert sharded.contains(1, ChunkId(3, 0))

    def test_verify_chunk(self, sharded):
        cid = ChunkId(0, 0)
        sharded.put(7, cid, chunk())
        assert sharded.verify_chunk(7, cid)
        # missing chunk: file shards raise (their documented contract),
        # memory shards fall back to contains() -> False
        if isinstance(sharded.shards[0], FileChunkStore):
            with pytest.raises(ChunkNotFoundError):
                sharded.verify_chunk(7, ChunkId(9, 9))
        else:
            assert not sharded.verify_chunk(7, ChunkId(9, 9))

    def test_checksum_failures_sums_shards(self, tmp_path):
        store = ShardedChunkStore.from_root(tmp_path, num_shards=2, durable=False)
        assert store.checksum_failures == 0
        # memory shards have no counter; the property must still work
        mem = ShardedChunkStore([InMemoryChunkStore()])
        assert mem.checksum_failures == 0


class TestBatched:
    def test_get_many_preserves_caller_order(self, sharded):
        keys = []
        for disk in (5, 2, 11, 0, 7, 3):  # deliberately shard-interleaved
            cid = ChunkId(disk, 0)
            sharded.put(disk, cid, chunk(fill=disk))
            keys.append((disk, cid))
        results = sharded.get_many(keys)
        assert len(results) == len(keys)
        for (disk, _), data in zip(keys, results):
            assert data[0] == disk

    def test_put_many_routes_every_item(self, sharded):
        items = [(d, ChunkId(d, 1), chunk(fill=d + 1)) for d in range(10)]
        sharded.put_many(items)
        for d, cid, data in items:
            assert np.array_equal(sharded.get(d, cid), data)
            assert sharded.shards[d % 4].contains(d, cid)

    def test_get_many_missing_key_raises(self, sharded):
        sharded.put(0, ChunkId(0, 0), chunk())
        with pytest.raises(ChunkNotFoundError):
            sharded.get_many([(0, ChunkId(0, 0)), (1, ChunkId(9, 9))])

    def test_empty_batches(self, sharded):
        assert sharded.get_many([]) == []
        sharded.put_many([])  # no-op, no error


class TestStartupSweep:
    """Crash leftovers — dead-writer tmps and orphan sidecars — are swept
    at open and surfaced as observable counters."""

    def test_sweeps_dead_tmp_and_orphan_sidecar(self, tmp_path):
        store = ShardedChunkStore.from_root(tmp_path, num_shards=2, durable=False)
        store.put(0, ChunkId(0, 0), chunk())
        disk_dir = store.shard_for(0)._chunk_path(0, ChunkId(0, 0)).parent
        # a tmp from a writer pid that cannot be alive (pid 1 is init, so
        # use an impossible one) and a sidecar whose chunk never landed
        (disk_dir / "s000001.000.chunk.999999999.deadbeef.tmp").write_bytes(b"x")
        (disk_dir / "s000002.000.chunk.crc32c").write_bytes(b"12345678")
        reopened = ShardedChunkStore.from_root(tmp_path, num_shards=2, durable=False)
        assert reopened.swept_tmp_files == 1
        assert reopened.orphan_sidecars == 1
        assert not (disk_dir / "s000001.000.chunk.999999999.deadbeef.tmp").exists()
        assert not (disk_dir / "s000002.000.chunk.crc32c").exists()
        # the real chunk and its sidecar are untouched
        assert np.array_equal(reopened.get(0, ChunkId(0, 0)), chunk())

    def test_live_writer_tmp_left_alone(self, tmp_path):
        import os

        store = ShardedChunkStore.from_root(tmp_path, num_shards=2, durable=False)
        store.put(0, ChunkId(0, 0), chunk())
        disk_dir = store.shard_for(0)._chunk_path(0, ChunkId(0, 0)).parent
        mine = disk_dir / f"s000003.000.chunk.{os.getpid()}.abcd1234.tmp"
        mine.write_bytes(b"in-flight")
        reopened = ShardedChunkStore.from_root(tmp_path, num_shards=2, durable=False)
        assert reopened.swept_tmp_files == 0
        assert mine.exists()

    def test_clean_store_sweeps_nothing(self, tmp_path):
        store = ShardedChunkStore.from_root(tmp_path, num_shards=2, durable=False)
        store.put(3, ChunkId(1, 1), chunk())
        reopened = ShardedChunkStore.from_root(tmp_path, num_shards=2, durable=False)
        assert reopened.swept_tmp_files == 0
        assert reopened.orphan_sidecars == 0


class TestApplyCorruption:
    """Deterministic silent-corruption injection beneath the checksum layer."""

    @pytest.fixture
    def filestore(self, tmp_path):
        store = ShardedChunkStore.from_root(tmp_path, num_shards=2, durable=False)
        for d in range(4):
            for s in range(3):
                store.put(d, ChunkId(s, 0), chunk(fill=(d * 3 + s) % 250 + 1))
        return store

    @pytest.mark.parametrize("kind", ["bitrot", "torn_write", "misdirected_write"])
    def test_each_kind_breaks_verification_silently(self, filestore, kind):
        from repro.errors import ChunkChecksumError
        from repro.faults import apply_corruption
        from repro.faults.spec import FaultEvent

        cid = ChunkId(1, 0)
        assert filestore.verify_chunk(2, cid)
        apply_corruption(
            filestore, FaultEvent(at=0.0, kind=kind, disk=2, stripe=1, shard=0)
        )
        # silent: still listed, still "contained" — only a verify notices
        assert filestore.contains(2, cid)
        with pytest.raises(ChunkChecksumError):
            filestore.verify_chunk(2, cid)

    def test_memory_store_rejected(self):
        from repro.errors import ConfigurationError
        from repro.faults import apply_corruption
        from repro.faults.spec import FaultEvent

        store = ShardedChunkStore([InMemoryChunkStore() for _ in range(2)])
        with pytest.raises(ConfigurationError):
            apply_corruption(
                store, FaultEvent(at=0.0, kind="bitrot", disk=0, stripe=0, shard=0)
            )

    def test_missing_chunk_raises_not_found(self, filestore):
        from repro.faults import apply_corruption
        from repro.faults.spec import FaultEvent

        with pytest.raises(ChunkNotFoundError):
            apply_corruption(
                filestore,
                FaultEvent(at=0.0, kind="bitrot", disk=0, stripe=99, shard=0),
            )
