"""`hdpsr trace` subcommands and the durability observability flags."""

import json

from repro.cli import main

REPAIR = ["repair", "--disk-size", "64MiB", "--chunk-size", "32MiB",
          "--num-disks", "12", "--algorithm", "fsr", "--seed", "11"]


def run(capsys, *argv):
    code = main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out, captured.err


def capture_trace(capsys, tmp_path, name="run.jsonl", extra=()):
    path = tmp_path / name
    code, _, _ = run(capsys, *REPAIR, *extra, "--trace", str(path))
    assert code == 0
    assert path.exists()
    return path


class TestSummarize:
    def test_tables_printed(self, capsys, tmp_path):
        trace = capture_trace(capsys, tmp_path)
        code, out, _ = run(capsys, "trace", "summarize", str(trace))
        assert code == 0
        assert "Trace summary" in out
        assert "ACWT" in out
        assert "Bottleneck attribution" in out
        assert "blame share" in out

    def test_json_output(self, capsys, tmp_path):
        trace = capture_trace(capsys, tmp_path)
        code, out, _ = run(capsys, "trace", "summarize", str(trace), "--json")
        assert code == 0
        summary = json.loads(out)
        assert summary["reads"]["count"] > 0
        assert summary["acwt"]["acwt_seconds"] >= 0
        assert "disks" in summary

    def test_output_file(self, capsys, tmp_path):
        trace = capture_trace(capsys, tmp_path)
        dest = tmp_path / "summary.json"
        code, _, _ = run(capsys, "trace", "summarize", str(trace),
                         "--output", str(dest))
        assert code == 0
        assert json.loads(dest.read_text())["makespan_seconds"] > 0

    def test_missing_file_exits_2(self, capsys, tmp_path):
        code, _, err = run(capsys, "trace", "summarize",
                           str(tmp_path / "nope.jsonl"))
        assert code == 2
        assert "does not exist" in err

    def test_wrong_suffix_exits_2(self, capsys, tmp_path):
        path = tmp_path / "trace.json"
        path.write_text("{}")
        code, _, err = run(capsys, "trace", "summarize", str(path))
        assert code == 2
        assert "not a .jsonl trace" in err


class TestBlame:
    def test_top_limits_rows(self, capsys, tmp_path):
        trace = capture_trace(capsys, tmp_path)
        code, out, _ = run(capsys, "trace", "blame", str(trace), "--top", "3")
        assert code == 0
        rows = [line for line in out.splitlines()
                if line.startswith("|") and "disk" not in line]
        assert 0 < len(rows) <= 3


class TestDiff:
    def test_same_run_exits_0(self, capsys, tmp_path):
        trace = capture_trace(capsys, tmp_path)
        code, out, _ = run(capsys, "trace", "diff", str(trace), str(trace))
        assert code == 0
        assert "no regressions" in out

    def test_degraded_run_exits_1(self, capsys, tmp_path):
        good = capture_trace(capsys, tmp_path, "good.jsonl")
        bad = capture_trace(capsys, tmp_path, "bad.jsonl",
                            extra=("--slow-factor", "8"))
        code, out, _ = run(capsys, "trace", "diff", str(good), str(bad))
        assert code == 1
        assert "REGRESSED" in out
        assert "regression(s)" in out

    def test_summary_json_files(self, capsys, tmp_path):
        # diff also accepts the JSON summaries `summarize --output` writes
        old = tmp_path / "old.json"
        new = tmp_path / "new.json"
        old.write_text(json.dumps({"acwt": {"acwt_seconds": 1.0}}))
        new.write_text(json.dumps({"acwt": {"acwt_seconds": 2.0}}))
        code, out, _ = run(capsys, "trace", "diff", str(old), str(new))
        assert code == 1
        assert "acwt.acwt_seconds" in out

    def test_json_mode(self, capsys, tmp_path):
        trace = capture_trace(capsys, tmp_path)
        code, out, _ = run(capsys, "trace", "diff", str(trace), str(trace),
                           "--json")
        assert code == 0
        payload = json.loads(out)
        assert payload["regressions"] == []
        assert payload["entries"]

    def test_unreadable_input_exits_2(self, capsys, tmp_path):
        trace = capture_trace(capsys, tmp_path)
        code, _, err = run(capsys, "trace", "diff", str(trace),
                           str(tmp_path / "missing.jsonl"))
        assert code == 2
        assert err.strip()


class TestDurabilityObservability:
    def test_trace_and_metrics_flags(self, capsys, tmp_path):
        trace = tmp_path / "dur.jsonl"
        prom = tmp_path / "dur.prom"
        code, out, _ = run(
            capsys, "durability", "--disk-size", "64MiB", "--chunk-size",
            "32MiB", "--num-disks", "12", "--trace", str(trace),
            "--metrics", str(prom),
        )
        assert code == 0
        assert trace.exists() and trace.stat().st_size > 0
        assert prom.exists()
        assert "hdpsr_" in prom.read_text()
        # the captured trace is analyzable
        code, out, _ = run(capsys, "trace", "summarize", str(trace), "--json")
        assert code == 0
        assert json.loads(out)["reads"]["count"] > 0
