"""EXPERIMENTS.md rendering from benchmark artefacts."""

import json

import pytest

from repro.cli import main
from repro.reporting import ORDER, load_results, render_report, write_report


@pytest.fixture
def results_dir(tmp_path):
    d = tmp_path / "results"
    d.mkdir()
    (d / "exp1.json").write_text(json.dumps({
        "experiment": "exp1",
        "meta": {"scale": 4},
        "rows": [
            {"n": 6, "k": 4, "fsr": 10.0, "hd-psr-ap": 7.0, "reduction_hd-psr-ap": 30.0},
        ],
    }))
    (d / "custom.json").write_text(json.dumps({
        "experiment": "custom",
        "rows": [{"x": 1}],
    }))
    return d


class TestLoadResults:
    def test_keyed_by_experiment(self, results_dir):
        results = load_results(results_dir)
        assert set(results) == {"exp1", "custom"}

    def test_non_artefact_json_skipped(self, results_dir):
        # a trace summary (CI regression baseline) is not an artefact
        (results_dir / "trace_baseline.json").write_text(json.dumps(
            {"metrics": {"spans": 83}, "source": "baseline.jsonl"}
        ))
        loaded = load_results(results_dir)
        assert "trace_baseline" not in loaded
        assert "## trace_baseline" not in render_report(results_dir)

    def test_empty_dir(self, tmp_path):
        assert load_results(tmp_path) == {}


class TestRenderReport:
    def test_includes_measured_table(self, results_dir):
        text = render_report(results_dir)
        assert "Experiment 1" in text
        assert "| n" in text  # markdown table headers
        assert "30.000" in text

    def test_missing_artefacts_flagged(self, results_dir):
        text = render_report(results_dir)
        assert text.count("artefact missing") == len(ORDER) - 1

    def test_paper_claims_present(self, results_dir):
        text = render_report(results_dir)
        assert "-71.7%" in text  # exp1 paper peak
        assert "-52.5%" in text  # exp5 paper peak

    def test_extra_experiments_appended(self, results_dir):
        assert "## custom" in render_report(results_dir)

    def test_preamble(self, results_dir):
        text = render_report(results_dir, preamble="Hello preamble.")
        assert "Hello preamble." in text

    def test_write_report(self, results_dir, tmp_path):
        out = write_report(results_dir, tmp_path / "EXPERIMENTS.md")
        assert out.exists()
        assert "paper vs measured" in out.read_text()


class TestCliReport:
    def test_stdout(self, results_dir, capsys):
        code = main(["report", "--results", str(results_dir)])
        assert code == 0
        assert "Experiment 1" in capsys.readouterr().out

    def test_output_file(self, results_dir, tmp_path, capsys):
        target = tmp_path / "EXP.md"
        code = main(["report", "--results", str(results_dir), "--output", str(target)])
        assert code == 0
        assert target.exists()

    def test_missing_dir(self, tmp_path, capsys):
        code = main(["report", "--results", str(tmp_path / "nope")])
        assert code == 1

    def test_rewrite_keeps_hand_written_preamble(self, results_dir, tmp_path, capsys):
        target = tmp_path / "EXP.md"
        preamble = "Curated shape-agreement summary.\n\n| a | b |\n|---|---|"
        write_report(results_dir, target, preamble=preamble)
        code = main(["report", "--results", str(results_dir), "--output", str(target)])
        assert code == 0
        text = target.read_text()
        assert "Curated shape-agreement summary." in text
        assert text.count("Curated shape-agreement summary.") == 1
