"""Parity scrubbing: silent-corruption and degradation detection."""

import pytest

from repro.ec.stripe import ChunkId


class TestScrub:
    def test_clean_server(self, small_server):
        report = small_server.scrub()
        assert report.healthy
        assert len(report.clean) == 20
        assert report.stripes_checked == 20

    def test_degraded_after_failure(self, small_server):
        small_server.fail_disk(0)
        report = small_server.scrub()
        assert not report.healthy
        assert set(report.degraded) == set(small_server.layout.stripe_set(0))
        assert not report.corrupt

    def test_silent_corruption_detected(self, small_server):
        stripe = small_server.layout[3]
        disk_id = stripe.disks[1]
        cid = ChunkId(3, 1)
        data = small_server.store.get(disk_id, cid)
        data[0] ^= 0xFF  # flip a byte
        small_server.store.put(disk_id, cid, data)
        report = small_server.scrub()
        assert report.corrupt == [3]
        assert 3 not in report.clean

    def test_subset_of_stripes(self, small_server):
        report = small_server.scrub(stripe_indices=[0, 1, 2])
        assert report.stripes_checked == 3

    def test_latent_sector_error_degrades_not_raises(self, small_server):
        from repro.hdss.store import FaultyChunkStore

        small_server.store = FaultyChunkStore(small_server.store)
        stripe = small_server.layout[2]
        small_server.store.mark_bad(stripe.disks[0], ChunkId(2, 0))
        report = small_server.scrub()
        assert 2 in report.degraded
        assert 2 not in report.clean
        assert not report.corrupt

    def test_metadata_only_unpopulated(self, metadata_server):
        report = metadata_server.scrub()
        assert len(report.unpopulated) == 30
        assert report.healthy

    def test_repair_restores_health(self, small_server):
        """Fail, repair through the data path, scrub: degraded stripes have
        their rebuilt chunks on spares (the original placement stays
        degraded until chunks are migrated back, which scrub reflects)."""
        from repro.core import DataPathExecutor, FullStripeRepair

        small_server.fail_disk(0)
        stripe_indices, survivor_ids, L = small_server.transfer_time_matrix([0])
        plan = FullStripeRepair().build_plan(L, small_server.config.memory_chunks)
        stats = DataPathExecutor(small_server).repair(plan, stripe_indices, survivor_ids)
        report = small_server.scrub()
        # placement still points at the dead disk -> degraded, not corrupt
        assert set(report.degraded) == set(stripe_indices)
        assert not report.corrupt
        # but every lost chunk exists, byte-exact, on a spare
        for (si, shard, spare) in stats.writebacks:
            assert small_server.store.contains(spare, ChunkId(si, shard))
        # committing the writebacks remaps placement -> healthy again
        remapped = small_server.commit_writebacks(stats.writebacks)
        assert remapped == len(stats.writebacks)
        final = small_server.scrub()
        assert final.healthy
        assert len(final.clean) == 20

    def test_commit_updates_stripe_sets(self, small_server):
        from repro.core import DataPathExecutor, FullStripeRepair

        small_server.fail_disk(0)
        before = small_server.layout.stripe_set(0)
        stripe_indices, survivor_ids, L = small_server.transfer_time_matrix([0])
        plan = FullStripeRepair().build_plan(L, small_server.config.memory_chunks)
        stats = DataPathExecutor(small_server).repair(plan, stripe_indices, survivor_ids)
        small_server.commit_writebacks(stats.writebacks)
        assert small_server.layout.stripe_set(0) == []
        spares_used = {w[2] for w in stats.writebacks}
        for spare in spares_used:
            assert set(small_server.layout.stripe_set(spare)) <= set(before)

    def test_remap_rejects_duplicate_disk(self, small_server):
        stripe = small_server.layout[0]
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            small_server.layout.remap_shard(0, 0, stripe.disks[1])

    def test_remap_same_disk_noop(self, small_server):
        stripe = small_server.layout[0]
        out = small_server.layout.remap_shard(0, 0, stripe.disks[0])
        assert out.disks == stripe.disks
