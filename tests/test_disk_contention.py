"""Per-disk service contention in the slot simulator."""

import numpy as np
import pytest

from repro.core import ExecutionOptions, FullStripeRepair, execute_plan
from repro.sim.transfer import ChunkTransfer, StripeJob, simulate_slot_schedule


def job(job_id, chunk_specs, **kwargs):
    """chunk_specs: list of (duration, disk)."""
    return StripeJob(
        job_id,
        [[ChunkTransfer((job_id, i), d, disk=disk) for i, (d, disk) in enumerate(chunk_specs)]],
        **kwargs,
    )


class TestDiskContention:
    def test_same_disk_serialises(self):
        jobs = [
            job("a", [(2.0, 0)]),
            job("b", [(2.0, 0)]),
        ]
        free = simulate_slot_schedule(jobs, capacity=4)
        contended = simulate_slot_schedule(jobs, capacity=4, disk_contention=True)
        assert free.total_time == pytest.approx(2.0)
        assert contended.total_time == pytest.approx(4.0)

    def test_different_disks_parallel(self):
        jobs = [job("a", [(2.0, 0)]), job("b", [(2.0, 1)])]
        rep = simulate_slot_schedule(jobs, capacity=4, disk_contention=True)
        assert rep.total_time == pytest.approx(2.0)

    def test_none_disk_uncontended(self):
        jobs = [job("a", [(2.0, None)]), job("b", [(2.0, None)])]
        rep = simulate_slot_schedule(jobs, capacity=4, disk_contention=True)
        assert rep.total_time == pytest.approx(2.0)

    def test_round_end_reflects_queueing(self):
        # one round with two chunks on the same disk: the round ends when
        # the second (queued) transfer finishes at t=4, not t=2.
        jobs = [job("a", [(2.0, 0), (2.0, 0)])]
        rep = simulate_slot_schedule(jobs, capacity=4, disk_contention=True)
        assert rep.total_time == pytest.approx(4.0)
        ends = sorted(r.end for r in rep.records)
        assert ends == [pytest.approx(2.0), pytest.approx(4.0)]

    def test_contention_never_faster(self):
        rng = np.random.default_rng(3)
        jobs = [
            job(i, [(float(rng.uniform(0.5, 2.0)), int(rng.integers(0, 4))) for _ in range(3)])
            for i in range(12)
        ]
        free = simulate_slot_schedule(jobs, capacity=9).total_time
        contended = simulate_slot_schedule(jobs, capacity=9, disk_contention=True).total_time
        assert contended >= free - 1e-9

    def test_contention_bounded_by_busiest_disk(self):
        rng = np.random.default_rng(4)
        jobs = [
            job(i, [(1.0, int(rng.integers(0, 3))) for _ in range(2)])
            for i in range(10)
        ]
        rep = simulate_slot_schedule(jobs, capacity=40, disk_contention=True)
        work_per_disk = {}
        for r in rep.records:
            work_per_disk[r.disk] = work_per_disk.get(r.disk, 0.0) + 1.0
        assert rep.total_time >= max(work_per_disk.values()) - 1e-9

    def test_memory_held_during_disk_queueing(self):
        """Slots stay occupied while a chunk waits for its disk — the
        contention makes memory pressure worse, not better."""
        jobs = [job("a", [(2.0, 0), (2.0, 0)]), job("b", [(1.0, 1)])]
        rep = simulate_slot_schedule(jobs, capacity=2, disk_contention=True)
        # job a holds both slots until t=4; b starts only after
        assert rep.job_finish_times["b"] == pytest.approx(5.0)

    def test_execution_options_wire_up(self):
        rng = np.random.default_rng(5)
        L = rng.uniform(1, 2, size=(8, 4))
        disk_ids = np.tile(np.array([0, 0, 1, 2]), (8, 1))  # two cols share disk 0
        plan = FullStripeRepair().build_plan(L, c=8)
        free = execute_plan(plan, L, c=8, disk_ids=disk_ids)
        contended = execute_plan(
            plan, L, c=8, disk_ids=disk_ids,
            options=ExecutionOptions(disk_contention=True),
        )
        assert contended.total_time > free.total_time

    def test_deterministic(self):
        rng = np.random.default_rng(6)
        jobs = [
            job(i, [(float(rng.uniform(0.5, 2.0)), int(rng.integers(0, 3))) for _ in range(3)])
            for i in range(10)
        ]
        a = simulate_slot_schedule(jobs, capacity=6, disk_contention=True)
        b = simulate_slot_schedule(jobs, capacity=6, disk_contention=True)
        assert a.total_time == b.total_time
