"""Disk-level heterogeneous workload generator."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.workloads import disk_heterogeneous_transfer_times


class TestDiskHeterogeneous:
    def test_shapes_aligned(self):
        w, disks = disk_heterogeneous_transfer_times(50, 6, 20, seed=0)
        assert w.L.shape == (50, 6)
        assert disks.shape == (50, 6)

    def test_distinct_disks_per_stripe(self):
        _, disks = disk_heterogeneous_transfer_times(40, 6, 20, seed=1)
        for row in disks:
            assert len(set(row.tolist())) == 6

    def test_slowness_is_per_disk(self):
        """All chunks from one disk are slow together, or none are."""
        w, disks = disk_heterogeneous_transfer_times(
            100, 6, 20, ros=0.2, slow_factor=4.0, seed=2
        )
        for d in range(20):
            mask = disks == d
            if mask.sum() == 0:
                continue
            flags = set(w.slow_mask[mask].tolist())
            assert len(flags) == 1, f"disk {d} is inconsistently slow"

    def test_slow_disk_count(self):
        w, disks = disk_heterogeneous_transfer_times(
            200, 6, 20, ros=0.25, slow_factor=4.0, seed=3
        )
        slow_disks = {int(d) for d in np.unique(disks[w.slow_mask])}
        assert len(slow_disks) == 5  # 25% of 20

    def test_slow_factor_applied(self):
        w, disks = disk_heterogeneous_transfer_times(
            300, 6, 20, ros=0.2, slow_factor=5.0, base_std=0.0, seed=4
        )
        slow_mean = w.L[w.slow_mask].mean()
        fast_mean = w.L[~w.slow_mask].mean()
        assert slow_mean == pytest.approx(fast_mean * 5.0, rel=0.01)

    def test_deterministic(self):
        a = disk_heterogeneous_transfer_times(20, 4, 10, ros=0.2, seed=9)
        b = disk_heterogeneous_transfer_times(20, 4, 10, ros=0.2, seed=9)
        assert np.array_equal(a[0].L, b[0].L)
        assert np.array_equal(a[1], b[1])

    def test_k_exceeds_disks_rejected(self):
        with pytest.raises(ConfigurationError):
            disk_heterogeneous_transfer_times(5, 8, 6)

    def test_ros_zero(self):
        w, _ = disk_heterogeneous_transfer_times(30, 4, 10, ros=0.0, seed=5)
        assert not w.slow_mask.any()

    def test_params_recorded(self):
        w, _ = disk_heterogeneous_transfer_times(10, 4, 12, ros=0.1, seed=6)
        assert w.params["kind"] == "disk-heterogeneous"
        assert w.params["num_disks"] == 12
