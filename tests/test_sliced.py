"""Slice-level repair pipelining."""

import numpy as np
import pytest

from repro.core.sliced import simulate_sliced_repair, sliced_jobs
from repro.errors import ConfigurationError


@pytest.fixture
def L():
    rng = np.random.default_rng(0)
    M = rng.uniform(1.0, 1.4, size=(30, 6))
    M[:, 0] = 6.0  # one slow chunk per stripe
    return M


class TestSlicedJobs:
    def test_slice_counts(self, L):
        jobs = sliced_jobs(L, slice_factor=4, pa=2)
        job = jobs[0]
        # ceil(6/2)=3 groups x 4 slices = 12 rounds, 2 slices each
        assert len(job.rounds) == 12
        assert all(len(r) == 2 for r in job.rounds)
        assert job.chunk_count == 6 * 4

    def test_durations_divided(self, L):
        jobs = sliced_jobs(L, slice_factor=4, pa=6)
        total = sum(c.duration for r in jobs[0].rounds for c in r)
        assert total == pytest.approx(L[0].sum())

    def test_overhead_added(self, L):
        base = sliced_jobs(L, 4, 6)[0]
        with_ovh = sliced_jobs(L, 4, 6, per_slice_overhead=0.05)[0]
        t0 = sum(c.duration for r in base.rounds for c in r)
        t1 = sum(c.duration for r in with_ovh.rounds for c in r)
        assert t1 == pytest.approx(t0 + 6 * 4 * 0.05)

    def test_slice_factor_one_is_plain_psr(self, L):
        jobs = sliced_jobs(L, 1, 2)
        assert len(jobs[0].rounds) == 3
        assert jobs[0].chunk_count == 6

    def test_keys_unique(self, L):
        job = sliced_jobs(L, 3, 2)[0]
        keys = [c.key for r in job.rounds for c in r]
        assert len(keys) == len(set(keys))

    def test_stripe_indices_respected(self, L):
        jobs = sliced_jobs(L, 2, 2, stripe_indices=list(range(100, 130)))
        assert jobs[0].job_id == 100

    @pytest.mark.parametrize("bad", [0, -1, 1.5])
    def test_bad_slice_factor(self, L, bad):
        with pytest.raises(ConfigurationError):
            sliced_jobs(L, bad, 2)

    def test_bad_overhead(self, L):
        with pytest.raises(ConfigurationError):
            sliced_jobs(L, 2, 2, per_slice_overhead=-0.1)


class TestSimulateSlicedRepair:
    def test_zero_overhead_never_slower_with_more_slices(self, L):
        """Without seek cost, finer slicing weakly reduces repair time."""
        t1 = simulate_sliced_repair(L, c=12, slice_factor=1, pa=2).total_time
        t4 = simulate_sliced_repair(L, c=12, slice_factor=4, pa=2).total_time
        assert t4 <= t1 * 1.01

    def test_overhead_creates_interior_optimum(self, L):
        """With real per-request cost the slice factor has a sweet spot:
        moderate v beats both no slicing and extreme slicing."""
        times = {
            v: simulate_sliced_repair(
                L, c=12, slice_factor=v, pa=2, per_slice_overhead=0.3
            ).total_time
            for v in (1, 4, 16)
        }
        assert times[4] < times[1]    # slicing relieves memory competition
        assert times[4] < times[16]   # seek cost punishes extreme slicing

    def test_waiting_shrinks_with_slices(self, L):
        coarse = simulate_sliced_repair(L, c=12, slice_factor=1, pa=6)
        fine = simulate_sliced_repair(L, c=12, slice_factor=8, pa=6)
        assert fine.acwt < coarse.acwt

    def test_memory_accounting_in_slices(self, L):
        rep = simulate_sliced_repair(L, c=6, slice_factor=2, pa=6)
        assert rep.total_time > 0

    def test_bad_c(self, L):
        with pytest.raises(ConfigurationError):
            simulate_sliced_repair(L, c=0, slice_factor=2, pa=2)
