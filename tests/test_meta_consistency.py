"""Meta-consistency checks between benchmarks, reporting, and docs.

These guard the reproduction pipeline itself: every benchmark artefact a
module writes must be registered in the EXPERIMENTS.md generator, and the
canonical experiment ids stay in sync.
"""

import re
from pathlib import Path


from repro.reporting import ORDER, PAPER_CLAIMS, TITLES

ROOT = Path(__file__).parent.parent
BENCHMARKS = ROOT / "benchmarks"


def artefact_ids_in_benchmarks():
    """Every results_sink("<id>", ...) call across the bench modules."""
    ids = set()
    for path in BENCHMARKS.glob("bench_*.py"):
        for match in re.finditer(r"results_sink\(\s*['\"]([\w-]+)['\"]", path.read_text()):
            ids.add(match.group(1))
    return ids


class TestPipelineConsistency:
    def test_every_artefact_registered_in_reporting(self):
        ids = artefact_ids_in_benchmarks()
        assert ids, "no benchmarks found?"
        unregistered = ids - set(ORDER)
        assert not unregistered, (
            f"benchmarks write artefacts {sorted(unregistered)} that "
            f"EXPERIMENTS.md generation would bury in the 'extra' section; "
            f"register them in repro.reporting.ORDER/TITLES/PAPER_CLAIMS"
        )

    def test_every_registered_id_has_title_and_claim(self):
        for exp_id in ORDER:
            assert exp_id in TITLES, exp_id
            assert exp_id in PAPER_CLAIMS, exp_id

    def test_no_stale_registrations(self):
        ids = artefact_ids_in_benchmarks()
        stale = set(ORDER) - ids
        assert not stale, (
            f"reporting registers {sorted(stale)} but no benchmark writes them"
        )

    def test_paper_experiments_all_covered(self):
        """The paper's five experiments and both observation figures."""
        required = {"fig4a", "fig4b", "exp1", "exp2", "exp3", "exp4", "exp5"}
        assert required <= set(ORDER)

    def test_bench_modules_have_docstrings_naming_their_figure(self):
        for path in BENCHMARKS.glob("bench_exp*.py"):
            head = path.read_text().split('"""')[1]
            assert "Figure" in head or "figure" in head, path.name
