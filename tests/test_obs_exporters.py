"""Exporters: JSONL, Chrome trace_event schema, Prometheus round-trip."""

from __future__ import annotations

import json
import math

from repro.obs.exporters import (
    chrome_trace,
    events_to_jsonl,
    parse_prometheus_text,
    prometheus_text,
    validate_chrome_trace,
    write_chrome_trace,
    write_jsonl,
    write_prometheus,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import RecordingTracer, TraceEvent


def sample_tracer() -> RecordingTracer:
    t = RecordingTracer()
    t.complete("round", "stripe 0 round 0", 0.0, 2.0, track="stripe-0")
    t.complete("read", "chunk (0, 1)", 0.5, 1.0, track="stripe-0", disk=1)
    t.instant("slot", "acquire", ts=0.5, domain="sim", track="memory")
    with t.span("profile", "plan/fsr", track="profile"):
        pass
    return t


class TestJsonl:
    def test_one_object_per_line_lossless(self):
        t = sample_tracer()
        lines = events_to_jsonl(t).splitlines()
        assert len(lines) == len(t.events)
        parsed = [json.loads(line) for line in lines]
        assert parsed[0]["cat"] == "round"
        assert parsed[0]["dur"] == 2.0
        assert parsed[1]["args"] == {"disk": 1}
        assert "dur" not in parsed[2]  # instant

    def test_write_jsonl(self, tmp_path):
        path = write_jsonl(sample_tracer(), tmp_path / "t.jsonl")
        body = path.read_text()
        assert body.endswith("\n")
        assert len(body.splitlines()) == 4

    def test_empty_trace(self, tmp_path):
        path = write_jsonl(RecordingTracer(), tmp_path / "e.jsonl")
        assert path.read_text() == ""


class TestChromeTrace:
    def test_schema_valid(self):
        doc = chrome_trace(sample_tracer())
        assert validate_chrome_trace(doc) == []
        assert doc["displayTimeUnit"] == "ms"

    def test_domains_become_pids_and_ts_rebased(self):
        doc = chrome_trace(sample_tracer())
        events = [e for e in doc["traceEvents"] if e["ph"] != "M"]
        # sim and wall events sit in different processes.
        pids = {e["pid"] for e in events}
        assert len(pids) == 2
        # Per-domain re-basing: every domain's earliest event is at ts 0.
        for pid in pids:
            assert min(e["ts"] for e in events if e["pid"] == pid) == 0.0
        # Microsecond scale: the 2 s round span becomes 2e6 us.
        round_evt = next(e for e in events if e["cat"] == "round")
        assert round_evt["ph"] == "X"
        assert round_evt["dur"] == 2.0e6

    def test_metadata_names_processes_and_threads(self):
        doc = chrome_trace(sample_tracer())
        meta = [e for e in doc["traceEvents"] if e["ph"] == "M"]
        names = {e["name"] for e in meta}
        assert names == {"process_name", "thread_name"}
        thread_names = {e["args"]["name"] for e in meta
                        if e["name"] == "thread_name"}
        assert {"stripe-0", "memory", "profile"} <= thread_names

    def test_written_file_is_loadable_json(self, tmp_path):
        path = write_chrome_trace(sample_tracer(), tmp_path / "t.json")
        doc = json.loads(path.read_text())
        assert validate_chrome_trace(doc) == []

    def test_validator_flags_problems(self):
        assert validate_chrome_trace([]) != []
        assert validate_chrome_trace({}) != []
        bad = {"traceEvents": [
            {"ph": "Z", "name": "x", "pid": 1, "tid": 1, "ts": 0},
            {"ph": "X", "name": "y", "pid": 1, "tid": 1, "ts": -1,
             "dur": math.nan},
            {"ph": "i", "pid": "one", "tid": 1, "ts": 0},
        ]}
        problems = validate_chrome_trace(bad)
        assert any("bad phase" in p for p in problems)
        assert any("bad ts" in p for p in problems)
        assert any("bad dur" in p for p in problems)
        assert any("missing name" in p for p in problems)
        assert any("missing integer pid" in p for p in problems)


def sample_registry() -> MetricsRegistry:
    r = MetricsRegistry()
    r.counter("hdpsr_rounds_total", "rounds").labels(algorithm="fsr").inc(27)
    r.counter("hdpsr_rounds_total").labels(algorithm="hd-psr-ap").inc(9)
    r.gauge("hdpsr_slots_in_use").set(4)
    h = r.histogram("hdpsr_repair_seconds", "sim time", buckets=(1.0, 10.0))
    h.labels(algorithm="fsr").observe(0.5)
    h.labels(algorithm="fsr").observe(42.0)
    return r


class TestPrometheus:
    def test_text_format_structure(self):
        text = prometheus_text(sample_registry())
        lines = text.splitlines()
        assert "# HELP hdpsr_rounds_total rounds" in lines
        assert "# TYPE hdpsr_rounds_total counter" in lines
        assert 'hdpsr_rounds_total{algorithm="fsr"} 27' in lines
        assert "hdpsr_slots_in_use 4" in lines
        assert 'hdpsr_repair_seconds_bucket{algorithm="fsr",le="+Inf"} 2' in lines
        assert 'hdpsr_repair_seconds_count{algorithm="fsr"} 2' in lines

    def test_round_trip(self, tmp_path):
        registry = sample_registry()
        path = write_prometheus(registry, tmp_path / "m.prom")
        parsed = parse_prometheus_text(path.read_text())
        assert parsed[("hdpsr_rounds_total", (("algorithm", "fsr"),))] == 27
        assert parsed[("hdpsr_rounds_total", (("algorithm", "hd-psr-ap"),))] == 9
        assert parsed[("hdpsr_slots_in_use", ())] == 4
        assert parsed[(
            "hdpsr_repair_seconds_bucket",
            (("algorithm", "fsr"), ("le", "1.0")),
        )] == 1
        assert parsed[(
            "hdpsr_repair_seconds_bucket",
            (("algorithm", "fsr"), ("le", "+Inf")),
        )] == 2
        assert parsed[(
            "hdpsr_repair_seconds_sum", (("algorithm", "fsr"),)
        )] == 42.5

    def test_untouched_bare_series_omitted(self):
        text = prometheus_text(sample_registry())
        # Label-fanned counter: no bare "hdpsr_rounds_total 0" sample.
        bare = [line for line in text.splitlines()
                if line.startswith("hdpsr_rounds_total ")]
        assert bare == []

    def test_empty_registry(self):
        assert prometheus_text(MetricsRegistry()) == ""

    def test_inf_value_round_trips(self):
        parsed = parse_prometheus_text("x_bucket{le=\"+Inf\"} +Inf\n")
        assert parsed[("x_bucket", (("le", "+Inf"),))] == math.inf


class TestEventListInput:
    def test_exporters_accept_plain_sequences(self):
        events = [TraceEvent(name="a", category="round", ts=0.0, duration=1.0,
                             domain="sim")]
        assert len(events_to_jsonl(events).splitlines()) == 1
        assert validate_chrome_trace(chrome_trace(events)) == []
