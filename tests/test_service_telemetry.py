"""The live telemetry plane: trace propagation, scrape verbs, /healthz.

Runs the daemon in-process (no subprocess) so the client and server share
one RecordingTracer — which is exactly what proves the span tree of a
traced client request stays *connected* across the wire. No pytest-asyncio
in the toolchain: every test drives its coroutine with ``asyncio.run``.
"""

import asyncio
import json

import pytest

from repro.core import ALGORITHMS
from repro.hdss.server import HDSSConfig, HighDensityStorageServer
from repro.obs import (
    EventLoopMonitor,
    MetricsRegistry,
    RecordingTracer,
    chrome_trace,
    new_span_context,
    parse_prometheus_text,
    use_registry,
    use_span,
    use_tracer,
)
from repro.service import (
    RepairService,
    ServiceClient,
    ServiceConfig,
    ServiceDaemon,
    TelemetryServer,
    stats_snapshot,
)
from repro.service import protocol
from repro.service.netserver import OPS
from repro.service.protocol import MAX_REQUEST_BYTES, ProtocolError


def make_server(seed=11):
    config = HDSSConfig(
        num_disks=12, n=5, k=3, chunk_size=2048, memory_chunks=16,
        spares=3, seed=seed, placement="rotating",
    )
    server = HighDensityStorageServer(config, store=None)
    server.provision_stripes(12, with_data=True)
    return server


def make_service(server, **cfg):
    return RepairService(
        server, ALGORITHMS["hd-psr-ap"](), ServiceConfig(**cfg) if cfg else None
    )


def lost_chunk_of(server, disk_id):
    """(stripe, shard) living on ``disk_id`` — lost once the disk fails."""
    for si, stripe in enumerate(server.layout):
        for shard, disk in enumerate(stripe.disks):
            if disk == disk_id:
                return si, shard
    raise AssertionError(f"disk {disk_id} holds no chunks")


async def start_daemon(service, **kwargs):
    daemon = ServiceDaemon(service, **kwargs)
    port = await daemon.start()
    task = asyncio.create_task(daemon.serve_until_stopped())
    return daemon, port, task


async def http_get(port, path):
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    writer.write(f"GET {path} HTTP/1.0\r\n\r\n".encode())
    await writer.drain()
    raw = await reader.read(-1)
    writer.close()
    head, _, body = raw.partition(b"\r\n\r\n")
    return int(head.split()[1]), body.decode()


# ---------------------------------------------------------------------------
# End-to-end trace propagation
# ---------------------------------------------------------------------------
class TestTracePropagation:
    def test_degraded_read_yields_connected_span_tree(self):
        tracer = RecordingTracer()
        registry = MetricsRegistry()

        async def run():
            server = make_server()
            service = make_service(server)
            daemon, port, task = await start_daemon(service)
            client = await ServiceClient.connect("127.0.0.1", port)
            root = new_span_context()
            with use_span(root):
                await client.call("fail_disk", disk=0)
                await client.call("repair", disk=0)
                si, shard = lost_chunk_of(server, 0)
                await client.read_chunk(si, shard)  # degraded path
                reply = await client.call("wait", job_id=0)
            assert reply["trace_id"] == root.trace_id
            await client.call("shutdown")
            await client.close()
            await task
            return root

        with use_tracer(tracer), use_registry(registry):
            root = asyncio.run(run())

        events = tracer.for_trace(root.trace_id)
        cats = {e.category for e in events}
        # The daemon side of each call plus the request's anatomy.
        assert "request" in cats
        assert "wait" in cats      # admission-gate / piggyback waits
        assert "read" in cats      # survivor reads
        assert "decode" in cats    # partial decode
        assert "writeback" in cats # shard write-back
        # Connectivity: walking parent_id from any event reaches the root.
        by_span = {e.args["span_id"]: e for e in events}
        for event in events:
            seen = set()
            cursor = event.args
            while cursor.get("parent_id") is not None:
                parent = cursor["parent_id"]
                assert parent not in seen, "parent cycle"
                seen.add(parent)
                if parent == root.span_id:
                    break
                assert parent in by_span, (
                    f"{event.name}: dangling parent {parent}"
                )
                cursor = by_span[parent].args
            else:
                pytest.fail(f"{event.name} has no parent chain to the root")

    def test_trace_exports_to_chrome_trace_with_ids(self):
        tracer = RecordingTracer()
        registry = MetricsRegistry()

        async def run():
            server = make_server()
            service = make_service(server)
            daemon, port, task = await start_daemon(service)
            client = await ServiceClient.connect("127.0.0.1", port)
            root = new_span_context()
            with use_span(root):
                await client.call("ping")
            await client.call("shutdown")
            await client.close()
            await task
            return root

        with use_tracer(tracer), use_registry(registry):
            root = asyncio.run(run())
        doc = chrome_trace(tracer)
        stamped = [
            e for e in doc["traceEvents"]
            if e.get("args", {}).get("trace_id") == root.trace_id
        ]
        assert stamped, "trace ids must survive the Chrome export"

    def test_untraced_calls_carry_no_trace(self):
        async def run():
            server = make_server()
            service = make_service(server)
            daemon, port, task = await start_daemon(service)
            client = await ServiceClient.connect("127.0.0.1", port)
            reply = await client.call("ping")
            assert "trace_id" not in reply
            await client.call("shutdown")
            await client.close()
            await task

        asyncio.run(run())

    def test_workload_report_carries_trace_id(self):
        from repro.service import run_workload

        async def run():
            server = make_server()
            service = make_service(server)
            daemon, port, task = await start_daemon(service)
            report = await run_workload(
                "127.0.0.1", port, disks=[0], reads=8, read_concurrency=2,
                shutdown=True,
            )
            await task
            return report

        report = asyncio.run(run())
        assert len(report["trace_id"]) == 16
        assert report["exit_code"] == 0


# ---------------------------------------------------------------------------
# stats / metrics verbs
# ---------------------------------------------------------------------------
class TestScrapeVerbs:
    def test_stats_reports_progress_gates_and_percentiles(self):
        registry = MetricsRegistry()

        async def run():
            server = make_server()
            service = make_service(server)
            daemon, port, task = await start_daemon(
                service, monitor=EventLoopMonitor(interval=0.01)
            )
            client = await ServiceClient.connect("127.0.0.1", port)
            await client.call("fail_disk", disk=0)
            await client.call("repair", disk=0)
            si, shard = lost_chunk_of(server, 0)
            await client.read_chunk(si, shard)
            await client.call("wait", job_id=0)
            await asyncio.sleep(0.05)  # let the loop monitor tick
            stats = await client.stats()
            await client.call("shutdown")
            await client.close()
            await task
            return stats

        with use_registry(registry):
            stats = asyncio.run(run())
        (job,) = stats["jobs"]
        assert job["done"] is True
        assert job["stripes_done"] == job["stripes_total"] > 0
        assert job["eta_seconds"] == 0.0
        assert job["algorithm"] == "hd-psr-ap"
        assert stats["gates"], "per-disk gate depths must be reported"
        gate = next(iter(stats["gates"].values()))
        assert set(gate) == {
            "width", "inflight", "waiting_foreground", "waiting_background"
        }
        assert stats["foreground"], "read percentiles must be reported"
        paths = set(stats["foreground"])
        assert paths & {"piggyback", "decode"}, "the degraded read must show"
        for entry in stats["foreground"].values():
            assert entry["count"] >= 1
            assert "p99" in entry
        assert stats["runtime"]["ticks"] > 0
        assert stats["writer_backlog"] == 0  # drained by `wait`

    def test_stats_refreshes_progress_gauges(self):
        registry = MetricsRegistry()

        async def run():
            server = make_server()
            service = make_service(server)
            server.fail_disk(0)
            ticket = service.submit_repair(0)
            await ticket.wait()
            return stats_snapshot(service)

        with use_registry(registry):
            snap = asyncio.run(run())
        assert snap["jobs"][0]["done"]
        from repro.service.telemetry import JOB_PROGRESS
        gauge = registry.get(JOB_PROGRESS)
        assert gauge is not None
        assert gauge.labels(disk="0", job="0").value == 1.0

    def test_metrics_verb_returns_prometheus_text(self):
        registry = MetricsRegistry()

        async def run():
            server = make_server()
            service = make_service(server)
            daemon, port, task = await start_daemon(service)
            client = await ServiceClient.connect("127.0.0.1", port)
            await client.read_chunk(0, 0)
            text = await client.metrics_text()
            await client.call("shutdown")
            await client.close()
            await task
            return text

        with use_registry(registry):
            text = asyncio.run(run())
        parsed = parse_prometheus_text(text)
        names = {name for name, _ in parsed}
        assert "hdpsr_service_foreground_reads_total" in names

    def test_ops_tuple_covers_dispatch(self):
        assert "stats" in OPS and "metrics" in OPS


# ---------------------------------------------------------------------------
# HTTP listener: /metrics + /healthz readiness
# ---------------------------------------------------------------------------
class TestTelemetryServer:
    def test_healthz_flips_with_daemon_lifecycle(self):
        registry = MetricsRegistry()

        async def run():
            server = make_server()
            service = make_service(server)
            telemetry = TelemetryServer()
            tport = await telemetry.start()
            status, body = await http_get(tport, "/healthz")
            assert (status, body) == (503, "starting\n")

            daemon, port, task = await start_daemon(service, telemetry=telemetry)
            for _ in range(100):
                status, body = await http_get(tport, "/healthz")
                if status == 200:
                    break
                await asyncio.sleep(0.01)
            assert (status, body) == (200, "ok\n")

            client = await ServiceClient.connect("127.0.0.1", port)
            await client.read_chunk(0, 0)
            status, text = await http_get(tport, "/metrics")
            assert status == 200
            await client.call("shutdown")
            await client.close()
            await task
            assert telemetry.ready is False
            with pytest.raises(OSError):
                await http_get(tport, "/healthz")  # listener is gone
            return text

        with use_registry(registry):
            text = asyncio.run(run())
        assert "hdpsr_" in text

    def test_metrics_scrape_refreshes_progress_gauges(self):
        # The daemon wires TelemetryServer.refresh to stats_snapshot, so
        # an HTTP scrape materializes the scrape-time gauges (job
        # progress, writer backlog) even if no `stats` verb ever ran.
        registry = MetricsRegistry()

        async def run():
            server = make_server()
            server.fail_disk(0)
            service = make_service(server)
            telemetry = TelemetryServer()
            tport = await telemetry.start()
            daemon, port, task = await start_daemon(service, telemetry=telemetry)
            await service.submit_repair(0).wait()
            status, text = await http_get(tport, "/metrics")
            assert status == 200
            client = await ServiceClient.connect("127.0.0.1", port)
            await client.call("shutdown")
            await client.close()
            await task
            return text

        with use_registry(registry):
            text = asyncio.run(run())
        parsed = parse_prometheus_text(text)
        series = {
            labels: value for (name, labels), value in parsed.items()
            if name == "hdpsr_service_job_progress_ratio"
        }
        assert series, "scrape did not refresh the progress gauge"
        assert set(series.values()) == {1.0}

    def test_unknown_route_and_method(self):
        async def run():
            telemetry = TelemetryServer()
            tport = await telemetry.start()
            status, _ = await http_get(tport, "/nope")
            assert status == 404
            reader, writer = await asyncio.open_connection("127.0.0.1", tport)
            writer.write(b"POST /metrics HTTP/1.0\r\n\r\n")
            await writer.drain()
            raw = await reader.read(-1)
            writer.close()
            assert b"405" in raw.split(b"\r\n", 1)[0]
            await telemetry.stop()

        asyncio.run(run())


# ---------------------------------------------------------------------------
# Protocol hardening (malformed input never kills the daemon)
# ---------------------------------------------------------------------------
class TestProtocolHardening:
    async def _daemon(self):
        server = make_server()
        service = make_service(server)
        return await start_daemon(service)

    async def _raw(self, port):
        return await asyncio.open_connection(
            "127.0.0.1", port, limit=protocol.MAX_MESSAGE_BYTES
        )

    def test_non_json_line_answered_and_connection_survives(self):
        async def run():
            daemon, port, task = await self._daemon()
            reader, writer = await self._raw(port)
            writer.write(b"this is not json\n")
            await writer.drain()
            reply = await protocol.read_message(reader)
            assert reply["ok"] is False
            assert reply["kind"] == "ProtocolError"
            # Same connection still serves requests.
            writer.write(protocol.encode_message({"op": "ping"}))
            await writer.drain()
            reply = await protocol.read_message(reader)
            assert reply["ok"] is True
            writer.write(protocol.encode_message({"op": "shutdown"}))
            await writer.drain()
            await protocol.read_message(reader)
            writer.close()
            await task

        asyncio.run(run())

    def test_non_object_payload_is_recoverable(self):
        async def run():
            daemon, port, task = await self._daemon()
            reader, writer = await self._raw(port)
            writer.write(b"[1, 2, 3]\n")
            await writer.drain()
            reply = await protocol.read_message(reader)
            assert reply["ok"] is False and reply["kind"] == "ProtocolError"
            writer.write(protocol.encode_message({"op": "shutdown"}))
            await writer.drain()
            assert (await protocol.read_message(reader))["ok"] is True
            writer.close()
            await task

        asyncio.run(run())

    def test_unknown_op_is_structured_error(self):
        async def run():
            daemon, port, task = await self._daemon()
            client = await ServiceClient.connect("127.0.0.1", port)
            with pytest.raises(Exception) as exc_info:
                await client.call("frobnicate")
            assert "unknown op" in str(exc_info.value)
            await client.call("shutdown")
            await client.close()
            await task

        asyncio.run(run())

    def test_missing_field_is_structured_error(self):
        async def run():
            daemon, port, task = await self._daemon()
            reader, writer = await self._raw(port)
            writer.write(protocol.encode_message({"op": "read"}))  # no stripe
            await writer.drain()
            reply = await protocol.read_message(reader)
            assert reply["ok"] is False and reply["kind"] == "KeyError"
            writer.write(protocol.encode_message({"op": "shutdown"}))
            await writer.drain()
            assert (await protocol.read_message(reader))["ok"] is True
            writer.close()
            await task

        asyncio.run(run())

    def test_oversized_frame_answered_then_closed(self):
        async def run():
            daemon, port, task = await self._daemon()
            reader, writer = await self._raw(port)
            writer.write(b"x" * (MAX_REQUEST_BYTES + 64 * 1024) + b"\n")
            await writer.drain()
            reply = await protocol.read_message(reader)
            assert reply["ok"] is False and reply["kind"] == "ProtocolError"
            # Fatal: the daemon hangs up after answering.
            assert await protocol.read_message(reader) is None
            writer.close()
            # Daemon itself survives: a fresh connection still works.
            client = await ServiceClient.connect("127.0.0.1", port)
            assert (await client.call("ping"))["ok"] is True
            await client.call("shutdown")
            await client.close()
            await task

        asyncio.run(run())

    def test_read_message_cap_is_fatal(self):
        async def run():
            async def feed(writer_data):
                reader = asyncio.StreamReader()
                reader.feed_data(writer_data)
                reader.feed_eof()
                return reader

            reader = await feed(b"x" * 128 + b"\n")
            with pytest.raises(ProtocolError) as exc_info:
                await protocol.read_message(reader, max_bytes=64)
            assert exc_info.value.fatal

        asyncio.run(run())

    def test_protocol_error_fatal_flag_default(self):
        assert ProtocolError("x").fatal is False
        assert ProtocolError("x", fatal=True).fatal is True


# ---------------------------------------------------------------------------
# Event-loop monitor
# ---------------------------------------------------------------------------
class TestEventLoopMonitor:
    def test_measures_ticks_and_snapshot_keys(self):
        registry = MetricsRegistry()

        async def run():
            monitor = EventLoopMonitor(interval=0.005)
            monitor.start()
            monitor.start()  # idempotent
            await asyncio.sleep(0.06)
            snap = monitor.snapshot()
            await monitor.stop()
            assert not monitor.running
            return snap

        with use_registry(registry):
            snap = asyncio.run(run())
        assert snap["ticks"] >= 3
        assert snap["loop_lag_last_seconds"] >= 0.0
        assert "loop_lag_p99_seconds" in snap
        assert registry.get("hdpsr_runtime_loop_lag_seconds") is not None

    def test_lag_reflects_blocked_loop(self):
        registry = MetricsRegistry()

        async def run():
            import time as _time

            monitor = EventLoopMonitor(interval=0.005)
            monitor.start()
            await asyncio.sleep(0.02)
            _time.sleep(0.1)  # block the loop on purpose
            await asyncio.sleep(0.02)
            snap = monitor.snapshot()
            await monitor.stop()
            return snap

        with use_registry(registry):
            snap = asyncio.run(run())
        assert snap["ticks"] > 0
        # The tick pending across the block woke ~0.095 s late; the lag
        # summary's running sum must have caught it.
        lag_summary = registry.get("hdpsr_runtime_loop_lag_seconds")
        assert lag_summary.sum > 0.05


# ---------------------------------------------------------------------------
# hdpsr top rendering
# ---------------------------------------------------------------------------
class TestTopRendering:
    def test_render_top_frame(self):
        from repro.cli import _render_top

        frame = _render_top({
            "jobs": [{
                "job_id": 0, "disk": 3, "algorithm": "hd-psr-ap",
                "stripes_total": 40, "stripes_done": 10, "stripes_lost": 0,
                "chunks_rebuilt": 10, "resumed_stripes": 0, "replans": 1,
                "fresh_restarts": 0, "checksum_failures": 0,
                "elapsed_seconds": 2.0, "eta_seconds": 6.0, "done": False,
            }],
            "foreground": {"healthy": {"count": 9, "p50": 0.001, "p99": 0.002,
                                       "p999": 0.002}},
            "gates": {"3": {"width": 2, "inflight": 1, "waiting_foreground": 0,
                            "waiting_background": 2}},
            "journal": {"records": 12, "commits": 12, "bytes": 4096},
            "runtime": {"loop_lag_last_seconds": 0.0003,
                        "loop_lag_p99_seconds": 0.001},
            "writer_backlog": 5,
            "chunks_enqueued": 10,
            "failed": [3],
        })
        assert "10/40" in frame and "25.0" in frame
        assert "6.0" in frame          # eta
        assert "piggyback" not in frame
        assert "4.00 KiB" in frame     # journal volume
        assert "failed disks: 3" in frame

    def test_render_top_idle_daemon(self):
        from repro.cli import _render_top

        frame = _render_top({"jobs": [], "foreground": {}, "gates": {},
                             "journal": {}, "writer_backlog": 0,
                             "chunks_enqueued": 0, "failed": []})
        assert "no repair jobs" in frame
