"""Open-loop arrival generators: determinism, mean rate, and shape.

The properties the overload work leans on: same seed → byte-identical
schedule (the chaos scenario replays the same stampede every run), the
realised mean rate tracks the configured one within ±5% (the generators
are honest about offered load), and each shape actually has its shape
(diurnal peaks vs troughs, bursty clustering, a flash step). Everything
is seeded, so these are property tests over a fixed seed set, not flaky
statistics.
"""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.workloads.arrivals import (
    SHAPES,
    bursty_arrivals,
    constant_arrivals,
    diurnal_arrivals,
    flash_crowd_arrivals,
    make_arrivals,
)

#: Enough expected arrivals (rate * duration = 4000) that ±5% is ~3 sigma
#: for a Poisson count — and the draws are seeded, so no flakes either way.
RATE = 200.0
DURATION = 20.0
SEEDS = (0, 1, 2, 3, 4)

BUILDERS = {
    "constant": constant_arrivals,
    "diurnal": diurnal_arrivals,
    "bursty": bursty_arrivals,
    "flash": flash_crowd_arrivals,
}


class TestDeterminism:
    @pytest.mark.parametrize("shape", SHAPES)
    def test_same_seed_byte_identical(self, shape):
        a = make_arrivals(shape, RATE, DURATION, seed=7)
        b = make_arrivals(shape, RATE, DURATION, seed=7)
        assert a.times.dtype == np.float64
        assert np.array_equal(a.times, b.times)

    @pytest.mark.parametrize("shape", SHAPES)
    def test_different_seed_different_schedule(self, shape):
        a = make_arrivals(shape, RATE, DURATION, seed=7)
        b = make_arrivals(shape, RATE, DURATION, seed=8)
        assert not np.array_equal(a.times, b.times)


#: Kwargs under which each shape's long-run mean is `rate`: diurnal needs
#: whole periods (the sinusoid only averages out over full cycles), bursty
#: needs many on/off cycles (~800 here) for the phase fractions to settle.
MEAN_KWARGS = {
    "constant": {},
    "diurnal": {"period": DURATION / 2},
    "bursty": {"mean_on": 0.005, "mean_off": 0.02},
}


class TestMeanRate:
    @pytest.mark.parametrize("shape", sorted(MEAN_KWARGS))
    @pytest.mark.parametrize("seed", SEEDS)
    def test_mean_rate_within_5_percent(self, shape, seed):
        sched = BUILDERS[shape](
            RATE, DURATION, seed=seed, **MEAN_KWARGS[shape]
        )
        assert sched.count > 0
        err = abs(sched.mean_rate - RATE) / RATE
        assert err < 0.05, (
            f"{shape} seed {seed}: realised {sched.mean_rate:.1f}/s "
            f"vs configured {RATE}/s ({err:.1%} off)"
        )

    @pytest.mark.parametrize("seed", SEEDS)
    def test_flash_mean_is_base_plus_spike(self, seed):
        # flash's `rate` is the *base*; the overall mean is the piecewise
        # blend (spike_factor over the middle third here).
        sched = flash_crowd_arrivals(
            RATE, DURATION, spike_factor=8.0, seed=seed
        )
        expected = RATE * (2 / 3 + 8.0 / 3)
        assert abs(sched.mean_rate - expected) / expected < 0.05


class TestShapeInvariants:
    @pytest.mark.parametrize("shape", SHAPES)
    @pytest.mark.parametrize("seed", SEEDS)
    def test_sorted_and_in_horizon(self, shape, seed):
        sched = BUILDERS[shape](RATE, DURATION, seed=seed)
        assert np.all(np.diff(sched.times) >= 0)
        assert sched.times[0] >= 0.0
        assert sched.times[-1] < DURATION
        assert sched.duration == DURATION

    def test_diurnal_peak_beats_trough(self):
        # period = horizon: first half is the peak half-sine, second the
        # trough; their realised rates must straddle the mean accordingly.
        sched = diurnal_arrivals(
            RATE, DURATION, period=DURATION, amplitude=0.8, seed=3
        )
        peak = sched.rate_in(0.0, DURATION / 2)
        trough = sched.rate_in(DURATION / 2, DURATION)
        assert peak > RATE > trough
        assert peak > 2.0 * trough

    def test_bursty_is_overdispersed(self):
        # MMPP counts in fixed bins have variance > mean (a plain Poisson
        # process has variance ≈ mean); that's what "bursty" means.
        bins = np.arange(0.0, DURATION + 0.25, 0.25)
        bursty = bursty_arrivals(RATE, DURATION, burst_factor=8.0, seed=5)
        flat = constant_arrivals(RATE, DURATION, seed=5)
        b_counts, _ = np.histogram(bursty.times, bins)
        f_counts, _ = np.histogram(flat.times, bins)
        assert np.var(b_counts) > 2.0 * np.mean(b_counts)
        assert np.var(f_counts) < 2.0 * np.mean(f_counts)

    def test_flash_spike_window_rate(self):
        sched = flash_crowd_arrivals(
            100.0, 9.0, spike_factor=6.0, spike_start=3.0,
            spike_duration=3.0, seed=2,
        )
        base = sched.rate_in(0.0, 3.0)
        spike = sched.rate_in(3.0, 6.0)
        after = sched.rate_in(6.0, 9.0)
        assert spike / base > 4.0
        assert spike / after > 4.0
        assert sched.params["spike_start"] == 3.0

    def test_rate_in_empty_window(self):
        sched = constant_arrivals(50.0, 2.0, seed=0)
        assert sched.rate_in(1.0, 1.0) == 0.0
        assert sched.rate_in(2.0, 1.0) == 0.0


class TestValidation:
    def test_unknown_shape_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown arrival shape"):
            make_arrivals("sawtooth", 10.0, 1.0)

    @pytest.mark.parametrize("shape", SHAPES)
    def test_nonpositive_rate_rejected(self, shape):
        with pytest.raises(ConfigurationError):
            make_arrivals(shape, 0.0, 1.0)
        with pytest.raises(ConfigurationError):
            make_arrivals(shape, 10.0, -1.0)

    def test_shape_specific_knobs_validated(self):
        with pytest.raises(ConfigurationError, match="amplitude"):
            diurnal_arrivals(10.0, 1.0, amplitude=1.5)
        with pytest.raises(ConfigurationError, match="burst_factor"):
            bursty_arrivals(10.0, 1.0, burst_factor=1.0)
        with pytest.raises(ConfigurationError, match="spike_factor"):
            flash_crowd_arrivals(10.0, 1.0, spike_factor=0.5)
        with pytest.raises(ConfigurationError, match="spike_start"):
            flash_crowd_arrivals(10.0, 1.0, spike_start=5.0)

    def test_params_carry_ground_truth(self):
        sched = make_arrivals("bursty", 40.0, 2.0, seed=1, burst_factor=4.0)
        assert sched.params["kind"] == "bursty"
        assert sched.params["rate_on"] == pytest.approx(
            4.0 * sched.params["rate_off"]
        )
