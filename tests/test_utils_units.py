"""Unit tests for repro.utils.units."""

import pytest

from repro.errors import ConfigurationError
from repro.utils.units import GiB, KiB, MiB, TiB, format_bytes, format_duration, parse_size


class TestConstants:
    def test_values(self):
        assert KiB == 2**10
        assert MiB == 2**20
        assert GiB == 2**30
        assert TiB == 2**40


class TestParseSize:
    @pytest.mark.parametrize(
        "text,expected",
        [
            ("64MiB", 64 * MiB),
            ("64 MiB", 64 * MiB),
            ("64mib", 64 * MiB),
            ("64M", 64 * MiB),
            ("64MB", 64 * MiB),
            ("1KiB", KiB),
            ("1.5GiB", int(1.5 * GiB)),
            ("2TiB", 2 * TiB),
            ("100GiB", 100 * GiB),
            ("512", 512),
            ("512b", 512),
            ("0", 0),
        ],
    )
    def test_strings(self, text, expected):
        assert parse_size(text) == expected

    def test_int_passthrough(self):
        assert parse_size(4096) == 4096

    def test_float_integral(self):
        assert parse_size(4096.0) == 4096

    def test_float_fractional_rejected(self):
        with pytest.raises(ConfigurationError):
            parse_size(0.5)

    def test_negative_rejected(self):
        with pytest.raises(ConfigurationError):
            parse_size(-1)

    def test_bool_rejected(self):
        with pytest.raises(ConfigurationError):
            parse_size(True)

    @pytest.mark.parametrize("bad", ["", "abc", "12XB", "1.2.3MiB", "MiB"])
    def test_garbage_rejected(self, bad):
        with pytest.raises(ConfigurationError):
            parse_size(bad)

    def test_non_integral_bytes_rejected(self):
        # 0.3 KiB = 307.2 bytes
        with pytest.raises(ConfigurationError):
            parse_size("0.3KiB")


class TestFormatBytes:
    def test_mib(self):
        assert format_bytes(64 * MiB) == "64.00 MiB"

    def test_gib(self):
        assert format_bytes(2 * GiB) == "2.00 GiB"

    def test_small(self):
        assert format_bytes(100) == "100 B"

    def test_negative(self):
        assert format_bytes(-KiB).startswith("-")

    def test_precision(self):
        assert format_bytes(int(1.5 * MiB), precision=1) == "1.5 MiB"


class TestFormatDuration:
    def test_zero(self):
        assert format_duration(0) == "0 s"

    def test_microseconds(self):
        assert "us" in format_duration(5e-6)

    def test_milliseconds(self):
        assert "ms" in format_duration(0.005)

    def test_seconds(self):
        assert format_duration(12.5) == "12.50 s"

    def test_minutes(self):
        assert "min" in format_duration(600)

    def test_hours(self):
        assert "h" in format_duration(10_000)

    def test_negative(self):
        assert format_duration(-1.0).startswith("-")

    def test_roundtrip_monotone(self):
        # formatted magnitudes should not decrease as input grows
        assert format_duration(1.0) != format_duration(100.0)
