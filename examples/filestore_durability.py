#!/usr/bin/env python
"""Byte-exact recovery on a real filesystem store.

Mirrors the paper's deployment layout — one directory per disk, one file
per chunk — and walks the full durability story end to end:

1. write objects through the (9, 6) RS encoder into per-disk directories;
2. fail a disk (its chunk files are destroyed);
3. serve degraded reads while the disk is down;
4. repair with HD-PSR-AS through the bounded c-chunk repair memory,
   feeding partial stripe rounds into the incremental decoder;
5. verify every rebuilt chunk byte-for-byte and every object end to end.

Run:  python examples/filestore_durability.py [workdir]
"""

from __future__ import annotations

import sys
import tempfile
from pathlib import Path

import numpy as np

from repro import (
    ActiveSlowerFirstRepair,
    DataPathExecutor,
    FileChunkStore,
    HDSSConfig,
    HighDensityStorageServer,
)
from repro.utils import AsciiTable, format_bytes


def main() -> None:
    workdir = Path(sys.argv[1]) if len(sys.argv) > 1 else Path(tempfile.mkdtemp(prefix="hdpsr-"))
    print(f"Chunk files under: {workdir}\n")

    config = HDSSConfig(
        num_disks=12,
        n=9,
        k=6,
        chunk_size="256KiB",
        memory_chunks=12,
        spares=3,
        seed=99,
    )
    server = HighDensityStorageServer(config, store=FileChunkStore(workdir))

    # 1. write objects
    rng = np.random.default_rng(0)
    objects = {}
    for i in range(10):
        data = rng.integers(0, 256, size=int(rng.integers(100_000, 1_400_000)),
                            dtype=np.uint8).tobytes()
        stripe = server.write_object(data)
        objects[stripe.index] = data
    total = sum(len(d) for d in objects.values())
    print(f"Wrote {len(objects)} objects, {format_bytes(total)} of user data "
          f"as {len(server.layout)} RS({config.n},{config.k}) stripes.")

    # 2. fail the busiest disk
    victim = max(range(config.num_disks), key=lambda d: len(server.layout.stripe_set(d)))
    lost_chunks = server.store.chunks_on_disk(victim)
    server.fail_disk(victim)
    print(f"Disk {victim} failed; {len(lost_chunks)} chunk files destroyed.")

    # 3. degraded reads still serve every object
    for idx, data in objects.items():
        assert server.read_object(idx) == data
    print("Degraded reads: all objects still readable (decode on the fly).")

    # 4. repair through the bounded memory
    stripe_indices, survivor_ids, L = server.transfer_time_matrix([victim])
    plan = ActiveSlowerFirstRepair().build_plan(L, config.memory_chunks)
    stats = DataPathExecutor(server).repair(plan, stripe_indices, survivor_ids)

    table = AsciiTable(["metric", "value"], title="Repair data path")
    table.add_row(["stripes repaired", stats.stripes_repaired])
    table.add_row(["chunks read", stats.chunks_read])
    table.add_row(["data read", format_bytes(stats.bytes_read)])
    table.add_row(["chunks rebuilt", stats.chunks_rebuilt])
    table.add_row(["data written to spares", format_bytes(stats.bytes_written)])
    table.add_row(["peak repair memory (chunks)", stats.peak_memory_chunks])
    table.add_row(["memory capacity c (chunks)", config.memory_chunks])
    print()
    print(table.render())

    # 5. commit the placement remap and certify with a scrub
    assert stats.chunks_rebuilt == len(lost_chunks)
    assert stats.peak_memory_chunks <= config.memory_chunks
    remapped = server.commit_writebacks(stats.writebacks)
    scrub = server.scrub()
    assert scrub.healthy, (scrub.degraded, scrub.corrupt)
    for idx, data in objects.items():
        assert server.read_object(idx) == data
    print(f"\nRecovery certified: {remapped} shards remapped to spare disks "
          f"{sorted({w[2] for w in stats.writebacks})}; post-repair scrub "
          f"found {len(scrub.clean)} clean stripes, 0 degraded, 0 corrupt. "
          "All objects verified byte-for-byte.")


if __name__ == "__main__":
    main()
