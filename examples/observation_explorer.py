#!/usr/bin/env python
"""Explore the paper's §3 observations on synthetic transfer-time matrices.

Regenerates, as text tables, the three relationships behind HD-PSR's design:

* Observation 1 (Figure 3): ``P_a = ceil(c / P_r)`` — the two parallelism
  degrees restrict each other;
* Observation 2 (Figure 4a): ACWT grows with ``P_a``, and grows with the
  slow-chunk ratio ROS;
* Observation 3 (Figure 4b): total repair rounds grow with ``P_r``;
* the §3.3 trade-off: total repair time is minimised at an *interior*
  ``P_a`` — neither FSR (``P_a = k``) nor fully serial (``P_a = 1``).

Uses the paper's exact workload: s=100, k=12, c=12, times ~ N(2, 4),
ROS in {2, 5, 8, 10}%.

Run:  python examples/observation_explorer.py
"""

from __future__ import annotations

from repro.core.analysis import (
    acwt_curve_vs_pa,
    observation1_table,
    rounds_curve_vs_pr,
    total_time_curve_vs_pa,
)
from repro.utils import AsciiTable
from repro.workloads import normal_transfer_times

S, K, C = 100, 12, 12
ROS_GRID = [0.02, 0.05, 0.08, 0.10]


def observation1() -> None:
    table = AsciiTable(["P_a", "P_r = ceil(c/P_a)"], title=f"Observation 1 (c={C})")
    for pa, pr in observation1_table(C, pa_values=[1, 2, 3, 4, 6, 12]):
        table.add_row([pa, pr])
    print(table.render())
    print()


def observation2() -> None:
    pa_values = [1, 2, 3, 4, 6, 12]
    curves = {}
    for ros in ROS_GRID:
        L = normal_transfer_times(S, K, mean=2.0, variance=4.0, ros=ros, seed=42).L
        curves[ros] = acwt_curve_vs_pa(L, C, pa_values=pa_values)
    table = AsciiTable(
        ["P_a"] + [f"ACWT ROS={ros:.0%}" for ros in ROS_GRID],
        title=f"Observation 2 / Figure 4(a): ACWT vs P_a (s={S}, k={K}, c={C})",
    )
    for pa in pa_values:
        table.add_row([pa] + [curves[ros][pa] for ros in ROS_GRID])
    print(table.render())
    print()


def observation3() -> None:
    curve = rounds_curve_vs_pr(K, C, pr_values=[1, 2, 3, 4, 6, 12])
    table = AsciiTable(["P_r", "P_a", "total repair rounds"],
                       title="Observation 3 / Figure 4(b): TR vs P_r")
    for pr, tr in curve.items():
        table.add_row([pr, -(-C // pr), tr])
    print(table.render())
    print()


def tradeoff() -> None:
    L = normal_transfer_times(S, K, mean=2.0, variance=4.0, ros=0.08,
                              slow_factor=6.0, seed=7).L
    curve = total_time_curve_vs_pa(L, C, sort_rows=True)
    best = min(curve, key=curve.get)
    table = AsciiTable(["P_a", "total repair time", ""],
                       title="§3.3 trade-off: repair time vs P_a (ROS=8%)")
    for pa, t in curve.items():
        marker = "<- optimum" if pa == best else ("<- FSR" if pa == K else "")
        table.add_row([pa, t, marker])
    print(table.render())
    print(f"\nHD-PSR-AP's sweep would pick P_a = {best}: "
          f"{(1 - curve[best] / curve[K]) * 100:.1f}% faster than FSR here.")


def main() -> None:
    observation1()
    observation2()
    observation3()
    tradeoff()


if __name__ == "__main__":
    main()
