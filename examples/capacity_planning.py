#!/usr/bin/env python
"""Capacity planning: choose a code + repair scheme for a durability target.

A storage architect's workflow on top of the library:

1. candidate configurations (RS widths, memory sizes, repair schemes);
2. estimate each candidate's single-disk repair time on the modeled
   chassis (hypothetical failure — no server mutation);
3. Monte-Carlo the 10-year data-loss probability with that repair time as
   the vulnerability window;
4. rank candidates by durability at their storage overhead.

Run:  python examples/capacity_planning.py
"""

from __future__ import annotations

from repro import (
    ActivePreliminaryRepair,
    FullStripeRepair,
    WeibullLifetime,
    build_exp_server,
    estimate_repair_seconds,
    simulate_durability,
)
from repro.reliability.lifetimes import YEAR_SECONDS
from repro.utils import AsciiTable, format_duration

#: Aggressive wear-out fleet so differences show at small trial counts.
LIFETIME = WeibullLifetime(scale_seconds=0.9 * YEAR_SECONDS, shape=1.1)
#: Scale repair windows up so the vulnerability window is material.
AMPLIFY = 2000.0
TRIALS = 300

CANDIDATES = [
    # (label, n, k, scheme factory)
    ("RS(6,4) + FSR", 6, 4, FullStripeRepair),
    ("RS(6,4) + HD-PSR-AP", 6, 4, ActivePreliminaryRepair),
    ("RS(9,6) + FSR", 9, 6, FullStripeRepair),
    ("RS(9,6) + HD-PSR-AP", 9, 6, ActivePreliminaryRepair),
    ("RS(14,10) + FSR", 14, 10, FullStripeRepair),
    ("RS(14,10) + HD-PSR-AP", 14, 10, ActivePreliminaryRepair),
]


def main() -> None:
    table = AsciiTable(
        ["configuration", "overhead", "repair time", "P(loss, 10y)", "MTTDL (y)"],
        title=f"Capacity planning: 36 disks, 10% slow, {TRIALS} trials",
        float_fmt=".4f",
    )
    for label, n, k, factory in CANDIDATES:
        server = build_exp_server(
            n=n, k=k, disk_size="2GiB", chunk_size="64MiB",
            num_disks=36, memory_chunks=2 * k, ros=0.10, slow_factor=4.0,
            seed=7, placement="random",
        )
        repair = estimate_repair_seconds(server, factory(), disk=0)
        result = simulate_durability(
            server.layout, num_disks=36, lifetime=LIFETIME,
            repair_seconds=repair * AMPLIFY, mission_years=10,
            trials=TRIALS, seed=99,
        )
        mttdl = "inf" if result.mttdl_years == float("inf") else f"{result.mttdl_years:.0f}"
        table.add_row([
            label,
            f"{n / k:.2f}x",
            format_duration(repair),
            result.loss_probability,
            mttdl,
        ])
    print(table.render())
    print(
        "\nReading the table: HD-PSR reduces the repair window at zero storage "
        "cost, which buys the same kind of durability improvement as adding "
        "parity — the paper's motivation made quantitative."
    )


if __name__ == "__main__":
    main()
