#!/usr/bin/env python
"""Multi-disk failure in a warm-storage rack: naive vs cooperative repair.

Models the scenario the paper's §4.4 targets: correlated disk failures in a
high-density chassis (a backplane hiccup takes out 2-3 neighbouring
spindles). Shows how the cooperative scheme's stripe-set union removes
duplicate reads and decodes, for each of the repair algorithms.

Run:  python examples/datacenter_recovery.py
"""

from __future__ import annotations

from repro import (
    ActivePreliminaryRepair,
    ActiveSlowerFirstRepair,
    FullStripeRepair,
    PassiveRepair,
    build_exp_server,
    cooperative_multi_disk_repair,
    naive_multi_disk_repair,
)
from repro.utils import AsciiTable, format_bytes, format_duration

#: The paper's Experiment-5 configuration.
N, K = 14, 10
DISK_SIZE = "2GiB"           # scaled from the paper's 200 GiB
CHUNK = "64MiB"


def build_server(seed: int = 7):
    return build_exp_server(
        n=N, k=K, disk_size=DISK_SIZE, chunk_size=CHUNK,
        num_disks=36, memory_chunks=2 * K, ros=0.1, slow_factor=4.0, seed=seed,
    )


def run_scenario(num_failed: int) -> None:
    print(f"=== {num_failed} disk(s) fail simultaneously ===")
    table = AsciiTable(
        ["algorithm", "mode", "repair time", "chunks read", "data read", "rebuilt"],
        title=f"RS({N},{K}), {DISK_SIZE}/disk, chunk {CHUNK}",
    )
    for factory in (FullStripeRepair, ActivePreliminaryRepair,
                    ActiveSlowerFirstRepair, PassiveRepair):
        for cooperative in (False, True):
            server = build_server()
            failed = list(range(num_failed))
            for d in failed:
                server.fail_disk(d)
            repair = cooperative_multi_disk_repair if cooperative else naive_multi_disk_repair
            out = repair(server, factory, failed)
            table.add_row([
                out.algorithm,
                "cooperative" if cooperative else "naive",
                format_duration(out.total_time),
                out.chunks_read,
                format_bytes(out.chunks_read * server.config.chunk_size),
                out.chunks_rebuilt,
            ])
    print(table.render())
    print()


def main() -> None:
    for num_failed in (1, 2, 3):
        run_scenario(num_failed)
    print("Note how naive repair re-reads and re-decodes every stripe shared "
          "between failed disks, while cooperative repair processes the "
          "deduplicated stripe-set union exactly once (paper Figure 6/9).")


if __name__ == "__main__":
    main()
