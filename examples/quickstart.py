#!/usr/bin/env python
"""Quickstart: recover a failed disk four ways and compare.

Builds a scaled-down paper testbed (36 disks, RS(9,6), 10% slow disks),
fails one disk, and repairs it with the baseline FSR and the three HD-PSR
schemes, printing the paper's headline metrics for each. Also replays the
Figure-2 motivation example for intuition.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import (
    ActivePreliminaryRepair,
    ActiveSlowerFirstRepair,
    FullStripeRepair,
    PassiveRepair,
    build_exp_server,
    repair_single_disk,
)
from repro.sim.transfer import ChunkTransfer, StripeJob, simulate_interval_schedule
from repro.sim.viz import render_memory_timeline
from repro.utils import AsciiTable, format_duration


def figure2_motivation() -> None:
    """The paper's Figure 2: PSR vs FSR on two hand-crafted stripes."""
    s1, s2 = [1.0, 1.0, 2.0, 3.0], [1.0, 1.0, 2.0, 4.0]
    fsr = simulate_interval_schedule(
        [
            StripeJob(1, [[ChunkTransfer((1, j), d) for j, d in enumerate(s1)]]),
            StripeJob(2, [[ChunkTransfer((2, j), d) for j, d in enumerate(s2)]]),
        ],
        num_intervals=1,
    )
    psr = simulate_interval_schedule(
        [
            StripeJob(1, [[ChunkTransfer((1, 0), 1.0), ChunkTransfer((1, 1), 1.0)],
                          [ChunkTransfer((1, 2), 2.0), ChunkTransfer((1, 3), 3.0)]]),
            StripeJob(2, [[ChunkTransfer((2, 0), 1.0), ChunkTransfer((2, 1), 1.0)],
                          [ChunkTransfer((2, 2), 2.0), ChunkTransfer((2, 3), 4.0)]]),
        ],
        num_intervals=2,
    )
    table = AsciiTable(["scheme", "total time (units)", "ACWT (units)"],
                       title="Figure 2 motivation (k=4, c=4, two stripes)")
    table.add_row(["FSR  (P_a=4, P_r=1)", fsr.total_time, fsr.acwt])
    table.add_row(["PSR  (P_a=2, P_r=2)", psr.total_time, psr.acwt])
    print(table.render())
    print()


def single_disk_recovery() -> None:
    """Fail one disk of a 36-disk server; repair with every scheme."""
    print("Provisioning a 36-disk HDSS: RS(9,6), 64 MiB chunks, 2 GiB on the "
          "failed disk, 10% slow disks (4x slower), memory c = 12 chunks...")
    server = build_exp_server(
        n=9, k=6, disk_size="2GiB", chunk_size="64MiB",
        num_disks=36, ros=0.10, slow_factor=4.0, seed=2024,
    )
    server.fail_disk(0)
    print(f"Disk 0 failed: {len(server.layout.stripe_set(0))} stripes to repair.\n")

    table = AsciiTable(
        ["scheme", "repair time", "vs FSR", "ACWT", "P_a", "P_r", "algo runtime"],
        title="Single-disk recovery",
    )
    baseline = None
    timelines = []
    for algo in (FullStripeRepair(), ActivePreliminaryRepair(),
                 ActiveSlowerFirstRepair(), PassiveRepair()):
        out = repair_single_disk(server, algo, 0)
        if baseline is None:
            baseline = out.transfer_time
        reduction = (1 - out.transfer_time / baseline) * 100
        table.add_row([
            algo.name,
            format_duration(out.transfer_time),
            f"-{reduction:.1f}%" if reduction > 0 else "baseline",
            f"{out.acwt:.3f} s",
            out.plan.pa if out.plan.pa is not None else "per-stripe",
            out.plan.pr if out.plan.pr is not None else "auto",
            format_duration(out.selection_seconds),
        ])
        timelines.append(
            render_memory_timeline(
                out.report, capacity=server.config.memory_chunks,
                width=56, label=f"{algo.name:>9s}",
            )
        )
    print(table.render())
    print("\nMemory occupancy over each scheme's repair (time normalised "
          "per scheme; taller = more of the c=12 slots busy):")
    for line in timelines:
        print("  " + line)


def main() -> None:
    figure2_motivation()
    single_disk_recovery()


if __name__ == "__main__":
    main()
