"""Generate EXPERIMENTS.md from benchmark artefacts.

Each benchmark writes ``benchmarks/results/<id>.json``; this module renders
them as Markdown next to the paper's reported numbers so the
paper-vs-measured record is regenerated, never hand-edited.

Usage: ``python -m repro report [--results DIR] [--output FILE]``.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, List, Optional

from repro.utils.tables import render_table

#: What the paper reports, per experiment — the comparison targets.
PAPER_CLAIMS = {
    "fig4a": "ACWT increases with P_a and with ROS (Observation 2).",
    "fig4b": "Total repair rounds increase with P_r (Observation 3).",
    "exp1": (
        "All HD-PSR schemes repair faster than FSR; the gap widens with k. "
        "Paper peaks: HD-PSR-PA -71.7% at (6,4)/100 GiB; HD-PSR-AP -56.9% "
        "and HD-PSR-AS -50.46% at (14,10)/200 GiB."
    ),
    "exp2": (
        "HD-PSR-AS derives P_a ~98% faster than HD-PSR-AP on average; both "
        "grow with the stripe count; HD-PSR-PA has zero derivation cost."
    ),
    "exp3": "Repair time grows with chunk size; HD-PSR keeps its advantage at every size.",
    "exp4": "Selection running time falls as chunk size grows (fewer stripes); AS stays far below AP.",
    "exp5": (
        "Cooperative multi-disk repair cuts repair time; paper peaks: "
        "AP -24.2% (2 disks), AS -52.5% (3 disks), PA -30.8% (3 disks)."
    ),
    "ablation_memory": "Repo ablation (no paper counterpart): HD-PSR's edge is largest when memory is scarce.",
    "ablation_ros": "Repo ablation: the benefit vanishes on a homogeneous chassis and grows with slow-disk ratio.",
    "ablation_ap_model": "Repo ablation: AP's analytic T matches exact interval execution; slot-model deviation stays small.",
    "ablation_threshold": "Repo ablation: AS/PA are robust to the slow threshold across a broad basin below the slow factor.",
    "ablation_staleness": (
        "Repo ablation of the paper's section-4.3 motivation: active probes go stale "
        "between probing and repairing; PA's in-band timers do not."
    ),
    "durability": (
        "Repo extension quantifying the paper's motivation: faster repair shortens "
        "the coincident-failure window, improving 10-year loss probability and MTTDL."
    ),
    "wallclock": (
        "Repo extension: the headline comparison re-measured with real threads and "
        "rate-paced disks (actual elapsed seconds, not a simulated clock)."
    ),
    "lrc_comparison": (
        "Related-work comparison (paper section 6): LRC cuts repair I/O at a capacity "
        "cost; HD-PSR cuts repair time at no capacity cost; on wide RS stripes the "
        "schedule-level gains are large, on 3-chunk LRC local repairs the memory is "
        "no longer contended and HD-PSR's headroom vanishes."
    ),
    "foreground_latency": (
        "Repo extension: degraded-read latency while each scheme repairs (priority "
        "slot granting). HD-PSR finishes sooner without worsening the read tail."
    ),
    "ablation_slicing": (
        "Related-work ablation (RP, paper section 6): slice-level pipelining vs "
        "chunk-level HD-PSR under per-disk service contention — with realistic "
        "per-request cost the optimum collapses back to chunk-granular rounds."
    ),
    "wide_stripes": (
        "Repo extension into the ECWide [13] regime the paper's complexity analysis "
        "anticipates: reductions grow with stripe width while AS's selection cost "
        "stays flat and AP's grows."
    ),
    "vulnerability_order": (
        "Repo extension: after a backplane event, admitting the most-exposed stripes "
        "first slashes the time-to-safety at near-zero total-time cost."
    ),
    "robustness": (
        "Repo extension: recovery under injected mid-repair faults. Re-planning "
        "salvages each stripe's accumulated partial sums, so the chunks re-read "
        "after a casualty stay well below a full re-repair; unrecoverable stripes "
        "are reported, never raised."
    ),
    "service_throughput": (
        "Repo extension: the asyncio repair service overlaps concurrent disk "
        "repairs over per-disk modeled channels — four disjoint-disk repairs "
        "cost far less than four serial ones (>=2x asserted, ~4-5x measured) "
        "while the front door keeps serving reads (p50/p99 reported)."
    ),
    "service_telemetry_overhead": (
        "Repo extension: the live telemetry plane (recording tracer, "
        "event-loop monitor, mid-flight scrape) is priced against the same "
        "concurrent-repair episode with everything off — median paired CPU "
        "ratio, ~5% at production chunk size because tracing costs per event "
        "while decode costs per byte."
    ),
    "cluster_failover": (
        "Repo extension: the multi-daemon cluster's kill-the-owner chaos "
        "scenario swept over lease TTLs — takeover latency tracks the "
        "TTL+heartbeat detector bound while hedged foreground reads keep "
        "p99 at milliseconds through the failover; every episode re-proves "
        "byte-identical handoff, zero duplicate writes, and epoch fencing."
    ),
    "overload": (
        "Repo extension: open-loop load swept past the hot disk's capacity "
        "with the brownout controller on vs off. Goodput climbs to the knee "
        "and saturates there either way, but only the controlled daemon "
        "keeps the successful-read p99 near the deadline budget past the "
        "knee — the uncontrolled one's tail grows with the standing queue."
    ),
    "scrub": (
        "Repo extension: the online scrub plane's two promises measured — "
        "silent-corruption detection latency tracks the inter-verify pause "
        "(every rotted chunk quarantined and read-repaired byte-identically "
        "at every rate), and a diurnal foreground workload sees the same "
        "p99 with the scrubber at full rate as with it off, because every "
        "verify takes a background gate slot."
    ),
}

TITLES = {
    "fig4a": "Figure 4(a) — ACWT vs P_a (Observation 2)",
    "fig4b": "Figure 4(b) — Repair rounds vs P_r (Observation 3)",
    "exp1": "Experiment 1 / Figure 7(a–c) — Single-disk repair time vs (n, k)",
    "exp2": "Experiment 2 / Figure 7(d–f) — Algorithm running time vs (n, k)",
    "exp3": "Experiment 3 / Figure 8(a) — Repair time vs chunk size",
    "exp4": "Experiment 4 / Figure 8(b) — Algorithm running time vs chunk size",
    "exp5": "Experiment 5 / Figure 9 — Multi-disk repair, naive vs cooperative",
    "ablation_memory": "Ablation — memory capacity sweep",
    "ablation_ros": "Ablation — slow-disk ratio sweep",
    "ablation_ap_model": "Ablation — AP analytic-model fidelity",
    "ablation_threshold": "Ablation — slow-threshold sensitivity",
    "ablation_staleness": "Ablation — probe staleness (active vs passive)",
    "durability": "Extension — durability consequence of repair speed",
    "wallclock": "Extension — wall-clock repair with real threads",
    "lrc_comparison": "Related work — LRC vs RS under FSR/HD-PSR scheduling",
    "foreground_latency": "Extension — degraded-read latency during repair",
    "ablation_slicing": "Related work — slice-level pipelining (RP) vs HD-PSR",
    "wide_stripes": "Extension — wide-stripe (k up to 128) regime",
    "vulnerability_order": "Extension — vulnerability-first multi-disk repair ordering",
    "robustness": "Extension — recovery outcomes under injected faults",
    "service_throughput": "Extension — concurrent repair throughput of the service plane",
    "service_telemetry_overhead": "Extension — CPU cost of the live telemetry plane",
    "cluster_failover": "Extension — cluster failover: takeover latency and foreground p99",
    "overload": "Extension — overload knee: goodput and p99 vs offered load",
    "scrub": "Extension — scrub plane: detection latency and foreground politeness",
}

ORDER = [
    "fig4a", "fig4b", "exp1", "exp2", "exp3", "exp4", "exp5",
    "ablation_memory", "ablation_ros", "ablation_ap_model", "ablation_threshold",
    "ablation_staleness", "durability", "wallclock", "lrc_comparison",
    "foreground_latency", "ablation_slicing", "wide_stripes",
    "vulnerability_order", "robustness", "service_throughput",
    "service_telemetry_overhead", "cluster_failover", "overload", "scrub",
]


def loss_report_rows(results: Dict[str, Any]) -> List[Dict[str, Any]]:
    """Flatten named hardened recoveries into report rows.

    ``results`` maps a scenario label to a
    :class:`~repro.core.recovery.RecoveryResult` whose ``loss`` is set
    (i.e. the run used ``faults=`` or ``policy=``). One row per scenario,
    suitable for a ``benchmarks/results/robustness.json`` artefact.
    """
    rows: List[Dict[str, Any]] = []
    for label, result in results.items():
        loss = result.loss
        if loss is None:
            raise ValueError(
                f"{label!r} was not a hardened recovery (result.loss is None)"
            )
        rows.append({
            "scenario": label,
            "algorithm": result.outcome.algorithm,
            "stripes": len(loss.stripes),
            "recovered": len(loss.recovered),
            "replanned": len(loss.replanned),
            "lost": len(loss.lost),
            "faults": sum(loss.faults_injected.values()),
            "replans": loss.replans,
            "fresh_restarts": loss.fresh_restarts,
            "chunks_salvaged": loss.salvaged_chunks,
            "chunks_reread": loss.reread_chunks,
            "checksum_failures": loss.checksum_failures,
            "resumed_stripes": loss.resumed_stripes,
            "replayed_chunks": loss.replayed_chunks,
            "chunks_rebuilt": result.data_path.chunks_rebuilt,
            "certified": result.certified,
            "exit_code": loss.exit_code,
        })
    return rows


def load_results(results_dir: Path) -> Dict[str, Dict[str, Any]]:
    """Load every ``*.json`` benchmark artefact keyed by experiment id.

    Files that aren't benchmark artefacts — e.g. the checked-in trace
    baseline summary used by the CI regression gate — are skipped.
    """
    out: Dict[str, Dict[str, Any]] = {}
    for path in sorted(Path(results_dir).glob("*.json")):
        payload = json.loads(path.read_text())
        if not isinstance(payload, dict) or "rows" not in payload:
            continue
        out[payload.get("experiment", path.stem)] = payload
    return out


def extract_preamble(report_path: Path) -> Optional[str]:
    """Pull the hand-written preamble out of an existing report.

    The preamble is whatever sits between the ``# EXPERIMENTS`` title and
    the generated ``Generated by ...`` marker line; re-rendering keeps it.
    """
    if not Path(report_path).exists():
        return None
    lines = Path(report_path).read_text().splitlines()
    start = end = None
    for i, line in enumerate(lines):
        if start is None and line.startswith("# "):
            start = i + 1
        elif line.startswith("Generated by `python -m repro report`"):
            end = i
            break
    if start is None or end is None:
        return None
    text = "\n".join(lines[start:end]).strip()
    return text or None


def _rows_to_markdown(rows: List[Dict[str, Any]]) -> str:
    if not rows:
        return "_no rows recorded_"
    headers = list(rows[0].keys())
    body = [[row.get(h, "") for h in headers] for row in rows]
    return render_table(headers, body, markdown=True, float_fmt=".3f")


def _quantile_table(prom_path: Path) -> Optional[str]:
    """Render the streaming-quantile samples of a ``.prom`` dump.

    Summary metrics (e.g. the foreground sojourn-time sketch) expose
    ``metric{quantile="0.5"}`` samples; pivot them into one row per
    metric/label-set with p50/p95/p99 columns. Returns None when the dump
    has no quantile samples.
    """
    from repro.obs import parse_prometheus_text

    pivoted: Dict[tuple, Dict[str, float]] = {}
    for (name, labels), value in parse_prometheus_text(prom_path.read_text()).items():
        label_map = dict(labels)
        q = label_map.pop("quantile", None)
        if q is None:
            continue
        rest = tuple(sorted(label_map.items()))
        pivoted.setdefault((name, rest), {})[q] = value
    if not pivoted:
        return None
    quantile_keys = sorted(
        {q for values in pivoted.values() for q in values}, key=float
    )
    headers = ["metric"] + [f"p{float(q) * 100:g}" for q in quantile_keys]
    body = []
    for (name, rest), values in sorted(pivoted.items()):
        label_str = "".join(f" {k}={v}" for k, v in rest)
        body.append([f"{name}{label_str}"]
                    + [values.get(q, "") for q in quantile_keys])
    return render_table(headers, body, markdown=True, float_fmt=".3f")


def render_report(results_dir: Path, preamble: Optional[str] = None) -> str:
    """Render the full EXPERIMENTS.md body."""
    results = load_results(results_dir)
    lines: List[str] = []
    lines.append("# EXPERIMENTS — paper vs measured")
    lines.append("")
    if preamble:
        lines.append(preamble.strip())
        lines.append("")
    lines.append(
        "Generated by `python -m repro report` from `benchmarks/results/*.json` "
        "(regenerate the artefacts with `pytest benchmarks/ --benchmark-only -s`). "
        "Absolute times are simulated seconds on the modeled 36-disk chassis; the "
        "reproduction target is the *shape* of each paper result — who wins, by "
        "roughly what factor, and how trends move. Exp 2/4 report real wall-clock "
        "of this package's implementations."
    )
    lines.append("")
    for exp_id in ORDER:
        payload = results.get(exp_id)
        lines.append(f"## {TITLES.get(exp_id, exp_id)}")
        lines.append("")
        lines.append(f"**Paper:** {PAPER_CLAIMS.get(exp_id, '(repo-specific)')}")
        lines.append("")
        if payload is None:
            lines.append("_artefact missing — run the benchmark suite_")
            lines.append("")
            continue
        meta = payload.get("meta") or {}
        if meta:
            meta_str = ", ".join(f"{k}={v}" for k, v in meta.items())
            lines.append(f"**Measured** ({meta_str}):")
        else:
            lines.append("**Measured:**")
        lines.append("")
        lines.append(_rows_to_markdown(payload.get("rows", [])))
        lines.append("")
        prom_path = Path(results_dir) / f"{exp_id}.prom"
        if prom_path.exists():
            quantiles = _quantile_table(prom_path)
            if quantiles:
                lines.append("**Latency percentiles** (streaming P² sketch, "
                             f"from `{prom_path.name}`):")
                lines.append("")
                lines.append(quantiles)
                lines.append("")
    extra = sorted(set(results) - set(ORDER))
    for exp_id in extra:
        lines.append(f"## {exp_id}")
        lines.append("")
        lines.append(_rows_to_markdown(results[exp_id].get("rows", [])))
        lines.append("")
    return "\n".join(lines)


def write_report(
    results_dir: "str | Path",
    output: "str | Path",
    preamble: Optional[str] = None,
) -> Path:
    """Render and write the report; returns the output path."""
    output = Path(output)
    output.write_text(render_report(Path(results_dir), preamble=preamble))
    return output
