"""Structured event tracing for the repair stack.

A *trace* is an ordered list of :class:`TraceEvent`: **spans** (an interval
with a duration — a chunk transfer, a repair round, a decode) and
**instants** (a point occurrence — a slot grant, a plan admission). Events
carry a free-form ``category`` (the conventional ones are ``read``,
``decode``, ``round``, ``stripe``, ``writeback``, ``wait``, ``phase``,
``profile``), a ``track`` (one timeline lane, e.g. a worker thread or the
disk array) and a ``domain`` separating clock bases: ``"sim"`` timestamps
are simulated seconds from the event kernel, ``"wall"`` timestamps are
``time.perf_counter()`` seconds. Exporters keep domains on separate
process rows so the two time bases never get visually conflated.

The default tracer is :data:`NULL_TRACER`, whose every method is a no-op —
instrumented call sites guard hot loops with ``tracer.enabled`` so the
disabled path costs one attribute read. :class:`RecordingTracer` collects
events in memory (thread-safe, globally sequenced) for export via
:mod:`repro.obs.exporters`.

**Request tracing.** When a :class:`SpanContext` is installed (see
:func:`use_span`), every event a :class:`RecordingTracer` emits is stamped
with ``trace_id``/``span_id`` (and ``parent_id``) in its args, and nested
``span()`` blocks mint child contexts — so one client request's path
through the daemon exports as a connected span tree, greppable by
``trace_id`` in JSONL and visible in the Chrome trace's args.
"""

from __future__ import annotations

import contextvars
import threading
import time
import uuid
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional

#: Conventional span/instant categories used by the built-in call sites.
CATEGORIES = ("read", "decode", "round", "stripe", "writeback", "wait",
              "phase", "profile", "slot", "plan", "request")


def _new_id() -> str:
    return uuid.uuid4().hex[:16]


@dataclass(frozen=True)
class SpanContext:
    """Identity of one span inside one request trace.

    Attributes:
        trace_id: id shared by every span of one request (16 hex chars).
        span_id: this span's own id.
        parent_id: the enclosing span's id; ``None`` for a trace root.
    """

    trace_id: str
    span_id: str
    parent_id: Optional[str] = None

    def child(self) -> "SpanContext":
        """A fresh child context: same trace, new span, parented here."""
        return SpanContext(
            trace_id=self.trace_id, span_id=_new_id(), parent_id=self.span_id
        )

    def to_wire(self) -> Dict[str, str]:
        """The JSON-safe form carried in protocol messages."""
        return {"trace_id": self.trace_id, "span_id": self.span_id}

    @classmethod
    def from_wire(cls, fields: object) -> Optional["SpanContext"]:
        """Rebuild a context from a wire dict; None when absent/malformed."""
        if not isinstance(fields, dict):
            return None
        trace_id = fields.get("trace_id")
        span_id = fields.get("span_id")
        if not isinstance(trace_id, str) or not isinstance(span_id, str):
            return None
        return cls(trace_id=trace_id, span_id=span_id)


def new_span_context(trace_id: Optional[str] = None) -> SpanContext:
    """Mint a root span context (new ``trace_id`` unless given)."""
    return SpanContext(trace_id=trace_id or _new_id(), span_id=_new_id())


_span_var: contextvars.ContextVar[Optional[SpanContext]] = contextvars.ContextVar(
    "repro_obs_span", default=None
)


def current_span() -> Optional[SpanContext]:
    """The span context in scope, or None outside any traced request."""
    return _span_var.get()


@contextmanager
def use_span(ctx: Optional[SpanContext]) -> Iterator[Optional[SpanContext]]:
    """Install ``ctx`` as the current span context for the ``with`` body.

    Asyncio tasks created inside the scope inherit it, so spans emitted
    by a repair submitted during a traced request stay connected to it.
    """
    token = _span_var.set(ctx)
    try:
        yield ctx
    finally:
        _span_var.reset(token)


@dataclass(frozen=True)
class TraceEvent:
    """One trace record.

    Attributes:
        name: human-readable event name (``"stripe-17/round-2"``).
        category: coarse grouping used for filtering (see :data:`CATEGORIES`).
        ts: start timestamp in seconds (domain-relative, see ``domain``).
        duration: span length in seconds; ``None`` marks an instant event.
        track: timeline lane (thread name, ``"disks"``, ``"multi"``, ...).
        domain: clock base — ``"sim"`` or ``"wall"``.
        depth: nesting level of context-manager spans (0 for top level and
            for spans emitted post-hoc via :meth:`Tracer.complete`).
        seq: global emission order, ties in ``ts`` break deterministically.
        args: free-form payload (stripe index, chunk count, disk id...).
    """

    name: str
    category: str
    ts: float
    duration: Optional[float] = None
    track: str = "main"
    domain: str = "wall"
    depth: int = 0
    seq: int = 0
    args: Dict[str, Any] = field(default_factory=dict)

    @property
    def is_span(self) -> bool:
        return self.duration is not None

    @property
    def end(self) -> float:
        return self.ts + (self.duration or 0.0)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serialisable form (one JSONL line)."""
        out: Dict[str, Any] = {
            "name": self.name,
            "cat": self.category,
            "ts": self.ts,
            "track": self.track,
            "domain": self.domain,
            "depth": self.depth,
            "seq": self.seq,
        }
        if self.duration is not None:
            out["dur"] = self.duration
        if self.args:
            out["args"] = self.args
        return out


class Tracer:
    """Tracer interface; the base class is inert (every method no-ops).

    Subclasses override :meth:`_emit`. Call sites use three verbs:

    * :meth:`span` — a ``with`` block measured on the wall clock;
    * :meth:`complete` — a span whose start/duration the caller already
      knows (the simulators, which live in simulated time);
    * :meth:`instant` — a point event.
    """

    #: Fast guard for hot loops: ``if tracer.enabled: tracer.complete(...)``.
    enabled: bool = False

    def _emit(self, event: TraceEvent) -> None:  # pragma: no cover - inert
        pass

    @contextmanager
    def span(self, category: str, name: str, track: str = "main",
             **args: Any) -> Iterator[None]:
        """Wall-clock span covering the ``with`` body."""
        yield

    def complete(self, category: str, name: str, start: float,
                 duration: float, track: str = "main", domain: str = "sim",
                 **args: Any) -> None:
        """Record an already-finished span with explicit timestamps."""

    def instant(self, category: str, name: str, ts: Optional[float] = None,
                track: str = "main", domain: str = "wall",
                **args: Any) -> None:
        """Record a point event (``ts=None`` reads the wall clock)."""


class NullTracer(Tracer):
    """The default tracer: does nothing, costs (almost) nothing."""

    __slots__ = ()

    def __repr__(self) -> str:
        return "NullTracer()"


#: Process-wide inert tracer; shared singleton.
NULL_TRACER = NullTracer()


class RecordingTracer(Tracer):
    """Collects events in memory; thread-safe; export via ``exporters``.

    Args:
        clock: wall-clock source for :meth:`span`/:meth:`instant`
            (default ``time.perf_counter``; injectable for tests).
    """

    enabled = True

    def __init__(self, clock=time.perf_counter) -> None:
        self._clock = clock
        self._lock = threading.Lock()
        self._seq = 0
        self._depths: Dict[Any, int] = {}  # (thread ident, track) -> depth
        self.events: List[TraceEvent] = []

    def _emit(self, event: TraceEvent) -> None:
        with self._lock:
            object.__setattr__(event, "seq", self._seq)
            self._seq += 1
            self.events.append(event)

    @staticmethod
    def _stamp(args: Dict[str, Any], ctx: Optional[SpanContext]) -> Dict[str, Any]:
        """Merge a span context's ids into an event's args."""
        if ctx is None:
            return args
        stamped = dict(args)
        stamped["trace_id"] = ctx.trace_id
        stamped["span_id"] = ctx.span_id
        if ctx.parent_id is not None:
            stamped["parent_id"] = ctx.parent_id
        return stamped

    @contextmanager
    def span(self, category: str, name: str, track: str = "main",
             **args: Any) -> Iterator[None]:
        key = (threading.get_ident(), track)
        with self._lock:
            depth = self._depths.get(key, 0)
            self._depths[key] = depth + 1
        parent = current_span()
        ctx = parent.child() if parent is not None else None
        token = _span_var.set(ctx) if ctx is not None else None
        start = self._clock()
        try:
            yield
        finally:
            duration = self._clock() - start
            if token is not None:
                _span_var.reset(token)
            with self._lock:
                self._depths[key] = depth
            self._emit(TraceEvent(
                name=name, category=category, ts=start, duration=duration,
                track=track, domain="wall", depth=depth,
                args=self._stamp(args, ctx),
            ))

    def complete(self, category: str, name: str, start: float,
                 duration: float, track: str = "main", domain: str = "sim",
                 **args: Any) -> None:
        parent = current_span()
        ctx = parent.child() if parent is not None else None
        self._emit(TraceEvent(
            name=name, category=category, ts=start, duration=duration,
            track=track, domain=domain, args=self._stamp(args, ctx),
        ))

    def instant(self, category: str, name: str, ts: Optional[float] = None,
                track: str = "main", domain: str = "wall",
                **args: Any) -> None:
        self._emit(TraceEvent(
            name=name, category=category,
            ts=self._clock() if ts is None else ts,
            track=track, domain=domain,
            args=self._stamp(args, current_span()),
        ))

    # ------------------------------------------------------------- queries
    def spans(self, category: Optional[str] = None) -> List[TraceEvent]:
        """Span events, emission-ordered, optionally category-filtered."""
        return [e for e in self.events
                if e.is_span and (category is None or e.category == category)]

    def instants(self, category: Optional[str] = None) -> List[TraceEvent]:
        """Instant events, emission-ordered, optionally filtered."""
        return [e for e in self.events
                if not e.is_span and (category is None or e.category == category)]

    def for_trace(self, trace_id: str) -> List[TraceEvent]:
        """Every event stamped with ``trace_id`` (one request's span tree)."""
        return [e for e in self.events if e.args.get("trace_id") == trace_id]

    def clear(self) -> None:
        with self._lock:
            self.events.clear()
            self._depths.clear()
            self._seq = 0

    def __len__(self) -> int:
        return len(self.events)

    def __repr__(self) -> str:
        return f"RecordingTracer({len(self.events)} events)"


class OffsetTracer(Tracer):
    """Delegates to another tracer, shifting explicit timestamps.

    Used when a caller replays several independently-simulated phases on
    one timeline (e.g. naive multi-disk repair runs one simulation per
    failed disk, each starting at simulated t=0): wrap the real tracer
    with the phase's cumulative start offset and nested ``complete``/
    ``instant`` events land at their true position.

    Wall-clock ``span`` blocks pass through unshifted — they are already
    on a monotonic shared clock.
    """

    def __init__(self, inner: Tracer, offset: float) -> None:
        self.inner = inner
        self.offset = float(offset)
        self.enabled = inner.enabled

    def span(self, category: str, name: str, track: str = "main", **args: Any):
        return self.inner.span(category, name, track=track, **args)

    def complete(self, category: str, name: str, start: float,
                 duration: float, track: str = "main", domain: str = "sim",
                 **args: Any) -> None:
        self.inner.complete(category, name, start + self.offset, duration,
                            track=track, domain=domain, **args)

    def instant(self, category: str, name: str, ts: Optional[float] = None,
                track: str = "main", domain: str = "wall",
                **args: Any) -> None:
        self.inner.instant(category, name,
                           ts=None if ts is None else ts + self.offset,
                           track=track, domain=domain, **args)

    def __repr__(self) -> str:
        return f"OffsetTracer(+{self.offset}, {self.inner!r})"
