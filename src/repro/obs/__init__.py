"""``repro.obs`` — observability for the repair stack.

Structured tracing (:mod:`~repro.obs.tracer`), a process-wide metrics
registry (:mod:`~repro.obs.metrics`), exporters for Chrome
``trace_event`` / JSONL / Prometheus text (:mod:`~repro.obs.exporters`),
profiling hooks (:mod:`~repro.obs.profiling`), and context threading so
instrumented call sites stay parameter-free (:mod:`~repro.obs.context`).

Typical capture:

    from repro.obs import RecordingTracer, use_tracer, write_chrome_trace

    tracer = RecordingTracer()
    with use_tracer(tracer):
        repair_single_disk(server, ActivePreliminaryRepair(), 0)
    write_chrome_trace(tracer, "repair-trace.json")   # chrome://tracing

Everything defaults off: the ambient tracer is :data:`NULL_TRACER` and
instrumented hot loops guard on ``tracer.enabled``, so the disabled cost
is one attribute read per round.
"""

from repro.obs.analysis import (
    DiffResult,
    DiskBlame,
    MemoryOccupancy,
    RoundTimeline,
    TraceAnalysis,
    analyze_trace,
    diff_metrics,
    flatten_summary,
    load_run_metrics,
    summarize_trace,
)
from repro.obs.context import (
    current_registry,
    current_span,
    current_tracer,
    new_span_context,
    use_registry,
    use_span,
    use_tracer,
)
from repro.obs.exporters import (
    chrome_trace,
    events_from_jsonl,
    events_to_jsonl,
    parse_prometheus_text,
    prometheus_text,
    read_jsonl,
    validate_chrome_trace,
    write_chrome_trace,
    write_jsonl,
    write_prometheus,
)
from repro.obs.metrics import (
    DEFAULT_TIME_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    Summary,
    default_registry,
)
from repro.obs.profiling import ProfileRecord, profile, profiled
from repro.obs.quantiles import DEFAULT_QUANTILES, P2Quantile, QuantileSketch
from repro.obs.runtime import EventLoopMonitor
from repro.obs.tracer import (
    NULL_TRACER,
    NullTracer,
    OffsetTracer,
    RecordingTracer,
    SpanContext,
    TraceEvent,
    Tracer,
)

__all__ = [
    # tracer
    "TraceEvent",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "RecordingTracer",
    "OffsetTracer",
    "SpanContext",
    # runtime
    "EventLoopMonitor",
    # metrics
    "Counter",
    "Gauge",
    "Histogram",
    "Summary",
    "MetricsRegistry",
    "default_registry",
    "DEFAULT_TIME_BUCKETS",
    # quantiles
    "DEFAULT_QUANTILES",
    "P2Quantile",
    "QuantileSketch",
    # exporters
    "chrome_trace",
    "write_chrome_trace",
    "validate_chrome_trace",
    "events_to_jsonl",
    "events_from_jsonl",
    "read_jsonl",
    "write_jsonl",
    "prometheus_text",
    "write_prometheus",
    "parse_prometheus_text",
    # analysis
    "TraceAnalysis",
    "RoundTimeline",
    "DiskBlame",
    "MemoryOccupancy",
    "analyze_trace",
    "summarize_trace",
    "flatten_summary",
    "diff_metrics",
    "DiffResult",
    "load_run_metrics",
    # profiling
    "profile",
    "profiled",
    "ProfileRecord",
    # context
    "current_tracer",
    "current_registry",
    "current_span",
    "new_span_context",
    "use_tracer",
    "use_registry",
    "use_span",
]
