"""Streaming quantile estimation (the P² algorithm).

Foreground-latency tails (p95/p99 degraded-read sojourn times) matter to
the paper's memory-competition story, but retaining every sample to call
``numpy.percentile`` on is exactly what a long-running server cannot do.
:class:`P2Quantile` implements the Jain & Chlamtac P² algorithm: five
markers per tracked quantile, updated in O(1) per observation with a
parabolic (falling back to linear) height adjustment — no sample
retention beyond the first five values.

:class:`QuantileSketch` bundles one estimator per target quantile plus
count/sum/min/max, and clamps its reported quantiles to be monotonically
non-decreasing and within ``[min, max]`` (independent P² estimators can
otherwise cross by a hair on small samples).

Accuracy is distribution-dependent; on the smooth distributions the test
suite checks (uniform, exponential, mildly bimodal) the estimates land
within ~1% of ``numpy.percentile`` once a few thousand samples have been
observed.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.errors import ConfigurationError

#: Default targets: median plus the tail the benchmarks report.
DEFAULT_QUANTILES: Tuple[float, ...] = (0.5, 0.95, 0.99)


class P2Quantile:
    """One streaming quantile via the P² algorithm (five markers, O(1))."""

    __slots__ = ("p", "count", "_q", "_n", "_target", "_rate", "_buf")

    def __init__(self, p: float) -> None:
        if not 0.0 < p < 1.0:
            raise ConfigurationError(f"quantile must be in (0, 1), got {p}")
        self.p = float(p)
        self.count = 0
        self._buf: List[float] = []   # first five observations, then unused
        self._q: List[float] = []     # marker heights
        self._n: List[float] = []     # marker positions (0-based)
        self._target: List[float] = []  # desired marker positions
        #: per-observation increments of the desired positions
        self._rate = (0.0, p / 2.0, p, (1.0 + p) / 2.0, 1.0)

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        if not self._q:
            self._buf.append(value)
            if len(self._buf) == 5:
                self._buf.sort()
                self._q = list(self._buf)
                self._n = [0.0, 1.0, 2.0, 3.0, 4.0]
                p = self.p
                self._target = [0.0, 2.0 * p, 4.0 * p, 2.0 + 2.0 * p, 4.0]
            return
        q, n, target = self._q, self._n, self._target
        # Locate the cell containing the new value, extending the extremes.
        if value < q[0]:
            q[0] = value
            k = 0
        elif value >= q[4]:
            q[4] = value
            k = 3
        else:
            k = 0
            while k < 3 and q[k + 1] <= value:
                k += 1
        for i in range(k + 1, 5):
            n[i] += 1.0
        for i in range(5):
            target[i] += self._rate[i]
        # Nudge the three interior markers toward their desired positions.
        for i in (1, 2, 3):
            d = target[i] - n[i]
            if (d >= 1.0 and n[i + 1] - n[i] > 1.0) or \
               (d <= -1.0 and n[i - 1] - n[i] < -1.0):
                step = 1.0 if d > 0 else -1.0
                height = self._parabolic(i, step)
                if not q[i - 1] < height < q[i + 1]:
                    height = self._linear(i, step)
                q[i] = height
                n[i] += step

    def _parabolic(self, i: int, d: float) -> float:
        q, n = self._q, self._n
        return q[i] + d / (n[i + 1] - n[i - 1]) * (
            (n[i] - n[i - 1] + d) * (q[i + 1] - q[i]) / (n[i + 1] - n[i])
            + (n[i + 1] - n[i] - d) * (q[i] - q[i - 1]) / (n[i] - n[i - 1])
        )

    def _linear(self, i: int, d: float) -> float:
        q, n = self._q, self._n
        j = i + int(d)
        return q[i] + d * (q[j] - q[i]) / (n[j] - n[i])

    @property
    def value(self) -> float:
        """Current estimate (exact order statistic while count <= 5)."""
        if self.count == 0:
            return 0.0
        if not self._q:
            ordered = sorted(self._buf)
            rank = (len(ordered) - 1) * self.p
            lo = int(rank)
            frac = rank - lo
            if lo + 1 >= len(ordered):
                return ordered[-1]
            return ordered[lo] * (1.0 - frac) + ordered[lo + 1] * frac
        return self._q[2]

    def __repr__(self) -> str:
        return f"P2Quantile(p={self.p}, count={self.count}, value={self.value:.6g})"


class QuantileSketch:
    """A bundle of P² estimators plus count/sum/min/max.

    ``quantiles()`` reports the tracked quantiles in ascending order,
    clamped to be monotone and to lie within the observed ``[min, max]``.
    Not thread-safe by itself — :class:`repro.obs.metrics.Summary` wraps
    it in a lock for registry use.
    """

    __slots__ = ("targets", "_estimators", "count", "sum", "min", "max")

    def __init__(self, quantiles: Sequence[float] = DEFAULT_QUANTILES) -> None:
        targets = tuple(sorted({float(q) for q in quantiles}))
        if not targets:
            raise ConfigurationError("QuantileSketch needs at least one quantile")
        self.targets = targets
        self._estimators = {q: P2Quantile(q) for q in targets}
        self.count = 0
        self.sum = 0.0
        self.min = float("inf")
        self.max = float("-inf")

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.sum += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        for estimator in self._estimators.values():
            estimator.observe(value)

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """One tracked quantile (after monotone clamping)."""
        q = float(q)
        values = self.quantiles()
        if q not in values:
            raise ConfigurationError(
                f"quantile {q} not tracked (targets: {self.targets})"
            )
        return values[q]

    def quantiles(self) -> Dict[float, float]:
        """All tracked quantiles, ascending, monotone, within [min, max]."""
        if self.count == 0:
            return {q: 0.0 for q in self.targets}
        out: Dict[float, float] = {}
        floor = self.min
        for q in self.targets:
            value = min(max(self._estimators[q].value, floor), self.max)
            out[q] = value
            floor = value
        return out

    def summary(self) -> Dict[str, float]:
        """Flat dict for JSON artefacts and report rows."""
        out: Dict[str, float] = {
            "count": float(self.count),
            "sum": self.sum,
            "mean": self.mean,
            "min": self.min if self.count else 0.0,
            "max": self.max if self.count else 0.0,
        }
        for q, value in self.quantiles().items():
            out[f"p{q * 100:g}"] = value
        return out

    def __repr__(self) -> str:
        return f"QuantileSketch(targets={self.targets}, count={self.count})"
