"""Process-wide metrics: counters, gauges, histograms.

The model follows Prometheus conventions without the client dependency:
a :class:`MetricsRegistry` owns named metrics; each metric optionally fans
out into labelled children (``counter.labels(algorithm="hd-psr-ap")``);
:meth:`MetricsRegistry.snapshot` freezes everything into plain dicts for
JSON dumps, assertions in tests, or the text exporter in
:mod:`repro.obs.exporters`.

Histograms use **fixed bucket boundaries** chosen at creation: observing a
value increments the first bucket whose upper edge is >= the value (edges
are inclusive, matching Prometheus ``le`` semantics), plus a running sum
and count. :data:`DEFAULT_TIME_BUCKETS` suits repair-scale durations
(milliseconds to tens of minutes).

Everything is thread-safe; increments take one lock, which is negligible
next to the NumPy work they meter. Metrics created through a
:class:`MetricsRegistry` (and every labelled child they fan out into)
share the registry's single re-entrant lock, so label-child creation,
P² summary updates, and :meth:`MetricsRegistry.snapshot` are safe when
hammered from concurrent asyncio tasks and ``to_thread`` workers alike —
no torn reads between a child being inserted and its first increment.
"""

from __future__ import annotations

import bisect
import threading
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import ConfigurationError
from repro.obs.quantiles import DEFAULT_QUANTILES, QuantileSketch

#: Edges (seconds) covering chunk transfers through whole-disk repairs.
DEFAULT_TIME_BUCKETS: Tuple[float, ...] = (
    0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0, 30.0,
    60.0, 300.0, 1200.0,
)

LabelKey = Tuple[Tuple[str, str], ...]


def _label_key(labels: Dict[str, str]) -> LabelKey:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class Metric:
    """Common base: name, help text, labelled children.

    ``lock`` shares a caller's lock (the owning registry passes its own
    single re-entrant lock); standalone metrics get a private one.
    """

    kind = "untyped"

    def __init__(self, name: str, help: str = "",
                 lock: Optional["threading.RLock"] = None) -> None:
        if not name or not name.replace("_", "").replace(":", "").isalnum():
            raise ConfigurationError(f"invalid metric name {name!r}")
        self.name = name
        self.help = help
        self._lock = lock if lock is not None else threading.RLock()
        self._children: Dict[LabelKey, "Metric"] = {}

    def labels(self, **labels: str) -> "Metric":
        """The child metric for this label set (created on first use)."""
        if not labels:
            return self
        key = _label_key(labels)
        with self._lock:
            child = self._children.get(key)
            if child is None:
                child = self._new_child()
                self._children[key] = child
            return child

    def _new_child(self) -> "Metric":
        raise NotImplementedError

    def _series(self) -> List[Tuple[LabelKey, "Metric"]]:
        """(labels, metric) pairs: the bare metric plus every child.

        A purely label-fanned metric (children exist, bare series never
        touched) omits the bare series, matching Prometheus clients.
        """
        with self._lock:
            items = list(self._children.items())
        if items and not self._touched():
            return items
        return [((), self)] + items

    def _touched(self) -> bool:
        return True


class Counter(Metric):
    """Monotonically increasing count."""

    kind = "counter"

    def __init__(self, name: str, help: str = "",
                 lock: Optional["threading.RLock"] = None) -> None:
        super().__init__(name, help, lock=lock)
        self._value = 0.0

    def _new_child(self) -> "Counter":
        return Counter(self.name, self.help, lock=self._lock)

    def _touched(self) -> bool:
        return self._value != 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ConfigurationError(f"counter {self.name} cannot decrease")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        return self._value


class Gauge(Metric):
    """A value that can go up and down (slots in use, queue depth)."""

    kind = "gauge"

    def __init__(self, name: str, help: str = "",
                 lock: Optional["threading.RLock"] = None) -> None:
        super().__init__(name, help, lock=lock)
        self._value = 0.0

    def _new_child(self) -> "Gauge":
        return Gauge(self.name, self.help, lock=self._lock)

    def _touched(self) -> bool:
        return self._value != 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.inc(-amount)

    @property
    def value(self) -> float:
        return self._value


class Histogram(Metric):
    """Fixed-boundary histogram with Prometheus ``le`` semantics.

    ``buckets`` are the finite upper edges, strictly increasing; an
    implicit ``+Inf`` bucket catches the overflow. ``observe(x)``
    increments the first bucket with ``x <= edge``.
    """

    kind = "histogram"

    def __init__(self, name: str, help: str = "",
                 buckets: Sequence[float] = DEFAULT_TIME_BUCKETS,
                 lock: Optional["threading.RLock"] = None) -> None:
        super().__init__(name, help, lock=lock)
        edges = [float(b) for b in buckets]
        if not edges or any(nxt <= prev for nxt, prev in zip(edges[1:], edges)):
            raise ConfigurationError(
                f"histogram {name}: buckets must be non-empty and strictly "
                f"increasing, got {list(buckets)}"
            )
        self.buckets = tuple(edges)
        self._counts = [0] * (len(edges) + 1)  # last = +Inf overflow
        self._sum = 0.0
        self._count = 0

    def _new_child(self) -> "Histogram":
        return Histogram(self.name, self.help, self.buckets, lock=self._lock)

    def _touched(self) -> bool:
        return self._count > 0

    def observe(self, value: float) -> None:
        value = float(value)
        idx = bisect.bisect_left(self.buckets, value)
        with self._lock:
            self._counts[idx] += 1
            self._sum += value
            self._count += 1

    @property
    def sum(self) -> float:
        return self._sum

    @property
    def count(self) -> int:
        return self._count

    def bucket_counts(self) -> List[int]:
        """Per-bucket (non-cumulative) counts; last entry is ``+Inf``."""
        with self._lock:
            return list(self._counts)

    def cumulative_counts(self) -> List[int]:
        """Cumulative counts per edge, Prometheus-style, ending at total."""
        out, running = [], 0
        for c in self.bucket_counts():
            running += c
            out.append(running)
        return out


class Summary(Metric):
    """Streaming quantiles over an unbounded observation stream.

    Backed by a :class:`~repro.obs.quantiles.QuantileSketch` (P² markers,
    no sample retention), so it is safe to feed every foreground sojourn
    time of a long run through it. Exposition follows the Prometheus
    summary type: ``name{quantile="0.5"}`` samples plus ``_sum``/``_count``.
    """

    kind = "summary"

    def __init__(self, name: str, help: str = "",
                 quantiles: Sequence[float] = DEFAULT_QUANTILES,
                 lock: Optional["threading.RLock"] = None) -> None:
        super().__init__(name, help, lock=lock)
        self._sketch = QuantileSketch(quantiles)

    def _new_child(self) -> "Summary":
        return Summary(self.name, self.help, self._sketch.targets,
                       lock=self._lock)

    def _touched(self) -> bool:
        return self._sketch.count > 0

    def observe(self, value: float) -> None:
        with self._lock:
            self._sketch.observe(value)

    @property
    def sum(self) -> float:
        return self._sketch.sum

    @property
    def count(self) -> int:
        return self._sketch.count

    def quantile(self, q: float) -> float:
        with self._lock:
            return self._sketch.quantile(q)

    def quantiles(self) -> Dict[float, float]:
        """Tracked quantiles, ascending and monotone (see QuantileSketch)."""
        with self._lock:
            return self._sketch.quantiles()


class MetricsRegistry:
    """Named metric store; get-or-create accessors are idempotent.

    One re-entrant lock guards the name table, every metric it creates,
    and every labelled child those metrics fan into, so registration,
    updates and :meth:`snapshot` serialize against each other without
    lock-ordering hazards.
    """

    def __init__(self) -> None:
        self._lock = threading.RLock()
        self._metrics: Dict[str, Metric] = {}

    def _get_or_create(self, cls, name: str, help: str, **kwargs) -> Metric:
        with self._lock:
            existing = self._metrics.get(name)
            if existing is not None:
                if not isinstance(existing, cls):
                    raise ConfigurationError(
                        f"metric {name!r} already registered as {existing.kind}"
                    )
                return existing
            metric = cls(name, help, lock=self._lock, **kwargs)
            self._metrics[name] = metric
            return metric

    def counter(self, name: str, help: str = "") -> Counter:
        return self._get_or_create(Counter, name, help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._get_or_create(Gauge, name, help)

    def histogram(self, name: str, help: str = "",
                  buckets: Sequence[float] = DEFAULT_TIME_BUCKETS) -> Histogram:
        return self._get_or_create(Histogram, name, help, buckets=buckets)

    def summary(self, name: str, help: str = "",
                quantiles: Sequence[float] = DEFAULT_QUANTILES) -> Summary:
        return self._get_or_create(Summary, name, help, quantiles=quantiles)

    def get(self, name: str) -> Optional[Metric]:
        return self._metrics.get(name)

    def metrics(self) -> List[Metric]:
        with self._lock:
            return list(self._metrics.values())

    def snapshot(self) -> Dict[str, Dict]:
        """Freeze every metric (and labelled child) into plain dicts.

        Returns ``{name: {"type", "help", "series": [{"labels", ...}]}}``;
        counter/gauge series carry ``"value"``, histogram series carry
        ``"buckets"`` (edge -> cumulative count), ``"sum"`` and ``"count"``,
        summary series carry ``"quantiles"`` (q -> estimate), ``"sum"``
        and ``"count"``.
        """
        out: Dict[str, Dict] = {}
        for metric in self.metrics():
            series = []
            for labels, child in metric._series():
                entry: Dict = {"labels": dict(labels)}
                if isinstance(child, Histogram):
                    cum = child.cumulative_counts()
                    entry["buckets"] = {
                        **{str(edge): c for edge, c in zip(child.buckets, cum)},
                        "+Inf": cum[-1],
                    }
                    entry["sum"] = child.sum
                    entry["count"] = child.count
                elif isinstance(child, Summary):
                    entry["quantiles"] = {
                        f"{q:g}": v for q, v in child.quantiles().items()
                    }
                    entry["sum"] = child.sum
                    entry["count"] = child.count
                else:
                    entry["value"] = child.value
                series.append(entry)
            out[metric.name] = {
                "type": metric.kind, "help": metric.help, "series": series,
            }
        return out

    def reset(self) -> None:
        """Drop every registered metric (tests; fresh CLI runs)."""
        with self._lock:
            self._metrics.clear()


#: The process-wide default registry (see also repro.obs.context).
_DEFAULT_REGISTRY = MetricsRegistry()


def default_registry() -> MetricsRegistry:
    """The shared process-wide registry instrumented call sites use."""
    return _DEFAULT_REGISTRY
