"""Trace and metrics exporters.

Three formats:

* **JSONL** — one :class:`~repro.obs.tracer.TraceEvent` dict per line;
  lossless, trivially greppable/parsable.
* **Chrome ``trace_event``** — the JSON Array Format consumed by
  ``chrome://tracing`` and https://ui.perfetto.dev. Spans become ``"X"``
  (complete) events, instants ``"i"``; each clock domain (``sim`` /
  ``wall``) gets its own ``pid`` row with timestamps re-based to the
  domain's earliest event so simulated and wall timelines both start at 0
  instead of interleaving incompatible clocks.
* **Prometheus text exposition** — counters/gauges/histograms from a
  :class:`~repro.obs.metrics.MetricsRegistry`, with a matching parser so
  round-trips can be asserted (and scraped files re-read).
"""

from __future__ import annotations

import json
import math
from pathlib import Path
from typing import Dict, List, Sequence, Tuple, Union

from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import RecordingTracer, TraceEvent

TraceSource = Union[RecordingTracer, Sequence[TraceEvent]]

_MICROS = 1e6


def _events(trace: TraceSource) -> List[TraceEvent]:
    if isinstance(trace, RecordingTracer):
        return list(trace.events)
    return list(trace)


# --------------------------------------------------------------------------
# JSONL
# --------------------------------------------------------------------------


def events_to_jsonl(trace: TraceSource) -> str:
    """Serialise events, one JSON object per line (lossless)."""
    return "\n".join(json.dumps(e.to_dict(), sort_keys=True)
                     for e in _events(trace))


def write_jsonl(trace: TraceSource, path) -> Path:
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    text = events_to_jsonl(trace)
    path.write_text(text + ("\n" if text else ""))
    return path


def events_from_jsonl(text: str) -> List[TraceEvent]:
    """Parse JSONL trace text back into events (inverse of ``events_to_jsonl``)."""
    events: List[TraceEvent] = []
    for lineno, line in enumerate(text.splitlines(), start=1):
        line = line.strip()
        if not line:
            continue
        try:
            d = json.loads(line)
        except json.JSONDecodeError as exc:
            raise ValueError(f"line {lineno}: not valid JSON ({exc})") from exc
        if not isinstance(d, dict) or "name" not in d or "ts" not in d:
            raise ValueError(f"line {lineno}: not a trace event record")
        events.append(TraceEvent(
            name=d["name"],
            category=d.get("cat", ""),
            ts=float(d["ts"]),
            duration=None if d.get("dur") is None else float(d["dur"]),
            track=d.get("track", "main"),
            domain=d.get("domain", "wall"),
            depth=int(d.get("depth", 0)),
            seq=int(d.get("seq", 0)),
            args=d.get("args", {}) or {},
        ))
    return events


def read_jsonl(path) -> List[TraceEvent]:
    """Load a ``write_jsonl`` trace file back into :class:`TraceEvent`\\ s."""
    return events_from_jsonl(Path(path).read_text())


# --------------------------------------------------------------------------
# Chrome trace_event
# --------------------------------------------------------------------------


def chrome_trace(trace: TraceSource) -> Dict:
    """Convert events to the Chrome ``trace_event`` JSON Object Format.

    Returns ``{"traceEvents": [...], "displayTimeUnit": "ms"}``. Domains
    map to ``pid`` rows, tracks to ``tid`` rows; per-domain timestamps are
    shifted so each domain starts at t=0. Metadata events name both.
    """
    events = _events(trace)
    domains = sorted({e.domain for e in events})
    domain_pid = {d: i + 1 for i, d in enumerate(domains)}
    base = {
        d: min(e.ts for e in events if e.domain == d) for d in domains
    }
    tracks = sorted({(e.domain, e.track) for e in events})
    track_tid = {dt: i + 1 for i, dt in enumerate(tracks)}

    out: List[Dict] = []
    for domain in domains:
        out.append({
            "ph": "M", "name": "process_name", "pid": domain_pid[domain],
            "tid": 0, "args": {"name": f"{domain} clock"},
        })
    for (domain, track), tid in track_tid.items():
        out.append({
            "ph": "M", "name": "thread_name", "pid": domain_pid[domain],
            "tid": tid, "args": {"name": track},
        })
    for e in events:
        record = {
            "name": e.name,
            "cat": e.category,
            "pid": domain_pid[e.domain],
            "tid": track_tid[(e.domain, e.track)],
            "ts": (e.ts - base[e.domain]) * _MICROS,
            "args": dict(e.args, seq=e.seq),
        }
        if e.is_span:
            record["ph"] = "X"
            record["dur"] = e.duration * _MICROS
        else:
            record["ph"] = "i"
            record["s"] = "t"  # thread-scoped instant
        out.append(record)
    return {"traceEvents": out, "displayTimeUnit": "ms"}


def write_chrome_trace(trace: TraceSource, path) -> Path:
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(chrome_trace(trace)))
    return path


#: Phases we emit; validation accepts the full duration-event family too.
_VALID_PHASES = {"X", "B", "E", "i", "I", "M", "C"}


def validate_chrome_trace(doc: Dict) -> List[str]:
    """Schema-check a Chrome trace document; returns a list of problems.

    An empty list means the document loads in ``chrome://tracing`` /
    Perfetto: a ``traceEvents`` array whose entries carry ``ph``/``name``/
    ``pid``/``tid``, numeric non-negative ``ts`` for timed phases, and a
    numeric non-negative ``dur`` for every complete (``"X"``) event.
    """
    problems: List[str] = []
    if not isinstance(doc, dict):
        return [f"top level must be an object, got {type(doc).__name__}"]
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        return ["missing or non-array traceEvents"]
    for i, e in enumerate(events):
        where = f"traceEvents[{i}]"
        if not isinstance(e, dict):
            problems.append(f"{where}: not an object")
            continue
        ph = e.get("ph")
        if ph not in _VALID_PHASES:
            problems.append(f"{where}: bad phase {ph!r}")
        if not isinstance(e.get("name"), str):
            problems.append(f"{where}: missing name")
        for key in ("pid", "tid"):
            if not isinstance(e.get(key), int):
                problems.append(f"{where}: missing integer {key}")
        if ph != "M":
            ts = e.get("ts")
            if not isinstance(ts, (int, float)) or not math.isfinite(ts) or ts < 0:
                problems.append(f"{where}: bad ts {ts!r}")
        if ph == "X":
            dur = e.get("dur")
            if not isinstance(dur, (int, float)) or not math.isfinite(dur) or dur < 0:
                problems.append(f"{where}: bad dur {dur!r}")
    return problems


# --------------------------------------------------------------------------
# Prometheus text exposition
# --------------------------------------------------------------------------


def _fmt_labels(labels: Dict[str, str]) -> str:
    if not labels:
        return ""
    body = ",".join(f'{k}="{v}"' for k, v in sorted(labels.items()))
    return "{" + body + "}"


def _fmt_value(v: float) -> str:
    if v == math.inf:
        return "+Inf"
    f = float(v)
    return str(int(f)) if f.is_integer() else repr(f)


def prometheus_text(registry: MetricsRegistry) -> str:
    """Render a registry in the Prometheus text exposition format."""
    lines: List[str] = []
    for name, data in registry.snapshot().items():
        if data["help"]:
            lines.append(f"# HELP {name} {data['help']}")
        lines.append(f"# TYPE {name} {data['type']}")
        for series in data["series"]:
            labels = series["labels"]
            if data["type"] == "histogram":
                for edge, count in series["buckets"].items():
                    le = dict(labels, le=edge)
                    lines.append(f"{name}_bucket{_fmt_labels(le)} {count}")
                lines.append(f"{name}_sum{_fmt_labels(labels)} {_fmt_value(series['sum'])}")
                lines.append(f"{name}_count{_fmt_labels(labels)} {series['count']}")
            elif data["type"] == "summary":
                for q, value in series["quantiles"].items():
                    ql = dict(labels, quantile=q)
                    lines.append(f"{name}{_fmt_labels(ql)} {_fmt_value(value)}")
                lines.append(f"{name}_sum{_fmt_labels(labels)} {_fmt_value(series['sum'])}")
                lines.append(f"{name}_count{_fmt_labels(labels)} {series['count']}")
            else:
                lines.append(f"{name}{_fmt_labels(labels)} {_fmt_value(series['value'])}")
    return "\n".join(lines) + "\n" if lines else ""


def write_prometheus(registry: MetricsRegistry, path) -> Path:
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(prometheus_text(registry))
    return path


def parse_prometheus_text(
    text: str,
) -> Dict[Tuple[str, Tuple[Tuple[str, str], ...]], float]:
    """Parse exposition text back into ``{(sample_name, labels): value}``.

    The inverse of :func:`prometheus_text` for the subset it emits —
    enough for round-trip tests and for re-reading scraped dumps.
    """
    out: Dict[Tuple[str, Tuple[Tuple[str, str], ...]], float] = {}
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        name_part, _, value_part = line.rpartition(" ")
        if "{" in name_part:
            name, _, label_body = name_part.partition("{")
            label_body = label_body.rstrip("}")
            labels = []
            for item in filter(None, label_body.split(",")):
                k, _, v = item.partition("=")
                labels.append((k, v.strip('"')))
            key = (name, tuple(sorted(labels)))
        else:
            key = (name_part, ())
        value = math.inf if value_part == "+Inf" else float(value_part)
        out[key] = value
    return out


__all__ = [
    "events_to_jsonl",
    "events_from_jsonl",
    "read_jsonl",
    "write_jsonl",
    "chrome_trace",
    "write_chrome_trace",
    "validate_chrome_trace",
    "prometheus_text",
    "write_prometheus",
    "parse_prometheus_text",
]
