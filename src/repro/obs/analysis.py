"""Repair-domain trace analytics.

:mod:`repro.obs.tracer` records what happened; this module says what it
*means*. It consumes the JSONL traces and Prometheus dumps the capture
layer emits and derives the paper's quantities:

* **round timelines** — every repair round reconstructed from its
  ``round``/``read`` spans, with the *critical chunk* (the slowest read,
  the one every other chunk of the round waited for) identified;
* **bottleneck attribution** — a per-disk blame table: how many rounds
  each disk was critical for and how much waiting it induced (the ACWT
  numerator, decomposed by the disk that caused it), plus per-disk
  busy/idle utilisation from merged read intervals;
* **memory occupancy** — the slots-held-vs-time curve from the memory
  resource's acquire/release instants, with peak / time-averaged mean /
  slot-seconds area, so FSR-vs-PSR memory behaviour is a number rather
  than a picture;
* **run-to-run diffing** — flatten two runs (trace JSONL, summary JSON,
  benchmark artefact, or Prometheus dump) into metric dicts and compare
  them with relative-delta thresholds; ``hdpsr trace diff`` turns the
  result into a CI perf gate.

Everything operates on plain :class:`~repro.obs.tracer.TraceEvent` lists,
so it works identically on a live :class:`RecordingTracer` and on a
trace file read back with :func:`~repro.obs.exporters.read_jsonl`.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.obs.exporters import parse_prometheus_text, read_jsonl
from repro.obs.tracer import RecordingTracer, TraceEvent

TraceSource = Any  # RecordingTracer | Sequence[TraceEvent]


def _events(trace: TraceSource) -> List[TraceEvent]:
    if isinstance(trace, RecordingTracer):
        return list(trace.events)
    return list(trace)


# --------------------------------------------------------------------------
# Trace model
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class RoundTimeline:
    """One reconstructed repair round and its critical chunk.

    ``stall_seconds`` is the waiting the round's slowest read induced on
    the others: ``sum(last_end - end_j)`` over the non-critical chunks —
    the slice of the ACWT numerator this round contributes.
    """

    stripe: Any
    round_index: Optional[int]
    track: str
    start: float
    end: float
    chunks: int
    critical_disk: Any
    critical_chunk: str
    critical_end: float
    stall_seconds: float

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass
class DiskBlame:
    """Attribution record for one source disk."""

    disk: Any
    reads: int = 0
    read_seconds: float = 0.0      # summed read durations (demand)
    busy_seconds: float = 0.0      # merged union of read intervals
    utilization: float = 0.0       # busy_seconds / makespan
    critical_rounds: int = 0
    induced_wait_seconds: float = 0.0
    blame_share: float = 0.0       # induced wait / total induced wait


@dataclass
class MemoryOccupancy:
    """Slots-held-vs-time curve from the memory resource instants."""

    curve: List[Tuple[float, int]] = field(default_factory=list)
    peak_slots: int = 0
    mean_slots: float = 0.0        # time-averaged over the sim horizon
    slot_seconds: float = 0.0      # area under the curve
    samples: int = 0


@dataclass
class TraceAnalysis:
    """Everything derived from one trace."""

    events: int = 0
    sim_start: float = 0.0
    sim_end: float = 0.0
    stripes: int = 0
    reads: int = 0
    read_seconds: float = 0.0
    rounds: List[RoundTimeline] = field(default_factory=list)
    disks: Dict[Any, DiskBlame] = field(default_factory=dict)
    memory: Optional[MemoryOccupancy] = None
    total_wait_seconds: float = 0.0    # ACWT numerator
    resource_waits: Dict[str, float] = field(default_factory=dict)
    stripe_memory_wait_seconds: float = 0.0
    categories: Dict[str, int] = field(default_factory=dict)

    @property
    def makespan(self) -> float:
        return self.sim_end - self.sim_start

    @property
    def acwt(self) -> float:
        """Average chunk waiting time over every read in the trace."""
        return self.total_wait_seconds / self.reads if self.reads else 0.0


def _merged_length(intervals: List[Tuple[float, float]]) -> float:
    """Total length of the union of ``(start, end)`` intervals."""
    if not intervals:
        return 0.0
    intervals.sort()
    total = 0.0
    cur_start, cur_end = intervals[0]
    for start, end in intervals[1:]:
        if start > cur_end:
            total += cur_end - cur_start
            cur_start, cur_end = start, end
        else:
            cur_end = max(cur_end, end)
    return total + (cur_end - cur_start)


def _round_key(event: TraceEvent) -> Optional[Tuple]:
    stripe = event.args.get("stripe")
    rnd = event.args.get("round")
    if stripe is None or rnd is None:
        return None
    # Stripe ids survive JSON round-trips as lists; normalise for hashing.
    if isinstance(stripe, list):
        stripe = tuple(stripe)
    return (event.track, stripe, rnd)


def analyze_trace(trace: TraceSource) -> TraceAnalysis:
    """Reconstruct round timelines and attribute bottlenecks.

    Works on the simulated-clock (``domain="sim"``) portion of the trace:
    ``round`` spans are matched to their ``read`` spans first by the
    ``(track, stripe, round)`` args the executors emit, falling back to
    interval containment on the same track for older traces.
    """
    events = _events(trace)
    analysis = TraceAnalysis(events=len(events))
    for e in events:
        analysis.categories[e.category] = analysis.categories.get(e.category, 0) + 1

    sim_spans = [e for e in events if e.is_span and e.domain == "sim"]
    if sim_spans:
        analysis.sim_start = min(e.ts for e in sim_spans)
        analysis.sim_end = max(e.end for e in sim_spans)

    rounds = sorted((e for e in sim_spans if e.category == "round"),
                    key=lambda e: (e.ts, e.seq))
    reads = sorted((e for e in sim_spans if e.category == "read"),
                   key=lambda e: (e.ts, e.seq))
    analysis.stripes = len([e for e in sim_spans if e.category == "stripe"])
    analysis.reads = len(reads)
    analysis.read_seconds = sum(e.duration for e in reads)

    # Primary association: the (track, stripe, round) key both span kinds
    # carry; fallback: reads contained in the round's interval on its track.
    # A key can repeat when one trace holds several replayed simulations
    # (e.g. `hdpsr repair` runs every algorithm under one tracer, each
    # starting at sim t=0); reads are always emitted before their round
    # span, so emission order (seq) splits the collisions.
    reads_by_key: Dict[Tuple, List[TraceEvent]] = {}
    loose_by_track: Dict[str, List[TraceEvent]] = {}
    for e in reads:
        key = _round_key(e)
        if key is not None:
            reads_by_key.setdefault(key, []).append(e)
        else:
            loose_by_track.setdefault(e.track, []).append(e)

    rounds_by_key: Dict[Tuple, List[TraceEvent]] = {}
    for e in rounds:
        key = _round_key(e)
        if key is not None:
            rounds_by_key.setdefault(key, []).append(e)

    # members_by_round: (key, round seq) -> its reads. For a collided key,
    # walk rounds and reads in seq order, giving each round the reads
    # emitted since the previous round span.
    members_by_round: Dict[Tuple, List[TraceEvent]] = {}
    for key, key_rounds in rounds_by_key.items():
        pool = sorted(reads_by_key.get(key, []), key=lambda e: e.seq)
        if len(key_rounds) == 1:
            members_by_round[(key, key_rounds[0].seq)] = pool
            continue
        idx = 0
        for rnd in sorted(key_rounds, key=lambda e: e.seq):
            members: List[TraceEvent] = []
            while idx < len(pool) and pool[idx].seq < rnd.seq:
                members.append(pool[idx])
                idx += 1
            members_by_round[(key, rnd.seq)] = members

    disks: Dict[Any, DiskBlame] = {}
    intervals_by_disk: Dict[Any, List[Tuple[float, float]]] = {}

    def _disk(d: Any) -> DiskBlame:
        blame = disks.get(d)
        if blame is None:
            blame = disks[d] = DiskBlame(disk=d)
        return blame

    for e in reads:
        blame = _disk(e.args.get("disk"))
        blame.reads += 1
        blame.read_seconds += e.duration
        intervals_by_disk.setdefault(blame.disk, []).append((e.ts, e.end))

    eps = max(1e-9, 1e-9 * abs(analysis.sim_end))
    total_induced = 0.0
    for rnd in rounds:
        key = _round_key(rnd)
        members = members_by_round.get((key, rnd.seq), []) if key is not None else []
        if not members:
            members = [e for e in loose_by_track.get(rnd.track, [])
                       if e.ts >= rnd.ts - eps and e.end <= rnd.end + eps]
        if members:
            last_end = max(e.end for e in members)
            critical = max(members, key=lambda e: (e.end, -e.seq))
            stall = sum(last_end - e.end for e in members if e is not critical)
            analysis.total_wait_seconds += sum(last_end - e.end for e in members)
            blame = _disk(critical.args.get("disk"))
            blame.critical_rounds += 1
            blame.induced_wait_seconds += stall
            total_induced += stall
            critical_disk, critical_name, critical_end = (
                critical.args.get("disk"), critical.name, critical.end)
        else:
            stall = 0.0
            critical_disk, critical_name, critical_end = None, "", rnd.end
        analysis.rounds.append(RoundTimeline(
            stripe=rnd.args.get("stripe"),
            round_index=rnd.args.get("round"),
            track=rnd.track,
            start=rnd.ts,
            end=rnd.end,
            chunks=len(members) or int(rnd.args.get("chunks", 0)),
            critical_disk=critical_disk,
            critical_chunk=critical_name,
            critical_end=critical_end,
            stall_seconds=stall,
        ))

    makespan = analysis.makespan
    for disk, blame in disks.items():
        blame.busy_seconds = _merged_length(intervals_by_disk[disk])
        blame.utilization = blame.busy_seconds / makespan if makespan > 0 else 0.0
        blame.blame_share = (
            blame.induced_wait_seconds / total_induced if total_induced > 0 else 0.0
        )

    analysis.disks = disks

    # Wait accounting: resource-side spans live on the resource's own track
    # ("memory", "admission", "disk-N"); the executors' per-stripe
    # memory-wait spans are the same waits viewed from the stripe and are
    # kept separate to avoid double counting.
    for e in sim_spans:
        if e.category != "wait":
            continue
        if e.track == "memory" or e.track == "admission":
            analysis.resource_waits[e.track] = (
                analysis.resource_waits.get(e.track, 0.0) + e.duration)
        elif e.track.startswith("disk-"):
            analysis.resource_waits["disk"] = (
                analysis.resource_waits.get("disk", 0.0) + e.duration)
        else:
            analysis.stripe_memory_wait_seconds += e.duration

    analysis.memory = _memory_occupancy(events, analysis.sim_start, analysis.sim_end)
    return analysis


def _memory_occupancy(events: Sequence[TraceEvent], sim_start: float,
                      sim_end: float) -> Optional[MemoryOccupancy]:
    samples = sorted(
        (e for e in events
         if not e.is_span and e.category == "slot" and e.track == "memory"
         and "in_use" in e.args),
        key=lambda e: (e.ts, e.seq),
    )
    if not samples:
        return None
    curve: List[Tuple[float, int]] = [(sim_start, 0)]
    for e in samples:
        curve.append((e.ts, int(e.args["in_use"])))
    horizon = max(sim_end, curve[-1][0])
    area = 0.0
    for (t0, occ), (t1, _) in zip(curve, curve[1:]):
        area += occ * max(0.0, t1 - t0)
    area += curve[-1][1] * max(0.0, horizon - curve[-1][0])
    span = horizon - sim_start
    return MemoryOccupancy(
        curve=curve,
        peak_slots=max(occ for _, occ in curve),
        mean_slots=area / span if span > 0 else 0.0,
        slot_seconds=area,
        samples=len(samples),
    )


# --------------------------------------------------------------------------
# Summaries
# --------------------------------------------------------------------------


def summarize_trace(trace: TraceSource) -> Dict[str, Any]:
    """One JSON-able dict of everything ``analyze_trace`` derives."""
    analysis = trace if isinstance(trace, TraceAnalysis) else analyze_trace(trace)
    durations = [r.duration for r in analysis.rounds]
    chunks = [r.chunks for r in analysis.rounds]
    out: Dict[str, Any] = {
        "events": analysis.events,
        "makespan_seconds": analysis.makespan,
        "stripes": analysis.stripes,
        "reads": {"count": analysis.reads, "seconds": analysis.read_seconds},
        "rounds": {
            "count": len(analysis.rounds),
            "duration_mean_seconds": (
                sum(durations) / len(durations) if durations else 0.0),
            "duration_max_seconds": max(durations) if durations else 0.0,
            "chunks_mean": sum(chunks) / len(chunks) if chunks else 0.0,
        },
        "acwt": {
            "total_wait_seconds": analysis.total_wait_seconds,
            "acwt_seconds": analysis.acwt,
        },
        "waits": {
            **{f"{k}_seconds": v for k, v in sorted(analysis.resource_waits.items())},
            "stripe_memory_seconds": analysis.stripe_memory_wait_seconds,
        },
        "disks": {
            str(d): {
                "reads": b.reads,
                "busy_seconds": b.busy_seconds,
                "utilization": b.utilization,
                "critical_rounds": b.critical_rounds,
                "induced_wait_seconds": b.induced_wait_seconds,
                "blame_share": b.blame_share,
            }
            for d, b in sorted(analysis.disks.items(), key=lambda kv: str(kv[0]))
        },
    }
    if analysis.memory is not None:
        out["memory"] = {
            "peak_slots": analysis.memory.peak_slots,
            "mean_slots": analysis.memory.mean_slots,
            "slot_seconds": analysis.memory.slot_seconds,
            "samples": analysis.memory.samples,
        }
    return out


def flatten_summary(data: Any, prefix: str = "") -> Dict[str, float]:
    """Collapse nested dicts/lists into ``dot.path -> float`` leaves."""
    out: Dict[str, float] = {}
    if isinstance(data, dict):
        for key, value in data.items():
            path = f"{prefix}.{key}" if prefix else str(key)
            out.update(flatten_summary(value, path))
    elif isinstance(data, (list, tuple)):
        for i, value in enumerate(data):
            out.update(flatten_summary(value, f"{prefix}.{i}" if prefix else str(i)))
    elif isinstance(data, bool):
        pass
    elif isinstance(data, (int, float)) and math.isfinite(data):
        out[prefix] = float(data)
    return out


# --------------------------------------------------------------------------
# Run loading and diffing
# --------------------------------------------------------------------------

#: Key substrings that mark a metric as neutral (no regression direction).
NEUTRAL_TOKENS = (
    "count", "share", "utilization", "samples", "events", "stripes",
    "chunks", "reads",
)

#: Key substrings where a relative increase is a regression.
LOWER_IS_BETTER_TOKENS = (
    "seconds", "time", "wait", "acwt", "duration", "makespan", "latency",
    "stall", "p50", "p90", "p95", "p99", "peak", "occupancy", "slot",
)


def metric_direction(key: str) -> str:
    """``"lower"`` if an increase in ``key`` counts as a regression."""
    lowered = key.lower()
    if any(tok in lowered for tok in NEUTRAL_TOKENS):
        return "neutral"
    if any(tok in lowered for tok in LOWER_IS_BETTER_TOKENS):
        return "lower"
    return "neutral"


@dataclass(frozen=True)
class DiffEntry:
    key: str
    old: float
    new: float
    delta: float
    rel: Optional[float]        # None when old == 0 and new == 0
    direction: str              # "lower" or "neutral"
    regressed: bool
    improved: bool


@dataclass
class DiffResult:
    entries: List[DiffEntry] = field(default_factory=list)
    missing: List[str] = field(default_factory=list)   # in old only
    extra: List[str] = field(default_factory=list)     # in new only

    @property
    def regressions(self) -> List[DiffEntry]:
        return [e for e in self.entries if e.regressed]

    @property
    def improvements(self) -> List[DiffEntry]:
        return [e for e in self.entries if e.improved]

    @property
    def changed(self) -> List[DiffEntry]:
        return [e for e in self.entries if e.delta != 0.0]


def diff_metrics(old: Dict[str, float], new: Dict[str, float],
                 threshold: float = 0.05,
                 only: Optional[str] = None) -> DiffResult:
    """Compare two flat metric dicts with a relative-delta threshold.

    A key regresses when its direction is lower-is-better and the new
    value exceeds the old by more than ``threshold`` (relative; a move
    off zero always trips). ``only`` restricts the comparison to keys
    containing that substring.
    """
    if threshold < 0:
        raise ValueError(f"threshold must be >= 0, got {threshold}")
    result = DiffResult(
        missing=sorted(k for k in old if k not in new
                       and (not only or only in k)),
        extra=sorted(k for k in new if k not in old
                     and (not only or only in k)),
    )
    for key in sorted(set(old) & set(new)):
        if only and only not in key:
            continue
        a, b = old[key], new[key]
        delta = b - a
        if a != 0:
            rel: Optional[float] = delta / abs(a)
        else:
            rel = None if delta == 0 else math.copysign(math.inf, delta)
        direction = metric_direction(key)
        regressed = bool(direction == "lower" and rel is not None and rel > threshold)
        improved = bool(direction == "lower" and rel is not None and rel < -threshold)
        result.entries.append(DiffEntry(
            key=key, old=a, new=b, delta=delta, rel=rel,
            direction=direction, regressed=regressed, improved=improved,
        ))
    return result


def load_run_metrics(path) -> Dict[str, float]:
    """Load one run artefact as a flat metric dict for diffing.

    Accepts, by suffix:

    * ``.jsonl`` — a trace; analyzed and summarized first;
    * ``.prom`` — a Prometheus text dump (histogram ``_bucket`` samples
      are skipped — cumulative bucket counts have no stable direction);
    * ``.json`` — either a benchmark artefact (``{"experiment", "rows"}``,
      rows keyed by their algorithm/scheme column) or a summary written
      by ``hdpsr trace summarize --output``.
    """
    path = Path(path)
    suffix = path.suffix.lower()
    if suffix == ".jsonl":
        return flatten_summary(summarize_trace(read_jsonl(path)))
    if suffix == ".prom":
        out: Dict[str, float] = {}
        for (name, labels), value in parse_prometheus_text(path.read_text()).items():
            if name.endswith("_bucket"):
                continue
            if labels:
                body = ",".join(f"{k}={v}" for k, v in labels)
                out[f"{name}{{{body}}}"] = value
            else:
                out[name] = value
        return out
    if suffix == ".json":
        data = json.loads(path.read_text())
        if isinstance(data, dict) and isinstance(data.get("rows"), list):
            out = {}
            for i, row in enumerate(data["rows"]):
                if not isinstance(row, dict):
                    continue
                label = None
                for key in ("algorithm", "scheme", "name", "label"):
                    if isinstance(row.get(key), str):
                        label = row[key]
                        break
                tag = label if label is not None else str(i)
                if "mode" in row and isinstance(row["mode"], str):
                    tag = f"{tag}/{row['mode']}"
                out.update(flatten_summary(row, f"rows.{tag}"))
            return out
        return flatten_summary(data)
    raise ValueError(
        f"unsupported artefact {path.name!r}: expected .jsonl, .json or .prom"
    )


__all__ = [
    "RoundTimeline",
    "DiskBlame",
    "MemoryOccupancy",
    "TraceAnalysis",
    "analyze_trace",
    "summarize_trace",
    "flatten_summary",
    "metric_direction",
    "DiffEntry",
    "DiffResult",
    "diff_metrics",
    "load_run_metrics",
]
