"""Async-runtime health gauges: event-loop lag and task census.

A repair daemon can look healthy from the outside while its event loop is
drowning — a decode hogging the loop, a flood of gate waiters, a shard
writer stuck behind a slow fsync. :class:`EventLoopMonitor` is the
canonical tell: a background task sleeps a fixed tick and measures how
late the loop woke it. Lag is the difference between the requested and
the actual sleep, which is exactly the queueing delay every other
callback on the loop is experiencing.

Exported series (all in the ambient registry):

* ``hdpsr_runtime_loop_lag_seconds`` — P² summary (p50/p99/p999) of
  per-tick wakeup lag;
* ``hdpsr_runtime_loop_lag_last_seconds`` — gauge, most recent tick;
* ``hdpsr_runtime_tasks`` — gauge, tasks alive on the loop at the tick;
* ``hdpsr_runtime_ticks_total`` — counter, monitor heartbeats (a flat
  line here means the monitor itself starved — the loudest alarm).

Usage::

    monitor = EventLoopMonitor(interval=0.05)
    monitor.start()          # inside a running loop
    ...
    await monitor.stop()
"""

from __future__ import annotations

import asyncio
from typing import Dict, Optional

from repro.errors import ConfigurationError
from repro.obs.context import current_registry
from repro.obs.metrics import MetricsRegistry

LOOP_LAG = "hdpsr_runtime_loop_lag_seconds"
LOOP_LAG_LAST = "hdpsr_runtime_loop_lag_last_seconds"
TASKS = "hdpsr_runtime_tasks"
TICKS = "hdpsr_runtime_ticks_total"

#: Quantiles tracked for loop lag (tail-heavy on purpose).
LAG_QUANTILES = (0.5, 0.99, 0.999)


class EventLoopMonitor:
    """Samples event-loop wakeup lag on a fixed tick.

    Args:
        interval: seconds between ticks; small enough to catch stalls,
            large enough to be free (default 50 ms).
        registry: metrics registry to export into; defaults to the
            ambient one at :meth:`start` time.
    """

    def __init__(
        self,
        interval: float = 0.05,
        registry: Optional[MetricsRegistry] = None,
    ) -> None:
        if interval <= 0:
            raise ConfigurationError(f"interval must be > 0, got {interval}")
        self.interval = float(interval)
        self._registry = registry
        self._task: Optional[asyncio.Task] = None
        #: Most recent measured lag, seconds (also exported as a gauge).
        self.last_lag = 0.0
        #: Ticks observed since :meth:`start`.
        self.ticks = 0

    @property
    def running(self) -> bool:
        return self._task is not None and not self._task.done()

    def start(self) -> "EventLoopMonitor":
        """Begin sampling on the running loop (idempotent)."""
        if self.running:
            return self
        if self._registry is None:
            self._registry = current_registry()
        self._task = asyncio.get_running_loop().create_task(
            self._run(), name="loop-monitor"
        )
        return self

    async def stop(self) -> None:
        """Cancel the sampling task and wait for it to unwind."""
        if self._task is None:
            return
        self._task.cancel()
        try:
            await self._task
        except asyncio.CancelledError:
            pass
        self._task = None

    async def _run(self) -> None:
        registry = self._registry
        lag_summary = registry.summary(
            LOOP_LAG, "event-loop wakeup lag per monitor tick",
            quantiles=LAG_QUANTILES,
        )
        lag_gauge = registry.gauge(LOOP_LAG_LAST, "most recent loop lag")
        tasks_gauge = registry.gauge(TASKS, "asyncio tasks alive on the loop")
        ticks = registry.counter(TICKS, "loop monitor heartbeats")
        loop = asyncio.get_running_loop()
        while True:
            before = loop.time()
            await asyncio.sleep(self.interval)
            lag = max(0.0, loop.time() - before - self.interval)
            self.last_lag = lag
            self.ticks += 1
            lag_summary.observe(lag)
            lag_gauge.set(lag)
            tasks_gauge.set(len(asyncio.all_tasks(loop)))
            ticks.inc()

    def snapshot(self) -> Dict[str, float]:
        """Current loop-health readings as a plain dict (for ``stats``)."""
        out: Dict[str, float] = {
            "loop_lag_last_seconds": self.last_lag,
            "ticks": float(self.ticks),
            "interval_seconds": self.interval,
        }
        if self._registry is not None:
            summary = self._registry.get(LOOP_LAG)
            if summary is not None:
                for q, v in summary.quantiles().items():
                    pname = "p" + format(q * 100, "g").replace(".", "")
                    out[f"loop_lag_{pname}_seconds"] = v
        return out
