"""Profiling hooks: wall time plus optional allocation peaks.

:func:`profile` is a context manager for the hot *selection* code paths
(the AP sweep, the AS classification, PA's per-stripe splitting) and any
other block worth metering. Each run:

* fills a :class:`ProfileRecord` (wall seconds; peak allocated bytes when
  ``trace_malloc=True``);
* emits a ``profile`` span on the current tracer (wall clock domain);
* feeds ``hdpsr_profile_seconds{name=...}`` (histogram) and
  ``hdpsr_profile_runs_total{name=...}`` (counter) in the current
  metrics registry.

``tracemalloc`` costs real overhead, so allocation tracking is opt-in and
plays nicely with an already-running tracemalloc session (it will not stop
one it did not start).
"""

from __future__ import annotations

import time
import tracemalloc
from contextlib import contextmanager
from dataclasses import dataclass
from functools import wraps
from typing import Iterator, Optional

from repro.obs.context import current_registry, current_tracer
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import Tracer

#: Sub-second-heavy edges: selection sweeps run in micro- to milliseconds.
SELECTION_TIME_BUCKETS = (
    1e-5, 1e-4, 1e-3, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 30.0,
)


@dataclass
class ProfileRecord:
    """Outcome of one profiled block."""

    name: str
    wall_seconds: float = 0.0
    #: Peak bytes allocated during the block (None unless trace_malloc).
    peak_bytes: Optional[int] = None


@contextmanager
def profile(
    name: str,
    trace_malloc: bool = False,
    tracer: Optional[Tracer] = None,
    registry: Optional[MetricsRegistry] = None,
    **span_args,
) -> Iterator[ProfileRecord]:
    """Meter the ``with`` body; yields the record, filled on exit."""
    tracer = tracer if tracer is not None else current_tracer()
    registry = registry if registry is not None else current_registry()
    record = ProfileRecord(name=name)

    started_tracemalloc = False
    if trace_malloc:
        if not tracemalloc.is_tracing():
            tracemalloc.start()
            started_tracemalloc = True
        else:
            tracemalloc.reset_peak()

    t0 = time.perf_counter()
    try:
        yield record
    finally:
        record.wall_seconds = time.perf_counter() - t0
        if trace_malloc:
            _, peak = tracemalloc.get_traced_memory()
            record.peak_bytes = int(peak)
            if started_tracemalloc:
                tracemalloc.stop()
        if tracer.enabled:
            args = dict(span_args)
            if record.peak_bytes is not None:
                args["peak_bytes"] = record.peak_bytes
            tracer.complete(
                "profile", name, t0, record.wall_seconds,
                track="profile", domain="wall", **args,
            )
        registry.histogram(
            "hdpsr_profile_seconds", "Wall time of profiled blocks",
            buckets=SELECTION_TIME_BUCKETS,
        ).labels(name=name).observe(record.wall_seconds)
        registry.counter(
            "hdpsr_profile_runs_total", "Invocations of profiled blocks"
        ).labels(name=name).inc()


def profiled(name: Optional[str] = None, trace_malloc: bool = False):
    """Decorator form of :func:`profile` (name defaults to the function's)."""

    def decorate(fn):
        label = name or fn.__qualname__

        @wraps(fn)
        def wrapper(*args, **kwargs):
            with profile(label, trace_malloc=trace_malloc):
                return fn(*args, **kwargs)

        return wrapper

    return decorate
