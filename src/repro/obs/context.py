"""Trace/metrics context threading, plus request-scoped span propagation.

Call sites deep in the stack (the plan executors, the data path, the
wall-clock workers) fetch their tracer and registry from here instead of
taking extra parameters, so enabling observability is a wrapper at the
entry point:

    tracer = RecordingTracer()
    with use_tracer(tracer):
        repair_single_disk(server, algo, 0)
    write_chrome_trace(tracer, "out.json")

Backed by :mod:`contextvars`, so nested scopes restore cleanly and
``asyncio``-style contexts are isolated. Worker threads spawned inside a
scope do **not** inherit the context variable automatically — thread-using
call sites (:mod:`repro.io.wallclock`) capture ``current_tracer()`` once
on the submitting thread and pass it down explicitly.

**Span propagation.** A :class:`SpanContext` identifies one request
(``trace_id``) and one position in its call tree (``span_id`` /
``parent_id``). ``hdpsr client`` mints a context per call, carries it over
the wire, and the daemon re-installs it with :func:`use_span`; every span
the :class:`~repro.obs.tracer.RecordingTracer` emits inside that scope is
stamped with the ids and nests as a child, so a single slow read can be
followed from the client socket down to the decode that served it.
Asyncio tasks inherit the contextvar at creation, so spans of repair
stripes submitted inside a request scope connect automatically.

Defaults: :data:`~repro.obs.tracer.NULL_TRACER` and the process-wide
:func:`~repro.obs.metrics.default_registry`.
"""

from __future__ import annotations

import contextvars
from contextlib import contextmanager
from typing import Iterator

from repro.obs.metrics import MetricsRegistry, default_registry
from repro.obs.tracer import (  # noqa: F401  (re-exported)
    NULL_TRACER,
    SpanContext,
    Tracer,
    current_span,
    new_span_context,
    use_span,
)

_tracer_var: contextvars.ContextVar[Tracer] = contextvars.ContextVar(
    "repro_obs_tracer", default=NULL_TRACER
)
_registry_var: contextvars.ContextVar[MetricsRegistry] = contextvars.ContextVar(
    "repro_obs_registry", default=None
)


def current_tracer() -> Tracer:
    """The tracer in scope (the inert :data:`NULL_TRACER` by default)."""
    return _tracer_var.get()


def current_registry() -> MetricsRegistry:
    """The metrics registry in scope (process default unless overridden)."""
    return _registry_var.get() or default_registry()


@contextmanager
def use_tracer(tracer: Tracer) -> Iterator[Tracer]:
    """Install ``tracer`` as the current tracer for the ``with`` body."""
    token = _tracer_var.set(tracer)
    try:
        yield tracer
    finally:
        _tracer_var.reset(token)


@contextmanager
def use_registry(registry: MetricsRegistry) -> Iterator[MetricsRegistry]:
    """Install ``registry`` as the current registry for the ``with`` body."""
    token = _registry_var.set(registry)
    try:
        yield registry
    finally:
        _registry_var.reset(token)
