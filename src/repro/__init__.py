"""HD-PSR: partial stripe repair for erasure-coded high-density storage.

Reproduction of Wang et al., *"Exploiting Parallelism of Disk Failure
Recovery via Partial Stripe Repair for an Erasure-Coded High-Density
Storage Server"* (ICPP 2022).

Quickstart::

    from repro import (
        build_exp_server, FullStripeRepair, ActivePreliminaryRepair,
        repair_single_disk,
    )

    server = build_exp_server(n=9, k=6, disk_size="1GiB", chunk_size="8MiB")
    server.fail_disk(0)
    baseline = repair_single_disk(server, FullStripeRepair(), 0)
    hdpsr    = repair_single_disk(server, ActivePreliminaryRepair(), 0)
    print(baseline.transfer_time, "->", hdpsr.transfer_time)

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured record of every table and figure.
"""

from repro.version import __version__

# Erasure coding
from repro.ec import ChunkId, LRCCode, PartialDecoder, RSCode, Stripe, StripeLayout

# Server substrate
from repro.hdss import (
    ActiveProber,
    BimodalSlowProfile,
    ChunkMemory,
    Disk,
    DiskState,
    FileChunkStore,
    HDSSConfig,
    HighDensityStorageServer,
    InMemoryChunkStore,
    LognormalProfile,
    NormalProfile,
    PassiveMonitor,
    SpeedProfile,
    UniformProfile,
)

# Repair algorithms and execution
from repro.core import (
    ALGORITHMS,
    ActivePreliminaryRepair,
    ActiveSlowerFirstRepair,
    DataPathExecutor,
    ExecutionOptions,
    FullStripeRepair,
    MultiDiskOutcome,
    PassiveRepair,
    RepairAlgorithm,
    RepairContext,
    RepairOutcome,
    RepairPlan,
    StripePlan,
    cooperative_multi_disk_repair,
    execute_plan,
    naive_multi_disk_repair,
    pa_for_pr,
    recover_disk,
    pr_for_pa,
    repair_single_disk,
)

# Wall-clock I/O
from repro.io import PacedDisk, PacedDiskArray, WallClockRepairExecutor

# Observability
from repro.obs import (
    MetricsRegistry,
    RecordingTracer,
    use_registry,
    use_tracer,
    write_chrome_trace,
    write_prometheus,
)

# Reliability
from repro.reliability import (
    ExponentialLifetime,
    WeibullLifetime,
    estimate_repair_seconds,
    simulate_durability,
)

# Simulation
from repro.sim import (
    ChunkTransfer,
    StripeJob,
    TransferReport,
    simulate_interval_schedule,
    simulate_slot_schedule,
)

# Workloads
from repro.workloads import (
    EXP1_GRID,
    PAPER_CODES,
    PAPER_DISK_SIZES,
    TransferTimeWorkload,
    build_exp_server,
    load_trace,
    normal_transfer_times,
    save_trace,
    stripes_for,
    uniform_transfer_times,
)

# Units
from repro.utils import GiB, KiB, MiB, TiB, format_bytes, format_duration, parse_size

__all__ = [
    "__version__",
    # ec
    "ChunkId",
    "Stripe",
    "StripeLayout",
    "RSCode",
    "LRCCode",
    "PartialDecoder",
    # hdss
    "Disk",
    "DiskState",
    "SpeedProfile",
    "UniformProfile",
    "NormalProfile",
    "LognormalProfile",
    "BimodalSlowProfile",
    "ChunkMemory",
    "InMemoryChunkStore",
    "FileChunkStore",
    "HDSSConfig",
    "HighDensityStorageServer",
    "ActiveProber",
    "PassiveMonitor",
    # core
    "ALGORITHMS",
    "RepairAlgorithm",
    "RepairContext",
    "RepairPlan",
    "StripePlan",
    "FullStripeRepair",
    "ActivePreliminaryRepair",
    "ActiveSlowerFirstRepair",
    "PassiveRepair",
    "ExecutionOptions",
    "RepairOutcome",
    "execute_plan",
    "repair_single_disk",
    "MultiDiskOutcome",
    "naive_multi_disk_repair",
    "cooperative_multi_disk_repair",
    "DataPathExecutor",
    "recover_disk",
    "pa_for_pr",
    "pr_for_pa",
    # io
    "PacedDisk",
    "PacedDiskArray",
    "WallClockRepairExecutor",
    # obs
    "MetricsRegistry",
    "RecordingTracer",
    "use_tracer",
    "use_registry",
    "write_chrome_trace",
    "write_prometheus",
    # reliability
    "ExponentialLifetime",
    "WeibullLifetime",
    "simulate_durability",
    "estimate_repair_seconds",
    # sim
    "ChunkTransfer",
    "StripeJob",
    "TransferReport",
    "simulate_interval_schedule",
    "simulate_slot_schedule",
    # workloads
    "TransferTimeWorkload",
    "normal_transfer_times",
    "uniform_transfer_times",
    "build_exp_server",
    "stripes_for",
    "save_trace",
    "load_trace",
    "PAPER_CODES",
    "PAPER_DISK_SIZES",
    "EXP1_GRID",
    # units
    "KiB",
    "MiB",
    "GiB",
    "TiB",
    "parse_size",
    "format_bytes",
    "format_duration",
]
