"""Probe staleness: disk speeds drift between probing and repairing.

The paper motivates HD-PSR-PA (§4.3) by noting that active probing costs
resources *and* reflects the disk's speed at probe time only. This module
models what happens in between: by the time chunks actually move, some
disks have drifted (load changes) and some have entered fresh slow
episodes (background scrubbing, remapping) the probe never saw.

Given a probed matrix ``L`` and the per-chunk source disks,
:func:`drift_transfer_times` produces the *execution-time* matrix: each
disk gets a multiplicative log-normal drift plus, with some probability, a
transient slowdown episode. Active schemes plan on the stale ``L`` and pay
the drifted reality; HD-PSR-PA's timers observe the reality directly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

import numpy as np

from repro.errors import ConfigurationError
from repro.utils.rng import RngLike, make_rng
from repro.utils.validation import check_non_negative, check_probability


@dataclass
class StalenessModel:
    """Parameters of the probe-to-repair drift.

    Attributes:
        drift_sigma: sigma of the per-disk log-normal drift factor
            (0 = speeds frozen since probing).
        episode_prob: probability that a disk entered a *new* slow episode
            after probing.
        episode_factor: slowdown of such an episode (4 = paper-style slow
            disk).
        recovery_prob: probability that a disk the probe saw as slow has
            *recovered* (its chunks speed up by ``episode_factor``) —
            staleness cuts both ways.
    """

    drift_sigma: float = 0.0
    episode_prob: float = 0.0
    episode_factor: float = 4.0
    recovery_prob: float = 0.0

    def __post_init__(self) -> None:
        check_non_negative("drift_sigma", self.drift_sigma)
        check_probability("episode_prob", self.episode_prob)
        check_probability("recovery_prob", self.recovery_prob)
        if self.episode_factor < 1.0:
            raise ConfigurationError(
                f"episode_factor must be >= 1, got {self.episode_factor}"
            )


@dataclass
class DriftOutcome:
    """The drifted matrix plus ground truth about what changed."""

    L_actual: np.ndarray
    #: Per-disk multiplicative factor applied to transfer times.
    disk_factors: Dict[int, float] = field(default_factory=dict)
    #: Disks that entered a new slow episode after probing.
    new_slow_disks: "list[int]" = field(default_factory=list)
    #: Previously-slow disks that recovered.
    recovered_disks: "list[int]" = field(default_factory=list)


def drift_transfer_times(
    L_probed: np.ndarray,
    disk_ids: np.ndarray,
    model: StalenessModel,
    slow_threshold: "float | None" = None,
    seed: RngLike = None,
) -> DriftOutcome:
    """Produce the execution-time matrix after probe-to-repair drift.

    Args:
        L_probed: s x k matrix of transfer times as measured at probe time.
        disk_ids: s x k matrix of the source disk of each chunk (drift is
            per *disk*, so all chunks of one disk move together).
        model: the staleness parameters.
        slow_threshold: transfer time above which a disk counted as slow at
            probe time (for recovery sampling); default 2 x median.
        seed: RNG seed.
    """
    L_probed = np.asarray(L_probed, dtype=np.float64)
    disk_ids = np.asarray(disk_ids)
    if L_probed.shape != disk_ids.shape:
        raise ConfigurationError(
            f"L {L_probed.shape} and disk_ids {disk_ids.shape} must match"
        )
    rng = make_rng(seed)
    if slow_threshold is None:
        slow_threshold = 2.0 * float(np.median(L_probed))

    # Probe-time view of which disks were slow (max chunk time per disk).
    disk_list = sorted({int(d) for d in disk_ids.flatten()})
    was_slow = {}
    for d in disk_list:
        mask = disk_ids == d
        was_slow[d] = bool(L_probed[mask].max() > slow_threshold)

    factors: Dict[int, float] = {}
    new_slow: "list[int]" = []
    recovered: "list[int]" = []
    for d in disk_list:
        factor = float(np.exp(rng.normal(0.0, model.drift_sigma))) if model.drift_sigma else 1.0
        if was_slow[d]:
            if rng.random() < model.recovery_prob:
                factor /= model.episode_factor
                recovered.append(d)
        else:
            if rng.random() < model.episode_prob:
                factor *= model.episode_factor
                new_slow.append(d)
        factors[d] = factor

    L_actual = L_probed.copy()
    for d, factor in factors.items():
        if factor != 1.0:
            L_actual[disk_ids == d] *= factor
    return DriftOutcome(
        L_actual=L_actual,
        disk_factors=factors,
        new_slow_disks=new_slow,
        recovered_disks=recovered,
    )
