"""Trace persistence: save/load transfer-time workloads.

Traces are ``.npz`` archives (matrix + slow mask) with a JSON metadata
sidecar embedded in the archive, so an experiment's exact ``L_{s×k}`` can
be replayed across machines and versions.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Union

import numpy as np

from repro.errors import ConfigurationError
from repro.workloads.generator import TransferTimeWorkload

TRACE_FORMAT_VERSION = 1


def save_trace(workload: TransferTimeWorkload, path: Union[str, Path]) -> Path:
    """Write a workload to ``path`` (``.npz`` appended if missing)."""
    path = Path(path)
    if path.suffix != ".npz":
        path = path.with_suffix(path.suffix + ".npz") if path.suffix else path.with_suffix(".npz")
    meta = dict(workload.params)
    meta["format_version"] = TRACE_FORMAT_VERSION
    path.parent.mkdir(parents=True, exist_ok=True)
    np.savez_compressed(
        path,
        L=workload.L,
        slow_mask=workload.slow_mask,
        meta=np.frombuffer(json.dumps(meta).encode(), dtype=np.uint8),
    )
    return path


def load_trace(path: Union[str, Path]) -> TransferTimeWorkload:
    """Load a workload previously written by :func:`save_trace`."""
    path = Path(path)
    if not path.exists():
        raise ConfigurationError(f"trace {path} does not exist")
    with np.load(path) as archive:
        try:
            L = archive["L"]
            slow_mask = archive["slow_mask"]
            meta_bytes = archive["meta"].tobytes()
        except KeyError as exc:
            raise ConfigurationError(f"trace {path} is missing field {exc}") from exc
    meta = json.loads(meta_bytes.decode())
    version = meta.pop("format_version", None)
    if version != TRACE_FORMAT_VERSION:
        raise ConfigurationError(
            f"trace {path} has format version {version}, expected {TRACE_FORMAT_VERSION}"
        )
    if L.shape != slow_mask.shape:
        raise ConfigurationError(f"trace {path}: L {L.shape} vs slow_mask {slow_mask.shape}")
    return TransferTimeWorkload(L=L, slow_mask=slow_mask.astype(bool), params=meta)
