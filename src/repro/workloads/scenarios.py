"""Canned experiment scenarios matching the paper's evaluation setup (§5.2).

Testbed: 36-disk server (EC2 ``d3en.12xlarge``), RS codes (6,4) / (9,6) /
(14,10), 64 MiB chunks, failed-disk data sizes 100/150/200 GiB. The
builders here assemble :class:`~repro.hdss.server.HighDensityStorageServer`
instances whose stripe population puts exactly the requested amount of data
on the disk that will fail.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.errors import ConfigurationError
from repro.hdss.profiles import BimodalSlowProfile, SpeedProfile
from repro.hdss.server import HDSSConfig, HighDensityStorageServer
from repro.utils.units import GiB, MiB, parse_size

#: RS parameters evaluated in the paper: RAID6, QFS, Facebook f4.
PAPER_CODES: List[Tuple[int, int]] = [(6, 4), (9, 6), (14, 10)]

#: Failed-disk data sizes evaluated in the paper.
PAPER_DISK_SIZES: List[int] = [100 * GiB, 150 * GiB, 200 * GiB]

#: The full Experiment-1 grid: (n, k) x failed-disk size.
EXP1_GRID: List[Tuple[Tuple[int, int], int]] = [
    (nk, size) for nk in PAPER_CODES for size in PAPER_DISK_SIZES
]

#: Nominal SATA bandwidth of a d3en-class disk (approximate; only ratios
#: between disks matter to the repair schedules).
DEFAULT_BANDWIDTH = 180e6


def stripes_for(disk_size: "int | str", chunk_size: "int | str", num_disks: int, n: int) -> int:
    """How many stripes put ``disk_size`` bytes of chunks on one disk.

    Stride-1 rotating placement loads every disk identically only when the
    stripe count is a multiple of ``num_disks`` (each full rotation puts
    exactly ``n`` chunks on each disk), so this returns
    ``round(per_disk_chunks / n) * num_disks`` — every disk then holds
    within ``n/2`` chunks of the requested ``disk_size`` (<1% off at the
    paper's scales of 1600+ chunks per disk).
    """
    disk_size = parse_size(disk_size)
    chunk_size = parse_size(chunk_size)
    if disk_size % chunk_size:
        raise ConfigurationError("disk_size must be a multiple of chunk_size")
    per_disk = disk_size // chunk_size
    rotations = max(1, round(per_disk / n))
    return rotations * num_disks


def build_exp_server(
    n: int,
    k: int,
    disk_size: "int | str" = 100 * GiB,
    chunk_size: "int | str" = 64 * MiB,
    num_disks: int = 36,
    memory_chunks: Optional[int] = None,
    ros: float = 0.1,
    slow_factor: float = 4.0,
    jitter: float = 0.05,
    seed: int = 0,
    with_data: bool = False,
    profile: Optional[SpeedProfile] = None,
    placement: str = "rotating",
    store=None,
) -> HighDensityStorageServer:
    """A paper-style server, provisioned and ready for failure injection.

    Args:
        n, k: RS parameters.
        disk_size: data to be repaired per failed disk (drives stripe count).
        chunk_size: chunk size (paper default 64 MiB).
        num_disks: chassis size (paper: 36).
        memory_chunks: repair memory capacity ``c``; default ``2 * k``
            (enough for two concurrent FSR stripes — the memory-competition
            regime of Figure 1(a)).
        ros: fraction of *disks* that are slow.
        slow_factor: how much slower the slow disks run.
        jitter: per-transfer noise.
        seed: master seed.
        with_data: RS-encode real random bytes (slow; for data-path tests).
        profile: override the disk speed profile entirely.
        store: chunk-store override (e.g. a
            :class:`~repro.hdss.store.ShardedChunkStore` for the service);
            default is the in-memory store.
    """
    chunk_size = parse_size(chunk_size)
    disk_size = parse_size(disk_size)
    if profile is None:
        profile = BimodalSlowProfile(DEFAULT_BANDWIDTH, ros=ros, slow_factor=slow_factor)
    config = HDSSConfig(
        num_disks=num_disks,
        n=n,
        k=k,
        chunk_size=chunk_size,
        memory_chunks=memory_chunks if memory_chunks is not None else 2 * k,
        profile=profile,
        jitter=jitter,
        placement=placement,
        seed=seed,
    )
    server = HighDensityStorageServer(config, store=store)
    server.provision_stripes(stripes_for(disk_size, chunk_size, num_disks, n), with_data=with_data)
    return server

