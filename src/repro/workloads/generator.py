"""Synthetic ``L_{s×k}`` transfer-time workloads.

The paper's Observation-2 setup (§3.2): chunk transfer times drawn from a
normal distribution with mean 2 and *variance* 4, a fraction **ROS** of
chunks designated *slow*. We reproduce that generator faithfully — slow
chunks are regular draws scaled by ``slow_factor`` — plus a uniform control
workload for calibration tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ConfigurationError
from repro.utils.rng import RngLike, make_rng
from repro.utils.validation import check_positive, check_probability


@dataclass
class TransferTimeWorkload:
    """A generated transfer-time matrix plus its ground truth.

    Attributes:
        L: the s x k transfer-time matrix (seconds, or the paper's
            dimensionless "time units").
        slow_mask: boolean s x k matrix; True where a chunk was made slow.
        params: generator parameters for trace metadata.
    """

    L: np.ndarray
    slow_mask: np.ndarray
    params: dict = field(default_factory=dict)

    @property
    def s(self) -> int:
        return self.L.shape[0]

    @property
    def k(self) -> int:
        return self.L.shape[1]

    @property
    def ros_actual(self) -> float:
        """Realised slow-chunk fraction."""
        return float(self.slow_mask.mean())


def normal_transfer_times(
    s: int,
    k: int,
    mean: float = 2.0,
    variance: float = 4.0,
    ros: float = 0.0,
    slow_factor: float = 4.0,
    floor: float = 0.1,
    seed: RngLike = None,
) -> TransferTimeWorkload:
    """The paper's Figure-4 workload: N(mean, variance) with ROS slow chunks.

    Args:
        s: stripes; k: chunks per stripe.
        mean, variance: of the base normal distribution (paper: 2 and 4).
        ros: ratio of slow chunks over all s*k chunks (paper: 2-10%).
        slow_factor: slow chunks' times are scaled by this factor.
        floor: minimum transfer time (normal draws can go non-positive;
            the paper is silent on clipping — we clip at a small positive
            floor so times stay physical).
        seed: RNG seed / generator.
    """
    check_positive("s", s)
    check_positive("k", k)
    check_positive("mean", mean)
    if variance < 0:
        raise ConfigurationError(f"variance must be >= 0, got {variance}")
    check_probability("ros", ros)
    if slow_factor < 1.0:
        raise ConfigurationError(f"slow_factor must be >= 1, got {slow_factor}")
    rng = make_rng(seed)
    base = rng.normal(mean, np.sqrt(variance), size=(s, k))
    base = np.maximum(base, floor)
    slow_mask = np.zeros((s, k), dtype=bool)
    total = s * k
    num_slow = int(round(ros * total))
    if num_slow:
        flat_idx = rng.choice(total, size=num_slow, replace=False)
        slow_mask.flat[flat_idx] = True
        base[slow_mask] *= slow_factor
    return TransferTimeWorkload(
        L=base,
        slow_mask=slow_mask,
        params={
            "kind": "normal",
            "s": s,
            "k": k,
            "mean": mean,
            "variance": variance,
            "ros": ros,
            "slow_factor": slow_factor,
            "floor": floor,
        },
    )


def disk_heterogeneous_transfer_times(
    s: int,
    k: int,
    num_disks: int,
    ros: float = 0.1,
    slow_factor: float = 4.0,
    base_mean: float = 2.0,
    base_std: float = 0.2,
    floor: float = 0.1,
    seed: RngLike = None,
) -> "tuple[TransferTimeWorkload, np.ndarray]":
    """Disk-level heterogeneity: slow *disks*, not slow chunks.

    Chunks are assigned to random source disks; a ``ros`` fraction of the
    disks runs ``slow_factor`` x slower, so every chunk on a slow disk is
    slow together — the structure HD-PSR-PA's per-disk marking assumes
    (and what a real mixed-health chassis produces).

    Returns ``(workload, disk_ids)`` where ``disk_ids`` is the s x k
    source-disk matrix aligned with ``workload.L``.
    """
    check_positive("s", s)
    check_positive("k", k)
    check_positive("num_disks", num_disks)
    check_probability("ros", ros)
    if slow_factor < 1.0:
        raise ConfigurationError(f"slow_factor must be >= 1, got {slow_factor}")
    if k > num_disks:
        raise ConfigurationError(f"k={k} chunks cannot come from {num_disks} distinct disks")
    rng = make_rng(seed)
    # Each stripe reads from k distinct disks.
    disk_ids = np.empty((s, k), dtype=np.int64)
    for i in range(s):
        disk_ids[i] = rng.choice(num_disks, size=k, replace=False)
    factors = np.ones(num_disks, dtype=np.float64)
    num_slow = int(round(ros * num_disks))
    if num_slow:
        slow = rng.choice(num_disks, size=num_slow, replace=False)
        factors[slow] = slow_factor
    base = np.maximum(rng.normal(base_mean, base_std, size=(s, k)), floor)
    L = base * factors[disk_ids]
    slow_mask = factors[disk_ids] > 1.0
    workload = TransferTimeWorkload(
        L=L,
        slow_mask=slow_mask,
        params={
            "kind": "disk-heterogeneous",
            "s": s,
            "k": k,
            "num_disks": num_disks,
            "ros": ros,
            "slow_factor": slow_factor,
            "base_mean": base_mean,
            "base_std": base_std,
        },
    )
    return workload, disk_ids


def uniform_transfer_times(
    s: int,
    k: int,
    low: float = 1.0,
    high: float = 3.0,
    seed: RngLike = None,
) -> TransferTimeWorkload:
    """Homogeneous control workload: U(low, high), no designated slowers."""
    check_positive("s", s)
    check_positive("k", k)
    if not 0 < low <= high:
        raise ConfigurationError(f"require 0 < low <= high, got [{low}, {high}]")
    rng = make_rng(seed)
    L = rng.uniform(low, high, size=(s, k))
    return TransferTimeWorkload(
        L=L,
        slow_mask=np.zeros((s, k), dtype=bool),
        params={"kind": "uniform", "s": s, "k": k, "low": low, "high": high},
    )
