"""Workload generation: transfer-time matrices, scenarios, traces, arrivals."""

from repro.workloads.arrivals import (
    SHAPES,
    ArrivalSchedule,
    bursty_arrivals,
    constant_arrivals,
    diurnal_arrivals,
    flash_crowd_arrivals,
    make_arrivals,
)
from repro.workloads.generator import (
    TransferTimeWorkload,
    disk_heterogeneous_transfer_times,
    normal_transfer_times,
    uniform_transfer_times,
)
from repro.workloads.scenarios import (
    EXP1_GRID,
    PAPER_CODES,
    PAPER_DISK_SIZES,
    build_exp_server,
    stripes_for,
)
from repro.workloads.staleness import DriftOutcome, StalenessModel, drift_transfer_times
from repro.workloads.traces import load_trace, save_trace

__all__ = [
    "TransferTimeWorkload",
    "disk_heterogeneous_transfer_times",
    "normal_transfer_times",
    "uniform_transfer_times",
    "PAPER_CODES",
    "PAPER_DISK_SIZES",
    "EXP1_GRID",
    "build_exp_server",
    "stripes_for",
    "save_trace",
    "load_trace",
    "StalenessModel",
    "DriftOutcome",
    "drift_transfer_times",
    "SHAPES",
    "ArrivalSchedule",
    "constant_arrivals",
    "diurnal_arrivals",
    "bursty_arrivals",
    "flash_crowd_arrivals",
    "make_arrivals",
]
