"""Disk speed profiles — how heterogeneous the spindles are.

A profile draws one nominal bandwidth per disk. The key profile for the
paper is :class:`BimodalSlowProfile`: a fraction ``ros`` of disks (the
"ratio of slow", §3.2) runs ``slow_factor`` times slower than the rest,
which is how mixed-age/high-load spindles behave in a real HDSS.
"""

from __future__ import annotations

import abc
from typing import List

import numpy as np

from repro.errors import ConfigurationError
from repro.utils.rng import RngLike, make_rng
from repro.utils.validation import check_positive, check_probability


class SpeedProfile(abc.ABC):
    """Draws per-disk nominal bandwidths (bytes/second)."""

    @abc.abstractmethod
    def sample(self, count: int, rng: RngLike = None) -> np.ndarray:
        """Return ``count`` bandwidths as a float64 array."""

    def describe(self) -> str:
        """One-line human description for reports."""
        return type(self).__name__


class UniformProfile(SpeedProfile):
    """All disks identical: ``bandwidth`` bytes/second."""

    def __init__(self, bandwidth: float) -> None:
        check_positive("bandwidth", bandwidth)
        self.bandwidth = float(bandwidth)

    def sample(self, count: int, rng: RngLike = None) -> np.ndarray:
        return np.full(count, self.bandwidth, dtype=np.float64)

    def describe(self) -> str:
        return f"uniform({self.bandwidth / 1e6:.0f} MB/s)"


class NormalProfile(SpeedProfile):
    """Bandwidths ~ Normal(mean, std), truncated below at ``floor``.

    Mirrors the paper's Observation-2 setup, which draws chunk transfer
    *times* from N(2, 4); drawing bandwidths normally and clipping gives the
    same style of unimodal heterogeneity at the disk level.
    """

    def __init__(self, mean: float, std: float, floor_fraction: float = 0.05) -> None:
        check_positive("mean", mean)
        if std < 0:
            raise ConfigurationError(f"std must be >= 0, got {std}")
        check_probability("floor_fraction", floor_fraction)
        self.mean = float(mean)
        self.std = float(std)
        self.floor = self.mean * floor_fraction

    def sample(self, count: int, rng: RngLike = None) -> np.ndarray:
        gen = make_rng(rng)
        values = gen.normal(self.mean, self.std, size=count)
        return np.maximum(values, max(self.floor, 1e-9))

    def describe(self) -> str:
        return f"normal(mean={self.mean / 1e6:.0f} MB/s, std={self.std / 1e6:.0f})"


class LognormalProfile(SpeedProfile):
    """Heavy-tailed bandwidths (a few disks much slower than the median)."""

    def __init__(self, median: float, sigma: float = 0.25) -> None:
        check_positive("median", median)
        check_positive("sigma", sigma)
        self.median = float(median)
        self.sigma = float(sigma)

    def sample(self, count: int, rng: RngLike = None) -> np.ndarray:
        gen = make_rng(rng)
        return self.median * np.exp(gen.normal(0.0, self.sigma, size=count))

    def describe(self) -> str:
        return f"lognormal(median={self.median / 1e6:.0f} MB/s, sigma={self.sigma})"


class BimodalSlowProfile(SpeedProfile):
    """A ``ros`` fraction of disks runs ``slow_factor`` x slower.

    This is the paper's slow-disk population: fast disks at ``bandwidth``,
    slow disks at ``bandwidth / slow_factor``. The number of slow disks is
    ``round(ros * count)`` placed at random positions, so a given seed
    always produces the same slow set.
    """

    def __init__(self, bandwidth: float, ros: float, slow_factor: float = 4.0) -> None:
        check_positive("bandwidth", bandwidth)
        check_probability("ros", ros)
        if slow_factor < 1.0:
            raise ConfigurationError(f"slow_factor must be >= 1, got {slow_factor}")
        self.bandwidth = float(bandwidth)
        self.ros = float(ros)
        self.slow_factor = float(slow_factor)

    def sample(self, count: int, rng: RngLike = None) -> np.ndarray:
        gen = make_rng(rng)
        values = np.full(count, self.bandwidth, dtype=np.float64)
        num_slow = int(round(self.ros * count))
        if num_slow > 0:
            slow_idx = gen.choice(count, size=min(num_slow, count), replace=False)
            values[slow_idx] = self.bandwidth / self.slow_factor
        return values

    def describe(self) -> str:
        return (
            f"bimodal({self.bandwidth / 1e6:.0f} MB/s, ros={self.ros:.0%}, "
            f"x{self.slow_factor:.0f} slower)"
        )


def build_disks(
    count: int,
    profile: SpeedProfile,
    capacity: int,
    jitter: float = 0.0,
    seed: RngLike = None,
) -> "List":
    """Instantiate ``count`` :class:`~repro.hdss.disk.Disk` from a profile."""
    from repro.hdss.disk import Disk
    from repro.utils.rng import derive_seed, optional_seed

    gen = make_rng(seed)
    bandwidths = profile.sample(count, gen)
    base = optional_seed(seed)
    disks = []
    for disk_id in range(count):
        disk_seed = derive_seed(base, "disk", disk_id) if base is not None else None
        disks.append(
            Disk(disk_id, float(bandwidths[disk_id]), capacity=capacity, jitter=jitter, seed=disk_seed)
        )
    return disks
