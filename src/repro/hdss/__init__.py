"""High-density storage server (HDSS) substrate.

Simulates the paper's testbed — a single server packing dozens of disks
(EC2 ``d3en.12xlarge``: 36 SATA disks) — as a composable set of models:

* :mod:`repro.hdss.disk` — per-disk performance model (bandwidth, slow
  state, failure) and probing;
* :mod:`repro.hdss.profiles` — disk/chunk speed distributions, including
  the paper's slow-fraction ("ROS") heterogeneity;
* :mod:`repro.hdss.store` — chunk data stores (in-memory and file-backed);
* :mod:`repro.hdss.memory` — the c-chunk repair memory;
* :mod:`repro.hdss.placement` — stripe placement and per-disk stripe sets;
* :mod:`repro.hdss.server` — the assembled server: encode volumes, fail
  disks, derive the ``L_{s×k}`` transfer-time matrices repairs consume;
* :mod:`repro.hdss.prober` — active speed testing and passive slow-disk
  detection (the inputs to HD-PSR's active/passive algorithms).
"""

from repro.hdss.disk import Disk, DiskState
from repro.hdss.profiles import (
    BimodalSlowProfile,
    LognormalProfile,
    NormalProfile,
    SpeedProfile,
    UniformProfile,
)
from repro.hdss.store import (
    ChunkStore,
    FileChunkStore,
    InMemoryChunkStore,
    ShardedChunkStore,
)
from repro.hdss.memory import ChunkMemory
from repro.hdss.placement import random_placement, rotating_placement
from repro.hdss.server import HDSSConfig, HighDensityStorageServer
from repro.hdss.prober import ActiveProber, PassiveMonitor

__all__ = [
    "Disk",
    "DiskState",
    "SpeedProfile",
    "UniformProfile",
    "NormalProfile",
    "LognormalProfile",
    "BimodalSlowProfile",
    "ChunkStore",
    "InMemoryChunkStore",
    "FileChunkStore",
    "ShardedChunkStore",
    "ChunkMemory",
    "rotating_placement",
    "random_placement",
    "HDSSConfig",
    "HighDensityStorageServer",
    "ActiveProber",
    "PassiveMonitor",
]
