"""Per-disk performance and health model.

A :class:`Disk` knows its nominal bandwidth, a possibly degraded *current*
bandwidth (slow disks are the paper's central nuisance), and its health
state. Transfer times are deterministic given the bandwidth, with optional
multiplicative jitter drawn from a seeded RNG — repair algorithms only ever
see the resulting per-chunk times, exactly like the prototype only sees
measured speeds.
"""

from __future__ import annotations

import enum


from repro.errors import ConfigurationError, DiskFailedError
from repro.utils.rng import RngLike, make_rng
from repro.utils.validation import check_positive


class DiskState(enum.Enum):
    """Health/performance state of a disk."""

    HEALTHY = "healthy"
    #: Serving I/O but at degraded bandwidth (the paper's *slow* disk).
    SLOW = "slow"
    FAILED = "failed"


class Disk:
    """One spindle of the HDSS.

    Args:
        disk_id: integer id, unique within a server.
        bandwidth: nominal sustained transfer bandwidth, bytes/second.
        capacity: disk capacity in bytes (accounting only).
        jitter: per-transfer multiplicative noise amplitude in [0, 1);
            a transfer takes ``size / current_bandwidth * (1 + U(-j, +j))``.
        seed: RNG seed for jitter (derived per-disk by the server).
    """

    def __init__(
        self,
        disk_id: int,
        bandwidth: float,
        capacity: int = 0,
        jitter: float = 0.0,
        seed: RngLike = None,
    ) -> None:
        if disk_id < 0:
            raise ConfigurationError(f"disk_id must be >= 0, got {disk_id}")
        check_positive("bandwidth", bandwidth)
        if not 0.0 <= jitter < 1.0:
            raise ConfigurationError(f"jitter must be in [0, 1), got {jitter}")
        self.disk_id = disk_id
        self.nominal_bandwidth = float(bandwidth)
        self._current_bandwidth = float(bandwidth)
        self.capacity = int(capacity)
        self.jitter = float(jitter)
        self._rng = make_rng(seed)
        self.state = DiskState.HEALTHY
        #: Total bytes read through this disk (wear/telemetry accounting).
        self.bytes_read = 0
        #: Number of read operations issued.
        self.read_ops = 0

    # ------------------------------------------------------------------ state
    @property
    def current_bandwidth(self) -> float:
        """Effective bandwidth right now (degradation applied)."""
        return self._current_bandwidth

    @property
    def is_failed(self) -> bool:
        return self.state is DiskState.FAILED

    @property
    def is_slow(self) -> bool:
        """Whether the disk is *actually* degraded (ground truth).

        Repair algorithms must not read this directly — they learn slowness
        through probing (active) or timers (passive).
        """
        return self.state is DiskState.SLOW

    def degrade(self, factor: float) -> None:
        """Mark the disk slow: bandwidth becomes ``nominal / factor``.

        ``factor`` must be >= 1 — a degradation can only slow a disk down;
        zero, negative, or sub-unity factors (which would divide by zero or
        silently *speed the disk up*) raise :class:`ConfigurationError`.
        """
        check_positive("factor", factor)
        if factor < 1.0:
            raise ConfigurationError(
                f"degrade factor must be >= 1 (use heal() to restore), got {factor}"
            )
        if self.is_failed:
            raise DiskFailedError(f"disk {self.disk_id} is failed")
        self._current_bandwidth = self.nominal_bandwidth / factor
        self.state = DiskState.SLOW if factor > 1.0 else DiskState.HEALTHY

    def heal(self) -> None:
        """Restore nominal bandwidth and healthy state."""
        self._current_bandwidth = self.nominal_bandwidth
        self.state = DiskState.HEALTHY

    def fail(self) -> None:
        """Mark the disk failed; all subsequent I/O raises."""
        self.state = DiskState.FAILED

    # -------------------------------------------------------------------- I/O
    def transfer_time(self, size: int, jittered: bool = True) -> float:
        """Seconds to move ``size`` bytes from this disk into memory.

        Raises:
            DiskFailedError: if the disk is failed.
        """
        if self.is_failed:
            raise DiskFailedError(f"read of {size} B from failed disk {self.disk_id}")
        if size < 0:
            raise ConfigurationError(f"size must be >= 0, got {size}")
        base = size / self._current_bandwidth
        if jittered and self.jitter > 0.0:
            base *= 1.0 + self._rng.uniform(-self.jitter, self.jitter)
        return base

    def record_read(self, size: int) -> None:
        """Account a completed read (telemetry used by tests/reports)."""
        self.bytes_read += int(size)
        self.read_ops += 1

    def probe(self, probe_size: int = 1024, noise: float = 0.02) -> float:
        """Actively measure bandwidth by timing a small read (paper §4.2).

        Reads ``probe_size`` bytes (1 KiB by default, as in the paper) and
        returns the inferred bytes/second. The measurement carries small
        relative noise so active algorithms see estimates, not oracle truth.
        """
        elapsed = self.transfer_time(probe_size, jittered=False)
        if noise > 0.0:
            elapsed *= max(1e-9, 1.0 + self._rng.normal(0.0, noise))
        self.record_read(probe_size)
        return probe_size / elapsed

    def __repr__(self) -> str:
        return (
            f"Disk(id={self.disk_id}, state={self.state.value}, "
            f"bw={self._current_bandwidth / 1e6:.1f} MB/s)"
        )
