"""Stripe placement across the server's disks.

Two strategies:

* :func:`rotating_placement` — deterministic round-robin with per-stripe
  rotation, the classic RAID-style declustered layout (every disk carries
  roughly ``s * n / num_disks`` chunks and stripe sets overlap evenly);
* :func:`random_placement` — each stripe picks n distinct disks uniformly
  at random (seeded), modelling hash-based placement.

Both return a :class:`~repro.ec.stripe.StripeLayout`, whose per-disk stripe
sets drive cooperative multi-disk repair.
"""

from __future__ import annotations

from repro.ec.stripe import Stripe, StripeLayout
from repro.errors import ConfigurationError
from repro.utils.rng import RngLike, make_rng


def _check(num_disks: int, num_stripes: int, n: int, k: int) -> None:
    if n > num_disks:
        raise ConfigurationError(
            f"cannot place n={n} shards on {num_disks} disks without overlap"
        )
    if not (0 < k < n):
        raise ConfigurationError(f"require 0 < k < n, got n={n}, k={k}")
    if num_stripes < 0:
        raise ConfigurationError(f"num_stripes must be >= 0, got {num_stripes}")


def rotating_placement(num_disks: int, num_stripes: int, n: int, k: int) -> StripeLayout:
    """Declustered round-robin: stripe i uses disks ``(i + j) % num_disks``.

    The stride-1 rotation guarantees perfectly even load (each disk carries
    ``n`` shards per ``num_disks`` stripes) *and* rich stripe-set overlap:
    a disk's stripe set spans ``2n - 1`` neighbouring disks, so a failed
    disk's recovery reads from many spindles rather than one aligned group
    (a stride of ``n`` would partition the chassis into
    ``num_disks / gcd(n, num_disks)`` isolated groups).
    """
    _check(num_disks, num_stripes, n, k)
    layout = StripeLayout()
    for i in range(num_stripes):
        disks = tuple((i + j) % num_disks for j in range(n))
        layout.add(Stripe(index=i, n=n, k=k, disks=disks))
    return layout


def random_placement(
    num_disks: int, num_stripes: int, n: int, k: int, seed: RngLike = None
) -> StripeLayout:
    """Each stripe independently picks n distinct disks uniformly at random."""
    _check(num_disks, num_stripes, n, k)
    rng = make_rng(seed)
    layout = StripeLayout()
    for i in range(num_stripes):
        disks = tuple(int(d) for d in rng.choice(num_disks, size=n, replace=False))
        layout.add(Stripe(index=i, n=n, k=k, disks=disks))
    return layout
