"""How repair algorithms learn disk speeds.

Two mechanisms mirroring §4.2 / §4.3 of the paper:

* :class:`ActiveProber` — reads a small probe (1 KiB by default) from each
  disk, converts measured bandwidth into per-chunk transfer-time estimates,
  and assembles the estimated ``L_{s×k}`` matrix HD-PSR-AP/AS consume. The
  estimates carry measurement noise — active algorithms never see oracle
  truth.

* :class:`PassiveMonitor` — watches completed chunk reads; when a read
  exceeds ``threshold`` seconds (or ``threshold_ratio`` x the expected
  time), the source disk is marked *slow*. HD-PSR-PA consults these marks
  and never issues probe I/O.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.hdss.server import HighDensityStorageServer
from repro.utils.validation import check_positive


class ActiveProber:
    """Active speed testing (paper §4.2 preamble).

    Args:
        server: the HDSS under repair.
        probe_size: probe read size in bytes (paper: ~1 KiB).
        noise: relative std-dev of the probe measurement.
    """

    def __init__(
        self,
        server: HighDensityStorageServer,
        probe_size: int = 1024,
        noise: float = 0.02,
    ) -> None:
        check_positive("probe_size", probe_size)
        if noise < 0:
            raise ConfigurationError(f"noise must be >= 0, got {noise}")
        self.server = server
        self.probe_size = int(probe_size)
        self.noise = float(noise)
        #: Last measured bandwidth per disk id.
        self.measured: Dict[int, float] = {}

    def probe_disk(self, disk_id: int) -> float:
        """Measure one disk; caches and returns bytes/second."""
        bw = self.server.disk(disk_id).probe(self.probe_size, noise=self.noise)
        self.measured[disk_id] = bw
        return bw

    def probe_all(self, disk_ids: Optional[Sequence[int]] = None) -> Dict[int, float]:
        """Probe the given disks (default: all healthy regular + spare)."""
        if disk_ids is None:
            disk_ids = [d.disk_id for d in self.server.disks if not d.is_failed]
        for disk_id in disk_ids:
            self.probe_disk(disk_id)
        return dict(self.measured)

    def estimated_chunk_time(self, disk_id: int) -> float:
        """Chunk-size / measured-bandwidth (probing on demand)."""
        if disk_id not in self.measured:
            self.probe_disk(disk_id)
        return self.server.config.chunk_size / self.measured[disk_id]

    def estimate_matrix(
        self, failed_disks: Sequence[int], select: str = "first"
    ) -> Tuple[List[int], List[List[int]], np.ndarray]:
        """Assemble the *estimated* ``L_{s×k}`` for a recovery.

        Same shape contract as
        :meth:`~repro.hdss.server.HighDensityStorageServer.transfer_time_matrix`,
        but each entry comes from probe measurements instead of oracle
        transfer times. Each disk is probed once and reused across stripes,
        which is exactly the paper's "test the transfer speed of disks in
        advance".
        """
        stripe_indices = self.server.stripes_needing_repair(failed_disks)
        survivor_ids: List[List[int]] = []
        rows: List[List[float]] = []
        for si in stripe_indices:
            stripe = self.server.layout[si]
            shard_ids = self.server.survivor_shards(stripe, failed_disks, select=select)
            survivor_ids.append(shard_ids)
            rows.append(
                [self.estimated_chunk_time(stripe.disks[j]) for j in shard_ids]
            )
        L = (
            np.asarray(rows, dtype=np.float64)
            if rows
            else np.empty((0, self.server.config.k))
        )
        return stripe_indices, survivor_ids, L

    @property
    def probe_bytes_issued(self) -> int:
        """Total probe traffic (the active schemes' overhead)."""
        return self.probe_size * len(self.measured)


class PassiveMonitor:
    """Passive slow-disk detection via per-read timers (paper §4.3).

    Args:
        threshold: absolute seconds above which a chunk read marks its disk
            slow; if None, derived as ``threshold_ratio * expected_time``
            from observations so far.
        threshold_ratio: multiple of the running median read time that
            counts as slow when no absolute threshold is given.
    """

    def __init__(
        self,
        threshold: Optional[float] = None,
        threshold_ratio: float = 2.0,
    ) -> None:
        if threshold is not None:
            check_positive("threshold", threshold)
        if threshold_ratio <= 1.0:
            raise ConfigurationError(
                f"threshold_ratio must exceed 1, got {threshold_ratio}"
            )
        self.threshold = threshold
        self.threshold_ratio = float(threshold_ratio)
        self._slow: Set[int] = set()
        self._observations: List[float] = []
        # Derived-threshold cache: recomputing the median on every observe
        # would cost O(n log n) per read; refresh geometrically instead.
        self._cached_threshold: Optional[float] = None
        self._cached_at: int = 0
        #: (disk_id, seconds) log of every observed read.
        self.history: List[Tuple[int, float]] = []

    @property
    def slow_disks(self) -> List[int]:
        """Disks currently marked slow (sorted)."""
        return sorted(self._slow)

    def is_slow(self, disk_id: int) -> bool:
        return disk_id in self._slow

    def current_threshold(self) -> Optional[float]:
        """The effective slow threshold right now (None before any data).

        The derived (median-based) threshold is refreshed whenever the
        observation count has grown by 25% since the last refresh, keeping
        amortised observe() cost near O(1).
        """
        if self.threshold is not None:
            return self.threshold
        count = len(self._observations)
        if count == 0:
            return None
        if self._cached_threshold is None or count >= max(self._cached_at + 16, int(self._cached_at * 1.25)):
            self._cached_threshold = self.threshold_ratio * float(np.median(self._observations))
            self._cached_at = count
        return self._cached_threshold

    def observe(self, disk_id: int, seconds: float) -> bool:
        """Record one completed chunk read; returns True if marked slow."""
        if seconds < 0:
            raise ConfigurationError(f"negative read time {seconds}")
        self.history.append((disk_id, seconds))
        limit = self.current_threshold()
        self._observations.append(seconds)
        if limit is not None and seconds > limit:
            self._slow.add(disk_id)
            return True
        return False

    def clear(self, disk_id: Optional[int] = None) -> None:
        """Forget slow marks (one disk, or all)."""
        if disk_id is None:
            self._slow.clear()
        else:
            self._slow.discard(disk_id)
