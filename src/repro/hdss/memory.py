"""The repair memory: a pool of ``c`` chunk-sized buffers.

This is the scarce resource the whole paper is about. The executor routes
every surviving chunk through here; exceeding the capacity raises rather
than silently spilling, so schedule bugs that over-commit memory are caught
by construction. Peak-occupancy telemetry backs the memory-competition
assertions in the test suite.
"""

from __future__ import annotations

from typing import Any, Dict

import numpy as np

from repro.errors import MemoryCapacityError, StorageError
from repro.utils.validation import check_positive


class ChunkMemory:
    """Bounded pool of chunk buffers keyed by caller-chosen handles.

    Args:
        capacity_chunks: the paper's ``c`` — max simultaneously held chunks.
        chunk_size: buffer size in bytes (all chunks are equal-sized).
    """

    def __init__(self, capacity_chunks: int, chunk_size: int) -> None:
        check_positive("capacity_chunks", capacity_chunks)
        check_positive("chunk_size", chunk_size)
        self.capacity_chunks = int(capacity_chunks)
        self.chunk_size = int(chunk_size)
        self._held: Dict[Any, np.ndarray] = {}
        #: Highest simultaneous occupancy seen (chunks).
        self.peak_occupancy = 0
        #: Total chunk admissions over the lifetime.
        self.total_admissions = 0

    # ------------------------------------------------------------------ state
    @property
    def occupancy(self) -> int:
        """Chunks currently held."""
        return len(self._held)

    @property
    def available(self) -> int:
        """Free chunk slots."""
        return self.capacity_chunks - len(self._held)

    @property
    def capacity_bytes(self) -> int:
        return self.capacity_chunks * self.chunk_size

    def holds(self, handle: Any) -> bool:
        return handle in self._held

    # ------------------------------------------------------------------- ops
    def admit(self, handle: Any, data: "np.ndarray | None" = None) -> np.ndarray:
        """Claim one slot under ``handle``; optionally filled with ``data``.

        Returns the resident buffer (zeroed if no data given).

        Raises:
            MemoryCapacityError: the pool is full — the scheduler tried to
                exceed ``c``, which FSR/PSR plans must never do.
            StorageError: duplicate handle or wrong-sized data.
        """
        if handle in self._held:
            raise StorageError(f"handle {handle!r} already resident")
        if len(self._held) >= self.capacity_chunks:
            raise MemoryCapacityError(
                f"memory full: {self.occupancy}/{self.capacity_chunks} chunks held, "
                f"cannot admit {handle!r}"
            )
        if data is None:
            buf = np.zeros(self.chunk_size, dtype=np.uint8)
        else:
            buf = np.asarray(data, dtype=np.uint8)
            if buf.shape != (self.chunk_size,):
                raise StorageError(
                    f"chunk {handle!r} has shape {buf.shape}, expected ({self.chunk_size},)"
                )
            buf = buf.copy()
        self._held[handle] = buf
        self.total_admissions += 1
        self.peak_occupancy = max(self.peak_occupancy, len(self._held))
        return buf

    def get(self, handle: Any) -> np.ndarray:
        """Return the resident buffer for ``handle``."""
        try:
            return self._held[handle]
        except KeyError:
            raise StorageError(f"handle {handle!r} is not resident") from None

    def release(self, handle: Any) -> None:
        """Free the slot held by ``handle``."""
        if handle not in self._held:
            raise StorageError(f"handle {handle!r} is not resident")
        del self._held[handle]

    def release_all(self) -> int:
        """Free every slot; returns how many were held."""
        count = len(self._held)
        self._held.clear()
        return count

    def __repr__(self) -> str:
        return (
            f"ChunkMemory({self.occupancy}/{self.capacity_chunks} chunks, "
            f"chunk_size={self.chunk_size}, peak={self.peak_occupancy})"
        )
