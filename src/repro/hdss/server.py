"""The assembled high-density storage server.

:class:`HighDensityStorageServer` wires disks, stripe placement, the chunk
store, and the c-chunk repair memory together, and exposes exactly what the
repair algorithms need:

* the per-disk *stripe sets* (what a failed disk drags into repair);
* the ``L_{s×k}`` transfer-time matrix for the stripes a recovery touches —
  the central input of §4's algorithms;
* failure/degradation injection and hot-spare disks for write-back.

The server can be *metadata-only* (no chunk bytes; pure scheduling studies)
or *data-bearing* (real RS-encoded bytes; end-to-end byte-exact repair).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.ec.encoder import RSCode
from repro.ec.stripe import ChunkId, Stripe, StripeLayout
from repro.errors import (
    ConfigurationError,
    DiskFailedError,
    LatentSectorError,
    StorageError,
)
from repro.hdss.disk import Disk
from repro.hdss.memory import ChunkMemory
from repro.hdss.placement import random_placement, rotating_placement
from repro.hdss.profiles import SpeedProfile, UniformProfile, build_disks
from repro.hdss.store import ChunkStore, InMemoryChunkStore
from repro.utils.rng import derive_seed, make_rng
from repro.utils.units import MiB, parse_size
from repro.utils.validation import check_positive, check_probability


@dataclass
class ScrubReport:
    """Outcome of a parity scrub pass."""

    #: Fully present and parity-consistent.
    clean: List[int] = field(default_factory=list)
    #: Missing chunks (failed disk / not yet repaired) — cannot verify.
    degraded: List[int] = field(default_factory=list)
    #: All chunks present but parity disagrees: silent corruption.
    corrupt: List[int] = field(default_factory=list)
    #: Metadata-only stripes with no stored bytes at all.
    unpopulated: List[int] = field(default_factory=list)

    @property
    def stripes_checked(self) -> int:
        return len(self.clean) + len(self.degraded) + len(self.corrupt) + len(self.unpopulated)

    @property
    def healthy(self) -> bool:
        return not self.corrupt and not self.degraded


@dataclass
class HDSSConfig:
    """Configuration of one high-density storage server.

    Attributes:
        num_disks: spindles in the chassis (paper testbed: 36).
        n, k: RS code parameters.
        chunk_size: bytes per chunk (paper default 64 MiB); accepts
            ``"64MiB"`` strings.
        memory_chunks: repair memory capacity ``c`` in chunks.
        spares: hot-spare disks appended after the regular ones; repaired
            chunks are written back to these.
        profile: disk speed distribution (default uniform 180 MB/s — a
            d3en-class SATA disk).
        jitter: per-transfer multiplicative noise on each disk.
        placement: ``"rotating"`` or ``"random"``.
        matrix_style: RS matrix construction (``"vandermonde"``/``"cauchy"``).
        seed: master seed; every stochastic sub-component derives from it.
    """

    num_disks: int = 36
    n: int = 9
    k: int = 6
    chunk_size: "int | str" = 64 * MiB
    memory_chunks: int = 12
    spares: int = 3
    profile: Optional[SpeedProfile] = None
    jitter: float = 0.0
    placement: str = "rotating"
    matrix_style: str = "vandermonde"
    seed: int = 0
    enclosure_size: Optional[int] = None

    def __post_init__(self) -> None:
        self.chunk_size = parse_size(self.chunk_size)
        check_positive("num_disks", self.num_disks)
        check_positive("chunk_size", self.chunk_size)
        check_positive("memory_chunks", self.memory_chunks)
        if self.spares < 0:
            raise ConfigurationError(f"spares must be >= 0, got {self.spares}")
        if not (0 < self.k < self.n):
            raise ConfigurationError(f"require 0 < k < n, got n={self.n}, k={self.k}")
        if self.n > self.num_disks:
            raise ConfigurationError(
                f"n={self.n} shards cannot be spread over {self.num_disks} disks"
            )
        if self.memory_chunks < self.k:
            raise ConfigurationError(
                f"memory_chunks={self.memory_chunks} cannot hold one FSR stripe of k={self.k}"
            )
        if self.placement not in ("rotating", "random"):
            raise ConfigurationError(f"unknown placement {self.placement!r}")
        if self.enclosure_size is not None and self.enclosure_size < 1:
            raise ConfigurationError(
                f"enclosure_size must be >= 1, got {self.enclosure_size}"
            )
        if self.profile is None:
            self.profile = UniformProfile(180e6)

    def fingerprint(self) -> dict:
        """Identity of this configuration for journal/resume validation.

        A ``--resume`` against a server built with different code, layout,
        or sizing parameters would replay chunk payloads into the wrong
        places; the journal stores this dict at ``begin`` and the recovery
        path refuses to resume on a mismatch.
        """
        return {
            "num_disks": self.num_disks,
            "n": self.n,
            "k": self.k,
            "chunk_size": int(self.chunk_size),
            "memory_chunks": self.memory_chunks,
            "spares": self.spares,
            "placement": self.placement,
            "matrix_style": self.matrix_style,
            "seed": self.seed,
        }


class HighDensityStorageServer:
    """One erasure-coded HDSS: disks + placement + store + repair memory."""

    def __init__(self, config: HDSSConfig, store: Optional[ChunkStore] = None) -> None:
        self.config = config
        self.code = RSCode(config.n, config.k, matrix_style=config.matrix_style)
        total_disks = config.num_disks + config.spares
        self.disks: List[Disk] = build_disks(
            total_disks,
            config.profile,
            capacity=0,
            jitter=config.jitter,
            seed=derive_seed(config.seed, "disks"),
        )
        self.layout = StripeLayout()
        self.store: ChunkStore = store if store is not None else InMemoryChunkStore()
        self.memory = ChunkMemory(config.memory_chunks, config.chunk_size)
        self._rng = make_rng(derive_seed(config.seed, "server"))
        self._data_bearing = False
        #: Original sizes of provisioned volumes (for byte-exact join checks).
        self.volume_sizes: Dict[int, int] = {}

    # --------------------------------------------------------------- topology
    @property
    def regular_disk_ids(self) -> List[int]:
        return list(range(self.config.num_disks))

    @property
    def spare_disk_ids(self) -> List[int]:
        return list(range(self.config.num_disks, self.config.num_disks + self.config.spares))

    def disk(self, disk_id: int) -> Disk:
        if not 0 <= disk_id < len(self.disks):
            raise ConfigurationError(f"no such disk {disk_id}")
        return self.disks[disk_id]

    def failed_disks(self) -> List[int]:
        return [d.disk_id for d in self.disks if d.is_failed]

    def slow_disks(self, threshold_ratio: float = 0.5) -> List[int]:
        """Ground-truth slow disks: bandwidth below ``ratio`` x median.

        This is the oracle view used by tests; algorithms learn slowness
        through :mod:`repro.hdss.prober` instead.
        """
        healthy = [d for d in self.disks if not d.is_failed]
        if not healthy:
            return []
        median = float(np.median([d.current_bandwidth for d in healthy]))
        return [d.disk_id for d in healthy if d.current_bandwidth < threshold_ratio * median]

    # ------------------------------------------------------------- provision
    def provision_stripes(self, num_stripes: int, with_data: bool = False) -> None:
        """Create ``num_stripes`` stripes (and optionally random chunk bytes).

        Metadata-only provisioning is O(s) and lets scheduling studies use
        disk-scale stripe counts; ``with_data=True`` RS-encodes random bytes
        so repairs can be verified byte-for-byte.
        """
        if len(self.layout) != 0:
            raise StorageError("server already provisioned")
        cfg = self.config
        if cfg.placement == "rotating":
            self.layout = rotating_placement(cfg.num_disks, num_stripes, cfg.n, cfg.k)
        else:
            self.layout = random_placement(
                cfg.num_disks, num_stripes, cfg.n, cfg.k,
                seed=derive_seed(cfg.seed, "placement"),
            )
        if with_data:
            self._data_bearing = True
            for stripe in self.layout:
                raw = self._rng.integers(0, 256, size=cfg.k * cfg.chunk_size, dtype=np.uint8)
                shards = self.code.encode(
                    [raw[i * cfg.chunk_size : (i + 1) * cfg.chunk_size] for i in range(cfg.k)]
                )
                self.volume_sizes[stripe.index] = raw.size
                for shard_idx, shard in enumerate(shards):
                    self.store.put(stripe.disks[shard_idx], ChunkId(stripe.index, shard_idx), shard)

    def write_object(self, data: bytes) -> Stripe:
        """Append one object as a new stripe (split + encode + place).

        Returns the stripe record. Placement continues the configured
        strategy from the current stripe count.
        """
        cfg = self.config
        index = len(self.layout)
        if cfg.placement == "rotating":
            disks = tuple((index + j) % cfg.num_disks for j in range(cfg.n))
        else:
            disks = tuple(
                int(d) for d in self._rng.choice(cfg.num_disks, size=cfg.n, replace=False)
            )
        stripe = Stripe(index=index, n=cfg.n, k=cfg.k, disks=disks)
        shards = self.code.encode(self.code.split(data, chunk_size=cfg.chunk_size))
        self.layout.add(stripe)
        self.volume_sizes[index] = len(data)
        self._data_bearing = True
        for shard_idx, shard in enumerate(shards):
            self.store.put(disks[shard_idx], ChunkId(index, shard_idx), shard)
        return stripe

    def read_object(self, stripe_index: int) -> bytes:
        """Read one object back, degraded reads included (decodes if needed)."""
        stripe = self.layout[stripe_index]
        size = self.volume_sizes.get(stripe_index)
        if size is None:
            raise StorageError(f"stripe {stripe_index} holds no object data")
        shards: List[Optional[np.ndarray]] = []
        for shard_idx, disk_id in enumerate(stripe.disks):
            cid = ChunkId(stripe_index, shard_idx)
            if self.disks[disk_id].is_failed or not self.store.contains(disk_id, cid):
                shards.append(None)
            else:
                shards.append(self.store.get(disk_id, cid))
        if any(s is None for s in shards[: stripe.k]):
            shards = self.code.reconstruct(shards, targets=[
                j for j in range(stripe.k) if shards[j] is None
            ])
        return self.code.join(shards[: stripe.k], size)

    # ---------------------------------------------------------------- failure
    def fail_disk(self, disk_id: int, destroy_data: bool = True) -> int:
        """Fail one disk; returns the number of chunks lost."""
        disk = self.disk(disk_id)
        if disk.is_failed:
            raise DiskFailedError(f"disk {disk_id} already failed")
        disk.fail()
        return self.store.drop_disk(disk_id) if destroy_data else 0

    def degrade_disk(self, disk_id: int, factor: float) -> None:
        """Slow one disk down by ``factor`` (models contention/aging)."""
        self.disk(disk_id).degrade(factor)

    def enclosure_of(self, disk_id: int) -> int:
        """Enclosure (backplane group) of a disk: consecutive-id groups."""
        size = self.config.enclosure_size
        if size is None:
            raise ConfigurationError("server has no enclosure_size configured")
        return disk_id // size

    def enclosure_disks(self, enclosure: int) -> List[int]:
        """Disk ids of one enclosure (regular and spare alike)."""
        size = self.config.enclosure_size
        if size is None:
            raise ConfigurationError("server has no enclosure_size configured")
        start = enclosure * size
        if start >= len(self.disks):
            raise ConfigurationError(f"no such enclosure {enclosure}")
        return list(range(start, min(start + size, len(self.disks))))

    def fail_enclosure(
        self, enclosure: int, survival_prob: float = 0.0, destroy_data: bool = True
    ) -> List[int]:
        """Backplane event: fail the enclosure's disks (correlated failure).

        Each disk independently survives with ``survival_prob``. Returns
        the failed disk ids — feed them to
        :func:`~repro.core.multi_disk.cooperative_multi_disk_repair`.
        """
        check_probability("survival_prob", survival_prob)
        failed = []
        for disk_id in self.enclosure_disks(enclosure):
            if self.disks[disk_id].is_failed:
                continue
            if survival_prob > 0.0 and self._rng.random() < survival_prob:
                continue
            self.fail_disk(disk_id, destroy_data=destroy_data)
            failed.append(disk_id)
        return failed

    def inject_slow_disks(self, ros: float, slow_factor: float = 4.0) -> List[int]:
        """Degrade a random ``ros`` fraction of healthy regular disks.

        Returns the degraded disk ids (deterministic under the server seed).
        """
        candidates = [d for d in self.regular_disk_ids if not self.disks[d].is_failed]
        num_slow = int(round(ros * len(candidates)))
        chosen = sorted(
            int(d) for d in self._rng.choice(candidates, size=num_slow, replace=False)
        ) if num_slow else []
        for disk_id in chosen:
            self.degrade_disk(disk_id, slow_factor)
        return chosen

    # ------------------------------------------------------------ repair view
    def stripes_needing_repair(self, failed_disks: Sequence[int]) -> List[int]:
        """Deduplicated stripe indices touching any failed disk (§4.4)."""
        return self.layout.stripes_touching(failed_disks)

    def survivor_shards(
        self, stripe: Stripe, failed_disks: Sequence[int], select: str = "first"
    ) -> List[int]:
        """Pick the k survivor shard indices a repair will read.

        Policies:
            * ``"first"`` — lowest shard indices (deterministic, what a
              systematic decoder reads by default);
            * ``"fastest"`` — k survivors on the currently fastest disks
              (requires speed knowledge, i.e. an active scheme);
            * ``"random"`` — uniform among survivors.
        """
        survivors = stripe.surviving_shards(failed_disks)
        if len(survivors) < stripe.k:
            raise StorageError(
                f"stripe {stripe.index} has only {len(survivors)} survivors < k={stripe.k}"
            )
        if select == "first":
            return survivors[: stripe.k]
        if select == "fastest":
            ranked = sorted(
                survivors, key=lambda j: -self.disks[stripe.disks[j]].current_bandwidth
            )
            return sorted(ranked[: stripe.k])
        if select == "random":
            picked = self._rng.choice(survivors, size=stripe.k, replace=False)
            return sorted(int(j) for j in picked)
        raise ConfigurationError(f"unknown survivor selection {select!r}")

    def transfer_time_matrix(
        self,
        failed_disks: Sequence[int],
        select: str = "first",
        jittered: bool = True,
    ) -> Tuple[List[int], List[List[int]], np.ndarray]:
        """Build the ``L_{s×k}`` matrix for a recovery (§4.1, Table 1).

        Returns ``(stripe_indices, survivor_ids, L)`` where row i of the
        float64 matrix ``L`` holds the transfer times of the k chosen
        survivor chunks of stripe ``stripe_indices[i]``, and
        ``survivor_ids[i]`` their shard indices (same column order).
        """
        stripe_indices = self.stripes_needing_repair(failed_disks)
        survivor_ids: List[List[int]] = []
        rows: List[List[float]] = []
        size = self.config.chunk_size
        for si in stripe_indices:
            stripe = self.layout[si]
            shard_ids = self.survivor_shards(stripe, failed_disks, select=select)
            survivor_ids.append(shard_ids)
            rows.append(
                [self.disks[stripe.disks[j]].transfer_time(size, jittered=jittered) for j in shard_ids]
            )
        L = np.asarray(rows, dtype=np.float64) if rows else np.empty((0, self.config.k))
        return stripe_indices, survivor_ids, L

    def commit_writebacks(self, writebacks: Sequence[Tuple[int, int, int]]) -> int:
        """Remap repaired shards to their spare disks (placement commit).

        ``writebacks`` are the ``(stripe_index, shard_index, spare_disk)``
        records a :class:`~repro.core.executor.DataPathExecutor` produced.
        After committing, the layout references the spares, so degraded
        reads and scrubs see a fully healthy stripe again.

        Returns the number of shards remapped.
        """
        count = 0
        for (stripe_index, shard_index, spare) in writebacks:
            self.layout.remap_shard(stripe_index, shard_index, spare)
            count += 1
        return count

    def scrub(self, stripe_indices: Optional[Sequence[int]] = None) -> "ScrubReport":
        """Verify parity consistency of stored stripes (background scrub).

        For every selected data-bearing stripe, read whatever chunks are
        reachable and check that parity matches a re-encode of the data
        shards. Stripes with unreadable chunks (failed disks / dropped
        data) are reported as *degraded*; stripes whose bytes disagree are
        *corrupt* — the silent-data-corruption case scrubbing exists for.
        """
        indices = list(stripe_indices) if stripe_indices is not None else [
            s.index for s in self.layout
        ]
        report = ScrubReport()
        for si in indices:
            stripe = self.layout[si]
            shards: List[Optional[np.ndarray]] = []
            degraded = False
            for shard_idx, disk_id in enumerate(stripe.disks):
                cid = ChunkId(si, shard_idx)
                if self.disks[disk_id].is_failed or not self.store.contains(disk_id, cid):
                    shards.append(None)
                    degraded = True
                else:
                    try:
                        shards.append(self.store.get(disk_id, cid))
                    except LatentSectorError:
                        # an unreadable sector is a missing shard, not a
                        # scrub crash — the stripe is degraded
                        shards.append(None)
                        degraded = True
            if all(s is None for s in shards):
                report.unpopulated.append(si)
                continue
            if degraded:
                report.degraded.append(si)
                continue
            if self.code.verify(shards):
                report.clean.append(si)
            else:
                report.corrupt.append(si)
        return report

    def pick_spare(self, exclude: Sequence[int] = ()) -> int:
        """Choose a healthy spare disk for write-back (round robin)."""
        for disk_id in self.spare_disk_ids:
            if not self.disks[disk_id].is_failed and disk_id not in exclude:
                return disk_id
        raise StorageError("no healthy spare disk available")

    def __repr__(self) -> str:
        cfg = self.config
        return (
            f"HighDensityStorageServer(disks={cfg.num_disks}+{cfg.spares} spares, "
            f"RS({cfg.n},{cfg.k}), chunk={cfg.chunk_size // MiB} MiB, "
            f"c={cfg.memory_chunks}, stripes={len(self.layout)})"
        )
