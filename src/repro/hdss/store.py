"""Chunk data stores: where shard bytes actually live.

Two backends with one interface:

* :class:`InMemoryChunkStore` — dict-backed, used by simulations and tests;
* :class:`FileChunkStore` — one directory per disk with one file per chunk,
  mirroring the paper's setup of 36 directories each mounting one disk.

Stores address chunks by ``(disk_id, ChunkId)``; the disk id is explicit so
a store can also hold the *backup disks* repaired chunks are written to.
"""

from __future__ import annotations

import abc
import os
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

from repro.ec.stripe import ChunkId
from repro.errors import ChunkNotFoundError, LatentSectorError, StorageError

Key = Tuple[int, ChunkId]


class ChunkStore(abc.ABC):
    """Abstract chunk-addressed byte store."""

    @abc.abstractmethod
    def put(self, disk_id: int, chunk_id: ChunkId, data: np.ndarray) -> None:
        """Write one chunk (uint8 array) to ``disk_id``."""

    @abc.abstractmethod
    def get(self, disk_id: int, chunk_id: ChunkId) -> np.ndarray:
        """Read one chunk; raises :class:`ChunkNotFoundError` if absent."""

    @abc.abstractmethod
    def delete(self, disk_id: int, chunk_id: ChunkId) -> None:
        """Remove one chunk (missing chunks raise)."""

    @abc.abstractmethod
    def contains(self, disk_id: int, chunk_id: ChunkId) -> bool:
        """Whether the chunk exists."""

    @abc.abstractmethod
    def chunks_on_disk(self, disk_id: int) -> List[ChunkId]:
        """All chunk ids stored on ``disk_id``."""

    @abc.abstractmethod
    def drop_disk(self, disk_id: int) -> int:
        """Destroy all chunks on a disk (failure); returns chunks lost."""

    def __contains__(self, key: Key) -> bool:
        return self.contains(*key)


class InMemoryChunkStore(ChunkStore):
    """Dict-backed store. Arrays are copied on put/get to avoid aliasing."""

    def __init__(self) -> None:
        self._data: Dict[int, Dict[ChunkId, np.ndarray]] = {}

    def put(self, disk_id: int, chunk_id: ChunkId, data: np.ndarray) -> None:
        arr = np.asarray(data, dtype=np.uint8)
        if arr.ndim != 1:
            raise StorageError(f"chunk {chunk_id} must be 1-D, got shape {arr.shape}")
        self._data.setdefault(disk_id, {})[chunk_id] = arr.copy()

    def get(self, disk_id: int, chunk_id: ChunkId) -> np.ndarray:
        try:
            return self._data[disk_id][chunk_id].copy()
        except KeyError:
            raise ChunkNotFoundError(f"chunk {chunk_id} not on disk {disk_id}") from None

    def delete(self, disk_id: int, chunk_id: ChunkId) -> None:
        try:
            del self._data[disk_id][chunk_id]
        except KeyError:
            raise ChunkNotFoundError(f"chunk {chunk_id} not on disk {disk_id}") from None

    def contains(self, disk_id: int, chunk_id: ChunkId) -> bool:
        return chunk_id in self._data.get(disk_id, {})

    def chunks_on_disk(self, disk_id: int) -> List[ChunkId]:
        return sorted(self._data.get(disk_id, {}))

    def drop_disk(self, disk_id: int) -> int:
        lost = len(self._data.get(disk_id, {}))
        self._data.pop(disk_id, None)
        return lost

    def total_chunks(self) -> int:
        """Total chunks across every disk."""
        return sum(len(d) for d in self._data.values())

    def iter_all(self) -> Iterator[Tuple[int, ChunkId]]:
        """Iterate (disk_id, chunk_id) over the whole store."""
        for disk_id, chunks in self._data.items():
            for chunk_id in chunks:
                yield disk_id, chunk_id


class FaultyChunkStore(ChunkStore):
    """Decorates any store with injectable latent sector errors (UREs).

    A chunk marked bad raises :class:`LatentSectorError` on ``get`` while
    the rest of the disk keeps serving — the partial-failure mode a whole
    ``drop_disk`` cannot express. Rewriting a bad chunk (``put``) clears
    the mark, mirroring a sector remap on write.
    """

    def __init__(self, inner: ChunkStore) -> None:
        self.inner = inner
        self._bad: set = set()

    # ------------------------------------------------------------- injection
    def mark_bad(self, disk_id: int, chunk_id: ChunkId) -> None:
        """Poison one chunk; subsequent reads raise until it is rewritten."""
        self._bad.add((disk_id, chunk_id))

    def bad_chunks(self) -> List[Key]:
        return sorted(self._bad)

    # ------------------------------------------------------------ delegation
    def put(self, disk_id: int, chunk_id: ChunkId, data: np.ndarray) -> None:
        self._bad.discard((disk_id, chunk_id))
        self.inner.put(disk_id, chunk_id, data)

    def get(self, disk_id: int, chunk_id: ChunkId) -> np.ndarray:
        if (disk_id, chunk_id) in self._bad:
            raise LatentSectorError(
                f"unreadable sector: chunk {chunk_id} on disk {disk_id}"
            )
        return self.inner.get(disk_id, chunk_id)

    def delete(self, disk_id: int, chunk_id: ChunkId) -> None:
        self._bad.discard((disk_id, chunk_id))
        self.inner.delete(disk_id, chunk_id)

    def contains(self, disk_id: int, chunk_id: ChunkId) -> bool:
        return self.inner.contains(disk_id, chunk_id)

    def chunks_on_disk(self, disk_id: int) -> List[ChunkId]:
        return self.inner.chunks_on_disk(disk_id)

    def drop_disk(self, disk_id: int) -> int:
        self._bad = {(d, c) for (d, c) in self._bad if d != disk_id}
        return self.inner.drop_disk(disk_id)

    def __getattr__(self, name: str):
        # Backend-specific extras (total_chunks, iter_all, ...) pass through.
        return getattr(self.inner, name)


class FileChunkStore(ChunkStore):
    """Filesystem store: ``root/disk-<id>/s<stripe>.<shard>.chunk``.

    The layout mirrors the paper's experiment setup (one mounted directory
    per disk). Chunk files are written atomically (tmp + rename) so a
    crashed repair never leaves a torn chunk behind.
    """

    def __init__(self, root: "str | os.PathLike") -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    def _disk_dir(self, disk_id: int) -> Path:
        return self.root / f"disk-{disk_id:03d}"

    def _chunk_path(self, disk_id: int, chunk_id: ChunkId) -> Path:
        return self._disk_dir(disk_id) / f"s{chunk_id.stripe_index:06d}.{chunk_id.shard_index:03d}.chunk"

    @staticmethod
    def _parse_name(name: str) -> Optional[ChunkId]:
        if not name.endswith(".chunk") or not name.startswith("s"):
            return None
        stem = name[1 : -len(".chunk")]
        parts = stem.split(".")
        if len(parts) != 2:
            return None
        try:
            return ChunkId(int(parts[0]), int(parts[1]))
        except ValueError:
            return None

    def put(self, disk_id: int, chunk_id: ChunkId, data: np.ndarray) -> None:
        arr = np.ascontiguousarray(np.asarray(data, dtype=np.uint8))
        if arr.ndim != 1:
            raise StorageError(f"chunk {chunk_id} must be 1-D, got shape {arr.shape}")
        path = self._chunk_path(disk_id, chunk_id)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_suffix(".tmp")
        tmp.write_bytes(arr.tobytes())
        os.replace(tmp, path)

    def get(self, disk_id: int, chunk_id: ChunkId) -> np.ndarray:
        path = self._chunk_path(disk_id, chunk_id)
        if not path.exists():
            raise ChunkNotFoundError(f"chunk {chunk_id} not on disk {disk_id}")
        return np.frombuffer(path.read_bytes(), dtype=np.uint8).copy()

    def delete(self, disk_id: int, chunk_id: ChunkId) -> None:
        path = self._chunk_path(disk_id, chunk_id)
        if not path.exists():
            raise ChunkNotFoundError(f"chunk {chunk_id} not on disk {disk_id}")
        path.unlink()

    def contains(self, disk_id: int, chunk_id: ChunkId) -> bool:
        return self._chunk_path(disk_id, chunk_id).exists()

    def chunks_on_disk(self, disk_id: int) -> List[ChunkId]:
        disk_dir = self._disk_dir(disk_id)
        if not disk_dir.exists():
            return []
        ids = (self._parse_name(p.name) for p in disk_dir.iterdir())
        return sorted(c for c in ids if c is not None)

    def drop_disk(self, disk_id: int) -> int:
        disk_dir = self._disk_dir(disk_id)
        if not disk_dir.exists():
            return 0
        lost = 0
        for path in list(disk_dir.iterdir()):
            if path.suffix == ".chunk":
                path.unlink()
                lost += 1
        return lost
