"""Chunk data stores: where shard bytes actually live.

Two backends with one interface:

* :class:`InMemoryChunkStore` — dict-backed, used by simulations and tests;
* :class:`FileChunkStore` — one directory per disk with one file per chunk,
  mirroring the paper's setup of 36 directories each mounting one disk.

Stores address chunks by ``(disk_id, ChunkId)``; the disk id is explicit so
a store can also hold the *backup disks* repaired chunks are written to.

:class:`ShardedChunkStore` composes several backends into one store routed
by disk id — the scaling seam the asyncio repair service
(:mod:`repro.service`) builds its per-shard write queues on. All stores
expose batched :meth:`ChunkStore.get_many`/:meth:`ChunkStore.put_many`;
the sharded store groups a batch by shard so each backend sees one
contiguous run of operations.
"""

from __future__ import annotations

import abc
import os
import uuid
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.ec.stripe import ChunkId
from repro.errors import (
    ChunkChecksumError,
    ChunkNotFoundError,
    LatentSectorError,
    StorageError,
)
from repro.utils.checksum import crc32c

Key = Tuple[int, ChunkId]

#: Suffix of the per-chunk checksum sidecar files.
CRC_SUFFIX = ".crc32c"


def _fsync_dir(path: Path) -> None:
    """fsync a directory so a just-renamed entry survives power loss."""
    fd = os.open(path, os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def _write_atomic(path: Path, payload: bytes, *, durable: bool = True) -> None:
    """Write ``payload`` to ``path`` via a unique fsync'd tmp + rename.

    The tmp name carries the pid and a random token so two concurrent
    writers of the same path (hedged read racing a write-back) can never
    tear each other's tmp file; the loser's rename simply lands second.
    """
    tmp = path.parent / f"{path.name}.{os.getpid()}.{uuid.uuid4().hex[:8]}.tmp"
    with open(tmp, "wb") as fh:
        fh.write(payload)
        if durable:
            fh.flush()
            os.fsync(fh.fileno())
    os.replace(tmp, path)


def _tmp_writer_pid(name: str) -> Optional[int]:
    """Writer pid encoded in a tmp-file name, or None for legacy names."""
    parts = name[: -len(".tmp")].rsplit(".", 2)
    if len(parts) == 3 and parts[1].isdigit():
        return int(parts[1])
    return None


def _pid_alive(pid: int) -> bool:
    """Whether ``pid`` names a live process (EPERM counts as alive)."""
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except (PermissionError, OSError):  # pragma: no cover - platform quirk
        return True
    return True


class ChunkStore(abc.ABC):
    """Abstract chunk-addressed byte store."""

    @abc.abstractmethod
    def put(self, disk_id: int, chunk_id: ChunkId, data: np.ndarray) -> None:
        """Write one chunk (uint8 array) to ``disk_id``."""

    @abc.abstractmethod
    def get(self, disk_id: int, chunk_id: ChunkId) -> np.ndarray:
        """Read one chunk; raises :class:`ChunkNotFoundError` if absent."""

    @abc.abstractmethod
    def delete(self, disk_id: int, chunk_id: ChunkId) -> None:
        """Remove one chunk (missing chunks raise)."""

    @abc.abstractmethod
    def contains(self, disk_id: int, chunk_id: ChunkId) -> bool:
        """Whether the chunk exists."""

    @abc.abstractmethod
    def chunks_on_disk(self, disk_id: int) -> List[ChunkId]:
        """All chunk ids stored on ``disk_id``."""

    @abc.abstractmethod
    def drop_disk(self, disk_id: int) -> int:
        """Destroy all chunks on a disk (failure); returns chunks lost."""

    def get_many(self, keys: Sequence[Key]) -> List[np.ndarray]:
        """Read a batch of chunks, preserving order.

        The base implementation loops :meth:`get`; backends with cheaper
        batch paths (sharded stores grouping by backend) override it.
        """
        return [self.get(disk_id, chunk_id) for disk_id, chunk_id in keys]

    def put_many(self, items: Sequence[Tuple[int, ChunkId, np.ndarray]]) -> None:
        """Write a batch of chunks (``(disk_id, chunk_id, data)`` triples)."""
        for disk_id, chunk_id, data in items:
            self.put(disk_id, chunk_id, data)

    def __contains__(self, key: Key) -> bool:
        return self.contains(*key)


class InMemoryChunkStore(ChunkStore):
    """Dict-backed store. Arrays are copied on put/get to avoid aliasing."""

    def __init__(self) -> None:
        self._data: Dict[int, Dict[ChunkId, np.ndarray]] = {}

    def put(self, disk_id: int, chunk_id: ChunkId, data: np.ndarray) -> None:
        arr = np.asarray(data, dtype=np.uint8)
        if arr.ndim != 1:
            raise StorageError(f"chunk {chunk_id} must be 1-D, got shape {arr.shape}")
        self._data.setdefault(disk_id, {})[chunk_id] = arr.copy()

    def get(self, disk_id: int, chunk_id: ChunkId) -> np.ndarray:
        try:
            return self._data[disk_id][chunk_id].copy()
        except KeyError:
            raise ChunkNotFoundError(f"chunk {chunk_id} not on disk {disk_id}") from None

    def delete(self, disk_id: int, chunk_id: ChunkId) -> None:
        try:
            del self._data[disk_id][chunk_id]
        except KeyError:
            raise ChunkNotFoundError(f"chunk {chunk_id} not on disk {disk_id}") from None

    def contains(self, disk_id: int, chunk_id: ChunkId) -> bool:
        return chunk_id in self._data.get(disk_id, {})

    def chunks_on_disk(self, disk_id: int) -> List[ChunkId]:
        return sorted(self._data.get(disk_id, {}))

    def drop_disk(self, disk_id: int) -> int:
        lost = len(self._data.get(disk_id, {}))
        self._data.pop(disk_id, None)
        return lost

    def total_chunks(self) -> int:
        """Total chunks across every disk."""
        return sum(len(d) for d in self._data.values())

    def iter_all(self) -> Iterator[Tuple[int, ChunkId]]:
        """Iterate (disk_id, chunk_id) over the whole store."""
        for disk_id, chunks in self._data.items():
            for chunk_id in chunks:
                yield disk_id, chunk_id


class FaultyChunkStore(ChunkStore):
    """Decorates any store with injectable latent sector errors (UREs).

    A chunk marked bad raises :class:`LatentSectorError` on ``get`` while
    the rest of the disk keeps serving — the partial-failure mode a whole
    ``drop_disk`` cannot express. Rewriting a bad chunk (``put``) clears
    the mark, mirroring a sector remap on write.
    """

    def __init__(self, inner: ChunkStore) -> None:
        self.inner = inner
        self._bad: set = set()

    # ------------------------------------------------------------- injection
    def mark_bad(self, disk_id: int, chunk_id: ChunkId) -> None:
        """Poison one chunk; subsequent reads raise until it is rewritten."""
        self._bad.add((disk_id, chunk_id))

    def bad_chunks(self) -> List[Key]:
        return sorted(self._bad)

    # ------------------------------------------------------------ delegation
    def put(self, disk_id: int, chunk_id: ChunkId, data: np.ndarray) -> None:
        self._bad.discard((disk_id, chunk_id))
        self.inner.put(disk_id, chunk_id, data)

    def get(self, disk_id: int, chunk_id: ChunkId) -> np.ndarray:
        if (disk_id, chunk_id) in self._bad:
            raise LatentSectorError(
                f"unreadable sector: chunk {chunk_id} on disk {disk_id}"
            )
        return self.inner.get(disk_id, chunk_id)

    def delete(self, disk_id: int, chunk_id: ChunkId) -> None:
        self._bad.discard((disk_id, chunk_id))
        self.inner.delete(disk_id, chunk_id)

    def contains(self, disk_id: int, chunk_id: ChunkId) -> bool:
        return self.inner.contains(disk_id, chunk_id)

    def chunks_on_disk(self, disk_id: int) -> List[ChunkId]:
        return self.inner.chunks_on_disk(disk_id)

    def drop_disk(self, disk_id: int) -> int:
        self._bad = {(d, c) for (d, c) in self._bad if d != disk_id}
        return self.inner.drop_disk(disk_id)

    def __getattr__(self, name: str):
        # Backend-specific extras (total_chunks, iter_all, ...) pass through.
        return getattr(self.inner, name)


class FileChunkStore(ChunkStore):
    """Filesystem store: ``root/disk-<id>/s<stripe>.<shard>.chunk``.

    The layout mirrors the paper's experiment setup (one mounted directory
    per disk). Writes are crash-consistent: chunk bytes go to a uniquely
    named tmp file that is fsync'd before an atomic rename, the parent
    directory is fsync'd after, and every chunk gets a CRC32C sidecar
    (``<chunk>.crc32c``) that ``get`` verifies — a torn, stale, or
    bit-flipped chunk surfaces as :class:`ChunkChecksumError` (a
    :class:`LatentSectorError`), never as silently wrong bytes.

    A crash can land between the chunk rename and the sidecar rename; the
    stale sidecar then *fails* verification, which degrades the stripe and
    triggers a re-repair — the safe direction. Sidecar-less chunks (legacy
    layouts, foreign tooling) are served unverified.

    Args:
        root: store directory, created if missing.
        durable: fsync files and directories on the write path. On by
            default; simulations that churn thousands of tiny chunks can
            switch it off and keep only the atomic-rename guarantee.
    """

    def __init__(self, root: "str | os.PathLike", durable: bool = True) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.durable = durable
        #: Checksum mismatches detected by this store instance.
        self.checksum_failures = 0
        #: Dead-writer ``*.tmp`` files removed by the startup sweep.
        self.swept_tmp_files = 0
        #: Orphan sidecars (no chunk beside them) removed by the sweep.
        self.orphan_sidecars = 0
        self._sweep_stale()

    def _sweep_stale(self) -> None:
        """Drop leftovers of crashed writers: ``*.tmp`` and orphan sidecars.

        Tmp names never end in ``.chunk`` so ``_parse_name`` cannot misread
        them, but sweeping keeps crashed runs from accumulating garbage and
        removes sidecars whose chunk rename never happened.

        Safe under concurrent writers: tmp names carry the writer's pid
        (see :func:`_write_atomic`), and tmps whose writer process is still
        alive are left alone — two stores (or a sharded service's tasks)
        opening the same disk directory must never delete each other's
        in-flight writes. Only tmps from dead pids, or with unparseable
        legacy names, are garbage.
        """
        for disk_dir in self.root.glob("disk-*"):
            if not disk_dir.is_dir():
                continue
            for p in disk_dir.iterdir():
                if p.name.endswith(".tmp"):
                    pid = _tmp_writer_pid(p.name)
                    if pid is not None and _pid_alive(pid):
                        continue  # a live writer still owns this tmp
                    p.unlink(missing_ok=True)
                    self.swept_tmp_files += 1
                elif p.name.endswith(CRC_SUFFIX):
                    if not p.with_name(p.name[: -len(CRC_SUFFIX)]).exists():
                        p.unlink(missing_ok=True)
                        self.orphan_sidecars += 1
        if self.swept_tmp_files or self.orphan_sidecars:
            from repro.obs.context import current_registry

            registry = current_registry()
            if self.swept_tmp_files:
                registry.counter(
                    "hdpsr_store_swept_tmp_files_total",
                    "Dead-writer tmp files removed by the startup sweep",
                ).inc(self.swept_tmp_files)
            if self.orphan_sidecars:
                registry.counter(
                    "hdpsr_store_orphan_sidecars_total",
                    "Orphan CRC32C sidecars removed by the startup sweep",
                ).inc(self.orphan_sidecars)

    def _disk_dir(self, disk_id: int) -> Path:
        return self.root / f"disk-{disk_id:03d}"

    def _chunk_path(self, disk_id: int, chunk_id: ChunkId) -> Path:
        return self._disk_dir(disk_id) / f"s{chunk_id.stripe_index:06d}.{chunk_id.shard_index:03d}.chunk"

    @staticmethod
    def _parse_name(name: str) -> Optional[ChunkId]:
        if not name.endswith(".chunk") or not name.startswith("s"):
            return None
        stem = name[1 : -len(".chunk")]
        parts = stem.split(".")
        if len(parts) != 2:
            return None
        try:
            return ChunkId(int(parts[0]), int(parts[1]))
        except ValueError:
            return None

    def _sidecar_path(self, path: Path) -> Path:
        return path.with_name(path.name + CRC_SUFFIX)

    def put(self, disk_id: int, chunk_id: ChunkId, data: np.ndarray) -> None:
        arr = np.ascontiguousarray(np.asarray(data, dtype=np.uint8))
        if arr.ndim != 1:
            raise StorageError(f"chunk {chunk_id} must be 1-D, got shape {arr.shape}")
        path = self._chunk_path(disk_id, chunk_id)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = arr.tobytes()
        _write_atomic(path, payload, durable=self.durable)
        _write_atomic(
            self._sidecar_path(path),
            f"{crc32c(payload):08x}\n".encode("ascii"),
            durable=self.durable,
        )
        if self.durable:
            _fsync_dir(path.parent)

    def _read_expected_crc(self, path: Path) -> Optional[int]:
        sidecar = self._sidecar_path(path)
        try:
            text = sidecar.read_text().strip()
        except OSError:
            return None  # no sidecar: legacy chunk, served unverified
        try:
            return int(text, 16)
        except ValueError:
            return -1  # unparseable sidecar counts as a mismatch

    def _checksum_failed(self, disk_id: int, chunk_id: ChunkId) -> None:
        self.checksum_failures += 1
        from repro.obs.context import current_registry

        current_registry().counter(
            "hdpsr_checksum_failures_total",
            "Chunk reads whose bytes disagreed with their CRC32C sidecar",
        ).inc()
        raise ChunkChecksumError(
            f"chunk {chunk_id} on disk {disk_id} failed CRC32C verification"
        )

    def _read_verified(self, disk_id: int, chunk_id: ChunkId) -> bytes:
        """Read payload + sidecar as a consistent pair, or raise.

        A concurrent ``put`` replaces the chunk file and its sidecar with
        two separate renames, so a single racing read can pair new bytes
        with the old sidecar (or vice versa). A mismatch is therefore
        re-read once — the second pass sees the settled pair — and only a
        *stable* mismatch counts as corruption.
        """
        path = self._chunk_path(disk_id, chunk_id)
        for attempt in (0, 1):
            if not path.exists():
                raise ChunkNotFoundError(f"chunk {chunk_id} not on disk {disk_id}")
            payload = path.read_bytes()
            expected = self._read_expected_crc(path)
            if expected is None or crc32c(payload) == expected:
                return payload
        self._checksum_failed(disk_id, chunk_id)
        raise AssertionError("unreachable")  # pragma: no cover

    def get(self, disk_id: int, chunk_id: ChunkId) -> np.ndarray:
        payload = self._read_verified(disk_id, chunk_id)
        return np.frombuffer(payload, dtype=np.uint8).copy()

    def verify_chunk(self, disk_id: int, chunk_id: ChunkId) -> bool:
        """Re-read one chunk and check it against its sidecar.

        Used to certify written-back recovered chunks end to end. Returns
        True for a matching (or sidecar-less) chunk; raises
        :class:`ChunkChecksumError` on a mismatch and
        :class:`ChunkNotFoundError` when the chunk is absent.
        """
        self._read_verified(disk_id, chunk_id)
        return True

    def delete(self, disk_id: int, chunk_id: ChunkId) -> None:
        path = self._chunk_path(disk_id, chunk_id)
        if not path.exists():
            raise ChunkNotFoundError(f"chunk {chunk_id} not on disk {disk_id}")
        path.unlink()
        self._sidecar_path(path).unlink(missing_ok=True)

    def contains(self, disk_id: int, chunk_id: ChunkId) -> bool:
        return self._chunk_path(disk_id, chunk_id).exists()

    def chunks_on_disk(self, disk_id: int) -> List[ChunkId]:
        disk_dir = self._disk_dir(disk_id)
        if not disk_dir.exists():
            return []
        ids = (self._parse_name(p.name) for p in disk_dir.iterdir())
        return sorted(c for c in ids if c is not None)

    def drop_disk(self, disk_id: int) -> int:
        disk_dir = self._disk_dir(disk_id)
        if not disk_dir.exists():
            return 0
        lost = 0
        for path in list(disk_dir.iterdir()):
            if path.suffix == ".chunk":
                path.unlink()
                self._sidecar_path(path).unlink(missing_ok=True)
                lost += 1
        return lost


class ShardedChunkStore(ChunkStore):
    """One logical store routed across independent backend shards.

    Disk ``d`` lives entirely on shard ``d % num_shards``, so every shard
    owns a disjoint subset of disks (directories, when file-backed) and can
    be written by its own queue/thread without contending with the others —
    the layout :class:`repro.service.RepairService` multiplexes concurrent
    repairs over.

    Batch operations (:meth:`get_many` / :meth:`put_many`) group keys by
    shard and hand each backend one contiguous batch, preserving the
    caller's result order.
    """

    def __init__(self, shards: Sequence[ChunkStore]) -> None:
        if not shards:
            raise StorageError("a sharded store needs at least one shard")
        self.shards: List[ChunkStore] = list(shards)

    @classmethod
    def from_root(
        cls, root: "str | os.PathLike", num_shards: int = 4, durable: bool = True
    ) -> "ShardedChunkStore":
        """File-backed shards: ``root/shard-<i>/disk-<id>/...``."""
        if num_shards < 1:
            raise StorageError(f"num_shards must be >= 1, got {num_shards}")
        base = Path(root)
        return cls([
            FileChunkStore(base / f"shard-{i:02d}", durable=durable)
            for i in range(num_shards)
        ])

    @property
    def num_shards(self) -> int:
        return len(self.shards)

    def shard_of(self, disk_id: int) -> int:
        """Which shard owns ``disk_id``."""
        return disk_id % len(self.shards)

    def shard_for(self, disk_id: int) -> ChunkStore:
        return self.shards[self.shard_of(disk_id)]

    @property
    def checksum_failures(self) -> int:
        """Checksum mismatches across every shard (file-backed shards only)."""
        return sum(getattr(s, "checksum_failures", 0) for s in self.shards)

    @property
    def swept_tmp_files(self) -> int:
        """Dead-writer tmp files swept at startup, across every shard."""
        return sum(getattr(s, "swept_tmp_files", 0) for s in self.shards)

    @property
    def orphan_sidecars(self) -> int:
        """Orphan sidecars swept at startup, across every shard."""
        return sum(getattr(s, "orphan_sidecars", 0) for s in self.shards)

    # ------------------------------------------------------------ delegation
    def put(self, disk_id: int, chunk_id: ChunkId, data: np.ndarray) -> None:
        self.shard_for(disk_id).put(disk_id, chunk_id, data)

    def get(self, disk_id: int, chunk_id: ChunkId) -> np.ndarray:
        return self.shard_for(disk_id).get(disk_id, chunk_id)

    def delete(self, disk_id: int, chunk_id: ChunkId) -> None:
        self.shard_for(disk_id).delete(disk_id, chunk_id)

    def contains(self, disk_id: int, chunk_id: ChunkId) -> bool:
        return self.shard_for(disk_id).contains(disk_id, chunk_id)

    def chunks_on_disk(self, disk_id: int) -> List[ChunkId]:
        return self.shard_for(disk_id).chunks_on_disk(disk_id)

    def drop_disk(self, disk_id: int) -> int:
        return self.shard_for(disk_id).drop_disk(disk_id)

    def verify_chunk(self, disk_id: int, chunk_id: ChunkId) -> bool:
        """Delegate end-to-end verification to shards that support it."""
        shard = self.shard_for(disk_id)
        verify = getattr(shard, "verify_chunk", None)
        if verify is None:
            return shard.contains(disk_id, chunk_id)
        return verify(disk_id, chunk_id)

    # --------------------------------------------------------------- batched
    def get_many(self, keys: Sequence[Key]) -> List[np.ndarray]:
        by_shard: Dict[int, List[Tuple[int, Key]]] = {}
        for pos, key in enumerate(keys):
            by_shard.setdefault(self.shard_of(key[0]), []).append((pos, key))
        out: List[Optional[np.ndarray]] = [None] * len(keys)
        for shard_idx, entries in by_shard.items():
            results = self.shards[shard_idx].get_many([k for _, k in entries])
            for (pos, _), data in zip(entries, results):
                out[pos] = data
        return out  # type: ignore[return-value]

    def put_many(self, items: Sequence[Tuple[int, ChunkId, np.ndarray]]) -> None:
        by_shard: Dict[int, List[Tuple[int, ChunkId, np.ndarray]]] = {}
        for item in items:
            by_shard.setdefault(self.shard_of(item[0]), []).append(item)
        for shard_idx, batch in by_shard.items():
            self.shards[shard_idx].put_many(batch)

    def __repr__(self) -> str:
        return f"ShardedChunkStore({len(self.shards)} shards)"
