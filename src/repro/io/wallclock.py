"""Threaded wall-clock execution of repair plans.

:class:`WallClockRepairExecutor` is the real-time sibling of the simulated
executors: stripes repair concurrently on worker threads, a chunk-slot
allocator enforces the ``c``-chunk memory, each round fetches its chunks
in parallel from :class:`~repro.io.pacing.PacedDisk` instances, and
partial sums fold through the incremental decoder. The returned statistic
is *measured elapsed wall time* — real parallelism, not a model.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence


from repro.core.plans import RepairPlan
from repro.ec.encoder import RSCode
from repro.ec.partial import PartialDecoder
from repro.ec.stripe import ChunkId, StripeLayout
from repro.errors import ConfigurationError, StorageError
from repro.hdss.store import ChunkStore
from repro.io.pacing import PacedDiskArray
from repro.obs.context import current_registry, current_tracer
from repro.obs.tracer import NULL_TRACER, Tracer


class _SlotAllocator:
    """Counting allocator with all-or-nothing acquisition.

    ``acquire(n)`` blocks until n slots are free, then takes them all —
    round-level granularity, matching the simulated slot model. A global
    condition variable keeps it simple; fairness is best-effort, which is
    adequate because the stripe-level admission cap bounds waiters.
    """

    def __init__(self, capacity: int) -> None:
        if capacity <= 0:
            raise ConfigurationError(f"capacity must be positive, got {capacity}")
        self.capacity = capacity
        self._free = capacity
        self._cond = threading.Condition()
        self.peak_in_use = 0

    def acquire(self, count: int) -> None:
        if count > self.capacity:
            raise ConfigurationError(
                f"request for {count} slots exceeds capacity {self.capacity}"
            )
        with self._cond:
            while self._free < count:
                self._cond.wait()
            self._free -= count
            self.peak_in_use = max(self.peak_in_use, self.capacity - self._free)

    def release(self, count: int) -> None:
        with self._cond:
            self._free += count
            if self._free > self.capacity:
                raise StorageError("slot allocator over-released")
            self._cond.notify_all()


@dataclass
class WallClockStats:
    """Measured outcome of a wall-clock repair."""

    elapsed_seconds: float
    stripes_repaired: int
    chunks_read: int
    bytes_read: int
    chunks_rebuilt: int
    peak_memory_chunks: int
    #: rebuilt chunk buffers keyed by (stripe_index, shard_index)
    rebuilt: Dict = field(default_factory=dict, repr=False)


class WallClockRepairExecutor:
    """Run a repair plan with real threads against paced disks.

    Args:
        code: the stripe's RS code.
        layout: stripe placement (maps shards to disks).
        store: chunk byte store (survivor reads come from here).
        disks: the paced disk array providing real-time service.
        memory_chunks: the repair memory capacity ``c``.
        max_concurrent_stripes: admission cap (defaults to the plan's
            ``P_r``, else to as many as the memory can hold).
    """

    def __init__(
        self,
        code: RSCode,
        layout: StripeLayout,
        store: ChunkStore,
        disks: PacedDiskArray,
        memory_chunks: int,
        max_concurrent_stripes: Optional[int] = None,
    ) -> None:
        self.code = code
        self.layout = layout
        self.store = store
        self.disks = disks
        self.memory = _SlotAllocator(memory_chunks)
        self.max_concurrent_stripes = max_concurrent_stripes

    def _repair_stripe(
        self,
        sp,
        global_index: int,
        survivors: Sequence[int],
        targets: Sequence[int],
        io_pool: ThreadPoolExecutor,
        stats_lock: threading.Lock,
        stats: WallClockStats,
        tracer: Tracer = NULL_TRACER,
    ) -> None:
        stripe = self.layout[global_index]
        decoder = PartialDecoder(self.code, list(survivors), list(targets))
        # contextvars don't cross thread-pool boundaries: the submitting
        # thread captured the tracer and hands it down; each worker traces
        # onto its own track so concurrent stripes get separate lanes.
        track = threading.current_thread().name

        def fetch(col: int) -> "tuple[int, np.ndarray]":
            shard_idx = survivors[col]
            disk_id = stripe.disks[shard_idx]
            with tracer.span("read", f"chunk ({global_index}, {shard_idx})",
                             track=f"io-{threading.current_thread().name}",
                             disk=disk_id):
                data = self.store.get(disk_id, ChunkId(global_index, shard_idx))
                self.disks[disk_id].read(int(data.size))
            return shard_idx, data

        with tracer.span("stripe", f"stripe {global_index}", track=track,
                         rounds=sp.num_rounds):
            for round_index, rnd in enumerate(sp.rounds):
                with tracer.span("wait", "memory-acquire", track=track,
                                 slots=len(rnd)):
                    self.memory.acquire(len(rnd))
                try:
                    with tracer.span("round", f"stripe {global_index} round {round_index}",
                                     track=track, chunks=len(rnd)):
                        results = list(io_pool.map(fetch, rnd))
                        with tracer.span("decode", "partial decode", track=track):
                            decoder.feed(dict(results))
                    with stats_lock:
                        stats.chunks_read += len(results)
                        stats.bytes_read += sum(int(d.size) for _, d in results)
                finally:
                    self.memory.release(len(rnd))
            rebuilt = decoder.results()
        with stats_lock:
            for target, buf in rebuilt.items():
                stats.rebuilt[(global_index, target)] = buf
                stats.chunks_rebuilt += 1
            stats.stripes_repaired += 1

    def repair(
        self,
        plan: RepairPlan,
        stripe_indices: Sequence[int],
        survivor_ids: Sequence[Sequence[int]],
        failed_disks: Sequence[int],
    ) -> WallClockStats:
        """Execute the plan; blocks until every stripe is rebuilt.

        Returns measured wall-clock stats; rebuilt chunk bytes are in
        ``stats.rebuilt`` for the caller to write back / verify.
        """
        if not plan.stripe_plans:
            raise StorageError("empty plan")
        cap = self.max_concurrent_stripes or plan.pr
        if cap is None:
            widest = max(sp.max_round_size() for sp in plan.stripe_plans)
            cap = max(1, self.memory.capacity // widest)
        cap = max(1, min(cap, len(plan.stripe_plans)))

        stats = WallClockStats(
            elapsed_seconds=0.0, stripes_repaired=0, chunks_read=0,
            bytes_read=0, chunks_rebuilt=0, peak_memory_chunks=0,
        )
        stats_lock = threading.Lock()
        failed = list(failed_disks)
        tracer = current_tracer()

        start = time.perf_counter()
        with ThreadPoolExecutor(max_workers=max(4, cap * 4), thread_name_prefix="io") as io_pool:
            with ThreadPoolExecutor(max_workers=cap, thread_name_prefix="stripe") as stripe_pool:
                futures = []
                for sp in plan.stripe_plans:
                    global_index = stripe_indices[sp.stripe_index]
                    survivors = list(survivor_ids[sp.stripe_index])
                    targets = self.layout[global_index].lost_shards(failed)
                    if not targets:
                        raise StorageError(f"stripe {global_index} lost nothing")
                    futures.append(
                        stripe_pool.submit(
                            self._repair_stripe, sp, global_index, survivors,
                            targets, io_pool, stats_lock, stats, tracer,
                        )
                    )
                for future in futures:
                    future.result()  # re-raise worker failures
        stats.elapsed_seconds = time.perf_counter() - start
        stats.peak_memory_chunks = self.memory.peak_in_use
        registry = current_registry()
        registry.counter(
            "hdpsr_wallclock_repairs_total", "Wall-clock repair executions"
        ).inc()
        registry.counter(
            "hdpsr_wallclock_bytes_read_total", "Bytes read by wall-clock repairs"
        ).inc(stats.bytes_read)
        registry.histogram(
            "hdpsr_wallclock_repair_seconds", "Measured elapsed repair time"
        ).observe(stats.elapsed_seconds)
        return stats
