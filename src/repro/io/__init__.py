"""Wall-clock I/O: threaded repairs against rate-paced disks.

Everything else in this repository measures repair time on a simulated
clock. This package provides the *real-time* counterpart — the closest
Python analogue of the paper's Go prototype:

* :mod:`repro.io.pacing` — :class:`PacedDisk` serves one request at a time
  at a configured bandwidth (a lock plus a sleep), which is exactly how an
  HDD behaves under sequential repair reads; heterogeneous/slow disks are
  just different rates;
* :mod:`repro.io.wallclock` — :class:`WallClockRepairExecutor` runs a
  repair plan with real threads: stripes repair concurrently under a
  chunk-slot memory allocator, each round's chunks are fetched in parallel
  worker threads, and partial sums fold through
  :class:`~repro.ec.partial.PartialDecoder`. Elapsed wall time is the
  measurement.

Python's GIL is irrelevant here because the bottleneck being modelled is
I/O pacing (sleeps release the GIL) — the reason the calibration note says
a naive pure-Python port would "hide parallelism effects" does not apply
to sleep-paced transfers.
"""

from repro.io.pacing import PacedDisk, PacedDiskArray
from repro.io.wallclock import WallClockRepairExecutor, WallClockStats

__all__ = [
    "PacedDisk",
    "PacedDiskArray",
    "WallClockRepairExecutor",
    "WallClockStats",
]
