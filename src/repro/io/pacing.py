"""Rate-paced disk service: one request at a time, fixed bandwidth.

A repair read of ``size`` bytes occupies the disk for ``size / rate``
seconds; concurrent requests to the same disk serialise on its lock (head
contention), while requests to different disks overlap in real time. This
reproduces the two properties the paper's schedules exploit: per-disk
serialisation and cross-disk parallelism.
"""

from __future__ import annotations

import threading
import time
from typing import Dict, Iterable

from repro.errors import ConfigurationError, DiskFailedError
from repro.utils.validation import check_positive


class PacedDisk:
    """One disk with a service rate in bytes/second.

    ``read(size)`` blocks the calling thread for the transfer duration
    while holding the disk busy. Thread-safe; FIFO-ish under contention
    (lock acquisition order).
    """

    def __init__(self, disk_id: int, rate: float, min_latency: float = 0.0) -> None:
        check_positive("rate", rate)
        if min_latency < 0:
            raise ConfigurationError(f"min_latency must be >= 0, got {min_latency}")
        self.disk_id = disk_id
        self.rate = float(rate)
        self.min_latency = float(min_latency)
        self._lock = threading.Lock()
        self._failed = False
        self.bytes_served = 0
        self.requests_served = 0

    def fail(self) -> None:
        self._failed = True

    @property
    def is_failed(self) -> bool:
        return self._failed

    def service_time(self, size: int) -> float:
        """Seconds one request of ``size`` bytes occupies the disk."""
        return self.min_latency + size / self.rate

    def read(self, size: int) -> float:
        """Block for the paced transfer; returns the service seconds."""
        if self._failed:
            raise DiskFailedError(f"read from failed paced disk {self.disk_id}")
        if size < 0:
            raise ConfigurationError(f"size must be >= 0, got {size}")
        duration = self.service_time(size)
        with self._lock:
            if self._failed:
                raise DiskFailedError(f"read from failed paced disk {self.disk_id}")
            time.sleep(duration)
            self.bytes_served += size
            self.requests_served += 1
        return duration


class PacedDiskArray:
    """A set of paced disks keyed by disk id."""

    def __init__(self) -> None:
        self._disks: Dict[int, PacedDisk] = {}

    @classmethod
    def from_rates(cls, rates: "Dict[int, float]", min_latency: float = 0.0) -> "PacedDiskArray":
        array = cls()
        for disk_id, rate in rates.items():
            array.add(PacedDisk(disk_id, rate, min_latency=min_latency))
        return array

    @classmethod
    def from_server(cls, server, time_scale: float = 1.0, min_latency: float = 0.0) -> "PacedDiskArray":
        """Mirror a simulated server's current disk bandwidths.

        ``time_scale`` multiplies every rate so a repair that would take
        simulated minutes finishes in test-friendly wall seconds.
        """
        check_positive("time_scale", time_scale)
        array = cls()
        for disk in server.disks:
            if disk.is_failed:
                paced = PacedDisk(disk.disk_id, max(disk.current_bandwidth, 1e-9) * time_scale,
                                  min_latency=min_latency)
                paced.fail()
            else:
                paced = PacedDisk(disk.disk_id, disk.current_bandwidth * time_scale,
                                  min_latency=min_latency)
            array.add(paced)
        return array

    def add(self, disk: PacedDisk) -> None:
        if disk.disk_id in self._disks:
            raise ConfigurationError(f"duplicate paced disk {disk.disk_id}")
        self._disks[disk.disk_id] = disk

    def __getitem__(self, disk_id: int) -> PacedDisk:
        try:
            return self._disks[disk_id]
        except KeyError:
            raise ConfigurationError(f"no paced disk {disk_id}") from None

    def __len__(self) -> int:
        return len(self._disks)

    def disk_ids(self) -> Iterable[int]:
        return sorted(self._disks)

    def total_bytes_served(self) -> int:
        return sum(d.bytes_served for d in self._disks.values())
