"""Exception hierarchy for the HD-PSR reproduction.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch everything from this package with a single ``except`` clause while
still distinguishing configuration mistakes from runtime storage faults.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every exception raised by :mod:`repro`."""


class ConfigurationError(ReproError, ValueError):
    """A parameter combination is invalid (e.g. ``k >= n`` or ``c < P_a``)."""


class CodingError(ReproError):
    """Erasure-coding failure: not enough shards, singular decode matrix, ..."""


class InsufficientShardsError(CodingError):
    """Fewer than ``k`` surviving shards are available for reconstruction."""


class StorageError(ReproError):
    """A (simulated or file-backed) storage operation failed."""


class DiskFailedError(StorageError):
    """An I/O was issued against a disk currently marked as failed."""


class LatentSectorError(StorageError):
    """A single chunk is unreadable (URE) while the rest of its disk serves I/O."""


class ChunkChecksumError(LatentSectorError):
    """A stored chunk's bytes disagree with its CRC32C sidecar.

    Subclasses :class:`LatentSectorError` on purpose: silent corruption is
    handled exactly like an unreadable sector — the shard is treated as
    dead, the repair re-plans around it, and the stripe is surfaced as
    degraded instead of crashing the recovery.
    """


class JournalError(StorageError):
    """The repair journal is missing, malformed, or inconsistent with the run."""


class RetryExhaustedError(StorageError):
    """A read kept timing out and the retry budget (with backoff) ran out."""


class DataLossError(StorageError):
    """Fewer than ``k`` readable shards remain for at least one stripe."""


class ChunkNotFoundError(StorageError, KeyError):
    """The requested chunk does not exist on the addressed disk."""


class MemoryCapacityError(StorageError):
    """A repair round requested more chunk slots than the memory owns."""


class SimulationError(ReproError):
    """The discrete-event engine reached an inconsistent state."""


class PlanError(ReproError):
    """A repair plan is malformed (empty rounds, overlapping chunks, ...)."""
