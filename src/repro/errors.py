"""Exception hierarchy for the HD-PSR reproduction.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch everything from this package with a single ``except`` clause while
still distinguishing configuration mistakes from runtime storage faults.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every exception raised by :mod:`repro`."""


class ConfigurationError(ReproError, ValueError):
    """A parameter combination is invalid (e.g. ``k >= n`` or ``c < P_a``)."""


class CodingError(ReproError):
    """Erasure-coding failure: not enough shards, singular decode matrix, ..."""


class InsufficientShardsError(CodingError):
    """Fewer than ``k`` surviving shards are available for reconstruction."""


class StorageError(ReproError):
    """A (simulated or file-backed) storage operation failed."""


class DiskFailedError(StorageError):
    """An I/O was issued against a disk currently marked as failed."""


class LatentSectorError(StorageError):
    """A single chunk is unreadable (URE) while the rest of its disk serves I/O."""


class ChunkChecksumError(LatentSectorError):
    """A stored chunk's bytes disagree with its CRC32C sidecar.

    Subclasses :class:`LatentSectorError` on purpose: silent corruption is
    handled exactly like an unreadable sector — the shard is treated as
    dead, the repair re-plans around it, and the stripe is surfaced as
    degraded instead of crashing the recovery.
    """


class ChunkQuarantinedError(StorageError):
    """A read addressed a chunk the scrub plane has quarantined.

    Quarantine is the window between a failed verify and the completed
    read-repair: the on-disk bytes are known-bad, so serving them — even
    to a caller who would checksum them again — is never acceptable.
    Foreground reads of a quarantined chunk degrade through decode
    instead; callers that cannot degrade receive this error with the
    chunk's coordinates and retry after the read-repair lands.
    """

    def __init__(
        self, message: str, disk: int = -1, stripe: int = -1, shard: int = -1,
    ) -> None:
        super().__init__(message)
        self.disk = disk
        self.stripe = stripe
        self.shard = shard


class JournalError(StorageError):
    """The repair journal is missing, malformed, or inconsistent with the run."""


class RetryExhaustedError(StorageError):
    """A read kept timing out and the retry budget (with backoff) ran out."""


class DataLossError(StorageError):
    """Fewer than ``k`` readable shards remain for at least one stripe."""


class ChunkNotFoundError(StorageError, KeyError):
    """The requested chunk does not exist on the addressed disk."""


class MemoryCapacityError(StorageError):
    """A repair round requested more chunk slots than the memory owns."""


class SimulationError(ReproError):
    """The discrete-event engine reached an inconsistent state."""


class PlanError(ReproError):
    """A repair plan is malformed (empty rounds, overlapping chunks, ...)."""


class DeadlineExceededError(ReproError):
    """A request's deadline expired before the work could be done.

    Raised at queue hops (admission, gate wait, piggyback wait) so doomed
    work is shed before it consumes a disk slot. ``hop`` names the stage
    that caught it; ``overshoot_seconds`` is how far past the deadline the
    check ran.
    """

    def __init__(
        self, message: str, hop: str = "admission", overshoot_seconds: float = 0.0
    ) -> None:
        super().__init__(message)
        self.hop = hop
        self.overshoot_seconds = overshoot_seconds


class OverloadError(ReproError):
    """The overload controller refused a request (brownout shedding).

    Carries the work class that was shed and a ``retry_after_ms`` hint the
    daemon puts on the wire so clients back off long enough for the
    standing queue to drain instead of retrying into it.
    """

    def __init__(
        self,
        message: str,
        work_class: str = "read",
        retry_after_ms: float = 0.0,
    ) -> None:
        super().__init__(message)
        self.work_class = work_class
        self.retry_after_ms = retry_after_ms


class ClusterError(ReproError):
    """A multi-daemon cluster operation failed (leases, ownership, handoff)."""


class LeaseError(ClusterError):
    """A lease record is missing, malformed, or could not be written."""


class FencedError(ClusterError):
    """A daemon tried to commit under a lease epoch it no longer holds.

    Raised by the epoch fence before journal commits and chunk write-backs:
    a stale owner that revives after its shards were claimed by a peer must
    never write again, or the survivor's byte-identical journal replay (and
    the chunks it already persisted) could be silently clobbered.
    """

    def __init__(
        self, message: str, shard: int = -1, held_epoch: int = -1,
        current_epoch: int = -1,
    ) -> None:
        super().__init__(message)
        self.shard = shard
        self.held_epoch = held_epoch
        self.current_epoch = current_epoch


class NotOwnerError(ClusterError):
    """The addressed daemon does not own the shard a request targets.

    Carries enough for the client to redirect: the owning node's id,
    endpoint, and the lease epoch under which it owns the shard.
    """

    def __init__(
        self, message: str, shard: int = -1, owner: "str | None" = None,
        endpoint: "str | None" = None, epoch: int = -1,
    ) -> None:
        super().__init__(message)
        self.shard = shard
        self.owner = owner
        self.endpoint = endpoint
        self.epoch = epoch
