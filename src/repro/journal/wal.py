"""Framed, checksummed, append-only write-ahead log segments.

Record frame layout (all integers little-endian):

====================  =====================================================
``magic``   4 bytes   ``b"HDJ1"``
``hlen``    4 bytes   length of the JSON header
``blen``    4 bytes   length of the binary body
``crc``     4 bytes   CRC32C over ``header + body``
``header``  hlen      UTF-8 JSON: ``{"type": ..., "meta": {...},
                      "blobs": [[name, size], ...]}``
``body``    blen      the blobs' raw bytes, concatenated in header order
====================  =====================================================

Chunk payloads and accumulator state travel in the body, so journaling a
round costs the chunk bytes themselves plus a small JSON header — no
base64 inflation.

Durability contract: :meth:`WALWriter.commit` flushes and fsyncs the
active segment; creating a segment fsyncs the journal directory so the
new name survives power loss. The reader validates each frame's CRC and
treats the first short or corrupt frame as the log's end (a torn tail
from a crash mid-append), never as an error — everything before it is
intact by construction.
"""

from __future__ import annotations

import io
import json
import os
import struct
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Tuple

from repro.errors import JournalError
from repro.utils.checksum import crc32c

MAGIC = b"HDJ1"
_HEADER_FMT = "<4sIII"
_HEADER_SIZE = struct.calcsize(_HEADER_FMT)

#: Rotate to a fresh segment once the active one crosses this many bytes.
DEFAULT_SEGMENT_BYTES = 64 * 1024 * 1024

_SEGMENT_GLOB = "seg-*.wal"


def _segment_name(index: int) -> str:
    return f"seg-{index:08d}.wal"


def _segment_index(path: Path) -> int:
    try:
        return int(path.stem.split("-", 1)[1])
    except (IndexError, ValueError):
        raise JournalError(f"not a journal segment name: {path.name}") from None


def list_segments(root: Path) -> List[Path]:
    """Journal segments under ``root`` in append order."""
    return sorted(root.glob(_SEGMENT_GLOB), key=_segment_index)


@dataclass
class WALRecord:
    """One decoded journal record."""

    type: str
    meta: Dict[str, object]
    blobs: Dict[str, bytes] = field(default_factory=dict)


def encode_record(record: WALRecord) -> bytes:
    """Serialize a record into one self-checking frame."""
    layout: List[Tuple[str, int]] = [(n, len(b)) for n, b in record.blobs.items()]
    header = json.dumps(
        {"type": record.type, "meta": record.meta, "blobs": layout},
        separators=(",", ":"),
        sort_keys=True,
    ).encode("utf-8")
    body = b"".join(record.blobs[name] for name, _ in layout)
    crc = crc32c(body, crc32c(header))
    return struct.pack(_HEADER_FMT, MAGIC, len(header), len(body), crc) + header + body


def decode_stream(stream: io.BufferedIOBase) -> Iterator[WALRecord]:
    """Yield records until EOF or the first torn/corrupt frame."""
    while True:
        prefix = stream.read(_HEADER_SIZE)
        if len(prefix) < _HEADER_SIZE:
            return  # clean EOF or torn length prefix
        magic, hlen, blen, crc = struct.unpack(_HEADER_FMT, prefix)
        if magic != MAGIC:
            return  # garbage tail
        payload = stream.read(hlen + blen)
        if len(payload) < hlen + blen:
            return  # torn frame: crash mid-append
        header, body = payload[:hlen], payload[hlen:]
        if crc32c(body, crc32c(header)) != crc:
            return  # bit rot or torn rewrite; stop at last good record
        try:
            decoded = json.loads(header.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError):
            return
        blobs: Dict[str, bytes] = {}
        offset = 0
        for name, size in decoded.get("blobs", []):
            blobs[str(name)] = body[offset : offset + int(size)]
            offset += int(size)
        yield WALRecord(
            type=str(decoded["type"]), meta=dict(decoded.get("meta", {})), blobs=blobs
        )


class WALWriter:
    """Append-only writer over rotated segment files.

    Records accumulate in the OS buffer until :meth:`commit`; a record is
    durable (and visible to :class:`WALReader`) only after the commit that
    follows it. Callers batch every record of one checkpoint and commit
    once.
    """

    def __init__(
        self,
        root: "str | os.PathLike",
        *,
        segment_bytes: int = DEFAULT_SEGMENT_BYTES,
        durable: bool = True,
    ) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.segment_bytes = segment_bytes
        self.durable = durable
        self.records_written = 0
        self.bytes_written = 0
        self.commits = 0
        existing = list_segments(self.root)
        self._seg_index = _segment_index(existing[-1]) + 1 if existing else 0
        self._fh: Optional[io.BufferedWriter] = None
        self._fh_bytes = 0

    def _open_segment(self) -> io.BufferedWriter:
        if self._fh is None or self._fh_bytes >= self.segment_bytes:
            self.close()
            path = self.root / _segment_name(self._seg_index)
            self._seg_index += 1
            self._fh = open(path, "ab")
            self._fh_bytes = 0
            if self.durable:
                _fsync_dir(self.root)
        return self._fh

    def append(self, record: WALRecord) -> None:
        """Buffer one record onto the active segment (durable at commit)."""
        frame = encode_record(record)
        fh = self._open_segment()
        fh.write(frame)
        self._fh_bytes += len(frame)
        self.records_written += 1
        self.bytes_written += len(frame)

    def commit(self) -> None:
        """Flush and fsync everything appended so far."""
        if self._fh is not None:
            self._fh.flush()
            if self.durable:
                os.fsync(self._fh.fileno())
        self.commits += 1

    def close(self) -> None:
        if self._fh is not None:
            self._fh.flush()
            if self.durable:
                os.fsync(self._fh.fileno())
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "WALWriter":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class WALReader:
    """Replays every intact record across all segments, in append order."""

    def __init__(self, root: "str | os.PathLike") -> None:
        self.root = Path(root)

    def __iter__(self) -> Iterator[WALRecord]:
        for segment in list_segments(self.root):
            with open(segment, "rb") as fh:
                yield from decode_stream(fh)


def _fsync_dir(path: Path) -> None:
    fd = os.open(path, os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)
