"""Crash-consistent write-ahead repair journal.

``repro.journal`` makes a running repair itself durable: the repair plan,
per-stripe round progress, serialized partial-sum state, and rebuilt chunk
payloads are appended to fsync'd segment files, so a repair killed at any
instant resumes from its last committed round instead of restarting.

Layers:

* :mod:`repro.journal.wal` — framed, CRC32C-checked, append-only segment
  files with torn-tail tolerance;
* :mod:`repro.journal.journal` — the typed record schema
  (``begin`` / ``round_commit`` / ``stripe_done`` / ``phase`` /
  ``resume`` / ``complete``) and the :class:`RepairState` replayer.
"""

from repro.journal.journal import RepairJournal, RepairState, StripeDone
from repro.journal.wal import WALReader, WALRecord, WALWriter

__all__ = [
    "RepairJournal",
    "RepairState",
    "StripeDone",
    "WALReader",
    "WALRecord",
    "WALWriter",
]
