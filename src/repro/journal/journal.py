"""Typed repair-journal records and the :class:`RepairState` replayer.

Record types, in the order a healthy run emits them:

``begin``
    Once per journal: algorithm, serialized :class:`RepairPlan`, stripe
    list, survivor set, failed disks, and a server-config fingerprint so
    ``--resume`` can refuse a mismatched server.
``phase``
    Multi-disk replan boundary (timing-plane metadata only).
``round_commit``
    One repair round of one stripe: the logical clock plus the stripe's
    full :meth:`PartialDecoder.to_state` snapshot (accumulators as binary
    blobs). Only the *latest* round_commit per stripe matters on replay.
``stripe_done``
    A stripe reached a terminal outcome. For recovered/replanned stripes
    the record carries the rebuilt chunk payloads and their spare-disk
    placement, making replay a pure redo: re-put bytes, zero re-reads.
``resume``
    Appended each time a resumed run takes over; counting these tells the
    fault injector how many scripted ``process_crash`` events already
    fired.
``complete``
    The repair finished; a resume of a complete journal is a no-op.

Every checkpoint is one ``append`` + one fsync'd ``commit``, so the
journal always ends on a record boundary or a torn tail the WAL reader
clips off.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.errors import JournalError
from repro.journal.wal import WALReader, WALRecord, WALWriter, list_segments

#: Journal-format version; bump on incompatible record-schema changes.
FORMAT_VERSION = 1

#: Counter: records appended to the repair journal, labelled by type.
JOURNAL_RECORDS = "hdpsr_journal_records_total"
#: Counter: fsync'd journal commits.
JOURNAL_COMMITS = "hdpsr_journal_commits_total"
#: Counter: bytes appended to the repair journal.
JOURNAL_BYTES = "hdpsr_journal_bytes_total"


def _counter(name: str, help_text: str):
    from repro.obs.context import current_registry

    return current_registry().counter(name, help_text)


def _instant(name: str, **args) -> None:
    from repro.obs.context import current_tracer

    current_tracer().instant("journal", name, **args)


@dataclass
class StripeDone:
    """Terminal outcome of one stripe as read back from the journal."""

    outcome: str
    clock: float
    #: ``(target_shard, spare_disk, payload)``; payload is None for LOST.
    writebacks: List[Tuple[int, int, Optional[np.ndarray]]] = field(
        default_factory=list
    )


@dataclass
class RepairState:
    """Everything a resumed run needs, replayed from the journal."""

    algorithm: str
    plan: Dict[str, object]
    stripe_indices: List[int]
    #: Survivor shard ids per stripe row (column order of the plan).
    survivor_ids: List[List[int]]
    failed_disks: List[int]
    fingerprint: Dict[str, object]
    clock: float = 0.0
    resume_count: int = 0
    completed: bool = False
    #: stripe global index -> terminal outcome (payloads included).
    done: Dict[int, StripeDone] = field(default_factory=dict)
    #: stripe global index -> latest mid-repair decoder snapshot.
    inflight: Dict[int, Dict[str, object]] = field(default_factory=dict)
    phases: List[Dict[str, object]] = field(default_factory=list)


class RepairJournal:
    """Write-side API: one instance journals one repair run.

    All methods append exactly one record and commit (fsync) it, so every
    checkpoint is atomic: a crash leaves either the previous consistent
    prefix or the new one, never a half-written state.
    """

    def __init__(
        self, root: "str | os.PathLike", *, durable: bool = True
    ) -> None:
        self.root = Path(root)
        self._writer = WALWriter(self.root, durable=durable)
        #: Whether a ``begin`` record was written (by this instance or a
        #: previous incarnation whose segments already exist).
        self.begun = journal_exists(self.root)

    # ------------------------------------------------------------- low level
    def _emit(self, record: WALRecord) -> None:
        self._writer.append(record)
        self._writer.commit()
        _counter(
            JOURNAL_RECORDS, "Records appended to the repair journal"
        ).labels(type=record.type).inc()
        _counter(JOURNAL_COMMITS, "fsync'd journal commits").inc()
        _counter(
            JOURNAL_BYTES, "Bytes appended to the repair journal"
        ).inc(sum(len(b) for b in record.blobs.values()))
        _instant(f"journal.{record.type}", **{
            k: v for k, v in record.meta.items()
            if isinstance(v, (int, float, str, bool))
        })

    # --------------------------------------------------------------- records
    def begin(
        self,
        *,
        algorithm: str,
        plan: Mapping[str, object],
        stripe_indices: Sequence[int],
        survivor_ids: Sequence[Sequence[int]],
        failed_disks: Sequence[int],
        fingerprint: Mapping[str, object],
    ) -> None:
        self._emit(
            WALRecord(
                type="begin",
                meta={
                    "version": FORMAT_VERSION,
                    "algorithm": algorithm,
                    "plan": dict(plan),
                    "stripe_indices": [int(s) for s in stripe_indices],
                    "survivor_ids": [[int(s) for s in row] for row in survivor_ids],
                    "failed_disks": [int(d) for d in failed_disks],
                    "fingerprint": dict(fingerprint),
                },
            )
        )
        self.begun = True

    def mark_resume(self, clock: float) -> None:
        self._emit(WALRecord(type="resume", meta={"clock": float(clock)}))

    def phase(self, **meta: object) -> None:
        self._emit(WALRecord(type="phase", meta=dict(meta)))

    def round_commit(
        self,
        stripe: int,
        clock: float,
        decoder_state: Mapping[str, object],
        outcome: str = "recovered",
    ) -> None:
        state = dict(decoder_state)
        acc: Mapping[str, np.ndarray] = state.pop("acc")  # type: ignore[assignment]
        blobs = {
            f"acc:{target}": np.ascontiguousarray(arr, dtype=np.uint8).tobytes()
            for target, arr in acc.items()
        }
        self._emit(
            WALRecord(
                type="round_commit",
                meta={
                    "stripe": int(stripe),
                    "clock": float(clock),
                    "outcome": str(outcome),
                    "decoder": state,
                },
                blobs=blobs,
            )
        )

    def stripe_done(
        self,
        stripe: int,
        outcome: str,
        clock: float,
        writebacks: Sequence[Tuple[int, int, Optional[np.ndarray]]] = (),
    ) -> None:
        meta_wb = []
        blobs: Dict[str, bytes] = {}
        for target, spare, payload in writebacks:
            meta_wb.append({"shard": int(target), "spare": int(spare)})
            if payload is not None:
                blobs[f"payload:{int(target)}"] = np.ascontiguousarray(
                    payload, dtype=np.uint8
                ).tobytes()
        self._emit(
            WALRecord(
                type="stripe_done",
                meta={
                    "stripe": int(stripe),
                    "outcome": str(outcome),
                    "clock": float(clock),
                    "writebacks": meta_wb,
                },
                blobs=blobs,
            )
        )

    def complete(self, **summary: object) -> None:
        self._emit(WALRecord(type="complete", meta=dict(summary)))

    def close(self) -> None:
        self._writer.close()

    def __enter__(self) -> "RepairJournal":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def journal_exists(root: "str | os.PathLike") -> bool:
    """True when ``root`` holds at least one journal segment."""
    path = Path(root)
    return path.is_dir() and bool(list_segments(path))


def load_state(root: "str | os.PathLike") -> RepairState:
    """Replay the journal at ``root`` into a :class:`RepairState`.

    Raises :class:`JournalError` when the directory holds no intact
    ``begin`` record (nothing to resume from).
    """
    state: Optional[RepairState] = None
    for record in WALReader(root):
        meta = record.meta
        if record.type == "begin":
            if state is not None:
                raise JournalError(
                    f"journal {root} holds more than one 'begin' record"
                )
            state = RepairState(
                algorithm=str(meta["algorithm"]),
                plan=dict(meta["plan"]),  # type: ignore[arg-type]
                stripe_indices=[int(s) for s in meta["stripe_indices"]],  # type: ignore[union-attr]
                survivor_ids=[[int(s) for s in row] for row in meta["survivor_ids"]],  # type: ignore[union-attr]
                failed_disks=[int(d) for d in meta["failed_disks"]],  # type: ignore[union-attr]
                fingerprint=dict(meta["fingerprint"]),  # type: ignore[arg-type]
            )
            continue
        if state is None:
            raise JournalError(f"journal {root} does not start with 'begin'")
        clock = meta.get("clock")
        if isinstance(clock, (int, float)):
            state.clock = max(state.clock, float(clock))
        if record.type == "resume":
            state.resume_count += 1
        elif record.type == "phase":
            state.phases.append(dict(meta))
        elif record.type == "round_commit":
            stripe = int(meta["stripe"])  # type: ignore[arg-type]
            decoder = dict(meta["decoder"])  # type: ignore[arg-type]
            decoder["outcome"] = str(meta.get("outcome", "recovered"))
            decoder["acc"] = {
                name.split(":", 1)[1]: np.frombuffer(blob, dtype=np.uint8).copy()
                for name, blob in record.blobs.items()
                if name.startswith("acc:")
            }
            state.inflight[stripe] = decoder
        elif record.type == "stripe_done":
            stripe = int(meta["stripe"])  # type: ignore[arg-type]
            writebacks: List[Tuple[int, int, Optional[np.ndarray]]] = []
            for wb in meta.get("writebacks", []):  # type: ignore[union-attr]
                shard, spare = int(wb["shard"]), int(wb["spare"])
                blob = record.blobs.get(f"payload:{shard}")
                payload = (
                    np.frombuffer(blob, dtype=np.uint8).copy()
                    if blob is not None
                    else None
                )
                writebacks.append((shard, spare, payload))
            state.done[stripe] = StripeDone(
                outcome=str(meta["outcome"]),
                clock=float(meta["clock"]),  # type: ignore[arg-type]
                writebacks=writebacks,
            )
            state.inflight.pop(stripe, None)
        elif record.type == "complete":
            state.completed = True
    if state is None:
        raise JournalError(f"no resumable journal found at {root}")
    return state
