"""Text visualisations of repair timelines.

Terminal-friendly renderings of a :class:`~repro.sim.metrics.TransferReport`
— no plotting dependency, works in CI logs and SSH sessions:

* :func:`memory_occupancy_series` / :func:`render_memory_timeline` — how
  many chunk slots are busy over time (the memory-competition picture of
  the paper's Figure 1(a), reconstructed from chunk records: a chunk
  occupies its slot from transfer start until its round completes);
* :func:`render_disk_load` — per-disk busy time and request counts, which
  shows where the slow spindles are and how evenly a schedule spreads.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.sim.metrics import TransferReport
from repro.utils.tables import AsciiTable

#: Eight-level vertical bar glyphs for the occupancy chart.
_BARS = " ▁▂▃▄▅▆▇█"


def memory_occupancy_series(
    report: TransferReport, buckets: int = 60
) -> Tuple[np.ndarray, np.ndarray]:
    """Time-bucketed mean slot occupancy.

    Returns ``(bucket_start_times, mean_occupancy)``; occupancy counts a
    chunk from its transfer start to its round end (waiting chunks still
    hold their slot — that is exactly the waste ACWT measures).
    """
    if buckets < 1:
        raise ConfigurationError(f"buckets must be >= 1, got {buckets}")
    if not report.records or report.total_time <= 0:
        return np.zeros(0), np.zeros(0)
    edges = np.linspace(0.0, report.total_time, buckets + 1)
    occupancy = np.zeros(buckets)
    width = edges[1] - edges[0]
    for r in report.records:
        lo = np.searchsorted(edges, r.start, side="right") - 1
        hi = np.searchsorted(edges, r.round_end, side="left")
        for b in range(max(lo, 0), min(hi, buckets)):
            overlap = min(r.round_end, edges[b + 1]) - max(r.start, edges[b])
            if overlap > 0:
                occupancy[b] += overlap / width
    return edges[:-1], occupancy


def render_memory_timeline(
    report: TransferReport,
    capacity: Optional[int] = None,
    width: int = 60,
    label: str = "memory",
) -> str:
    """One-line occupancy sparkline plus a scale legend.

    ``capacity`` sets the bar scale (defaults to the observed peak).
    """
    times, occ = memory_occupancy_series(report, buckets=width)
    if occ.size == 0:
        return f"{label}: (empty timeline)"
    peak = float(occ.max())
    scale = float(capacity) if capacity else (peak or 1.0)
    levels = np.clip((occ / scale) * (len(_BARS) - 1), 0, len(_BARS) - 1)
    bars = "".join(_BARS[int(round(v))] for v in levels)
    return (
        f"{label} |{bars}| peak {peak:.1f}"
        + (f"/{capacity} slots" if capacity else " slots")
        + f" over {report.total_time:.2f}s"
    )


def render_disk_load(report: TransferReport, top: int = 10) -> str:
    """Per-disk busy seconds and request counts (busiest first)."""
    busy: dict = {}
    count: dict = {}
    for r in report.records:
        if r.disk is None:
            continue
        busy[r.disk] = busy.get(r.disk, 0.0) + r.duration
        count[r.disk] = count.get(r.disk, 0) + 1
    if not busy:
        return "(no disk information recorded)"
    table = AsciiTable(["disk", "busy (s)", "requests", "share"],
                       title="Disk load (busiest first)", float_fmt=".2f")
    total = sum(busy.values())
    for disk in sorted(busy, key=busy.get, reverse=True)[:top]:
        table.add_row([
            disk, busy[disk], count[disk], f"{busy[disk] / total:.1%}"
        ])
    return table.render()
