"""Foreground degraded reads competing with background repair.

While a disk rebuilds, clients keep reading — and reads of lost chunks
degrade into k-survivor decodes that need memory slots just like repair
rounds do. This module generates a Poisson stream of such degraded reads
and measures their sojourn times under a given repair schedule, so the
benchmark suite can report what each repair scheme does to user-visible
latency (a dimension the paper leaves implicit in "memory competition").

Foreground jobs carry ``priority=-1``: they bypass the repair scheme's
stripe-admission cap and contend for memory slots directly (first-fit), as
a real degraded read would.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.errors import ConfigurationError
from repro.obs.context import current_registry
from repro.obs.metrics import MetricsRegistry
from repro.obs.quantiles import QuantileSketch
from repro.sim.metrics import TransferReport
from repro.sim.transfer import ChunkTransfer, StripeJob
from repro.utils.rng import RngLike, make_rng
from repro.utils.validation import check_positive

#: Registry metric names fed by :func:`foreground_latency`.
SOJOURN_HISTOGRAM = "hdpsr_foreground_sojourn_seconds"
SOJOURN_SUMMARY = "hdpsr_foreground_sojourn_quantile_seconds"


def generate_degraded_reads(
    rate_per_second: float,
    duration: float,
    k: int,
    chunk_time_mean: float,
    chunk_time_std: float = 0.0,
    seed: RngLike = None,
    id_prefix: str = "read",
) -> List[StripeJob]:
    """Poisson stream of single-round k-chunk degraded reads.

    Args:
        rate_per_second: arrival rate lambda.
        duration: generate arrivals over [0, duration).
        k: chunks each degraded read must fetch.
        chunk_time_mean / chunk_time_std: per-chunk transfer times
            (normal, floored at 1% of the mean).
        seed: RNG seed.
        id_prefix: job ids are ``(id_prefix, i)``.
    """
    check_positive("rate_per_second", rate_per_second)
    check_positive("duration", duration)
    check_positive("k", k)
    check_positive("chunk_time_mean", chunk_time_mean)
    if chunk_time_std < 0:
        raise ConfigurationError(f"chunk_time_std must be >= 0, got {chunk_time_std}")
    rng = make_rng(seed)
    jobs: List[StripeJob] = []
    t = 0.0
    i = 0
    while True:
        t += float(rng.exponential(1.0 / rate_per_second))
        if t >= duration:
            break
        times = np.maximum(
            rng.normal(chunk_time_mean, chunk_time_std, size=k),
            chunk_time_mean * 0.01,
        )
        chunks = [
            ChunkTransfer((id_prefix, i, j), float(times[j])) for j in range(k)
        ]
        jobs.append(
            StripeJob(
                job_id=(id_prefix, i),
                rounds=[chunks],
                arrival_time=t,
                priority=-1,
            )
        )
        i += 1
    return jobs


@dataclass
class ForegroundLatency:
    """Sojourn-time statistics of the foreground reads."""

    count: int
    mean: float
    p50: float
    p95: float
    p99: float
    max: float

    def summary(self) -> Dict[str, float]:
        return {
            "count": float(self.count),
            "mean": self.mean,
            "p50": self.p50,
            "p95": self.p95,
            "p99": self.p99,
            "max": self.max,
        }


def foreground_latency(
    report: TransferReport,
    foreground_jobs: Sequence[StripeJob],
    registry: Optional[MetricsRegistry] = None,
    algorithm: Optional[str] = None,
) -> ForegroundLatency:
    """Stream foreground sojourn times (finish - arrival) from a report.

    Accounting is fully streaming — each sojourn is fed one at a time into
    a P² :class:`~repro.obs.quantiles.QuantileSketch`, so no sample array
    is retained regardless of how many reads the run served. The same
    observations also land in the ambient metrics registry (override with
    ``registry``) as the :data:`SOJOURN_HISTOGRAM` histogram and the
    :data:`SOJOURN_SUMMARY` streaming-quantile summary, so CLI/benchmark
    Prometheus dumps carry the latency percentiles. Pass ``algorithm`` to
    fan both metrics out by an ``algorithm`` label (one series per repair
    scheme in the same registry).
    """
    registry = current_registry() if registry is None else registry
    histogram = registry.histogram(
        SOJOURN_HISTOGRAM, "foreground degraded-read sojourn time")
    summary = registry.summary(
        SOJOURN_SUMMARY, "streaming p50/p95/p99 of degraded-read sojourn time")
    if algorithm is not None:
        histogram = histogram.labels(algorithm=algorithm)
        summary = summary.labels(algorithm=algorithm)
    sketch = QuantileSketch((0.5, 0.95, 0.99))
    for job in foreground_jobs:
        finish = report.job_finish_times.get(job.job_id)
        if finish is None:
            raise ConfigurationError(
                f"foreground job {job.job_id!r} missing from report")
        sojourn = finish - job.arrival_time
        sketch.observe(sojourn)
        histogram.observe(sojourn)
        summary.observe(sojourn)
    if sketch.count == 0:
        return ForegroundLatency(0, 0.0, 0.0, 0.0, 0.0, 0.0)
    quantiles = sketch.quantiles()
    return ForegroundLatency(
        count=sketch.count,
        mean=sketch.mean,
        p50=quantiles[0.5],
        p95=quantiles[0.95],
        p99=quantiles[0.99],
        max=sketch.max,
    )
