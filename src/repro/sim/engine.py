"""A minimal generator-based discrete-event kernel.

Processes are Python generators that ``yield`` events; the engine resumes a
process when its yielded event fires. Three event kinds cover everything the
storage simulation needs:

* :class:`Timeout` — fires after a simulated delay (a chunk transfer);
* :class:`AllOf` — fires when all child events have fired (a repair round's
  parallel chunk transfers completing);
* :class:`SlotResource.request` — fires when the requested number of memory
  chunk-slots has been granted.

The kernel is deterministic: ties in time are broken by schedule order, so
two runs of the same scenario produce identical timelines.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, Generator, Iterable, List, Optional, Tuple

from repro.errors import SimulationError


class Event:
    """A one-shot occurrence processes can wait on.

    An event is *triggered* once with an optional value; callbacks attached
    before or after triggering all run exactly once.
    """

    __slots__ = ("engine", "triggered", "value", "_callbacks")

    def __init__(self, engine: "Engine") -> None:
        self.engine = engine
        self.triggered = False
        self.value: Any = None
        self._callbacks: List[Callable[["Event"], None]] = []

    def add_callback(self, fn: Callable[["Event"], None]) -> None:
        if self.triggered:
            # Fire on the next engine step to preserve run-to-completion.
            self.engine.schedule(0.0, lambda: fn(self))
        else:
            self._callbacks.append(fn)

    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event immediately (at the current simulated time)."""
        if self.triggered:
            raise SimulationError("event already triggered")
        self.triggered = True
        self.value = value
        callbacks, self._callbacks = self._callbacks, []
        for fn in callbacks:
            fn(self)
        return self


class Timeout(Event):
    """Event that fires ``delay`` simulated seconds after creation."""

    __slots__ = ()

    def __init__(self, engine: "Engine", delay: float, value: Any = None) -> None:
        super().__init__(engine)
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        engine.schedule(delay, self.succeed, value)


class AllOf(Event):
    """Event that fires when every child event has fired.

    Its value is the list of child values in the original order.
    """

    __slots__ = ("_children", "_remaining")

    def __init__(self, engine: "Engine", events: Iterable[Event]) -> None:
        super().__init__(engine)
        self._children = list(events)
        self._remaining = len(self._children)
        if self._remaining == 0:
            engine.schedule(0.0, self.succeed, [])
            return
        for child in self._children:
            child.add_callback(self._on_child)

    def _on_child(self, _child: Event) -> None:
        self._remaining -= 1
        if self._remaining == 0:
            self.succeed([c.value for c in self._children])


class Process(Event):
    """Drives a generator; the process event fires when the generator ends.

    The generator yields :class:`Event` instances; the value sent back into
    the generator is the event's value.
    """

    __slots__ = ("_gen",)

    def __init__(self, engine: "Engine", gen: Generator[Event, Any, Any]) -> None:
        super().__init__(engine)
        self._gen = gen
        engine.schedule(0.0, self._step, None)

    def _step(self, send_value: Any) -> None:
        try:
            target = self._gen.send(send_value)
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        if not isinstance(target, Event):
            raise SimulationError(
                f"process yielded {type(target).__name__}, expected an Event"
            )
        target.add_callback(lambda ev: self._step(ev.value))


class SlotResource:
    """A counted resource with FIFO (optionally first-fit) granting.

    Models the HDSS memory: ``capacity`` chunk slots; a repair round
    requests ``count`` slots and holds them for the duration of the round.

    Requests carry a priority (lower value = more urgent; default 0).
    Waiters are served in (priority, arrival) order under two policies:

        * ``"fifo"`` — strict order; a blocked request blocks everything
          behind it (conservative, no overtaking);
        * ``"first-fit"`` — a blocked request lets *equal-priority*
          requests overtake when they fit, but bars all lower-priority
          ones — so background repair rounds cannot starve a blocked
          foreground read, while repair rounds still pack among
          themselves.
    """

    def __init__(self, engine: "Engine", capacity: int, policy: str = "fifo",
                 name: str = "slots") -> None:
        if capacity <= 0:
            raise SimulationError(f"capacity must be positive, got {capacity}")
        if policy not in ("fifo", "first-fit"):
            raise SimulationError(f"unknown grant policy {policy!r}")
        self.engine = engine
        self.capacity = capacity
        self.policy = policy
        self.name = name
        self.in_use = 0
        self._seq = 0
        #: sorted by (priority, seq): (priority, seq, count, event, t_req)
        self._waiters: List[Tuple[int, int, int, Event, float]] = []
        #: (time, slots-in-use) samples for utilisation accounting.
        self.occupancy_log: List[Tuple[float, int]] = [(0.0, 0)]

    @property
    def available(self) -> int:
        return self.capacity - self.in_use

    def _log(self) -> None:
        self.occupancy_log.append((self.engine.now, self.in_use))

    def request(self, count: int, priority: int = 0) -> Event:
        """Return an event that fires once ``count`` slots are granted.

        ``priority``: lower is more urgent; ties are FIFO.
        """
        if count <= 0:
            raise SimulationError(f"slot request must be positive, got {count}")
        if count > self.capacity:
            raise SimulationError(
                f"request for {count} slots exceeds capacity {self.capacity}"
            )
        event = Event(self.engine)
        entry = (priority, self._seq, count, event, self.engine.now)
        self._seq += 1
        # insert keeping (priority, seq) order; appends dominate in practice
        idx = len(self._waiters)
        while idx > 0 and self._waiters[idx - 1][:2] > entry[:2]:
            idx -= 1
        self._waiters.insert(idx, entry)
        self._dispatch()
        return event

    def release(self, count: int) -> None:
        """Return ``count`` slots to the pool and wake eligible waiters."""
        if count <= 0:
            raise SimulationError(f"slot release must be positive, got {count}")
        if count > self.in_use:
            raise SimulationError(
                f"releasing {count} slots but only {self.in_use} are in use"
            )
        self.in_use -= count
        self._log()
        tracer = self.engine.tracer
        if tracer is not None and tracer.enabled:
            tracer.instant(
                "slot", f"{self.name}-release", ts=self.engine.now,
                track=self.name, domain="sim", count=count, in_use=self.in_use,
            )
        self._dispatch()

    def _grant(self, count: int, event: Event, t_req: float) -> None:
        self.in_use += count
        self._log()
        tracer = self.engine.tracer
        if tracer is not None and tracer.enabled:
            now = self.engine.now
            if now > t_req:
                tracer.complete(
                    "wait", f"{self.name}-wait", t_req, now - t_req,
                    track=self.name, domain="sim", count=count,
                )
            tracer.instant(
                "slot", f"{self.name}-acquire", ts=now,
                track=self.name, domain="sim", count=count, in_use=self.in_use,
            )
        event.succeed(count)

    def _dispatch(self) -> None:
        granted = True
        while granted and self._waiters:
            granted = False
            if self.policy == "fifo":
                _prio, _seq, count, event, t_req = self._waiters[0]
                if count <= self.available:
                    self._waiters.pop(0)
                    self._grant(count, event, t_req)
                    granted = True
            else:  # first-fit with a priority barrier
                blocked_priority: "int | None" = None
                for idx, (prio, _seq, count, event, t_req) in enumerate(self._waiters):
                    if blocked_priority is not None and prio > blocked_priority:
                        break  # never overtake a blocked higher-priority waiter
                    if count <= self.available:
                        del self._waiters[idx]
                        self._grant(count, event, t_req)
                        granted = True
                        break
                    if blocked_priority is None:
                        blocked_priority = prio

    def utilization(self, until: Optional[float] = None) -> float:
        """Time-averaged fraction of slots in use over [0, until]."""
        end = self.engine.now if until is None else until
        if end <= 0:
            return 0.0
        area = 0.0
        log = self.occupancy_log
        for (t0, occ), (t1, _) in zip(log, log[1:]):
            area += occ * (min(t1, end) - min(t0, end))
        last_t, last_occ = log[-1]
        if last_t < end:
            area += last_occ * (end - last_t)
        return area / (self.capacity * end)


class Engine:
    """The event loop: a time-ordered heap of scheduled callbacks.

    ``tracer`` (a :class:`repro.obs.tracer.Tracer`, or None) makes slot
    resources emit acquire/release instants and wait spans in simulated
    time; executors layer transfer/round/stripe spans on top. None (the
    default) keeps the kernel observability-free and overhead-free.
    """

    def __init__(self, tracer=None) -> None:
        self.now: float = 0.0
        self.tracer = tracer if (tracer is not None and tracer.enabled) else None
        self._heap: List[Tuple[float, int, Callable[..., None], tuple]] = []
        self._counter = itertools.count()
        self._step_limit: Optional[int] = None

    # ------------------------------------------------------------- scheduling
    def schedule(self, delay: float, fn: Callable[..., None], *args: Any) -> None:
        """Run ``fn(*args)`` after ``delay`` simulated seconds."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        heapq.heappush(self._heap, (self.now + delay, next(self._counter), fn, args))

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        return Timeout(self, delay, value)

    def process(self, gen: Generator[Event, Any, Any]) -> Process:
        return Process(self, gen)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    def slot_resource(self, capacity: int, policy: str = "fifo",
                      name: str = "slots") -> SlotResource:
        return SlotResource(self, capacity, policy, name=name)

    # -------------------------------------------------------------- execution
    def run(self, until: Optional[float] = None, max_steps: int = 50_000_000) -> float:
        """Drain the event heap; returns the final simulated time.

        Args:
            until: stop once the next event lies strictly beyond this time.
            max_steps: safety valve against runaway schedules.
        """
        steps = 0
        while self._heap:
            time, _seq, fn, args = self._heap[0]
            if until is not None and time > until:
                self.now = until
                return self.now
            heapq.heappop(self._heap)
            if time < self.now - 1e-12:
                raise SimulationError(f"time went backwards: {time} < {self.now}")
            self.now = max(self.now, time)
            fn(*args)
            steps += 1
            if steps > max_steps:
                raise SimulationError(f"exceeded {max_steps} simulation steps")
        return self.now
