"""Per-chunk timelines and derived repair metrics.

The paper's quantities, computed from executed schedules:

* **total repair (transfer) time** ``T`` — the makespan;
* **ACWT** — average chunk waiting time: a chunk that finishes its
  transfer before the slowest chunk of its repair round waits
  ``round_end - own_end`` (§2.3);
* **TR** — total repair rounds per stripe, ``ceil(k / P_a)`` (§3.2, Obs. 3);
* **memory utilisation** — time-averaged fraction of chunk slots busy.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence


@dataclass(frozen=True)
class ChunkRecord:
    """Timeline of one chunk's journey from disk into memory.

    Attributes:
        key: caller-defined chunk identity (usually ``(stripe, shard)``).
        job_id: the stripe job this chunk belonged to.
        round_index: repair round within the job (0-based).
        disk: source disk id, if known.
        start: simulated time the transfer began.
        end: simulated time the transfer finished.
        round_end: time the whole round finished (its slowest chunk).
    """

    key: Any
    job_id: Any
    round_index: int
    disk: Optional[int]
    start: float
    end: float
    round_end: float

    @property
    def duration(self) -> float:
        """Transfer duration of this chunk."""
        return self.end - self.start

    @property
    def wait(self) -> float:
        """Waiting time: idle residence in memory until the round completes."""
        return self.round_end - self.end


@dataclass
class TransferReport:
    """Everything the paper reports about one executed repair schedule."""

    #: Makespan: time at which the last round of the last stripe finished.
    total_time: float
    #: All chunk records, in completion order.
    records: List[ChunkRecord] = field(default_factory=list)
    #: Repair rounds executed per job (TR per stripe).
    rounds_per_job: Dict[Any, int] = field(default_factory=dict)
    #: Time-averaged memory slot utilisation in [0, 1], when available.
    memory_utilization: Optional[float] = None
    #: Per-job completion times.
    job_finish_times: Dict[Any, float] = field(default_factory=dict)
    #: Jobs aborted by an injected disk failure: job_id -> (time, disk).
    failed_jobs: Dict[Any, tuple] = field(default_factory=dict)

    @property
    def chunk_count(self) -> int:
        """Number of surviving chunks read."""
        return len(self.records)

    @property
    def total_waiting_time(self) -> float:
        """Sum of all chunk waiting times."""
        return float(sum(r.wait for r in self.records))

    @property
    def acwt(self) -> float:
        """Average chunk waiting time (0 when nothing was read)."""
        if not self.records:
            return 0.0
        return self.total_waiting_time / len(self.records)

    @property
    def total_rounds(self) -> int:
        """Sum of repair rounds across all stripes."""
        return int(sum(self.rounds_per_job.values()))

    @property
    def max_rounds_per_stripe(self) -> int:
        """The per-stripe TR the paper plots in Figure 4(b)."""
        if not self.rounds_per_job:
            return 0
        return max(self.rounds_per_job.values())

    def waits(self) -> List[float]:
        """All waiting times, in record order."""
        return [r.wait for r in self.records]

    def disk_blame(self) -> Dict[Any, Dict[str, float]]:
        """Bottleneck attribution per source disk, from the chunk records.

        For each executed round the *critical chunk* is the one that
        finished last; its disk is blamed for the waiting it induced on
        the round's other chunks (``sum(last_end - end_j)``). Mirrors the
        trace-level attribution in :mod:`repro.obs.analysis` so the two
        paths can cross-check each other. Returns, per disk:
        ``{"reads", "read_seconds", "critical_rounds",
        "induced_wait_seconds", "blame_share"}``.
        """
        by_round: Dict[Any, List[ChunkRecord]] = {}
        for r in self.records:
            by_round.setdefault((r.job_id, r.round_index), []).append(r)

        blame: Dict[Any, Dict[str, float]] = {}

        def _entry(disk: Any) -> Dict[str, float]:
            entry = blame.get(disk)
            if entry is None:
                entry = blame[disk] = {
                    "reads": 0.0, "read_seconds": 0.0,
                    "critical_rounds": 0.0, "induced_wait_seconds": 0.0,
                    "blame_share": 0.0,
                }
            return entry

        for r in self.records:
            entry = _entry(r.disk)
            entry["reads"] += 1
            entry["read_seconds"] += r.duration

        total_induced = 0.0
        for members in by_round.values():
            last_end = max(m.end for m in members)
            critical = max(members, key=lambda m: (m.end, str(m.key)))
            induced = sum(last_end - m.end for m in members if m is not critical)
            entry = _entry(critical.disk)
            entry["critical_rounds"] += 1
            entry["induced_wait_seconds"] += induced
            total_induced += induced
        if total_induced > 0:
            for entry in blame.values():
                entry["blame_share"] = entry["induced_wait_seconds"] / total_induced
        return blame

    def summary(self) -> Dict[str, float]:
        """Compact dictionary for tables and EXPERIMENTS.md rows."""
        out = {
            "total_time": self.total_time,
            "acwt": self.acwt,
            "chunks_read": float(self.chunk_count),
            "total_rounds": float(self.total_rounds),
            "memory_utilization": (
                float(self.memory_utilization) if self.memory_utilization is not None else float("nan")
            ),
        }
        if self.failed_jobs:
            out["failed_jobs"] = float(len(self.failed_jobs))
        return out

    def to_csv(self, path) -> "Path":
        """Write the per-chunk timeline as CSV (for external plotting).

        Columns: key, job_id, round_index, disk, start, end, duration,
        round_end, wait.
        """
        import csv
        from pathlib import Path

        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        with path.open("w", newline="") as fh:
            writer = csv.writer(fh)
            writer.writerow(
                ["key", "job_id", "round_index", "disk", "start", "end",
                 "duration", "round_end", "wait"]
            )
            for r in self.records:
                writer.writerow([
                    str(r.key), str(r.job_id), r.round_index,
                    "" if r.disk is None else r.disk,
                    f"{r.start:.9g}", f"{r.end:.9g}", f"{r.duration:.9g}",
                    f"{r.round_end:.9g}", f"{r.wait:.9g}",
                ])
        return path


def build_report(
    records: Sequence[ChunkRecord],
    rounds_per_job: Dict[Any, int],
    job_finish_times: Dict[Any, float],
    memory_utilization: Optional[float] = None,
    failed_jobs: Optional[Dict[Any, tuple]] = None,
) -> TransferReport:
    """Assemble a :class:`TransferReport`, deriving the makespan from records.

    ``failed_jobs`` marks jobs aborted by injected disk failures; an aborted
    job's abort instant still counts toward the makespan (the slots it held
    were busy until then).
    """
    total = max(job_finish_times.values()) if job_finish_times else 0.0
    if failed_jobs:
        total = max([total] + [t for (t, _) in failed_jobs.values()])
    ordered = sorted(records, key=lambda r: (r.end, str(r.key)))
    return TransferReport(
        total_time=total,
        records=list(ordered),
        rounds_per_job=dict(rounds_per_job),
        memory_utilization=memory_utilization,
        job_finish_times=dict(job_finish_times),
        failed_jobs=dict(failed_jobs or {}),
    )
