"""Discrete-event simulation substrate.

The paper's repair-time results come from schedules (which chunks move when,
under a c-chunk memory) applied to per-chunk transfer times. This package
provides:

* :mod:`repro.sim.engine` — a small generator-based event kernel (timeouts,
  processes, all-of joins, FIFO slot resources), in the style of SimPy but
  dependency-free;
* :mod:`repro.sim.transfer` — two executors for repair schedules: the
  paper's deterministic *interval* model (memory partitioned into ``P_r``
  stripe intervals) and an exact *slot* model on the event kernel;
* :mod:`repro.sim.metrics` — per-chunk timelines and the derived metrics
  the paper reports (total repair time, ACWT, TR, memory utilisation).
"""

from repro.sim.engine import AllOf, Engine, Event, Process, SlotResource, Timeout
from repro.sim.metrics import ChunkRecord, TransferReport, build_report
from repro.sim.viz import memory_occupancy_series, render_disk_load, render_memory_timeline
from repro.sim.transfer import (
    ChunkTransfer,
    RoundSpec,
    StripeJob,
    safe_admission_cap,
    simulate_interval_schedule,
    simulate_slot_schedule,
)

__all__ = [
    "Engine",
    "Event",
    "Timeout",
    "Process",
    "AllOf",
    "SlotResource",
    "ChunkRecord",
    "TransferReport",
    "build_report",
    "ChunkTransfer",
    "RoundSpec",
    "StripeJob",
    "safe_admission_cap",
    "simulate_interval_schedule",
    "simulate_slot_schedule",
    "memory_occupancy_series",
    "render_memory_timeline",
    "render_disk_load",
]
