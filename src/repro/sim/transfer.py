"""Executors that turn repair schedules into timelines.

A *schedule* is a list of :class:`StripeJob`; each job is an ordered list of
repair rounds, each round an ordered list of :class:`ChunkTransfer` that move
in parallel. Two executors produce :class:`~repro.sim.metrics.TransferReport`:

* :func:`simulate_interval_schedule` — the paper's model (§4.2.1 Step 2):
  memory is partitioned into ``P_r`` intervals; each interval repairs one
  stripe at a time, pulling the next job from a FIFO queue when it finishes.
  Deterministic, closed-form, fast (used inside benchmark sweeps).

* :func:`simulate_slot_schedule` — exact chunk-slot semantics on the event
  kernel: a round holds ``len(round)`` of ``c`` slots for its duration,
  optionally plus persistent accumulator slots; admission control caps
  concurrent stripes. Used as ground truth for the model-fidelity ablation.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import (
    TYPE_CHECKING, Any, Dict, Generator, List, Optional, Sequence, Tuple,
)

from repro.errors import PlanError, SimulationError
from repro.sim.engine import Engine, Event
from repro.sim.metrics import ChunkRecord, TransferReport, build_report

if TYPE_CHECKING:  # pragma: no cover
    from repro.faults.injector import SimFaultModel


@dataclass(frozen=True)
class ChunkTransfer:
    """One chunk to move from a disk into memory.

    Attributes:
        key: caller-defined identity (usually ``(stripe_index, shard_index)``).
        duration: transfer time in simulated seconds (> 0 unless instant).
        disk: source disk id (informational).
    """

    key: Any
    duration: float
    disk: Optional[int] = None

    def __post_init__(self) -> None:
        if self.duration < 0:
            raise PlanError(f"chunk {self.key!r} has negative duration {self.duration}")


#: A repair round: chunks transferred in parallel.
RoundSpec = Sequence[ChunkTransfer]


@dataclass
class StripeJob:
    """One stripe's repair: an ordered list of rounds.

    ``accumulator_slots`` models PSR's partial-sum chunks: slots claimed
    with the first round and held until the job finishes (zero for
    single-round FSR-style jobs, where decode happens in place).
    ``arrival_time`` delays the job's first request (slot model only) —
    used for foreground traffic arriving while a repair runs.
    ``priority`` orders admission when jobs contend (lower = sooner;
    foreground reads typically outrank background repair).
    """

    job_id: Any
    rounds: List[List[ChunkTransfer]] = field(default_factory=list)
    accumulator_slots: int = 0
    arrival_time: float = 0.0
    priority: int = 0

    def validate(self) -> None:
        if not self.rounds:
            raise PlanError(f"job {self.job_id!r} has no rounds")
        if self.accumulator_slots < 0:
            raise PlanError(f"job {self.job_id!r} has negative accumulator_slots")
        if self.arrival_time < 0:
            raise PlanError(f"job {self.job_id!r} has negative arrival_time")
        seen = set()
        for rnd in self.rounds:
            if not rnd:
                raise PlanError(f"job {self.job_id!r} contains an empty round")
            for chunk in rnd:
                if chunk.key in seen:
                    raise PlanError(f"job {self.job_id!r} reads chunk {chunk.key!r} twice")
                seen.add(chunk.key)

    @property
    def chunk_count(self) -> int:
        return sum(len(r) for r in self.rounds)

    def max_round_size(self) -> int:
        return max(len(r) for r in self.rounds)


# --------------------------------------------------------------------------
# Fault overlay
# --------------------------------------------------------------------------


def _faulted_round(
    faults: "Optional[SimFaultModel]",
    rnd: Sequence[ChunkTransfer],
    start: float,
) -> "Tuple[List[float], Optional[float], Optional[int]]":
    """Per-chunk effective durations + earliest failure instant of a round.

    A chunk's duration is stretched through any slow/hang windows its disk
    crosses; if the disk permanently fails before the transfer completes,
    the round (and its job) aborts at the failure instant. Fault windows are
    evaluated against the round's start time — the same read-boundary
    approximation the byte-exact injector documents.
    """
    durations: List[float] = []
    fail_at: Optional[float] = None
    fail_disk: Optional[int] = None
    for chunk in rnd:
        if faults is None or chunk.disk is None:
            durations.append(chunk.duration)
            continue
        dur = faults.effective_duration(chunk.disk, start, chunk.duration)
        fail = faults.fail_time(chunk.disk)
        if fail is not None and fail < start + dur:
            instant = max(start, fail)
            if fail_at is None or instant < fail_at:
                fail_at, fail_disk = instant, chunk.disk
        durations.append(dur)
    return durations, fail_at, fail_disk


# --------------------------------------------------------------------------
# Interval model (paper §4.2.1 Step 2)
# --------------------------------------------------------------------------


def simulate_interval_schedule(
    jobs: Sequence[StripeJob],
    num_intervals: int,
    compute_time_per_round: float = 0.0,
    tail_time_per_job: float = 0.0,
    tracer=None,
    faults: "Optional[SimFaultModel]" = None,
) -> TransferReport:
    """Execute jobs on ``P_r`` memory intervals, FIFO job admission.

    Each interval repairs one stripe at a time; a stripe's round takes the
    maximum of its chunk durations (plus an optional per-round compute
    cost). Jobs are admitted in list order to whichever interval frees
    first — exactly the paper's "the interval selects the next stripe from
    the waiting queue" procedure. ``tail_time_per_job`` extends each job
    after its last round (e.g. writing the rebuilt chunk to a spare disk)
    while still occupying its interval.

    The memory-utilisation figure assumes each interval is as wide as the
    job's current round (chunks occupy slots only while their round runs).

    ``tracer`` (optional): a :class:`repro.obs.tracer.Tracer`; when
    enabled, each interval becomes a trace track carrying its stripes'
    ``stripe``/``round``/``read``/``decode``/``writeback`` spans.

    ``faults`` (optional): a :class:`~repro.faults.injector.SimFaultModel`;
    slow/hang windows stretch chunk durations, and a permanent disk failure
    aborts the jobs reading from it (listed in ``report.failed_jobs`` for
    the caller to re-plan).
    """
    if num_intervals <= 0:
        raise PlanError(f"num_intervals must be positive, got {num_intervals}")
    if compute_time_per_round < 0:
        raise PlanError("compute_time_per_round must be >= 0")
    if tail_time_per_job < 0:
        raise PlanError("tail_time_per_job must be >= 0")
    for job in jobs:
        job.validate()
    trace = tracer is not None and tracer.enabled

    # Min-heap of (free_time, interval_id) — FIFO jobs go to earliest-free.
    intervals = [(0.0, i) for i in range(num_intervals)]
    heapq.heapify(intervals)

    records: List[ChunkRecord] = []
    rounds_per_job: Dict[Any, int] = {}
    finish_times: Dict[Any, float] = {}
    failed_jobs: Dict[Any, tuple] = {}
    busy_slot_area = 0.0

    for job in jobs:
        free_at, interval_id = heapq.heappop(intervals)
        t = free_at
        track = f"interval-{interval_id}"
        aborted = False
        for round_index, rnd in enumerate(job.rounds):
            durations, fail_at, fail_disk = _faulted_round(faults, rnd, t)
            if fail_at is not None:
                failed_jobs[job.job_id] = (fail_at, fail_disk)
                if trace:
                    tracer.instant("fault", f"stripe {job.job_id} aborted",
                                   track=track, disk=fail_disk)
                t = fail_at
                aborted = True
                break
            round_time = max(durations) + compute_time_per_round
            round_end = t + round_time
            for chunk, dur in zip(rnd, durations):
                records.append(
                    ChunkRecord(
                        key=chunk.key,
                        job_id=job.job_id,
                        round_index=round_index,
                        disk=chunk.disk,
                        start=t,
                        end=t + dur,
                        round_end=round_end,
                    )
                )
                busy_slot_area += dur
                if trace:
                    tracer.complete(
                        "read", f"chunk {chunk.key}", t, dur,
                        track=track, disk=chunk.disk, stripe=job.job_id,
                        round=round_index,
                    )
            if trace:
                tracer.complete(
                    "round", f"stripe {job.job_id} round {round_index}",
                    t, round_time, track=track,
                    stripe=job.job_id, round=round_index, chunks=len(rnd),
                )
                if compute_time_per_round > 0:
                    tracer.complete(
                        "decode", "decode", round_end - compute_time_per_round,
                        compute_time_per_round, track=track, stripe=job.job_id,
                    )
            t = round_end
        if aborted:
            heapq.heappush(intervals, (t, interval_id))
            continue
        if trace and tail_time_per_job > 0:
            tracer.complete("writeback", "writeback", t, tail_time_per_job,
                            track=track, stripe=job.job_id)
        t += tail_time_per_job
        if trace:
            tracer.complete(
                "stripe", f"stripe {job.job_id}", free_at, t - free_at,
                track=track, stripe=job.job_id, rounds=len(job.rounds),
            )
        rounds_per_job[job.job_id] = len(job.rounds)
        finish_times[job.job_id] = t
        heapq.heappush(intervals, (t, interval_id))

    makespan = max(finish_times.values()) if finish_times else 0.0
    # Capacity for utilisation: the widest concurrent footprint the
    # schedule could legally use — num_intervals * widest round.
    widest = max((j.max_round_size() for j in jobs), default=0)
    capacity = num_intervals * widest
    utilization = busy_slot_area / (capacity * makespan) if capacity and makespan > 0 else None
    return build_report(records, rounds_per_job, finish_times, utilization,
                        failed_jobs=failed_jobs)


# --------------------------------------------------------------------------
# Slot model (event-kernel ground truth)
# --------------------------------------------------------------------------


def safe_admission_cap(jobs: Sequence[StripeJob], capacity: int) -> int:
    """Largest deadlock-free concurrent-stripe cap for a job set.

    With first-fit granting, a deadlock needs every in-flight stripe to be
    holding only accumulator slots while no pending request fits. Capping
    in-flight stripes at ``m`` guarantees that, in that worst state, at
    least ``capacity - m * max_acc`` slots are free; keeping that at or
    above the largest possible single request (``max_round + max_acc``)
    makes the state impossible.
    """
    if capacity <= 0:
        raise PlanError(f"capacity must be positive, got {capacity}")
    max_acc = max((j.accumulator_slots for j in jobs), default=0)
    max_request = max(
        (j.max_round_size() + j.accumulator_slots for j in jobs), default=1
    )
    if max_acc == 0:
        return max(1, len(jobs))
    return max(1, (capacity - max_request) // max_acc + 1)


def simulate_slot_schedule(
    jobs: Sequence[StripeJob],
    capacity: int,
    policy: str = "first-fit",
    max_concurrent: Optional[int] = None,
    compute_time_per_round: float = 0.0,
    tail_time_per_job: float = 0.0,
    disk_contention: bool = False,
    tracer=None,
    faults: "Optional[SimFaultModel]" = None,
) -> TransferReport:
    """Execute jobs against a ``capacity``-slot memory on the event kernel.

    Args:
        capacity: memory capacity ``c`` in chunk slots.
        policy: slot grant policy, ``"first-fit"`` (default; required for
            deadlock-freedom with accumulators) or ``"fifo"``.
        max_concurrent: admission cap on simultaneously active stripes
            (e.g. ``P_r``). Always clamped to the deadlock-free maximum
            from :func:`safe_admission_cap`; ``None`` means "as many as is
            safe".
        compute_time_per_round: added to every round (decode cost).
        tail_time_per_job: extends each job after its last round (spare
            write-back); consumes no read-memory slots.
        disk_contention: when True, each chunk transfer must additionally
            hold its source disk (chunks with ``disk=None`` skip this) —
            a disk serves one request at a time, so concurrent reads to
            the same spindle queue (FIFO). Matches the wall-clock
            :class:`~repro.io.pacing.PacedDisk` semantics; without it,
            disks have infinite internal parallelism (the paper's
            L-matrix abstraction).

        tracer: optional :class:`repro.obs.tracer.Tracer`; when enabled,
            every stripe becomes a trace track with ``stripe``/``round``/
            ``read``/``decode``/``writeback`` spans plus memory-wait
            spans, and the slot resources emit acquire/release instants.
        faults: optional :class:`~repro.faults.injector.SimFaultModel`.
            Slow/hang windows stretch chunk durations (evaluated against
            each round's start time); a permanent disk failure aborts jobs
            reading from it at the failure instant — slots are released and
            the job lands in ``report.failed_jobs`` for re-planning.

    Per-job ``accumulator_slots`` are claimed with the first round and
    held until the job ends (PSR's partial-sum residency).

    Raises:
        SimulationError: if the schedule deadlocks (requests pending when
            the event heap drains) — cannot happen under the default
            policy/cap, but reachable with ``policy="fifo"``.
    """
    if capacity <= 0:
        raise PlanError(f"capacity must be positive, got {capacity}")
    if tail_time_per_job < 0:
        raise PlanError("tail_time_per_job must be >= 0")
    for job in jobs:
        job.validate()
        need = job.max_round_size() + job.accumulator_slots
        if need > capacity:
            raise PlanError(
                f"job {job.job_id!r} needs {need} slots (round + accumulators) "
                f"but capacity is {capacity}"
            )
    cap = safe_admission_cap(jobs, capacity)
    if max_concurrent is not None:
        cap = max(1, min(max_concurrent, cap))
    max_concurrent = cap

    trace = tracer is not None and tracer.enabled
    engine = Engine(tracer=tracer if trace else None)
    memory = engine.slot_resource(capacity, policy=policy, name="memory")
    admission = (
        engine.slot_resource(max_concurrent, policy="fifo", name="admission")
        if max_concurrent is not None
        else None
    )

    records: List[ChunkRecord] = []
    rounds_per_job: Dict[Any, int] = {}
    finish_times: Dict[Any, float] = {}
    failed_jobs: Dict[Any, tuple] = {}
    disk_resources: Dict[Any, Any] = {}

    def _disk_resource(disk: Any):
        res = disk_resources.get(disk)
        if res is None:
            res = engine.slot_resource(1, policy="fifo", name=f"disk-{disk}")
            disk_resources[disk] = res
        return res

    def chunk_process(
        chunk: ChunkTransfer, priority: int, duration: float
    ) -> Generator[Event, Any, float]:
        """One contended transfer; returns its completion time."""
        res = _disk_resource(chunk.disk)
        yield res.request(1, priority=priority)
        yield engine.timeout(duration)
        res.release(1)
        return engine.now

    def job_process(job: StripeJob) -> Generator[Event, Any, None]:
        if job.arrival_time > 0:
            yield engine.timeout(job.arrival_time)
        # Foreground jobs (negative priority) bypass the repair admission
        # cap and contend for memory slots directly.
        gated = admission is not None and job.priority >= 0
        if gated:
            yield admission.request(1)
        admitted = engine.now
        track = f"stripe-{job.job_id}"
        held_acc = 0
        for round_index, rnd in enumerate(job.rounds):
            # The first round also claims the persistent accumulator slots.
            extra = job.accumulator_slots if round_index == 0 else 0
            requested = engine.now
            yield memory.request(len(rnd) + extra, priority=job.priority)
            held_acc += extra
            start = engine.now
            if trace and start > requested:
                tracer.complete(
                    "wait", "memory-wait", requested, start - requested,
                    track=track, stripe=job.job_id, slots=len(rnd) + extra,
                )
            durations, fail_at, fail_disk = _faulted_round(faults, rnd, start)
            if fail_at is not None:
                # One of the round's source disks dies before the round
                # completes: hold the slots until the failure instant, then
                # abort the job and hand everything back.
                if fail_at > start:
                    yield engine.timeout(fail_at - start)
                failed_jobs[job.job_id] = (engine.now, fail_disk)
                if trace:
                    tracer.instant("fault", f"stripe {job.job_id} aborted",
                                   track=track, disk=fail_disk)
                memory.release(len(rnd) + held_acc)
                if gated:
                    admission.release(1)
                return
            if disk_contention:
                procs = [
                    engine.process(chunk_process(c, job.priority, d))
                    if c.disk is not None
                    else engine.timeout(d, None)
                    for c, d in zip(rnd, durations)
                ]
                results = yield engine.all_of(procs)
                ends = [
                    r if r is not None else start + d
                    for r, d in zip(results, durations)
                ]
            else:
                transfers = [engine.timeout(d) for d in durations]
                yield engine.all_of(transfers)
                ends = [start + d for d in durations]
            if compute_time_per_round > 0:
                decode_start = engine.now
                yield engine.timeout(compute_time_per_round)
                if trace:
                    tracer.complete(
                        "decode", "decode", decode_start, compute_time_per_round,
                        track=track, stripe=job.job_id,
                    )
            round_end = engine.now
            for chunk, end in zip(rnd, ends):
                records.append(
                    ChunkRecord(
                        key=chunk.key,
                        job_id=job.job_id,
                        round_index=round_index,
                        disk=chunk.disk,
                        start=start,
                        end=end,
                        round_end=round_end,
                    )
                )
                if trace:
                    tracer.complete(
                        "read", f"chunk {chunk.key}", start, end - start,
                        track=track, disk=chunk.disk, stripe=job.job_id,
                        round=round_index,
                    )
            if trace:
                tracer.complete(
                    "round", f"stripe {job.job_id} round {round_index}",
                    start, round_end - start, track=track,
                    stripe=job.job_id, round=round_index, chunks=len(rnd),
                )
            memory.release(len(rnd))
        if held_acc:
            memory.release(held_acc)
        if tail_time_per_job > 0:
            tail_start = engine.now
            yield engine.timeout(tail_time_per_job)
            if trace:
                tracer.complete("writeback", "writeback", tail_start,
                                tail_time_per_job, track=track, stripe=job.job_id)
        rounds_per_job[job.job_id] = len(job.rounds)
        finish_times[job.job_id] = engine.now
        if trace:
            tracer.complete(
                "stripe", f"stripe {job.job_id}", admitted,
                engine.now - admitted, track=track,
                stripe=job.job_id, rounds=len(job.rounds),
            )
        if gated:
            admission.release(1)

    processes = [engine.process(job_process(job)) for job in jobs]
    engine.run()

    unfinished = [j.job_id for j, p in zip(jobs, processes) if not p.triggered]
    if unfinished:
        raise SimulationError(
            f"schedule deadlocked; unfinished jobs: {unfinished[:5]}"
            f"{'...' if len(unfinished) > 5 else ''}"
        )
    utilization = memory.utilization(until=engine.now) if engine.now > 0 else None
    return build_report(records, rounds_per_job, finish_times, utilization,
                        failed_jobs=failed_jobs)
